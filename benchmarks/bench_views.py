"""Benchmark E10 — equivalence (and relative cost) of the three asynchronous views.

Regenerates the E10 table, asserts the statistical indistinguishability of
the node-clock, edge-clock and global-clock simulations, and additionally
times the three engine views on the same workload — the engine-view ablation
called out in DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.core.async_engine import run_asynchronous
from repro.experiments.registry import run_experiment
from repro.graphs import hypercube_graph


def test_view_equivalence_experiment(run_once, bench_preset):
    result = run_once(run_experiment, "E10", preset=bench_preset)
    assert result.conclusion("views_statistically_indistinguishable") is True
    assert result.conclusion("max_ks_distance") < 0.6


@pytest.mark.parametrize("view", ["global", "node_clocks", "edge_clocks"])
def test_async_engine_view_cost(benchmark, view):
    """Ablation: wall-clock cost of one pp-a run per engine view (same law, different constants)."""
    graph = hypercube_graph(8)

    def run(seed=[0]):
        seed[0] += 1
        return run_asynchronous(graph, 0, view=view, seed=seed[0])

    result = benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    assert result.completed


@pytest.mark.parametrize("view", ["global", "node_clocks", "edge_clocks"])
def test_batched_view_cost(benchmark, view):
    """Companion ablation: the batched kernels' per-view cost on the same
    workload (128 trials at once; the clock-queue views pay per-tick scalar
    draws for serial equivalence, so their batched win is smaller than the
    global view's)."""
    from repro.core.batch_engine import run_batch

    graph = hypercube_graph(8)
    batched = benchmark.pedantic(
        run_batch,
        args=(graph, 0, "pp-a"),
        kwargs=dict(trials=128, seed=1, view=view, record_times=False),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert batched.completed.all()
