"""Unit tests for RNG / seed management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randomness.rng import as_generator, derive_generator, spawn_generators, spawn_seeds


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.allclose(a, b)

    def test_from_none_gives_generator(self):
        rng = as_generator(None)
        assert isinstance(rng, np.random.Generator)

    def test_existing_generator_passed_through(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_from_seed_sequence(self):
        sequence = np.random.SeedSequence(7)
        a = as_generator(sequence).random(3)
        b = as_generator(np.random.SeedSequence(7)).random(3)
        assert np.allclose(a, b)


class TestSpawn:
    def test_spawned_generators_are_independent_and_deterministic(self):
        first = [g.random(4) for g in spawn_generators(3, seed=1)]
        second = [g.random(4) for g in spawn_generators(3, seed=1)]
        for a, b in zip(first, second):
            assert np.allclose(a, b)
        # Different children produce different streams.
        assert not np.allclose(first[0], first[1])

    def test_spawn_counts(self):
        assert spawn_generators(0, seed=1) == []
        assert len(spawn_generators(5, seed=1)) == 5
        with pytest.raises(ValueError):
            spawn_generators(-1, seed=1)

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(4, seed=9) == spawn_seeds(4, seed=9)
        assert spawn_seeds(4, seed=9) != spawn_seeds(4, seed=10)
        with pytest.raises(ValueError):
            spawn_seeds(-2, seed=0)

    def test_spawn_from_generator_source(self):
        children = spawn_generators(2, seed=np.random.default_rng(3))
        assert len(children) == 2


class TestDeriveGenerator:
    def test_same_path_same_stream(self):
        a = derive_generator(1, "theorem1", "star", 128).random(4)
        b = derive_generator(1, "theorem1", "star", 128).random(4)
        assert np.allclose(a, b)

    def test_different_paths_differ(self):
        a = derive_generator(1, "theorem1", "star", 128).random(4)
        b = derive_generator(1, "theorem1", "star", 256).random(4)
        c = derive_generator(1, "theorem2", "star", 128).random(4)
        assert not np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_different_master_seeds_differ(self):
        a = derive_generator(1, "x").random(4)
        b = derive_generator(2, "x").random(4)
        assert not np.allclose(a, b)

    def test_none_seed_supported(self):
        rng = derive_generator(None, "anything")
        assert isinstance(rng, np.random.Generator)
