"""Summary statistics, confidence intervals, and ratio estimates.

The experiment tables report, for every (graph, protocol) cell, the mean
spreading time with a confidence interval, and for every graph a *ratio* of
two protocols' times (synchronous over asynchronous, push over push–pull,
...).  Ratios of Monte Carlo means need their own uncertainty estimate, so
this module provides bootstrap confidence intervals for means, quantiles and
ratios of means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.randomness.rng import SeedLike, as_generator

__all__ = [
    "MeanEstimate",
    "RatioEstimate",
    "summarize",
    "bootstrap_mean_interval",
    "bootstrap_ratio_of_means",
    "normal_mean_interval",
]


@dataclass(frozen=True)
class MeanEstimate:
    """A mean with a confidence interval.

    Attributes:
        value: the point estimate (sample mean).
        lower / upper: the confidence interval bounds.
        confidence: the confidence level (e.g. 0.95).
        num_samples: how many observations the estimate is based on.
    """

    value: float
    lower: float
    upper: float
    confidence: float
    num_samples: int

    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:.3f} [{self.lower:.3f}, {self.upper:.3f}]"


@dataclass(frozen=True)
class RatioEstimate:
    """A ratio of two means with a bootstrap confidence interval."""

    value: float
    lower: float
    upper: float
    confidence: float
    numerator_mean: float
    denominator_mean: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:.3f} [{self.lower:.3f}, {self.upper:.3f}]"


def _validate_sample(values: Sequence[float], name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise AnalysisError(f"{name} must be non-empty")
    if np.any(~np.isfinite(array)):
        raise AnalysisError(f"{name} must contain only finite values")
    return array


def summarize(values: Sequence[float], *, confidence: float = 0.95) -> MeanEstimate:
    """Sample mean with a normal-approximation confidence interval."""
    return normal_mean_interval(values, confidence=confidence)


def normal_mean_interval(values: Sequence[float], *, confidence: float = 0.95) -> MeanEstimate:
    """Mean with a normal (CLT) confidence interval.

    For a single observation the interval degenerates to ``(value, value)``.
    """
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    array = _validate_sample(values, "values")
    mean = float(np.mean(array))
    if array.size < 2:
        return MeanEstimate(mean, mean, mean, confidence, int(array.size))
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2.0))
    half = z * float(np.std(array, ddof=1)) / math.sqrt(array.size)
    return MeanEstimate(mean, mean - half, mean + half, confidence, int(array.size))


def bootstrap_mean_interval(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: SeedLike = None,
) -> MeanEstimate:
    """Mean with a percentile-bootstrap confidence interval."""
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    if num_resamples < 100:
        raise AnalysisError("num_resamples should be at least 100 for a stable interval")
    array = _validate_sample(values, "values")
    rng = as_generator(seed)
    mean = float(np.mean(array))
    if array.size < 2:
        return MeanEstimate(mean, mean, mean, confidence, int(array.size))
    indices = rng.integers(0, array.size, size=(num_resamples, array.size))
    resample_means = array[indices].mean(axis=1)
    alpha = 1.0 - confidence
    lower = float(np.quantile(resample_means, alpha / 2.0))
    upper = float(np.quantile(resample_means, 1.0 - alpha / 2.0))
    return MeanEstimate(mean, lower, upper, confidence, int(array.size))


def bootstrap_ratio_of_means(
    numerator: Sequence[float],
    denominator: Sequence[float],
    *,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: SeedLike = None,
) -> RatioEstimate:
    """Ratio ``mean(numerator) / mean(denominator)`` with a bootstrap interval.

    The two samples are resampled independently (they come from independent
    Monte Carlo runs).  The denominator's mean must be positive.
    """
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    num = _validate_sample(numerator, "numerator")
    den = _validate_sample(denominator, "denominator")
    den_mean = float(np.mean(den))
    if den_mean <= 0:
        raise AnalysisError("denominator mean must be positive for a ratio estimate")
    num_mean = float(np.mean(num))
    rng = as_generator(seed)
    ratios = np.empty(num_resamples)
    for i in range(num_resamples):
        num_resample = num[rng.integers(0, num.size, num.size)]
        den_resample = den[rng.integers(0, den.size, den.size)]
        den_value = float(np.mean(den_resample))
        ratios[i] = float(np.mean(num_resample)) / den_value if den_value > 0 else math.inf
    finite = ratios[np.isfinite(ratios)]
    if finite.size == 0:
        raise AnalysisError("all bootstrap ratios were infinite; denominator too close to zero")
    alpha = 1.0 - confidence
    return RatioEstimate(
        value=num_mean / den_mean,
        lower=float(np.quantile(finite, alpha / 2.0)),
        upper=float(np.quantile(finite, 1.0 - alpha / 2.0)),
        confidence=confidence,
        numerator_mean=num_mean,
        denominator_mean=den_mean,
    )
