"""Unit tests for Monte Carlo trial runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    SpreadingTimeSample,
    collect_results,
    run_adaptive_trials,
    run_trials,
)
from repro.errors import AnalysisError
from repro.graphs import complete_graph, star_graph
from repro.graphs.random_graphs import connected_erdos_renyi_graph


class TestRunTrials:
    def test_basic_sample_fields(self):
        graph = star_graph(16)
        sample = run_trials(graph, 1, "pp", trials=10, seed=1)
        assert sample.num_trials == 10
        assert sample.protocol == "pp"
        assert sample.num_vertices == 16
        assert sample.source == 1
        assert all(t <= 2.0 for t in sample.times)

    def test_reproducible(self):
        graph = complete_graph(12)
        a = run_trials(graph, 0, "pp-a", trials=15, seed=7)
        b = run_trials(graph, 0, "pp-a", trials=15, seed=7)
        assert a.times == b.times

    def test_random_source(self):
        graph = complete_graph(12)
        sample = run_trials(graph, "random", "pp", trials=10, seed=3)
        assert sample.source == -1 or 0 <= sample.source < 12

    def test_graph_factory_mode(self):
        def factory(rng):
            return connected_erdos_renyi_graph(24, seed=rng)

        sample = run_trials(factory, 0, "pp", trials=8, seed=5)
        assert sample.num_trials == 8
        assert sample.num_vertices == 24

    def test_fraction_times_recorded(self):
        graph = complete_graph(20)
        sample = run_trials(graph, 0, "pp-a", trials=6, seed=9, fractions=(0.5, 1.0))
        assert set(sample.fraction_times) == {0.5, 1.0}
        assert len(sample.fraction_times[0.5]) == 6
        for half, full in zip(sample.fraction_times[0.5], sample.fraction_times[1.0]):
            assert half <= full

    def test_validation(self):
        graph = star_graph(8)
        with pytest.raises(AnalysisError):
            run_trials(graph, 0, "pp", trials=0)
        with pytest.raises(AnalysisError):
            run_trials(graph, 99, "pp", trials=2)
        with pytest.raises(AnalysisError):
            run_trials(graph, 0, "pp", trials=2, fractions=(1.5,))
        with pytest.raises(AnalysisError):
            run_trials(graph, "uniform", "pp", trials=2)

    def test_unknown_protocol_rejected_eagerly(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            run_trials(star_graph(8), 0, "smoke-signals", trials=2)


class TestSampleStatistics:
    def test_summary_statistics(self):
        sample = SpreadingTimeSample(
            protocol="pp",
            graph_name="g",
            num_vertices=10,
            source=0,
            times=(1.0, 2.0, 3.0, 4.0),
        )
        assert sample.mean == 2.5
        assert sample.minimum == 1.0
        assert sample.maximum == 4.0
        assert sample.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert sample.standard_error() == pytest.approx(sample.std / 2.0)

    def test_single_observation_edge_cases(self):
        sample = SpreadingTimeSample("pp", "g", 5, 0, (3.0,))
        assert sample.std == 0.0
        assert sample.standard_error() == float("inf")

    def test_merge(self):
        a = SpreadingTimeSample("pp", "g", 5, 0, (1.0, 2.0), {0.5: (0.5, 1.0)})
        b = SpreadingTimeSample("pp", "g", 5, 1, (3.0,), {0.5: (2.0,)})
        merged = a.merged_with(b)
        assert merged.times == (1.0, 2.0, 3.0)
        assert merged.fraction_times[0.5] == (0.5, 1.0, 2.0)
        assert merged.source == -1  # sources disagreed

    def test_merge_rejects_mismatched_settings(self):
        a = SpreadingTimeSample("pp", "g", 5, 0, (1.0,))
        b = SpreadingTimeSample("pp-a", "g", 5, 0, (1.0,))
        with pytest.raises(AnalysisError):
            a.merged_with(b)

    def test_merged_classmethod_single_pass(self):
        chunks = [
            SpreadingTimeSample("pp", "g", 5, 0, (1.0, 2.0), {0.5: (0.5, 1.0)}),
            SpreadingTimeSample("pp", "g", 5, 0, (3.0,), {0.5: (2.0,)}),
            SpreadingTimeSample("pp", "g", 5, 0, (4.0, 5.0), {0.5: (3.0, 4.0)}),
        ]
        merged = SpreadingTimeSample.merged(chunks)
        assert merged.times == (1.0, 2.0, 3.0, 4.0, 5.0)
        assert merged.fraction_times[0.5] == (0.5, 1.0, 2.0, 3.0, 4.0)
        assert merged.source == 0  # all chunks agreed
        # Matches the pairwise chain exactly (the O(W^2) path it replaced).
        chained = chunks[0].merged_with(chunks[1]).merged_with(chunks[2])
        assert merged == chained

    def test_merged_classmethod_validation(self):
        with pytest.raises(AnalysisError):
            SpreadingTimeSample.merged([])
        a = SpreadingTimeSample("pp", "g", 5, 0, (1.0,))
        b = SpreadingTimeSample("pp", "g", 6, 0, (1.0,))
        with pytest.raises(AnalysisError):
            SpreadingTimeSample.merged([a, b])


class TestAdaptiveTrials:
    def test_stops_when_precise_enough(self):
        graph = complete_graph(16)
        sample = run_adaptive_trials(
            graph,
            0,
            "pp",
            initial_trials=20,
            batch_size=20,
            max_trials=200,
            relative_precision=0.2,
            seed=11,
        )
        assert 20 <= sample.num_trials <= 200
        half_width = 1.96 * sample.standard_error()
        assert half_width <= 0.2 * sample.mean or sample.num_trials == 200

    def test_respects_max_trials(self):
        graph = complete_graph(16)
        sample = run_adaptive_trials(
            graph,
            0,
            "pp-a",
            initial_trials=10,
            batch_size=10,
            max_trials=30,
            relative_precision=0.0001,
            seed=13,
        )
        assert sample.num_trials == 30

    def test_validation(self):
        graph = star_graph(8)
        with pytest.raises(AnalysisError):
            run_adaptive_trials(graph, 0, "pp", initial_trials=1)
        with pytest.raises(AnalysisError):
            run_adaptive_trials(graph, 0, "pp", batch_size=0)
        with pytest.raises(AnalysisError):
            run_adaptive_trials(graph, 0, "pp", max_trials=10, initial_trials=20)
        with pytest.raises(AnalysisError):
            run_adaptive_trials(graph, 0, "pp", relative_precision=2.0)


class TestCollectResults:
    def test_full_results_returned(self):
        graph = star_graph(12)
        results = collect_results(graph, 1, "pp", trials=5, seed=17)
        assert len(results) == 5
        for result in results:
            assert result.completed
            assert result.protocol == "pp"

    def test_validation(self):
        with pytest.raises(AnalysisError):
            collect_results(star_graph(8), 0, "pp", trials=0)
