"""Integration tests: the theorem-level statements checked through the public API.

These tests tie together the graph substrate, the protocol engines and the
analysis layer exactly the way a user of the library would, and verify the
paper's two theorems and the corollary on concrete graphs with enough trials
to make the checks statistically meaningful but still fast.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    high_probability_time,
    run_trials,
    theorem1_constant,
    theorem2_constant,
)
from repro.graphs import (
    async_favoring_gap_graph,
    barbell_graph,
    complete_graph,
    cycle_graph,
    double_star_graph,
    hypercube_graph,
    star_graph,
)

#: (graph, source) pairs spanning the structural extremes the theorems cover.
THEOREM_SUITE = [
    (star_graph(64), 1),
    (double_star_graph(24), 2),
    (cycle_graph(48), 0),
    (complete_graph(48), 0),
    (hypercube_graph(6), 0),
    (barbell_graph(20), 0),
    (async_favoring_gap_graph(96), 0),
]


class TestTheorem1:
    """T_{1/n}(pp-a) = O(T_{1/n}(pp) + log n) on every graph in the suite."""

    @pytest.mark.parametrize("graph, source", THEOREM_SUITE, ids=lambda g: getattr(g, "name", g))
    def test_constant_is_bounded(self, graph, source):
        trials = 80
        sync = run_trials(graph, source, "pp", trials=trials, seed=101)
        asynchronous = run_trials(graph, source, "pp-a", trials=trials, seed=202)
        sync_hp = high_probability_time(sync).value
        async_hp = high_probability_time(asynchronous).value
        constant = theorem1_constant(async_hp, sync_hp, graph.num_vertices)
        # Theorem 1 says this is O(1); a generous universal constant of 4
        # catches regressions without flaking on Monte Carlo noise.
        assert constant < 4.0


class TestTheorem2:
    """E[T(pp)] = O(sqrt(n) * E[T(pp-a)]) on every graph in the suite."""

    @pytest.mark.parametrize("graph, source", THEOREM_SUITE, ids=lambda g: getattr(g, "name", g))
    def test_constant_is_bounded(self, graph, source):
        trials = 60
        sync = run_trials(graph, source, "pp", trials=trials, seed=303)
        asynchronous = run_trials(graph, source, "pp-a", trials=trials, seed=404)
        constant = theorem2_constant(
            asynchronous.mean, sync.mean, graph.num_vertices
        )
        assert constant < 2.0


class TestCorollary3:
    """On regular graphs push and push-pull have comparable hp spreading times."""

    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(48), complete_graph(48), hypercube_graph(6)],
        ids=lambda g: g.name,
    )
    def test_push_within_constant_factor_of_pushpull(self, graph):
        trials = 60
        push = run_trials(graph, 0, "push", trials=trials, seed=505)
        pushpull = run_trials(graph, 0, "pp", trials=trials, seed=606)
        ratio = high_probability_time(push).value / max(high_probability_time(pushpull).value, 1.0)
        assert ratio < 6.0

    def test_star_is_the_counterexample(self):
        """On the (irregular) star the same ratio is huge — the corollary needs regularity."""
        graph = star_graph(64)
        push = run_trials(graph, 1, "push", trials=40, seed=707)
        pushpull = run_trials(graph, 1, "pp", trials=40, seed=808)
        ratio = push.mean / pushpull.mean
        assert ratio > 20.0


class TestTightnessOfTheorem1:
    """The additive log n term is necessary: the star realises it."""

    def test_star_async_minus_sync_grows_like_log_n(self):
        gaps = []
        sizes = [32, 128, 512]
        for n in sizes:
            graph = star_graph(n)
            sync = run_trials(graph, 1, "pp", trials=40, seed=n)
            asynchronous = run_trials(graph, 1, "pp-a", trials=40, seed=n + 1)
            gaps.append(asynchronous.mean - sync.mean)
        # The gap grows, and roughly like log n: quadrupling n adds ~log(4).
        assert gaps[0] < gaps[1] < gaps[2]
        assert gaps[2] - gaps[1] == pytest.approx(math.log(4), abs=1.2)


class TestGapGraphSeparation:
    """The string-of-stars graph separates the models in the async-favouring direction."""

    def test_sync_slower_than_async_and_growing(self):
        ratios = []
        for n in (128, 512):
            graph = async_favoring_gap_graph(n)
            sync = run_trials(graph, 0, "pp", trials=30, seed=n)
            asynchronous = run_trials(graph, 0, "pp-a", trials=30, seed=n + 7)
            ratios.append(sync.mean / asynchronous.mean)
        assert ratios[0] > 1.0
        assert ratios[1] > ratios[0]
