"""Experiment E2 — Theorem 2: synchrony can beat asynchrony by at most a ``sqrt(n)`` factor.

Claim (Theorem 2 / Theorem 11): ``E[T(pp-a, G, u)] = Ω(E[T(pp, G, u)] / sqrt(n))``
for every connected graph, i.e. the ratio of expected synchronous rounds to
expected asynchronous time never exceeds ``O(sqrt(n))``.

The experiment measures the ratio ``E[T(pp)] / E[T(pp-a)]`` on the standard
suite *and* on the asynchronous-favouring gap construction (where the ratio
is largest), normalises by ``sqrt(n)``, and reports

    c₂(G) = (E[T(pp)] / E[T(pp-a)]) / sqrt(n).

Theorem 2 predicts ``c₂`` bounded by a universal constant.  On the gap
construction the experiment also fits the growth exponent of the raw ratio,
which the Acan et al. example says can reach ``n^{1/3} / log n``-ish — well
below the ``sqrt(n)`` ceiling, matching the paper's remark that the bound
may be off by at most ``n^{1/6}``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.analysis.bounds import theorem2_constant
from repro.analysis.comparison import sweep_family
from repro.analysis.scaling import fit_power_law
from repro.experiments.presets import get_preset
from repro.experiments.records import ExperimentResult
from repro.randomness.rng import SeedLike

__all__ = ["run", "DEFAULT_FAMILIES"]

DEFAULT_FAMILIES: tuple[str, ...] = (
    "star",
    "cycle",
    "complete",
    "hypercube",
    "barbell",
    "erdos_renyi",
    "random_regular_3",
    "async_gap",
)


def run(
    preset: str = "quick",
    *,
    seed: SeedLike = 20160726,
    families: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Run experiment E2 and return its result table."""
    config = get_preset(preset)
    family_names = tuple(families) if families is not None else DEFAULT_FAMILIES
    size_sweep = tuple(sizes) if sizes is not None else config.sizes

    rows: list[dict[str, object]] = []
    worst_constant = 0.0
    worst_setting = ""
    gap_sizes: list[int] = []
    gap_ratios: list[float] = []

    for family_name in family_names:
        sweep = sweep_family(
            family_name,
            ["pp", "pp-a"],
            sizes=size_sweep,
            trials=config.trials,
            seed=seed,
            ratios=[("pp", "pp-a")],
        )
        for comparison in sweep.comparisons:
            n = comparison.num_vertices
            sync_mean = comparison.measurement("pp").mean.value
            async_mean = comparison.measurement("pp-a").mean.value
            ratio = comparison.ratios["pp/pp-a"].value
            constant = theorem2_constant(async_mean, sync_mean, n)
            if constant > worst_constant:
                worst_constant = constant
                worst_setting = f"{family_name}(n={n})"
            if family_name == "async_gap":
                gap_sizes.append(n)
                gap_ratios.append(ratio)
            rows.append(
                {
                    "family": family_name,
                    "n": n,
                    "E[T(pp)]": sync_mean,
                    "E[T(pp-a)]": async_mean,
                    "ratio sync/async": ratio,
                    "sqrt(n)": math.sqrt(n),
                    "c2 = ratio/sqrt(n)": constant,
                }
            )

    conclusions: dict[str, object] = {
        "max_constant_c2": worst_constant,
        "max_constant_setting": worst_setting,
        "theorem2_consistent": worst_constant < 2.0,
    }
    if len(gap_ratios) >= 2:
        fit = fit_power_law(gap_sizes, gap_ratios)
        conclusions["gap_graph_ratio_exponent"] = fit.parameters[1]
        conclusions["gap_graph_ratio_fit"] = fit.description
        conclusions["gap_exponent_below_half"] = fit.parameters[1] < 0.5 + 0.1

    notes = [
        f"preset={config.name}, trials={config.trials} per cell, sizes={list(size_sweep)}",
        "Theorem 2 predicts c2 = (E[T(pp)]/E[T(pp-a)])/sqrt(n) bounded by a universal constant",
        "The async_gap rows realise the Acan-et-al-style separation; the fitted exponent of their "
        "ratio shows how close to the sqrt(n) ceiling a concrete construction gets",
    ]
    return ExperimentResult(
        experiment_id="E2",
        title="Theorem 2: ratio of synchronous to asynchronous expected spreading time vs sqrt(n)",
        claim="E[T(pp-a, G, u)] = Omega(E[T(pp, G, u)] / sqrt(n)) for every connected graph",
        columns=[
            "family",
            "n",
            "E[T(pp)]",
            "E[T(pp-a)]",
            "ratio sync/async",
            "sqrt(n)",
            "c2 = ratio/sqrt(n)",
        ],
        rows=rows,
        conclusions=conclusions,
        notes=notes,
    )
