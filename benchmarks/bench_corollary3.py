"""Benchmark E3 — Corollary 3: push vs push-pull on regular graphs.

Regenerates the E3 table and asserts the claim's shape: on regular families
the push / push-pull high-probability-time ratio stays in a constant band,
while on the irregular star contrast it grows polynomially with ``n``.
"""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def test_corollary3_experiment(run_once, bench_preset):
    result = run_once(run_experiment, "E3", preset=bench_preset)
    assert result.conclusion("corollary3_consistent") is True
    assert result.conclusion("max_ratio_on_regular_graphs") < 6.0
    # Push-pull only beats push substantially on non-regular graphs.
    assert result.conclusion("irregular_contrast_blows_up") is True
