"""Unit tests for the Lemma 8 / Lemma 15 machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.coupling.domination import (
    dominated_sum_quantile_bound,
    geometric_domination_check,
    lemma8_theoretical_cdf,
    lemma15_negbin_bound,
    negbin_tail_quantile,
    sample_conditional_minimum,
)
from repro.errors import AnalysisError


class TestLemma8Sampler:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            sample_conditional_minimum(0, 1.0, [], 0, num_samples=10)
        with pytest.raises(AnalysisError):
            sample_conditional_minimum(2, -1.0, [0, 0], 0, num_samples=10)
        with pytest.raises(AnalysisError):
            sample_conditional_minimum(2, 1.0, [0], 0, num_samples=10)
        with pytest.raises(AnalysisError):
            sample_conditional_minimum(2, 1.0, [0, -1], 0, num_samples=10)
        with pytest.raises(AnalysisError):
            sample_conditional_minimum(2, 1.0, [0, 0], 5, num_samples=10)
        with pytest.raises(AnalysisError):
            sample_conditional_minimum(2, 1.0, [0, 0], 0, num_samples=0)

    def test_sample_metadata(self):
        sample = sample_conditional_minimum(3, 0.8, [0, 1, 0], 1, num_samples=200, seed=1)
        assert len(sample.values) == 200
        assert sample.num_variables == 3
        assert sample.rate == 0.8
        assert sample.conditioned_index == 1
        assert 0 < sample.acceptance_rate <= 1.0
        assert all(v > 0 for v in sample.values)

    def test_lemma8_distribution_matches_exponential(self):
        """The conditional minimum must be Exp(k*rate) regardless of the offsets."""
        k, rate = 5, 0.6
        offsets = [0, 2, 1, 0, 3]
        sample = sample_conditional_minimum(k, rate, offsets, 3, num_samples=3000, seed=2)
        result = scipy_stats.kstest(sample.values, "expon", args=(0, 1.0 / (k * rate)))
        assert result.pvalue > 0.01

    def test_lemma8_mean_matches(self):
        k, rate = 4, 1.0
        sample = sample_conditional_minimum(k, rate, [1, 0, 2, 1], 0, num_samples=4000, seed=3)
        assert np.mean(sample.values) == pytest.approx(1.0 / (k * rate), rel=0.1)

    def test_conditioning_on_different_indices_gives_same_law(self):
        """Lemma 8's point: J = j adds no information about the shifted minimum."""
        k, rate = 3, 1.0
        offsets = [0, 2, 1]
        samples = [
            sample_conditional_minimum(k, rate, offsets, j, num_samples=1500, seed=10 + j).values
            for j in range(k)
        ]
        for j in range(1, k):
            result = scipy_stats.ks_2samp(samples[0], samples[j])
            assert result.pvalue > 0.005

    def test_theoretical_cdf(self):
        assert lemma8_theoretical_cdf(4, 0.5, 0.0) == 0.0
        assert lemma8_theoretical_cdf(4, 0.5, 1.0) == pytest.approx(1 - math.exp(-2.0))


class TestLemma15Bounds:
    def test_negbin_bound_parameters(self):
        law = lemma15_negbin_bound(7, 1 / math.e)
        assert law.num_successes == 7
        assert law.success_probability == pytest.approx(1 - 1 / math.e)

    def test_bound_validation(self):
        with pytest.raises(AnalysisError):
            lemma15_negbin_bound(0, 0.5)
        with pytest.raises(AnalysisError):
            lemma15_negbin_bound(3, 1.5)

    def test_negbin_tail_quantile_monotone_in_tail(self):
        q_loose = negbin_tail_quantile(10, 0.6, 0.1)
        q_tight = negbin_tail_quantile(10, 0.6, 0.001)
        assert q_tight >= q_loose >= 10

    def test_negbin_tail_quantile_linear_plus_log_shape(self):
        """Lemma 9's conclusion shape: the 1-δ quantile is ~ k/p + O(log(1/δ))."""
        p = 1 - 1 / math.e
        for k in (5, 20, 80):
            quantile = negbin_tail_quantile(k, p, 1e-4)
            assert quantile <= 2 * k / p + 60

    def test_dominated_sum_quantile_bound(self):
        bound = dominated_sum_quantile_bound(10, 1 / math.e, 0.99)
        assert bound >= 10
        with pytest.raises(AnalysisError):
            dominated_sum_quantile_bound(10, 1 / math.e, 1.5)


class TestGeometricDominationCheck:
    def test_geometric_samples_respect_their_own_bound(self):
        rng = np.random.default_rng(4)
        q = 1 / math.e
        # Fixed run length keeps all runs in one comparison group, so the
        # one-sided empirical fluctuation stays at the ~1/sqrt(N) scale.
        runs = [list(rng.geometric(1 - q, size=6)) for _ in range(600)]
        violation = geometric_domination_check(runs, q)
        assert violation <= 0.1

    def test_heavier_tail_detected(self):
        rng = np.random.default_rng(5)
        # Summands with a much heavier tail than Geom(1 - 0.8) cannot hide.
        runs = [list(rng.geometric(0.05, size=5)) for _ in range(300)]
        violation = geometric_domination_check(runs, 0.2)
        assert violation > 0.2

    def test_empty_input_rejected(self):
        with pytest.raises(AnalysisError):
            geometric_domination_check([], 0.5)
