"""Quantile estimation for spreading times — in particular ``T_q`` and ``T_{1/n}``.

Section 2 of the paper defines, for ``0 < q < 1``,

.. math::

    T_q(\\alpha, G, u) = \\min\\{t : \\Pr[T(\\alpha, G, u) \\le t] \\ge 1 - q\\},

the time by which the rumor has reached every vertex with probability at
least ``1 − q``; ``T_{1/n}`` is the *high-probability rumor spreading time*
that Theorem 1 is stated in terms of.  This module estimates ``T_q`` from
Monte Carlo samples.

Two estimators are provided (the estimator choice is one of the ablations
listed in DESIGN.md):

* :func:`empirical_quantile` — the order-statistic estimator
  (the ``ceil((1 − q)·m)``-th smallest of ``m`` observations);
* :func:`tail_fitted_quantile` — fits an exponential tail to the top of the
  sample and extrapolates, which is useful when ``q`` is smaller than
  ``1/m`` and the empirical estimator would just return the maximum.

For estimating ``T_{1/n}`` with a number of trials that is comparable to (or
smaller than) ``n``, :func:`high_probability_time` picks the appropriate
strategy and reports which one it used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.montecarlo import SpreadingTimeSample
from repro.errors import AnalysisError

__all__ = [
    "QuantileEstimate",
    "empirical_quantile",
    "tail_fitted_quantile",
    "high_probability_time",
    "quantile_confidence_interval",
    "coverage_envelope",
]


@dataclass(frozen=True)
class QuantileEstimate:
    """An estimate of ``T_q`` together with how it was obtained.

    Attributes:
        value: the estimated quantile.
        level: the probability level ``1 − q`` (e.g. ``1 − 1/n``).
        method: ``"empirical"`` or ``"tail_fit"``.
        num_samples: how many observations the estimate is based on.
    """

    value: float
    level: float
    method: str
    num_samples: int


def _as_sorted_array(values: Sequence[float]) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise AnalysisError("quantile estimation needs a non-empty sample")
    if np.any(~np.isfinite(array)):
        raise AnalysisError("quantile estimation needs finite observations")
    return np.sort(array)


def empirical_quantile(values: Sequence[float], level: float) -> float:
    """Order-statistic estimate of the ``level``-quantile.

    ``level`` is the cumulative probability (``1 − q`` in the paper's
    notation); the estimator returns the smallest observation ``t`` with at
    least a ``level`` fraction of the sample ``<= t``.
    """
    if not 0.0 < level < 1.0:
        raise AnalysisError(f"quantile level must be in (0, 1), got {level}")
    ordered = _as_sorted_array(values)
    rank = math.ceil(level * ordered.size)
    rank = min(max(rank, 1), ordered.size)
    return float(ordered[rank - 1])


def tail_fitted_quantile(values: Sequence[float], level: float, *, tail_fraction: float = 0.25) -> float:
    """Quantile estimate that extrapolates an exponential fit of the upper tail.

    Spreading-time distributions have exponentially decaying upper tails on
    every family in the experiment suite (they are bounded by sums of
    geometric / exponential phase lengths), so fitting
    ``P[T > t] ≈ c · exp(-t / β)`` to the top ``tail_fraction`` of the sample
    and solving for the requested level gives a usable estimate of quantiles
    beyond the sample resolution.  Falls back to the empirical maximum if the
    tail is degenerate (e.g. all observations equal).
    """
    if not 0.0 < level < 1.0:
        raise AnalysisError(f"quantile level must be in (0, 1), got {level}")
    if not 0.0 < tail_fraction <= 1.0:
        raise AnalysisError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
    ordered = _as_sorted_array(values)
    m = ordered.size
    empirical = empirical_quantile(ordered, level)
    if level <= 1.0 - 1.0 / m:
        # The requested level is within the sample's resolution.
        return empirical
    k = max(2, int(math.ceil(tail_fraction * m)))
    tail = ordered[m - k :]
    threshold = float(tail[0])
    excesses = tail - threshold
    beta = float(np.mean(excesses))
    if beta <= 0.0:
        return float(ordered[-1])
    # P[T > threshold] ≈ k / m; solve threshold + beta * ln(k/(m*(1-level))).
    target_tail = 1.0 - level
    value = threshold + beta * math.log((k / m) / target_tail)
    return max(value, float(ordered[-1]))


def high_probability_time(
    sample: "SpreadingTimeSample | Sequence[float]",
    num_vertices: int | None = None,
    *,
    method: str = "auto",
) -> QuantileEstimate:
    """Estimate the paper's high-probability spreading time ``T_{1/n}``.

    Args:
        sample: a :class:`SpreadingTimeSample` or a raw sequence of times.
        num_vertices: the graph size ``n`` (taken from the sample when a
            :class:`SpreadingTimeSample` is passed).
        method: ``"empirical"``, ``"tail_fit"``, or ``"auto"`` (use the
            empirical order statistic when the sample is large enough to
            resolve the ``1 − 1/n`` level, otherwise the tail fit).

    Returns:
        A :class:`QuantileEstimate` at level ``1 − 1/n``.
    """
    if isinstance(sample, SpreadingTimeSample):
        values: Sequence[float] = sample.times
        n = sample.num_vertices if num_vertices is None else num_vertices
    else:
        values = sample
        if num_vertices is None:
            raise AnalysisError("num_vertices is required when passing raw times")
        n = num_vertices
    if n < 2:
        raise AnalysisError(f"num_vertices must be at least 2, got {n}")
    level = 1.0 - 1.0 / n
    m = len(values)
    if method not in ("auto", "empirical", "tail_fit"):
        raise AnalysisError(f"unknown quantile method {method!r}")
    if method == "auto":
        method = "empirical" if m >= n else "tail_fit"
    if method == "empirical":
        value = empirical_quantile(values, level)
    else:
        value = tail_fitted_quantile(values, level)
    return QuantileEstimate(value=value, level=level, method=method, num_samples=m)


def coverage_envelope(
    histories: np.ndarray,
    num_vertices: int,
    *,
    levels: Sequence[float] = (0.1, 0.5, 0.9),
) -> np.ndarray:
    """Per-time-point coverage quantiles over a ``(B, T)`` history matrix.

    ``histories`` holds informed *counts* per trial and time point (the
    compacted output of
    :func:`repro.telemetry.trace.coverage_histories`); the envelope is the
    requested quantiles of the informed *fraction* across trials at each
    time point — p10/p50/p90 by default, the telemetry layer's standard
    compaction of a batch coverage trace.

    Returns a ``(len(levels), T)`` float array.
    """
    matrix = np.asarray(histories, dtype=float)
    if matrix.ndim != 2 or matrix.size == 0:
        raise AnalysisError(
            f"coverage_envelope needs a non-empty (B, T) matrix, got shape "
            f"{matrix.shape}"
        )
    if num_vertices < 1:
        raise AnalysisError(f"num_vertices must be positive, got {num_vertices}")
    levels = tuple(levels)
    if not levels or any(not 0.0 < q < 1.0 for q in levels):
        raise AnalysisError(f"envelope levels must lie in (0, 1), got {levels!r}")
    fractions = matrix / float(num_vertices)
    return np.quantile(fractions, levels, axis=0)


def quantile_confidence_interval(
    values: Sequence[float],
    level: float,
    *,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Distribution-free confidence interval for a quantile from order statistics.

    Uses the binomial distribution of the number of observations below the
    true quantile to pick order-statistic ranks whose interval covers the
    quantile with at least the requested confidence.  Degenerates to
    ``(min, max)`` when the sample is too small to do better.
    """
    if not 0.0 < level < 1.0:
        raise AnalysisError(f"quantile level must be in (0, 1), got {level}")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    from scipy.stats import binom

    ordered = _as_sorted_array(values)
    m = ordered.size
    alpha = 1.0 - confidence
    lower_rank = int(binom.ppf(alpha / 2.0, m, level))
    upper_rank = int(binom.ppf(1.0 - alpha / 2.0, m, level)) + 1
    lower_rank = min(max(lower_rank, 1), m)
    upper_rank = min(max(upper_rank, lower_rank), m)
    return float(ordered[lower_rank - 1]), float(ordered[upper_rank - 1])
