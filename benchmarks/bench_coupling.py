"""Benchmark E8 — the upper-bound machinery (Lemmas 6, 8, 9, 10; push coupling).

Regenerates the E8 table and asserts every lemma-level check: stochastic
domination of ppx by pp, O(log n) coupling slacks, the exponential law of
the conditional minimum, and the non-positive push-coupling gap.
"""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def test_coupling_machinery_experiment(run_once, bench_preset):
    result = run_once(run_experiment, "E8", preset=bench_preset)
    assert result.conclusion("lemma6_dominance_holds_on_all_graphs") is True
    assert result.conclusion("lemma9_slack_within_log_budget") is True
    assert result.conclusion("lemma10_slack_within_log_budget") is True
    assert result.conclusion("lemma8_matches_exponential") is True
    assert result.conclusion("push_coupling_gap_nonpositive") is True
    for row in result.rows:
        assert row["Lemma9 max slack"] <= row["log-budget"]
        assert row["Lemma10 max slack"] <= row["log-budget"]
