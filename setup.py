"""Setuptools build configuration.

Kept as a plain ``setup.py`` so ``pip install -e .`` and ``python setup.py
develop`` both work on the minimal environments this repository targets.
The sibling ``pyproject.toml`` carries *tool* configuration only (ruff,
mypy, mutmut) and deliberately declares no ``[project]``/``[build-system]``
tables, so this file remains the single build authority.  The base install depends on numpy/scipy only; the one
extra, ``jit``, pulls in numba for the compiled kernel backend
(``repro.core.kernels.jit_backend``) — without it every ``backend="jit"``
request degrades gracefully to the reference numpy kernels.
"""

from setuptools import find_packages, setup

setup(
    name="repro-giakkoupis-nw16",
    version="0.6.0",
    description=(
        "Reproduction of Giakkoupis, Nazari and Woelfel (PODC 2016): "
        "randomized rumor spreading in dynamic graphs"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy", "scipy"],
    extras_require={
        # Compiled kernel tier: `pip install -e '.[jit]'` enables
        # backend="jit"/"auto" to run the numba @njit CSR kernels.
        "jit": ["numba>=0.59"],
    },
)
