"""PAR001 against the *real* kernel backends.

The acceptance check for the parity rule: the shipped pair lints clean,
and perturbing a ``jit_backend.py`` signature in any of the three guarded
dimensions (name, order, default) — or dropping a public kernel — must
produce a PAR001 finding.
"""

from __future__ import annotations

import re
import shutil
from pathlib import Path

import pytest

from repro.devtools import lint_paths

KERNELS = Path(__file__).resolve().parents[2] / "src" / "repro" / "core" / "kernels"


@pytest.fixture
def kernel_pair(tmp_path):
    """The real backend pair copied somewhere safe to perturb."""
    for name in ("numpy_backend.py", "jit_backend.py"):
        shutil.copy(KERNELS / name, tmp_path / name)
    return tmp_path


def lint_jit(pair_dir):
    return lint_paths([pair_dir / "jit_backend.py"], select=["PAR001"])


def perturb(pair_dir, pattern, replacement):
    target = pair_dir / "jit_backend.py"
    source = target.read_text(encoding="utf8")
    perturbed = re.sub(pattern, replacement, source, count=1)
    assert perturbed != source, f"perturbation {pattern!r} did not apply"
    target.write_text(perturbed, encoding="utf8")


def test_shipped_backends_agree(kernel_pair):
    assert lint_jit(kernel_pair) == []


def test_renamed_parameter_is_flagged(kernel_pair):
    perturb(kernel_pair, r"def sync_round_step\(\s*\n?\s*csr", "def sync_round_step(csr_matrix")
    found = lint_jit(kernel_pair)
    assert [d.code for d in found] == ["PAR001"]
    assert "sync_round_step" in found[0].message


def test_changed_default_is_flagged(kernel_pair):
    # The reference declares no default here; growing one in the jit half
    # is exactly the drift (names equal, defaults not) the rule names.
    perturb(
        kernel_pair,
        r"idx_dtype: type\) -> None:",
        "idx_dtype: type = int) -> None:",
    )
    found = lint_jit(kernel_pair)
    assert [d.code for d in found] == ["PAR001"]
    assert "default" in found[0].message


def test_removed_public_kernel_is_flagged(kernel_pair):
    perturb(kernel_pair, r"\ndef warmup\(", "\ndef _warmup_hidden(")
    found = lint_jit(kernel_pair)
    assert [d.code for d in found] == ["PAR001"]
    assert "`warmup`" in found[0].message
