"""Tests of the public API surface: every ``__all__`` entry must resolve.

These catch broken re-exports early (a common failure mode when modules are
reorganised) and double as a smoke test that every subpackage imports cleanly
in a fresh interpreter.
"""

from __future__ import annotations

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.graphs",
    "repro.randomness",
    "repro.core",
    "repro.coupling",
    "repro.analysis",
    "repro.experiments",
    "repro.reporting",
    "repro.scenarios",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} should define __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing attribute {name!r}"


def test_top_level_convenience_api():
    import repro

    assert callable(repro.spread)
    assert isinstance(repro.__version__, str)
    assert "pp" in repro.available_protocols()


def test_experiments_lazy_registry_attributes():
    import repro.experiments as experiments

    assert callable(experiments.run_experiment)
    assert "E1" in experiments.EXPERIMENTS
    with pytest.raises(AttributeError):
        experiments.not_a_real_attribute  # noqa: B018


def test_error_hierarchy_rooted_at_repro_error():
    from repro import errors

    for name in (
        "GraphError",
        "GraphGenerationError",
        "ProtocolError",
        "SimulationError",
        "AnalysisError",
        "ExperimentError",
        "CouplingError",
        "ScenarioError",
    ):
        exception_type = getattr(errors, name)
        assert issubclass(exception_type, errors.ReproError)


def test_version_matches_package_metadata():
    import repro

    from repro._version import __version__

    assert repro.__version__ == __version__
    parts = __version__.split(".")
    assert len(parts) >= 2 and all(part.isdigit() for part in parts[:2])
