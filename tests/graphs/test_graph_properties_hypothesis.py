"""Property-based tests for the graph substrate (hypothesis)."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    cycle_graph,
    hypercube_graph,
    star_graph,
    string_of_stars_graph,
)
from repro.graphs.base import Graph
from repro.graphs.random_graphs import erdos_renyi_graph, random_regular_graph


@st.composite
def random_graph_inputs(draw):
    """Strategy producing (n, p, seed) triples for Erdős–Rényi graphs."""
    n = draw(st.integers(min_value=2, max_value=40))
    p = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, p, seed


class TestHandshakeLemma:
    @given(random_graph_inputs())
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_is_twice_edge_count(self, inputs):
        n, p, seed = inputs
        graph = erdos_renyi_graph(n, p, seed=seed)
        assert sum(graph.degrees) == 2 * graph.num_edges

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_star_always_satisfies_handshake(self, n):
        graph = star_graph(n)
        assert sum(graph.degrees) == 2 * graph.num_edges


class TestAdjacencySymmetry:
    @given(random_graph_inputs())
    @settings(max_examples=30, deadline=None)
    def test_neighbor_relation_is_symmetric(self, inputs):
        n, p, seed = inputs
        graph = erdos_renyi_graph(n, p, seed=seed)
        for v in graph.vertices:
            for w in graph.neighbors(v):
                assert v in graph.neighbors(w)

    @given(random_graph_inputs())
    @settings(max_examples=30, deadline=None)
    def test_no_self_loops_ever(self, inputs):
        n, p, seed = inputs
        graph = erdos_renyi_graph(n, p, seed=seed)
        for v in graph.vertices:
            assert v not in graph.neighbors(v)


class TestComponentsPartitionVertices:
    @given(random_graph_inputs())
    @settings(max_examples=30, deadline=None)
    def test_components_partition(self, inputs):
        n, p, seed = inputs
        graph = erdos_renyi_graph(n, p, seed=seed)
        components = graph.connected_components()
        all_vertices = sorted(v for component in components for v in component)
        assert all_vertices == list(range(n))
        assert graph.is_connected() == (len(components) == 1)


class TestRelabelInvariance:
    @given(
        st.integers(min_value=3, max_value=30),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_relabeling_preserves_degree_multiset(self, n, rng):
        graph = cycle_graph(n)
        permutation = list(range(n))
        rng.shuffle(permutation)
        relabeled = graph.relabeled(permutation)
        assert sorted(relabeled.degrees) == sorted(graph.degrees)
        assert relabeled.num_edges == graph.num_edges


class TestRegularGraphInvariants:
    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=2, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_random_regular_graph_is_regular(self, half_n, degree):
        n = 2 * half_n
        if degree >= n:
            return
        graph = random_regular_graph(n, degree, seed=half_n * 31 + degree)
        assert graph.is_regular()
        assert graph.degree(0) == degree

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_hypercube_edge_count(self, dimension):
        graph = hypercube_graph(dimension)
        assert graph.num_edges == dimension * 2 ** (dimension - 1)
        assert graph.eccentricity(0) == dimension


class TestStringOfStarsInvariants:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_counts_and_connectivity(self, chain, bundle):
        graph = string_of_stars_graph(chain, bundle)
        assert graph.num_vertices == chain + 1 + chain * bundle
        assert graph.num_edges == 2 * chain * bundle
        assert graph.is_connected()
        # The hub chain gives diameter 2 * chain (hub -> leaf -> hub per link).
        assert graph.eccentricity(0) == 2 * chain


class TestSubgraphInvariant:
    @given(random_graph_inputs(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_subgraph_degrees_never_increase(self, inputs, data):
        n, p, seed = inputs
        graph = erdos_renyi_graph(n, p, seed=seed)
        keep_size = data.draw(st.integers(min_value=1, max_value=n))
        keep = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=keep_size,
                max_size=keep_size,
                unique=True,
            )
        )
        sub = graph.subgraph(keep)
        assert sub.num_vertices == len(set(keep))
        assert sub.num_edges <= graph.num_edges
        assert max(sub.degrees) <= max(graph.degrees)
