"""Persistence of experiment results: JSON and CSV.

The benchmark harness and the CLI can write every
:class:`~repro.experiments.records.ExperimentResult` to disk so that
EXPERIMENTS.md numbers can be traced back to a concrete artefact.  JSON
round-trips the whole record; CSV exports just the table rows (one file per
experiment) for spreadsheet-style inspection.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Union

from repro.errors import ExperimentError
from repro.experiments.records import ExperimentResult

__all__ = [
    "save_result_json",
    "load_result_json",
    "save_result_csv",
    "save_results",
]

PathLike = Union[str, Path]


def save_result_json(result: ExperimentResult, path: PathLike) -> Path:
    """Write one experiment result as JSON; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(result.to_json(), encoding="utf8")
    return target


def load_result_json(path: PathLike) -> ExperimentResult:
    """Load an experiment result previously written by :func:`save_result_json`."""
    source = Path(path)
    if not source.exists():
        raise ExperimentError(f"no such result file: {source}")
    payload = json.loads(source.read_text(encoding="utf8"))
    required = {"experiment_id", "title", "claim", "columns", "rows"}
    missing = required - payload.keys()
    if missing:
        raise ExperimentError(f"result file {source} is missing fields: {sorted(missing)}")
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        claim=payload["claim"],
        columns=list(payload["columns"]),
        rows=[dict(row) for row in payload["rows"]],
        conclusions=dict(payload.get("conclusions", {})),
        notes=list(payload.get("notes", [])),
    )


def save_result_csv(result: ExperimentResult, path: PathLike) -> Path:
    """Write the result's table rows as CSV; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="", encoding="utf8") as handle:
        writer = csv.DictWriter(handle, fieldnames=result.columns, extrasaction="ignore")
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)
    return target


def save_results(
    results: Iterable[ExperimentResult],
    directory: PathLike,
    *,
    formats: tuple[str, ...] = ("json", "csv"),
) -> list[Path]:
    """Save a collection of results under ``directory``; returns written paths."""
    written: list[Path] = []
    base = Path(directory)
    for result in results:
        stem = result.experiment_id.lower()
        if "json" in formats:
            written.append(save_result_json(result, base / f"{stem}.json"))
        if "csv" in formats:
            written.append(save_result_csv(result, base / f"{stem}.csv"))
        if not formats:
            raise ExperimentError("at least one output format is required")
    return written
