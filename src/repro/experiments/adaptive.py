"""Experiment E13 — adaptive vs oblivious adversaries at equal budget.

The adversity models of E12 are *oblivious*: loss and churn strike at
random, blind to where the rumor actually is.  This experiment measures how
much more damage an **adaptive** adversary does — one that observes the
informed set after every round/epoch and spends a hard budget on exactly
the vertices (:class:`~repro.scenarios.AdaptiveCrash`) or frontier contacts
(:class:`~repro.scenarios.AdaptiveLoss`) that matter.  For every (family ×
budget × protocol) cell it reports the blowup (perturbed mean spreading
time over the clean baseline on the same cell) alongside two oblivious
comparators at the same nominal budget:

* ``churn-random`` — :class:`~repro.scenarios.NodeChurn` with crash rate
  ``budget / n`` and no recovery.  Its *expected* number of crashes per
  epoch already equals the adaptive adversary's whole budget, so it is the
  generously-budgeted random baseline: the adaptive blowup dominating it is
  the strong form of the claim.
* ``targeted-static`` — :class:`~repro.scenarios.TargetedChurn` crashing
  the top ``budget`` vertices by degree at trial start: the same ranking
  the adaptive adversary uses, minus the ability to observe the rumor.

Every cell runs through the batched kernels with a coverage trace, so the
table carries per-time coverage envelope summaries (time to half coverage,
final mean coverage) and the full per-time envelope can be exported as a
CSV via ``curves_output``.

Expected shape: adaptive crash stalls hub-dominated topologies (star, the
gap construction) almost immediately — it waits for the hub to be informed
and kills it — while equal-budget random churn mostly hits harmless leaves,
so the adaptive blowup strictly dominates the random one there and grows
with the budget until the graph's cut vertices are exhausted.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.montecarlo import run_trials
from repro.analysis.parallel import run_trials_parallel
from repro.core.protocols import is_synchronous_protocol
from repro.experiments.presets import get_preset
from repro.experiments.records import ExperimentResult
from repro.graphs.base import Graph
from repro.graphs.gap_graphs import async_favoring_gap_graph
from repro.graphs.generators import star_graph
from repro.graphs.random_graphs import random_regular_graph
from repro.randomness.rng import SeedLike, derive_generator
from repro.scenarios.base import (
    AdaptiveCrash,
    AdaptiveLoss,
    NodeChurn,
    Scenario,
    TargetedChurn,
    as_scenario,
)
from repro.telemetry.trace import CoverageRecorder, TraceSpec

__all__ = ["run", "DEFAULT_BUDGETS", "CURVE_FIELDS"]

#: Default adversary budgets (absolute spend units, not fractions).
DEFAULT_BUDGETS: tuple[int, ...] = (1, 2, 4)

#: Column order of the optional ``curves_output`` CSV (per-time coverage
#: envelope rows, one per grid point per cell).
CURVE_FIELDS = (
    "graph", "n", "protocol", "budget", "scenario",
    "time", "p10", "p50", "p90", "mean",
)

#: Jammed contacts granted to the adaptive-loss adversary per crash-budget
#: unit, so both adaptive models sweep the same budget axis.
JAMS_PER_BUDGET_UNIT = 8


def _graphs(n: int) -> list[Graph]:
    return [
        star_graph(n),
        random_regular_graph(n, 4, seed=n),
        async_favoring_gap_graph(max(n, 16)),
    ]


def _budget_grid(n: int, budget: int) -> list[tuple[str, Scenario]]:
    """The adaptive scenarios and oblivious comparators for one budget."""
    return [
        ("adaptive-crash", AdaptiveCrash(budget=budget, k=1, by="degree")),
        ("adaptive-loss", AdaptiveLoss(p=1.0, budget=budget * JAMS_PER_BUDGET_UNIT)),
        ("churn-random", NodeChurn(crash_rate=min(1.0, budget / n), recovery_rate=0.0)),
        ("targeted-static", TargetedChurn(fraction=budget / n)),
    ]


def _coverage_summary(trace) -> tuple[float, float]:
    """(time to 50% mean coverage, final mean coverage) from one trace."""
    half_time = math.inf
    for index, fraction in enumerate(trace.mean_fraction):
        if fraction >= 0.5:
            half_time = float(trace.times[index])
            break
    final = float(trace.mean_fraction[-1]) if len(trace.mean_fraction) else 0.0
    return half_time, final


def run(
    preset: str = "quick",
    *,
    seed: SeedLike = 20160808,
    sizes: Optional[Sequence[int]] = None,
    protocols: Sequence[str] = ("pp", "pp-a"),
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    scenario=None,
    parallel: bool = False,
    num_workers: Optional[int] = None,
    curve_points: int = 120,
    curves_output: Optional[Union[str, Path]] = None,
) -> ExperimentResult:
    """Run experiment E13 and return its result table.

    Args:
        preset: experiment preset (sets graph size and trial count).
        seed: master seed (each cell derives its own stable sub-stream).
        sizes: optional size override; only the largest size is used.
        protocols: protocols to measure (defaults to both push–pull models).
        budgets: adversary budgets to sweep (absolute spend units).
        scenario: optional single adaptive scenario (or CLI spec string,
            e.g. ``"adaptive-crash:budget=3,k=2"``) measured *instead of*
            the budget sweep — the table then compares just that scenario
            against the clean baseline and the equal-budget comparators are
            omitted (this is what ``python -m repro run E13 --scenario ...``
            passes).
        parallel: shard every cell's trials across the session's persistent
            process pool (zero-copy shared transport; coverage traces ride
            the shared matrices, so the envelopes are identical to serial).
        num_workers: worker override for the parallel path.
        curve_points: coverage-grid resolution of each cell's trace.
        curves_output: optional CSV path receiving the full per-time
            coverage envelope rows (columns :data:`CURVE_FIELDS`).
    """
    config = get_preset(preset)
    size_sweep = tuple(sizes) if sizes is not None else config.sizes
    n = max(size_sweep)

    override = as_scenario(scenario)
    rows: list[dict[str, object]] = []
    curve_rows: list[dict[str, object]] = []
    blowups: dict[tuple[str, str, int], dict[str, float]] = {}
    coverages: dict[tuple[str, str, int], dict[str, float]] = {}

    for graph in _graphs(n):
        for protocol in protocols:
            # Crash adversaries stall spreading forever; a bounded horizon
            # with partial results keeps stalled cells cheap while leaving
            # unperturbed and loss-only cells far from the cap.
            options: dict[str, object] = {"on_budget_exhausted": "partial"}
            if is_synchronous_protocol(protocol):
                options["max_rounds"] = 400
            else:
                options["max_time"] = 48.0
            baseline_mean: Optional[float] = None
            if override is not None:
                grid: list[tuple[int, str, Optional[Scenario]]] = [
                    (0, "baseline", None),
                    (0, override.spec(), override),
                ]
            else:
                grid = [(0, "baseline", None)]
                for budget in budgets:
                    grid.extend(
                        (int(budget), label, cell_scenario)
                        for label, cell_scenario in _budget_grid(
                            graph.num_vertices, int(budget)
                        )
                    )
            for budget, label, cell_scenario in grid:
                recorder = CoverageRecorder(TraceSpec(grid_points=curve_points))
                cell_kwargs = dict(
                    trials=config.trials,
                    seed=derive_generator(
                        seed, "adaptive", graph.name, protocol, budget, label
                    ),
                    # The coverage envelopes are specified to come from the
                    # vectorised (trials, n) informing-time matrices, so the
                    # batched kernels are forced rather than "auto".
                    batch=True,
                    scenario=cell_scenario,
                    engine_options=options,
                    trace=recorder,
                )
                if parallel:
                    sample = run_trials_parallel(
                        graph, 0, protocol,
                        num_workers=num_workers, parallel="shared", **cell_kwargs,
                    )
                else:
                    sample = run_trials(graph, 0, protocol, **cell_kwargs)
                mean = sample.mean
                if label == "baseline":
                    baseline_mean = mean
                blowup = mean / baseline_mean if baseline_mean else float("nan")
                blowups.setdefault((graph.name, protocol, budget), {})[label] = blowup
                trace = recorder.trace(protocol=protocol, graph_name=graph.name)
                half_time, final_coverage = _coverage_summary(trace)
                coverages.setdefault((graph.name, protocol, budget), {})[label] = (
                    final_coverage
                )
                rows.append(
                    {
                        "graph": graph.name,
                        "protocol": protocol,
                        "budget": budget,
                        "scenario": label,
                        "mean T": mean,
                        "blowup": blowup,
                        "t@50%": half_time,
                        "coverage": final_coverage,
                    }
                )
                for point in trace.envelope_rows():
                    curve_rows.append(
                        {
                            "graph": graph.name,
                            "n": graph.num_vertices,
                            "protocol": protocol,
                            "budget": budget,
                            "scenario": label,
                            **point,
                        }
                    )

    conclusions: dict[str, object] = {}
    adaptive_blowups = [
        cell["adaptive-crash"] for cell in blowups.values() if "adaptive-crash" in cell
    ]
    if adaptive_blowups:
        finite = [value for value in adaptive_blowups if math.isfinite(value)]
        conclusions["max_adaptive_blowup"] = max(finite) if finite else math.inf
        conclusions["stalled_adaptive_cells"] = sum(
            1 for value in adaptive_blowups if math.isinf(value)
        )
        # The headline claim, on the topologies where adaptivity matters:
        # at equal budget, observing the informed set never helps the rumor.
        # Stated on final coverage — always finite, unlike stalled means.
        hub_cells = [
            cell
            for (graph_name, _protocol, _budget), cell in coverages.items()
            if "adaptive-crash" in cell and "churn-random" in cell
            and ("star" in graph_name or "gap" in graph_name)
        ]
        conclusions["adaptive_dominates_random"] = all(
            cell["adaptive-crash"] <= cell["churn-random"] + 0.05
            for cell in hub_cells
        )
        budget_series: dict[tuple[str, str], list[tuple[int, float]]] = {}
        for (graph_name, protocol, budget), cell in coverages.items():
            if "adaptive-crash" in cell:
                budget_series.setdefault((graph_name, protocol), []).append(
                    (budget, cell["adaptive-crash"])
                )
        conclusions["crash_severity_monotone_in_budget"] = all(
            all(c2 <= c1 + 0.05 for (_, c1), (_, c2) in zip(series, series[1:]))
            for series in (sorted(points) for points in budget_series.values())
        )

    if curves_output is not None:
        path = Path(curves_output)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(CURVE_FIELDS))
            writer.writeheader()
            writer.writerows(curve_rows)

    notes = [
        f"preset={config.name}, trials={config.trials} per cell, n={n}, source = vertex 0",
        "blowup = mean perturbed spreading time / mean clean spreading time on the same cell",
        "churn-random's EXPECTED crashes per epoch already equal the whole adaptive budget, "
        "so adaptive >= random is the strong form of the dominance claim",
        f"adaptive-loss gets {JAMS_PER_BUDGET_UNIT} jammed contacts (p=1) per budget unit",
        "t@50% / coverage come from each cell's batched coverage trace "
        f"({curve_points}-point grid); full envelopes via curves_output",
    ]
    if override is not None:
        notes.append(f"scenario override: {override.spec()}")
    return ExperimentResult(
        experiment_id="E13",
        title="Adaptive adversaries: blowup vs oblivious baselines at equal budget",
        claim="An informed-set-observing adversary amplifies spreading time beyond "
        "any equal-budget oblivious adversary, increasingly with budget",
        columns=[
            "graph", "protocol", "budget", "scenario",
            "mean T", "blowup", "t@50%", "coverage",
        ],
        rows=rows,
        conclusions=conclusions,
        notes=notes,
    )
