"""Runtime metrics: registry semantics, engine counters, worker merging.

The worker-merge test compares only *chunking-invariant* counters —
``engine.rounds``, ``engine.clock_ticks``, ``engine.messages_attempted``,
``engine.messages_delivered``, and ``analysis.trials`` are identical
however the trials are split across batches or workers.  Counters like
``engine.drain_returns`` and ``engine.kernel_invocations`` intentionally
are not (they count kernel entries, which scale with the number of
chunks), so they stay out of the comparison.
"""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import run_trials
from repro.analysis.parallel import chunk_plan, run_trials_parallel
from repro.core.protocols import spread
from repro.graphs import cycle_graph
from repro.telemetry.metrics import (
    MetricsRegistry,
    collecting_metrics,
    current_metrics,
)

INVARIANT_COUNTERS = (
    "engine.rounds",
    "engine.clock_ticks",
    "engine.messages_attempted",
    "engine.messages_delivered",
    "analysis.trials",
)


class TestRegistry:
    def test_off_by_default(self):
        assert current_metrics() is None

    def test_collecting_scopes_the_registry(self):
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            assert current_metrics() is registry
            current_metrics().count("a", 2)
            current_metrics().count("a")
        assert current_metrics() is None
        assert registry.counters["a"] == 3

    def test_merge_adds_counters_and_timers(self):
        first = MetricsRegistry()
        first.count("x", 5)
        first.add_time("t", 1.0)
        first.gauge("g", "old")
        second = MetricsRegistry()
        second.count("x", 7)
        second.add_time("t", 0.5)
        second.gauge("g", "new")
        first.merge(second.snapshot())
        snapshot = first.snapshot()
        assert snapshot["counters"]["x"] == 12
        assert snapshot["timers"]["t"]["seconds"] == pytest.approx(1.5)
        assert snapshot["timers"]["t"]["count"] == 2
        assert snapshot["gauges"]["g"] == "new"

    def test_timer_context(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        assert registry.snapshot()["timers"]["t"]["count"] == 1


class TestEngineCounters:
    def test_serial_spread_records(self, small_cycle):
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            result = spread(small_cycle, 0, protocol="pp", seed=3)
        counters = registry.snapshot()["counters"]
        assert counters["engine.rounds"] == result.rounds
        assert counters["engine.messages_delivered"] == (
            result.push_infections + result.pull_infections
        )

    def test_batched_run_records(self, small_cycle):
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            run_trials(small_cycle, 0, "pp", trials=4, seed=3, batch=True)
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["engine.rounds"] > 0
        assert counters["engine.messages_attempted"] > 0
        assert counters["engine.kernel_invocations"] == 1
        assert counters["analysis.trials"] == 4
        assert "analysis.batch_seconds" in snapshot["timers"]
        assert snapshot["gauges"]["engine.backend"] in ("numpy", "jit")

    def test_async_clock_ticks(self, small_cycle):
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            run_trials(small_cycle, 0, "pp-a", trials=4, seed=3, batch=True)
        counters = registry.snapshot()["counters"]
        assert counters["engine.clock_ticks"] > 0
        # One attempted exchange per clock tick in the global async model.
        assert counters["engine.messages_attempted"] == counters["engine.clock_ticks"]
        assert 0 < counters["engine.messages_delivered"] <= counters["engine.clock_ticks"]

    def test_batch_and_serial_agree_on_invariants(self, small_cycle):
        by_path = {}
        for batch in (True, False):
            registry = MetricsRegistry()
            with collecting_metrics(registry):
                run_trials(small_cycle, 0, "pp", trials=5, seed=11, batch=batch)
            by_path[batch] = registry.snapshot()["counters"]
        for key in ("engine.rounds", "engine.messages_attempted", "analysis.trials"):
            assert by_path[True][key] == by_path[False][key], key

    def test_metrics_never_change_the_sample(self, small_cycle):
        plain = run_trials(small_cycle, 0, "pp-a", trials=4, seed=9, batch=True)
        with collecting_metrics(MetricsRegistry()):
            measured = run_trials(small_cycle, 0, "pp-a", trials=4, seed=9, batch=True)
        assert plain.times == measured.times


class TestWorkerMerge:
    @pytest.mark.parametrize("protocol", ["pp", "pp-a"])
    def test_worker_merged_equals_single_process(self, protocol):
        graph = cycle_graph(24)
        trials, workers, seed = 12, 3, 21

        merged = MetricsRegistry()
        with collecting_metrics(merged):
            run_trials_parallel(
                graph, 0, protocol, trials=trials, seed=seed, num_workers=workers
            )

        _, plan = chunk_plan(trials, workers, seed)
        local = MetricsRegistry()
        with collecting_metrics(local):
            for size, chunk_seed in plan:
                run_trials(graph, 0, protocol, trials=size, seed=chunk_seed)

        merged_counters = merged.snapshot()["counters"]
        local_counters = local.snapshot()["counters"]
        for key in INVARIANT_COUNTERS:
            assert merged_counters.get(key) == local_counters.get(key), key

    def test_parallel_bookkeeping(self):
        graph = cycle_graph(24)
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            run_trials_parallel(graph, 0, "pp", trials=12, seed=2, num_workers=3)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["parallel.chunks"] == 3
        assert snapshot["timers"]["parallel.chunk_seconds"]["count"] == 3
        # The shared transport's result matrices register as shm segments.
        assert snapshot["counters"]["shm.segments"] >= 1
        assert snapshot["counters"]["shm.segment_bytes"] > 0
        # An undisturbed sweep records none of the fault-recovery counters.
        for name in (
            "parallel.chunk_retries",
            "parallel.chunk_timeouts",
            "parallel.serial_fallbacks",
        ):
            assert name not in snapshot["counters"]


class TestAdversaryBudgetCounter:
    """``scenario.adversary_budget_spent`` is chunking-invariant: budgets
    are per trial, so serial, batched, and worker-merged parallel runs must
    report the same total spend for the same seed and trial split."""

    def _kwargs(self):
        from repro.scenarios import AdaptiveCrash

        return dict(
            trials=8,
            seed=31,
            scenario=AdaptiveCrash(budget=2),
            engine_options={"max_rounds": 60, "on_budget_exhausted": "partial"},
        )

    def test_batch_and_serial_agree(self):
        graph = cycle_graph(24)
        spent = {}
        for batch in (True, False):
            registry = MetricsRegistry()
            with collecting_metrics(registry):
                run_trials(graph, 0, "pp", batch=batch, **self._kwargs())
            spent[batch] = registry.snapshot()["counters"][
                "scenario.adversary_budget_spent"
            ]
        assert spent[True] == spent[False] > 0

    def test_worker_merged_equals_single_process(self):
        graph = cycle_graph(24)
        kwargs = self._kwargs()
        workers = 3

        merged = MetricsRegistry()
        with collecting_metrics(merged):
            run_trials_parallel(graph, 0, "pp", num_workers=workers, **kwargs)

        _, plan = chunk_plan(kwargs["trials"], workers, kwargs["seed"])
        local = MetricsRegistry()
        with collecting_metrics(local):
            for size, chunk_seed in plan:
                run_trials(
                    graph, 0, "pp", trials=size, seed=chunk_seed,
                    scenario=kwargs["scenario"],
                    engine_options=kwargs["engine_options"],
                )

        key = "scenario.adversary_budget_spent"
        assert merged.snapshot()["counters"][key] == (
            local.snapshot()["counters"][key]
        )
        assert merged.snapshot()["counters"][key] > 0
