"""Unit tests for stochastic-dominance utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.randomness.dominance import (
    dominates_empirically,
    dominates_with_confidence,
    empirical_dominance_violation,
    empirical_survival,
    erlang_dominated_by_negbin_violations,
)


class TestEmpiricalSurvival:
    def test_values(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert empirical_survival(sample, 2.5) == 0.5
        assert empirical_survival(sample, 0.0) == 1.0
        assert empirical_survival(sample, 10.0) == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_survival([], 1.0)


class TestDominanceViolation:
    def test_clear_dominance_has_zero_violation(self):
        small = [1.0, 2.0, 3.0]
        large = [10.0, 20.0, 30.0]
        assert empirical_dominance_violation(small, large) == 0.0

    def test_reversed_order_has_large_violation(self):
        small = [1.0, 2.0, 3.0]
        large = [10.0, 20.0, 30.0]
        assert empirical_dominance_violation(large, small) == pytest.approx(1.0)

    def test_identical_samples(self):
        sample = [1.0, 2.0, 3.0]
        assert empirical_dominance_violation(sample, sample) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_dominance_violation([], [1.0])


class TestDominanceReports:
    def test_true_dominance_detected_on_samples(self):
        rng = np.random.default_rng(1)
        x = rng.exponential(1.0, 800)
        y = rng.exponential(1.0, 800) + 0.5  # strictly dominates
        report = dominates_empirically(x, y)
        assert report.holds
        # Independent finite samples can show a sliver of empirical violation
        # even under true dominance; it must be far below the tolerance.
        assert report.max_violation < 0.25 * report.tolerance
        assert report.sample_sizes == (800, 800)

    def test_equal_distributions_not_flagged(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0.0, 1.0, 500)
        y = rng.normal(0.0, 1.0, 500)
        assert dominates_empirically(x, y).holds
        assert dominates_with_confidence(x, y)

    def test_gross_violation_flagged(self):
        rng = np.random.default_rng(3)
        x = rng.normal(5.0, 0.5, 500)
        y = rng.normal(0.0, 0.5, 500)
        assert not dominates_empirically(x, y).holds
        assert not dominates_with_confidence(x, y)

    def test_custom_tolerance(self):
        report = dominates_empirically([1.0, 2.0], [0.5, 3.0], tolerance=0.9)
        assert report.tolerance == 0.9
        assert report.holds

    def test_invalid_significance(self):
        with pytest.raises(AnalysisError):
            dominates_with_confidence([1.0], [2.0], significance=1.5)


class TestErlangNegbinDomination:
    @pytest.mark.parametrize("shape, rate", [(1, 0.5), (3, 1.0), (5, 0.3)])
    def test_no_violation_for_paper_identity(self, shape, rate):
        violation = erlang_dominated_by_negbin_violations(shape, rate)
        assert violation <= 1e-9
