"""Batched simulation kernels: run ``B`` Monte Carlo trials as one 2-D job.

Every quantity the paper reasons about — the expectation of the spreading
time ``T(alg, G, u)`` (Theorem 2) and its ``1 - 1/n`` quantile (Theorem 1) —
is a property of a *distribution*, so the real workload is thousands of
independent trials per (protocol, graph, source) cell.  Running those trials
one :func:`~repro.core.sync_engine.run_synchronous` call at a time pays the
full Python-level per-round overhead and the per-vertex
:class:`~repro.core.result.SpreadingResult` materialization once per trial.

The kernels in this module instead simulate ``B`` trials *simultaneously* as
``(B, n)`` NumPy arrays:

* :func:`run_synchronous_batch` is a 2-D generalization of the synchronous
  engine — one vectorised neighbor-sampling call per round covers every live
  trial, and per-trial completion masks retire finished trials from the
  working set (they stop consuming randomness, exactly like a serial run
  that returned).
* :func:`run_asynchronous_batch` is a batched tick loop for the ``"global"``
  view of the asynchronous model: per-trial exponential time accumulators
  advance all live trials by one Poisson tick per iteration, with the rumor
  exchange vectorised across trials.
* :func:`run_clock_view_batch` serves the ``"node_clocks"`` and
  ``"edge_clocks"`` views: the serial priority queue becomes a
  ``(B, #clocks)`` next-tick matrix whose per-row ``argmin`` is the next
  event (identical to the heap pop — continuous tick times tie with
  probability zero), so batched next-event simulation stays exact.
* :func:`run_auxiliary_batch` batches the analysis-only processes
  ``ppx``/``ppy`` of Definitions 5 and 7: informed-neighbor counts are a
  ``(B, n)`` integer matrix and the per-vertex pull probabilities come from
  the shared vectorised
  :func:`~repro.core.aux_processes.pull_probabilities`.

**Exact serial equivalence.**  Each trial owns its own
:class:`numpy.random.Generator` and the kernels consume randomness from it
in *exactly* the order the serial engines do (``rng.random(n)`` per
synchronous round while live; ``exponential``/``integers``/``random`` chunks
of the same sizes for the asynchronous global view; per-tick scalar draws
for the clock-queue views; push/pull uniform blocks plus parent draws for
``ppx``/``ppy``).  Consequently a batched trial with generator ``g``
produces bit-for-bit the same informing times as a serial run seeded with
``g`` — the batch dimension is a pure throughput optimization, testable
trial-for-trial with spawned seeds (the shared harness in
``tests/helpers/equivalence.py`` pins exactly this contract for every
kernel).

**Adversity scenarios.**  Every kernel accepts the ``scenario=`` argument
of :mod:`repro.scenarios` and implements the perturbations as vectorised
``(B, n)`` masks, consuming per-trial scenario randomness in the same
documented order as the serial engines (resample → churn → burst →
contacts → loss; ``Delay`` rates once at trial start), so fixed-seed
serial/batch agreement holds under scenarios too.  The synchronous kernel
covers loss (independent or bursty), churn (random, targeted, or adaptive),
adaptive jamming, and
dynamic graphs (one concatenated CSR rebuilt for all trials at each shared
round boundary); the asynchronous kernels — the ``"global"`` tick loop and
both clock-queue views — cover all of those plus ``Delay``, with dynamic
graphs carried as a *per-trial padded* stacked CSR (:class:`_TrialGraphs`)
whose rows are replaced independently at each trial's own period boundary.
The single rejected combination is a dynamic graph under the
``"edge_clocks"`` view, where the serial engine refuses too (resampling
would change the per-pair clock set itself) — see :func:`is_batchable`.

**Pooled RNG mode.**  Passing ``pooled_rng=`` replaces the per-trial
generators with one shared generator drawing whole ``(B, n)`` matrices at
once.  This halves the Python-level draw overhead for small ``n`` but gives
up serial equivalence: pooled samples agree with per-trial samples only *in
distribution* (checked by a KS test in the suite).  For the clock-queue
views the pooled mode goes further: freed from the serial draw order, the
kernel pre-draws the randomness of thousands of future ticks as
``(B, chunk)`` blocks and drops the next-tick table entirely (both views
are the same superposed Poisson process in distribution — see
:func:`_run_clock_view_pooled`), which removes the dominant per-tick
argmin/draw overhead.

**Kernel backends.**  The hot loops themselves — the synchronous round
step, the flattened asynchronous tick loop, and the pooled clock-view
chunk consumer — live in :mod:`repro.core.kernels` with interchangeable
``"numpy"`` and numba-compiled ``"jit"`` implementations, selected per
call with the ``backend=`` engine option (default ``"auto"``); see the
package docstring for the per-kernel equivalence guarantees.

The output is a times-only :class:`~repro.core.result.BatchTimes` record:
batched runs never build parents, infection kinds, or traces.  Callers that
need those (coupling experiments, trace debugging) use the serial engines.
"""

from __future__ import annotations

from types import ModuleType
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.async_engine import ASYNC_MODES, ASYNC_VIEWS, default_max_steps
from repro.core.aux_processes import AUX_VARIANTS, pull_probabilities
from repro.core.flatgraph import FlatAdjacency, flat_adjacency
from repro.core.kernels import AsyncState, resolve_backend
from repro.core.result import BatchTimes
from repro.core.sync_engine import SYNC_MODES, default_max_rounds
from repro.errors import ProtocolError, ScenarioError, SimulationError
from repro.graphs.base import Graph
from repro.randomness.rng import SeedLike, spawn_generators
from repro.scenarios.base import DynamicGraph, Scenario, ScenarioLike, as_scenario
from repro.telemetry.metrics import MetricsRegistry, current_metrics

__all__ = [
    "run_batch",
    "run_synchronous_batch",
    "run_asynchronous_batch",
    "run_auxiliary_batch",
    "run_clock_view_batch",
    "is_batchable",
    "SYNC_BATCH_PROTOCOLS",
    "ASYNC_BATCH_PROTOCOLS",
    "AUX_BATCH_PROTOCOLS",
    "CLOCK_VIEWS",
]

#: Canonical protocol name -> synchronous engine mode.
SYNC_BATCH_PROTOCOLS = {"pp": "push-pull", "push": "push", "pull": "pull"}

#: Canonical protocol name -> asynchronous engine mode (all three views).
ASYNC_BATCH_PROTOCOLS = {"pp-a": "push-pull", "push-a": "push", "pull-a": "pull"}

#: Auxiliary processes with a batched kernel (protocol name == variant).
AUX_BATCH_PROTOCOLS = ("ppx", "ppy")

#: The clock-queue asynchronous views served by :func:`run_clock_view_batch`
#: (the ``"global"`` view has its own kernel, :func:`run_asynchronous_batch`).
CLOCK_VIEWS = ("node_clocks", "edge_clocks")

_SYNC_MODE_NAMES = {"push": "push", "pull": "pull", "push-pull": "pp"}
_ASYNC_MODE_NAMES = {"push": "push-a", "pull": "pull-a", "push-pull": "pp-a"}

#: Engine options each batched kernel understands (beyond ``record_times``).
_SYNC_OPTIONS = frozenset({"max_rounds", "on_budget_exhausted", "backend"})
_ASYNC_OPTIONS = frozenset({"max_steps", "max_time", "view", "on_budget_exhausted", "backend"})
_AUX_OPTIONS = frozenset({"max_rounds", "on_budget_exhausted", "backend"})

#: Chunk size of the serial asynchronous global-view engine; the batched
#: kernel must refill per-trial randomness buffers in chunks of exactly this
#: size to reproduce the serial draw order.
_ASYNC_CHUNK = 4096

#: Default number of future ticks whose randomness the pooled clock-view
#: fast path draws ahead of time as one ``(B, chunk)`` block per kind.
_POOLED_CLOCK_CHUNK = 4096


def is_batchable(
    protocol: str,
    engine_options: Optional[dict] = None,
    scenario: ScenarioLike = None,
) -> bool:
    """Whether ``protocol`` (with these options and scenario) has a batched kernel.

    Batched kernels cover the six realistic protocols (synchronous and
    asynchronous push / pull / push–pull under all three asynchronous
    views), the auxiliary processes ``ppx``/``ppy``, and the times-only
    options; anything needing parents or traces falls back to the serial
    engines.  Every runtime scenario — the adaptive adversaries
    (:class:`~repro.scenarios.AdaptiveCrash`,
    :class:`~repro.scenarios.AdaptiveLoss`) included — batches except where
    the serial engine
    itself rejects the combination (so the fallback path raises the
    descriptive error): a :class:`~repro.scenarios.Delay` on a synchronous
    protocol, a :class:`~repro.scenarios.DynamicGraph` under the
    ``edge_clocks`` view, and any runtime scenario on an auxiliary process.
    """
    options = dict(engine_options or {})
    if options.pop("record_trace", False):
        return False
    scenario = as_scenario(scenario)
    if protocol in SYNC_BATCH_PROTOCOLS:
        if scenario is not None and scenario.delay is not None:
            return False
        return set(options) <= _SYNC_OPTIONS
    if protocol in AUX_BATCH_PROTOCOLS:
        if scenario is not None and scenario.runtime_active():
            return False
        return set(options) <= _AUX_OPTIONS
    if protocol in ASYNC_BATCH_PROTOCOLS:
        view = options.get("view", "global")
        if view not in ASYNC_VIEWS:
            return False
        if (
            view == "edge_clocks"
            and scenario is not None
            and scenario.dynamic is not None
        ):
            return False
        return set(options) <= _ASYNC_OPTIONS
    return False


def _prepare(
    graph: Graph,
    sources: Union[int, Sequence[int], np.ndarray],
    mode: str,
    valid_modes: tuple[str, ...],
    rngs: Optional[Sequence[np.random.Generator]],
    trials: Optional[int],
    seed: SeedLike,
    on_budget_exhausted: str,
    pooled_rng: Optional[np.random.Generator] = None,
) -> tuple[np.ndarray, Optional[list[np.random.Generator]]]:
    """Validate inputs and normalise (sources, rngs) to per-trial sequences.

    In pooled mode (``pooled_rng`` given) no per-trial generators exist and
    the second return value is ``None``.
    """
    if mode not in valid_modes:
        raise ProtocolError(f"unknown mode {mode!r}; expected one of {valid_modes}")
    if on_budget_exhausted not in ("error", "partial"):
        raise ProtocolError(
            f"on_budget_exhausted must be 'error' or 'partial', got {on_budget_exhausted!r}"
        )
    if pooled_rng is not None and rngs is not None:
        raise ProtocolError("pass either per-trial rngs or a pooled_rng, not both")
    if np.ndim(sources) == 0:
        batch = len(rngs) if rngs is not None else trials
        if batch is None:
            raise ProtocolError(
                "with a scalar source, pass per-trial rngs, a pooled_rng with an "
                "explicit trials count, or an explicit trials count"
            )
        source_array = np.full(int(batch), int(sources), dtype=np.int64)
    else:
        source_array = np.asarray(sources, dtype=np.int64)
    if source_array.size < 1:
        raise ProtocolError("a batch needs at least one trial")
    if pooled_rng is not None:
        generators = None
    elif rngs is None:
        generators = spawn_generators(source_array.size, seed)
    else:
        generators = list(rngs)
    if generators is not None and len(generators) != source_array.size:
        raise ProtocolError(
            f"got {source_array.size} sources but {len(generators)} generators"
        )
    n = graph.num_vertices
    if source_array.min() < 0 or source_array.max() >= n:
        bad = source_array[(source_array < 0) | (source_array >= n)][0]
        raise ProtocolError(
            f"source {int(bad)} is not a vertex of {graph.name} (n={n})"
        )
    if n > 1 and not graph.is_connected():
        raise ProtocolError(
            f"{graph.name} is not connected; the rumor can never reach every vertex"
        )
    return source_array, generators


def _trivial_batch(
    protocol_name: str,
    graph: Graph,
    sources: np.ndarray,
    record_times: bool,
    synchronous: bool,
) -> BatchTimes:
    """The n == 1 graph: every trial completes instantly."""
    batch = sources.size
    counters = np.zeros(batch, dtype=np.int64)
    return BatchTimes(
        protocol=protocol_name,
        graph_name=graph.name,
        num_vertices=1,
        sources=sources,
        completed=np.ones(batch, dtype=bool),
        completion_time=np.zeros(batch, dtype=float),
        informed_time=np.zeros((batch, 1), dtype=float) if record_times else None,
        rounds=counters if synchronous else None,
        steps=None if synchronous else counters,
    )


def _raise_incomplete(
    protocol_name: str,
    graph: Graph,
    num_informed: np.ndarray,
    completed: np.ndarray,
    budget_description: str,
) -> None:
    incomplete = np.flatnonzero(~completed)
    worst = int(num_informed[incomplete].min())
    raise SimulationError(
        f"{protocol_name} on {graph.name} left {incomplete.size} of "
        f"{completed.size} batched trials incomplete within {budget_description} "
        f"(worst trial informed {worst}/{graph.num_vertices} vertices)"
    )


class _TrialGraphs:
    """Per-trial dynamic graphs as one padded ``(B, ·)`` stacked CSR.

    The asynchronous kernels resample graphs at *per-trial* simulated-time
    boundaries, so — unlike the synchronous kernel, whose rounds are global
    and can rebuild one concatenated CSR for every trial at once — each
    trial's CSR row must be replaceable independently.  Rows are padded to
    a shared capacity (the widest neighbor array seen so far); a resample
    that outgrows it grows the pad for all rows.

    The arrays are kept flat — ``(B * n,)`` degree/start tables and a
    raveled ``(B * width,)`` neighbor array — so the per-tick
    :meth:`callees` gather is three 1-D ``np.take`` calls, the same memory
    traffic as the static-graph fast path, instead of 2-D fancy indexing.
    """

    __slots__ = ("graphs", "num_vertices", "width", "degrees", "rel_start", "indices")

    def __init__(self, graph: Graph, batch: int) -> None:
        flat = flat_adjacency(graph)
        self.graphs: list[Graph] = [graph] * batch
        self.num_vertices = flat.num_vertices
        self.width = flat.indices.size
        self.degrees = np.tile(flat.degrees, batch)
        self.rel_start = np.tile(flat.indptr[:-1], batch)
        self.indices = np.tile(flat.indices, batch)

    def resample(
        self, row: int, dynamic: "DynamicGraph", rng: np.random.Generator
    ) -> None:
        """Replace one trial's graph (and CSR row) with a fresh sample."""
        new_graph = dynamic.resample(self.graphs[row], rng)
        self.graphs[row] = new_graph
        # The identity-keyed cache matters when the resampler reuses graph
        # objects (pool-based resamplers): the CSR rebuild collapses to a
        # lookup plus a row memcpy.
        flat = flat_adjacency(new_graph)
        needed = flat.indices.size
        if needed > self.width:
            batch = len(self.graphs)
            grown = np.zeros(batch * needed, dtype=self.indices.dtype)
            view_old = self.indices.reshape(batch, self.width)
            grown.reshape(batch, needed)[:, : self.width] = view_old
            self.indices = grown
            self.width = needed
        n = self.num_vertices
        self.degrees[row * n : (row + 1) * n] = flat.degrees
        self.rel_start[row * n : (row + 1) * n] = flat.indptr[:-1]
        self.indices[row * self.width : row * self.width + needed] = flat.indices

    def callees(
        self, rows: np.ndarray, callers: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """One uniform random neighbor per (trial row, caller) pair."""
        return self.callees_at(
            rows * self.num_vertices + callers, rows * self.width, uniforms
        )

    def callees_at(
        self, pos: np.ndarray, row_offsets: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """:meth:`callees` with the flat (row, caller) positions and per-row
        neighbor-array offsets precomputed (hot-loop callers cache them)."""
        deg = self.degrees.take(pos, mode="clip")
        offsets = (uniforms * deg).astype(np.int64)
        np.minimum(offsets, deg - 1, out=offsets)
        offsets += self.rel_start.take(pos, mode="clip")
        offsets += row_offsets
        return self.indices.take(offsets, mode="clip")


class _ScenarioParts:
    """The per-category scenario components a batched kernel reads.

    One unpack shared by the kernels so the ``lossy`` /
    ``churn_updates`` / epoch bookkeeping cannot drift between them.
    """

    __slots__ = (
        "loss_prob", "burst", "churn", "dynamic", "delay", "lossy",
        "churn_updates", "adaptive_loss", "adaptive_churn", "crash_order",
        "crash_budget", "jam_budget", "initial_budget", "retired_budget",
    )

    def __init__(self, scenario: Optional[Scenario]) -> None:
        self.loss_prob = scenario.loss_prob if scenario is not None else 0.0
        self.burst = scenario.burst if scenario is not None else None
        self.churn = scenario.churn if scenario is not None else None
        self.dynamic = scenario.dynamic if scenario is not None else None
        self.delay = scenario.delay if scenario is not None else None
        self.adaptive_loss = scenario.adaptive_loss if scenario is not None else None
        self.lossy = (
            self.loss_prob > 0.0
            or self.burst is not None
            or self.adaptive_loss is not None
        )
        self.churn_updates = self.churn is not None and self.churn.epoch_draws
        self.adaptive_churn = self.churn is not None and self.churn.adaptive
        # Per-trial adversary budgets, filled in by init_adaptive once the
        # batch size is known.  Kernels that compact their live set must
        # compact these too (compact_budgets); kernels that mask absolute
        # rows index them directly.
        self.crash_order = None
        self.crash_budget = None
        self.jam_budget = None
        self.initial_budget = 0
        self.retired_budget = 0

    @property
    def needs_epochs(self) -> bool:
        """Whether unit-time epoch boundaries carry any state update."""
        return self.churn_updates or self.adaptive_churn or self.burst is not None

    @property
    def has_adaptive(self) -> bool:
        """Whether an adaptive adversary (crash or jam) is present."""
        return self.adaptive_churn or self.adaptive_loss is not None

    def init_adaptive(self, graph: Graph, batch: int) -> None:
        """Allocate the per-trial adversary budgets (and the crash ranking)."""
        if self.adaptive_churn:
            self.crash_order = self.churn.ranking(graph)
            self.crash_budget = np.full(batch, self.churn.budget, dtype=np.int64)
            self.initial_budget += batch * int(self.churn.budget)
        if self.adaptive_loss is not None:
            self.jam_budget = np.full(
                batch, self.adaptive_loss.budget, dtype=np.int64
            )
            self.initial_budget += batch * int(self.adaptive_loss.budget)

    def compact_budgets(self, keep: np.ndarray) -> None:
        """Drop finished trials' budget rows, banking their unspent budget."""
        if self.crash_budget is not None:
            kept_sum = int(self.crash_budget[keep].sum())
            self.retired_budget += int(self.crash_budget.sum()) - kept_sum
            self.crash_budget = self.crash_budget[keep]
        if self.jam_budget is not None:
            kept_sum = int(self.jam_budget[keep].sum())
            self.retired_budget += int(self.jam_budget.sum()) - kept_sum
            self.jam_budget = self.jam_budget[keep]

    def budget_spent(self) -> int:
        """Total adversary budget consumed across the batch so far."""
        remaining = self.retired_budget
        if self.crash_budget is not None:
            remaining += int(self.crash_budget.sum())
        if self.jam_budget is not None:
            remaining += int(self.jam_budget.sum())
        return self.initial_budget - remaining

    def record_budget_spent(self, metrics: Optional[MetricsRegistry]) -> None:
        """Count ``scenario.adversary_budget_spent`` when metrics are on."""
        if metrics is not None and self.has_adaptive:
            metrics.count("scenario.adversary_budget_spent", self.budget_spent())

    def initial_up(self, graph: Graph, batch: int) -> Optional[np.ndarray]:
        """The ``(B, n)`` up/down matrix at trial start, or ``None``."""
        if self.churn is None:
            return None
        return np.tile(self.churn.initial_up(graph), (batch, 1))

    def loss_threshold(
        self, bad: Optional[np.ndarray], rows: Optional[np.ndarray] = None
    ) -> Union[float, np.ndarray]:
        """Per-row loss probability (scalar without a burst component)."""
        if self.burst is None:
            return self.loss_prob
        states = bad if rows is None else bad[rows]
        return np.where(states, self.burst.p_loss_bad, self.burst.p_loss_good)

    def cross_boundaries(
        self,
        b: int,
        t: float,
        rng: np.random.Generator,
        n: int,
        up: Optional[np.ndarray],
        bad: Optional[np.ndarray],
        next_epoch: Optional[np.ndarray],
        next_resample: Optional[np.ndarray],
        trial_graphs: Optional["_TrialGraphs"],
        informed: Optional[np.ndarray] = None,
    ) -> None:
        """Fire trial ``b``'s epoch/resample boundaries up to time ``t``.

        The single definition of the batched kernels' boundary interleave —
        chronological order, epoch (churn update, then burst draw) before a
        resample on ties — matching the serial engines' draw order exactly.
        All three batch tick loops call this, so the equivalence-pinned
        contract cannot drift between them.  ``informed`` is the ``(B, n)``
        informed matrix an adaptive crash adversary observes (it draws
        nothing, so the RNG stream matches the oblivious engines').
        """
        while True:
            epoch_at = next_epoch[b] if next_epoch is not None else np.inf
            resample_at = next_resample[b] if next_resample is not None else np.inf
            if min(epoch_at, resample_at) > t:
                return
            if epoch_at <= resample_at:
                if self.churn_updates:
                    # repro: allow[RNG002] -- epoch schedule is deterministic in time, not in drawn values; this method IS the pinned boundary-interleave contract
                    up[b] = self.churn.step(up[b], rng.random(n))
                elif self.adaptive_churn:
                    self.crash_budget[b] -= self.churn.crash_step(
                        up[b], informed[b], self.crash_order, self.crash_budget[b]
                    )
                if bad is not None:
                    # repro: allow[RNG002] -- epoch schedule is deterministic in time, not in drawn values; this method IS the pinned boundary-interleave contract
                    bad[b] = self.burst.step_state(bad[b], rng.random())
                next_epoch[b] += 1.0
            else:
                trial_graphs.resample(b, self.dynamic, rng)
                next_resample[b] += float(self.dynamic.period)


# ---------------------------------------------------------------------- #
# Synchronous batch kernel
# ---------------------------------------------------------------------- #
def run_synchronous_batch(
    graph: Graph,
    sources: Union[int, Sequence[int], np.ndarray],
    *,
    mode: str = "push-pull",
    rngs: Optional[Sequence[np.random.Generator]] = None,
    trials: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: Optional[int] = None,
    record_times: bool = True,
    on_budget_exhausted: str = "error",
    scenario: ScenarioLike = None,
    pooled_rng: Optional[np.random.Generator] = None,
    backend: Optional[str] = None,
) -> BatchTimes:
    """Simulate a batch of synchronous rumor-spreading trials at once.

    Args:
        graph: the (connected) graph shared by every trial (the *initial*
            graph under a dynamic-graph scenario).
        sources: per-trial source vertices (length ``B``), or a single vertex
            id used by all trials.  Note scenario source strategies are
            applied by :func:`repro.core.protocols.spread` and
            :func:`repro.analysis.montecarlo.run_trials`; this kernel always
            uses the sources it is given.
        mode: ``"push"``, ``"pull"``, or ``"push-pull"``.
        rngs: per-trial generators (length ``B``).  Trial ``i`` consumes
            randomness from ``rngs[i]`` exactly as a serial
            :func:`~repro.core.sync_engine.run_synchronous` call would, so
            fixed-seed results agree trial-for-trial with the serial engine
            (scenarios included).
        trials: batch size when ``sources`` is a scalar and ``rngs`` is not
            given.
        seed: master seed used to spawn per-trial generators when ``rngs``
            is not given.
        max_rounds: per-trial round budget (shared), defaulting to
            :func:`~repro.core.sync_engine.default_max_rounds`.
        record_times: record the full ``(B, n)`` per-vertex time matrix.
            With ``False`` only per-trial spreading times are kept, which is
            cheaper and enough for spreading-time statistics.
        on_budget_exhausted: ``"error"`` raises :class:`SimulationError` if
            any trial fails to complete; ``"partial"`` marks such trials
            incomplete instead.
        scenario: optional adversity scenario; loss (independent or
            bursty), churn (random or targeted), and dynamic graphs apply
            (``Delay`` raises — synchronous rounds have no clocks).
        pooled_rng: one shared generator replacing the per-trial ones (no
            serial equivalence; distribution-level agreement only).
        backend: kernel backend for the round step — ``"numpy"``, ``"jit"``,
            or ``"auto"`` (see :mod:`repro.core.kernels`; both backends are
            bit-identical here).  ``None`` reads ``REPRO_KERNEL_BACKEND``
            and then defaults to ``"auto"``.

    Returns:
        A :class:`~repro.core.result.BatchTimes` with round-valued times.
    """
    source_array, generators = _prepare(
        graph, sources, mode, SYNC_MODES, rngs, trials, seed, on_budget_exhausted, pooled_rng
    )
    scenario = as_scenario(scenario)
    if scenario is not None and scenario.delay is not None:
        raise ScenarioError(
            "Delay skews asynchronous clock rates; synchronous rounds have no "
            "clocks to slow down — use an asynchronous protocol"
        )
    parts = _ScenarioParts(scenario)
    loss_prob = parts.loss_prob
    burst = parts.burst
    churn = parts.churn
    dynamic = parts.dynamic
    protocol_name = _SYNC_MODE_NAMES[mode]
    n = graph.num_vertices
    batch = source_array.size
    budget = default_max_rounds(n) if max_rounds is None else int(max_rounds)
    if budget < 0:
        raise ProtocolError(f"max_rounds must be non-negative, got {max_rounds}")
    if n == 1:
        return _trivial_batch(protocol_name, graph, source_array, record_times, True)

    kern = resolve_backend(backend)
    metrics = current_metrics()
    if metrics is not None:
        metrics.gauge("engine.backend", kern.BACKEND_NAME)
    flat = flat_adjacency(graph)
    # Narrow copies of the CSR arrays: the neighbor-sampling gathers are the
    # hottest memory traffic in the round loop.  int32 covers flat (row,
    # vertex) addresses whenever batch * n fits, which is every realistic
    # batch; fall back to int64 otherwise.
    idx_dtype = np.int32 if batch * n < 2**31 else np.int64
    degrees_nw = flat.degrees.astype(idx_dtype)
    max_offset_nw = degrees_nw - 1
    start_nw = flat.indptr[:-1].astype(idx_dtype)
    indices_nw = flat.indices.astype(idx_dtype)
    csr_nw = (degrees_nw, max_offset_nw, start_nw, indices_nw)

    pull_allowed = mode in ("pull", "push-pull")
    push_allowed = mode in ("push", "push-pull")

    # Live-trial working set, compacted whenever trials finish: row i of the
    # live arrays belongs to trial live_ids[i].  Finished trials move their
    # rows into the separate per-trial final storage and stop paying any
    # per-round cost (and stop consuming randomness, like a serial run that
    # returned).
    live_ids = np.arange(batch, dtype=np.int64)
    live_rngs = list(generators) if generators is not None else []
    informed_live = np.zeros((batch, n), dtype=bool)
    informed_live[live_ids, source_array] = True
    informed_live_count = np.ones(batch, dtype=np.int64)
    times_live = None
    final_times = None
    if record_times:
        times_live = np.full((batch, n), np.inf)
        times_live[live_ids, source_array] = 0.0
        final_times = np.empty((batch, n))

    final_rounds = np.zeros(batch, dtype=np.int64)
    final_informed_count = np.full(batch, n, dtype=np.int64)
    completed = np.zeros(batch, dtype=bool)
    completion_time = np.full(batch, np.inf)
    # Contact-draw buffer (sliced to the live row count) plus the backend's
    # own round workspace (the numpy kernels preallocate their per-round
    # temporaries there; the jit kernels need none).
    scratch = np.empty((batch, n))
    ws = kern.sync_workspace(batch, n, idx_dtype)

    # Scenario state: per-trial up/down churn matrix, draw buffers for the
    # churn and loss uniforms, per-trial burst channel states, and — under
    # a dynamic graph — per-trial current graphs with a stacked CSR built
    # at each resample boundary (degrees and flat start offsets per
    # (trial, vertex) into one concatenated neighbor array).  All compacted
    # alongside the live set.
    up_live = parts.initial_up(graph, batch)
    parts.init_adaptive(graph, batch)
    churn_buf = np.empty((batch, n)) if parts.churn_updates else None
    loss_buf = np.empty((batch, n)) if parts.lossy else None
    bad_live = np.zeros(batch, dtype=bool) if burst is not None else None
    current_graphs: Optional[list[Graph]] = [graph] * batch if dynamic is not None else None
    stacked: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None
    row_offsets_wide = (
        (np.arange(batch, dtype=np.int64) * n)[:, None] if dynamic is not None else None
    )

    round_index = 0
    while live_ids.size and round_index < budget:
        round_index += 1
        live = live_ids.size
        # Scenario randomness order per trial (matching the serial engine):
        # graph resample, churn update, contacts, loss flips.
        if dynamic is not None and round_index > 1 and (round_index - 1) % dynamic.period == 0:
            for i in range(live):
                rng_i = pooled_rng if pooled_rng is not None else live_rngs[i]
                current_graphs[i] = dynamic.resample(current_graphs[i], rng_i)
            flats = [FlatAdjacency(g) for g in current_graphs[:live]]
            degrees_st = np.stack([f.degrees for f in flats])
            indices_cat = np.concatenate([f.indices for f in flats])
            bases = np.zeros(live, dtype=np.int64)
            np.cumsum([f.indices.size for f in flats[:-1]], out=bases[1:])
            start_st = np.stack(
                [f.indptr[:-1] + base for f, base in zip(flats, bases)]
            )
            stacked = (degrees_st, start_st, indices_cat)
        if parts.churn_updates:
            churn_draws = churn_buf[:live]
            if pooled_rng is not None:
                pooled_rng.random(out=churn_draws)
            else:
                for i in range(live):
                    live_rngs[i].random(out=churn_draws[i])
            up_live = churn.step(up_live, churn_draws)
        elif parts.adaptive_churn:
            # Deterministic crash on each trial's round-start informed set —
            # no draw, so the per-trial RNG streams match the oblivious
            # kernel's exactly.
            for i in range(live):
                parts.crash_budget[i] -= churn.crash_step(
                    up_live[i], informed_live[i], parts.crash_order, parts.crash_budget[i]
                )
        if burst is not None:
            if pooled_rng is not None:
                burst_draws = pooled_rng.random(live)
            else:
                # One scalar channel draw per live trial per round — the
                # exact draw the serial engine makes.
                burst_draws = np.array([live_rngs[i].random() for i in range(live)])
            bad_live = burst.step_state(bad_live, burst_draws)
        draws = scratch[:live]
        if pooled_rng is not None:
            pooled_rng.random(out=draws)
        else:
            for i in range(live):
                # One rng.random(n) per live trial per round — the exact draw
                # the serial engine makes, so per-trial streams stay aligned.
                live_rngs[i].random(out=draws[i])
        # Loss uniforms are the round's final draw (after the contacts),
        # resolved into the `kept` mask before the kernel runs — the draw
        # order is what serial equivalence pins, not where the mask is used.
        kept = None
        if parts.lossy:
            loss_draws = loss_buf[:live]
            if pooled_rng is not None:
                pooled_rng.random(out=loss_draws)
            else:
                for i in range(live):
                    live_rngs[i].random(out=loss_draws[i])
            if parts.adaptive_loss is not None:
                # Resolve the round's contacts early (the same arithmetic the
                # kernel applies) so the jammer can see which exchanges would
                # transmit; the budget is spent in vertex-id order per trial,
                # matching the serial engine.
                if stacked is not None:
                    degrees_st, start_st, indices_cat = stacked
                    offsets = (draws * degrees_st).astype(np.int64)
                    np.minimum(offsets, degrees_st - 1, out=offsets)
                    callees = indices_cat[start_st + offsets]
                else:
                    offsets = (draws * degrees_nw).astype(np.int64)
                    np.minimum(offsets, max_offset_nw, out=offsets)
                    callees = indices_nw[start_nw + offsets]
                contacted = np.take_along_axis(informed_live, callees, axis=1)
                if mode == "push-pull":
                    informative = informed_live != contacted
                elif mode == "push":
                    informative = informed_live & ~contacted
                else:
                    informative = ~informed_live & contacted
                candidate = informative
                if up_live is not None:
                    candidate = (
                        candidate
                        & up_live
                        & np.take_along_axis(up_live, callees, axis=1)
                    )
                spend = candidate & (loss_draws < parts.adaptive_loss.p)
                jam = spend & (np.cumsum(spend, axis=1) <= parts.jam_budget[:, None])
                parts.jam_budget -= jam.sum(axis=1)
                kept = ~jam
            elif burst is None:
                kept = loss_draws >= loss_prob
            else:
                kept = loss_draws >= parts.loss_threshold(bad_live)[:, None]
        if metrics is not None:
            metrics.count("engine.rounds", live)
            metrics.count("engine.messages_attempted", live * n)
            if kept is not None:
                metrics.count("engine.messages_lost", int(kept.size - kept.sum()))
        if stacked is not None:
            informed_live_count = kern.sync_round_step_dynamic(
                stacked, row_offsets_wide[:live], draws, kept, up_live,
                informed_live, times_live, round_index,
                push_allowed, pull_allowed, ws, informed_live_count,
            )
        else:
            informed_live_count = kern.sync_round_step(
                csr_nw, draws, kept, up_live,
                informed_live, times_live, round_index,
                push_allowed, pull_allowed, ws, informed_live_count,
            )
        finished = informed_live_count == n
        if finished.any():
            done = np.flatnonzero(finished)
            done_ids = live_ids[done]
            completed[done_ids] = True
            completion_time[done_ids] = float(round_index)
            final_rounds[done_ids] = round_index
            if times_live is not None:
                final_times[done_ids] = times_live[done]
            keep = np.flatnonzero(~finished)
            informed_live = informed_live[keep]
            if times_live is not None:
                times_live = times_live[keep]
            informed_live_count = informed_live_count[keep]
            if pooled_rng is None:
                live_rngs = [live_rngs[i] for i in keep]
            if up_live is not None:
                up_live = up_live[keep]
            if bad_live is not None:
                bad_live = bad_live[keep]
            parts.compact_budgets(keep)
            if current_graphs is not None:
                current_graphs = [current_graphs[i] for i in keep]
            if stacked is not None:
                # The concatenated neighbor array keeps dead segments until
                # the next rebuild; the kept start offsets stay valid.
                stacked = (stacked[0][keep], stacked[1][keep], stacked[2])
            live_ids = live_ids[keep]

    if live_ids.size:
        # Budget exhausted with trials still live: they executed every round.
        final_rounds[live_ids] = round_index
        final_informed_count[live_ids] = informed_live_count
        if times_live is not None:
            final_times[live_ids] = times_live

    if not completed.all() and on_budget_exhausted == "error":
        _raise_incomplete(
            protocol_name, graph, final_informed_count, completed, f"{budget} rounds"
        )
    if metrics is not None:
        # Every informed vertex beyond the pre-informed sources received
        # exactly one successful transmission.
        metrics.count(
            "engine.messages_delivered", int(final_informed_count.sum()) - batch
        )
    parts.record_budget_spent(metrics)

    return BatchTimes(
        protocol=protocol_name,
        graph_name=graph.name,
        num_vertices=n,
        sources=source_array,
        completed=completed,
        completion_time=completion_time,
        informed_time=final_times,
        rounds=final_rounds,
        steps=None,
    )


# ---------------------------------------------------------------------- #
# Asynchronous batch kernel ("global" view)
# ---------------------------------------------------------------------- #
def run_asynchronous_batch(
    graph: Graph,
    sources: Union[int, Sequence[int], np.ndarray],
    *,
    mode: str = "push-pull",
    rngs: Optional[Sequence[np.random.Generator]] = None,
    trials: Optional[int] = None,
    seed: SeedLike = None,
    max_steps: Optional[int] = None,
    max_time: Optional[float] = None,
    record_times: bool = True,
    on_budget_exhausted: str = "error",
    scenario: ScenarioLike = None,
    pooled_rng: Optional[np.random.Generator] = None,
    backend: Optional[str] = None,
) -> BatchTimes:
    """Simulate a batch of asynchronous trials under the ``"global"`` view.

    Every trial carries its own exponential time accumulator (the rate-``n``
    global Poisson clock) and every loop iteration advances all live trials
    by one tick, with the contact exchange vectorised across trials.
    Per-trial randomness is drawn from ``rngs[i]`` in chunks of the same
    sizes and order as the serial
    :func:`~repro.core.async_engine.run_asynchronous` global view, so
    fixed-seed results agree trial-for-trial with the serial engine —
    scenarios included (loss, burst loss, churn, targeted churn, delay,
    and dynamic graphs all batch; dynamic graphs ride a per-trial padded
    stacked CSR whose rows are resampled at each trial's own period
    boundaries).

    Args: as :func:`run_synchronous_batch`, with the asynchronous budgets
        ``max_steps`` (clock ticks) and ``max_time`` (simulated time).
        ``backend`` selects the tick-loop kernel (:mod:`repro.core.kernels`);
        the per-trial modes are bit-identical across backends, the pooled
        mode agrees in distribution only under ``"jit"``.

    Returns:
        A :class:`~repro.core.result.BatchTimes` with continuous times.
    """
    source_array, generators = _prepare(
        graph, sources, mode, ASYNC_MODES, rngs, trials, seed, on_budget_exhausted, pooled_rng
    )
    scenario = as_scenario(scenario)
    parts = _ScenarioParts(scenario)
    burst = parts.burst
    delay = parts.delay
    dynamic = parts.dynamic
    protocol_name = _ASYNC_MODE_NAMES[mode]
    n = graph.num_vertices
    batch = source_array.size
    step_budget = default_max_steps(n) if max_steps is None else int(max_steps)
    if step_budget < 0:
        raise ProtocolError(f"max_steps must be non-negative, got {max_steps}")
    time_budget = np.inf if max_time is None else float(max_time)
    if time_budget < 0:
        raise ProtocolError(f"max_time must be non-negative, got {max_time}")
    if n == 1:
        return _trivial_batch(protocol_name, graph, source_array, record_times, False)

    kern = resolve_backend(backend)
    metrics = current_metrics()
    if metrics is not None:
        metrics.gauge("engine.backend", kern.BACKEND_NAME)
    flat = flat_adjacency(graph)
    degrees_nw = flat.degrees.astype(np.int32)
    max_offset_nw = degrees_nw - 1
    start_nw = flat.indptr[:-1].astype(np.int32)
    indices_nw = flat.indices.astype(np.int32)
    trial_graphs = _TrialGraphs(graph, batch) if dynamic is not None else None

    finite_time_budget = np.isfinite(time_budget)
    scale = 1.0 / n  # mean gap of the rate-n global clock

    # Delay scenario: per-trial vertex rates drawn at trial start (the first
    # randomness each trial consumes, matching the serial engine), with the
    # cumulative-rate tables used to resolve weighted caller draws.
    rates_cum = None
    rates_total = None
    scales = None
    if delay is not None:
        rates = np.stack(
            [
                delay.draw_rates(
                    graph, pooled_rng if pooled_rng is not None else generators[b]
                )
                for b in range(batch)
            ]
        )
        rates_cum = np.cumsum(rates, axis=1)
        rates_total = rates_cum[:, -1].copy()
        scales = 1.0 / rates_total  # per-trial mean gap of the superposed clock

    informed = np.zeros((batch, n), dtype=bool)
    trial_rows = np.arange(batch, dtype=np.int64)
    informed[trial_rows, source_array] = True
    num_informed = np.ones(batch, dtype=np.int64)
    times = None
    if record_times:
        times = np.full((batch, n), np.inf)
        times[trial_rows, source_array] = 0.0

    now = np.zeros(batch)
    completed = np.zeros(batch, dtype=bool)
    completion_time = np.full(batch, np.inf)

    # Scenario state, indexed by absolute trial row (this kernel masks rows
    # instead of compacting them): churn up/down matrices, burst channel
    # states, the per-trial epoch/resample boundary clocks, and a
    # loss-uniform buffer mirroring the serial chunk order (gaps, callers,
    # neighbor uniforms, loss uniforms).
    up = parts.initial_up(graph, batch)
    parts.init_adaptive(graph, batch)
    bad = np.zeros(batch, dtype=bool) if burst is not None else None
    next_epoch = np.ones(batch) if parts.needs_epochs else None
    next_resample = (
        np.full(batch, float(dynamic.period)) if dynamic is not None else None
    )
    # Scalar lower bound on the earliest pending boundary over all trials:
    # the per-row boundary scan is skipped while every tick time is provably
    # below it (one max-reduce instead of gathers, compares, and any()).
    has_boundaries = next_epoch is not None or next_resample is not None
    boundary_floor = np.inf
    if next_epoch is not None:
        boundary_floor = 1.0
    if next_resample is not None:
        boundary_floor = min(boundary_floor, float(dynamic.period))

    # Per-trial randomness buffers mirroring the serial engine's chunked
    # draws: refilled (exponential gaps, callers, neighbor uniforms — in that
    # order) whenever exhausted, with chunk size min(4096, remaining budget).
    # A trial can only run out of step budget at a buffer boundary (chunks
    # never outlive the budget), so the budget check lives in the refill.
    gaps = np.empty((batch, _ASYNC_CHUNK))
    callers = np.empty((batch, _ASYNC_CHUNK), dtype=np.int32)
    nbr_uniforms = np.empty((batch, _ASYNC_CHUNK))
    loss_uniforms = np.empty((batch, _ASYNC_CHUNK)) if parts.lossy else None
    positions = np.zeros(batch, dtype=np.int64)
    buffer_lengths = np.zeros(batch, dtype=np.int64)
    # Executed ticks are implied by the buffer bookkeeping — ticks consumed
    # in retired chunks plus the in-chunk position — so the loop never pays
    # a per-tick `steps[rows] += 1` scatter.  The one correction: a trial
    # retired by the time budget consumed (but did not execute) its final
    # draw, tracked in `overtime` and subtracted at the end.
    chunk_base = np.zeros(batch, dtype=np.int64)
    overtime = np.zeros(batch, dtype=bool) if finite_time_budget else None

    live = num_informed < n
    if step_budget == 0:
        live[:] = False
    steps = np.zeros(batch, dtype=np.int64)
    # Hand the fully-prepared working set to the selected backend's tick
    # loop: both backends consume one identical bundle (same buffer layout,
    # same chunked-draw protocol via AsyncState.draw_chunk), so the
    # equivalence-pinned randomness stream is backend independent.
    state = AsyncState(
        n=n, batch=batch, mode=mode, chunk=_ASYNC_CHUNK,
        step_budget=step_budget, time_budget=time_budget,
        finite_time_budget=finite_time_budget,
        generators=generators, pooled_rng=pooled_rng,
        scale=scale, scales=scales, rates_cum=rates_cum, rates_total=rates_total,
        degrees=degrees_nw, max_offset=max_offset_nw,
        start=start_nw, indices=indices_nw, trial_graphs=trial_graphs,
        parts=parts, up=up, bad=bad,
        next_epoch=next_epoch, next_resample=next_resample,
        boundary_floor=boundary_floor, has_boundaries=has_boundaries,
        gaps=gaps, callers=callers, nbr_uniforms=nbr_uniforms,
        loss_uniforms=loss_uniforms, positions=positions,
        buffer_lengths=buffer_lengths, chunk_base=chunk_base,
        informed=informed, times=times, num_informed=num_informed, now=now,
        live=live, completed=completed, completion_time=completion_time,
        overtime=overtime, steps=steps,
    )
    kern.async_tick_loop(state)
    if overtime is not None:
        steps[overtime] -= 1  # the final draw was consumed, not executed
    if metrics is not None:
        # Delivered counts come from the backends' own drain-exit deltas
        # (see kernels.numpy_backend / kernels.jit_backend); the totals
        # here are budget-corrected tick counts only.
        total_ticks = int(steps.sum())
        metrics.count("engine.clock_ticks", total_ticks)
        metrics.count("engine.messages_attempted", total_ticks)
    parts.record_budget_spent(metrics)
    if not completed.all() and on_budget_exhausted == "error":
        _raise_incomplete(
            protocol_name,
            graph,
            num_informed,
            completed,
            f"{step_budget} steps / time {time_budget}",
        )
    return BatchTimes(
        protocol=protocol_name,
        graph_name=graph.name,
        num_vertices=n,
        sources=source_array,
        completed=completed,
        completion_time=completion_time,
        informed_time=times,
        rounds=None,
        steps=steps,
    )


# ---------------------------------------------------------------------- #
# Auxiliary-process batch kernel (ppx / ppy)
# ---------------------------------------------------------------------- #
def _bump_neighbor_counts(
    counts_flat: np.ndarray,
    rows: np.ndarray,
    verts: np.ndarray,
    flat: FlatAdjacency,
    n: int,
) -> None:
    """``counts_flat[r * n + w] += 1`` for every neighbor ``w`` of each ``(r, v)``.

    The vectorised equivalent of the serial engine's "for each newly informed
    vertex, bump every neighbor's informed count" loop, across batch rows.
    """
    degs = flat.degrees[verts]
    total = int(degs.sum())
    if total == 0:
        return
    stops = np.cumsum(degs)
    within = np.arange(total, dtype=np.int64) - np.repeat(stops - degs, degs)
    neighbors = flat.indices[np.repeat(flat.indptr[verts], degs) + within]
    np.add.at(counts_flat, np.repeat(rows, degs) * n + neighbors, 1)


def run_auxiliary_batch(
    graph: Graph,
    sources: Union[int, Sequence[int], np.ndarray],
    *,
    variant: str = "ppx",
    rngs: Optional[Sequence[np.random.Generator]] = None,
    trials: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: Optional[int] = None,
    record_times: bool = True,
    on_budget_exhausted: str = "error",
    scenario: ScenarioLike = None,
    pooled_rng: Optional[np.random.Generator] = None,
    backend: Optional[str] = None,
) -> BatchTimes:
    """Simulate a batch of auxiliary-process (``ppx``/``ppy``) trials at once.

    The ``(B, n)`` generalization of
    :func:`~repro.core.aux_processes.run_auxiliary_process`: per-vertex
    informed-neighbor counts are maintained as a batched integer matrix, the
    pull probabilities come from the shared vectorised
    :func:`~repro.core.aux_processes.pull_probabilities`, and the push/pull
    commits are scatter operations across all live trials.

    Per-trial randomness is consumed in exactly the serial engine's order —
    one ``random(k_informed)`` push block, one ``random(k_candidates)`` pull
    block, then one bounded-integer parent draw per pulling vertex (the
    chosen parent never affects informing times, but the draw must happen to
    keep the streams aligned) — so fixed-seed results agree trial-for-trial
    with the serial engine.  ``pooled_rng`` switches to the shared-generator
    mode (distributional agreement only; the parent draws are skipped).

    Runtime scenarios (loss, churn, dynamic graphs, delay) do not apply to
    the analysis-only processes and raise :class:`ScenarioError`, matching
    :func:`repro.core.protocols.spread`.

    Args: as :func:`run_synchronous_batch`, plus ``variant`` (``"ppx"`` or
        ``"ppy"``).  ``backend`` is accepted for interface uniformity and
        ignored: the auxiliary kernels have no compiled implementation
        (their cost is dominated by the neighbor-count bookkeeping, not a
        tick loop).

    Returns:
        A :class:`~repro.core.result.BatchTimes` with round-valued times.
    """
    source_array, generators = _prepare(
        graph, sources, variant, AUX_VARIANTS, rngs, trials, seed, on_budget_exhausted, pooled_rng
    )
    scenario = as_scenario(scenario)
    if scenario is not None and scenario.runtime_active():
        raise ScenarioError(
            f"protocol {variant!r} is an analysis-only process; runtime "
            "scenarios (loss, churn, dynamic graphs, delay) do not apply"
        )
    n = graph.num_vertices
    batch = source_array.size
    budget = default_max_rounds(n) if max_rounds is None else int(max_rounds)
    if budget < 0:
        raise ProtocolError(f"max_rounds must be non-negative, got {max_rounds}")
    if n == 1:
        return _trivial_batch(variant, graph, source_array, record_times, True)

    metrics = current_metrics()
    flat = flat_adjacency(graph)
    degrees = flat.degrees

    # Live-trial working set, compacted as trials finish (see the
    # synchronous kernel): finished trials stop consuming randomness.
    live_ids = np.arange(batch, dtype=np.int64)
    live_rngs = list(generators) if generators is not None else []
    informed_live = np.zeros((batch, n), dtype=bool)
    informed_live[live_ids, source_array] = True
    informed_live_count = np.ones(batch, dtype=np.int64)
    times_live = None
    final_times = None
    if record_times:
        times_live = np.full((batch, n), np.inf)
        times_live[live_ids, source_array] = 0.0
        final_times = np.empty((batch, n))
    # nbr_count[i, v] = |{w in Γ(v): w informed}| in trial i (round start).
    nbr_count = np.zeros((batch, n), dtype=np.int64)
    _bump_neighbor_counts(nbr_count.reshape(-1), live_ids, source_array, flat, n)

    final_rounds = np.zeros(batch, dtype=np.int64)
    final_informed_count = np.full(batch, n, dtype=np.int64)
    completed = np.zeros(batch, dtype=bool)
    completion_time = np.full(batch, np.inf)

    round_index = 0
    while live_ids.size and round_index < budget:
        round_index += 1
        live = live_ids.size
        if metrics is not None:
            metrics.count("engine.rounds", live)

        # --- Push half: every informed vertex contacts a random neighbor. ---
        rows_p, verts_p = np.nonzero(informed_live)  # row-major = serial's vertex order
        push_u = np.empty(rows_p.size)
        if pooled_rng is not None:
            pooled_rng.random(out=push_u)
        else:
            stop = 0
            for i in range(live):
                # One rng.random(k_informed) per live trial per round — the
                # exact draw the serial engine makes.
                start, stop = stop, stop + int(informed_live_count[i])
                live_rngs[i].random(out=push_u[start:stop])
        contacts = flat.random_neighbors(verts_p, push_u)
        informed_flat = informed_live.reshape(-1)
        hit = ~informed_flat[rows_p * n + contacts]
        push_rows = rows_p[hit]
        push_verts = contacts[hit]

        # --- Pull half: uninformed vertices pull with the variant's probability. ---
        rows_c, verts_c = np.nonzero(~informed_live & (nbr_count > 0))
        cand_counts = np.bincount(rows_c, minlength=live)
        pull_u = np.empty(rows_c.size)
        if pooled_rng is not None:
            pooled_rng.random(out=pull_u)
        else:
            stop = 0
            for i in range(live):
                start, stop = stop, stop + int(cand_counts[i])
                live_rngs[i].random(out=pull_u[start:stop])
        k = nbr_count[rows_c, verts_c]
        pulled = pull_u < pull_probabilities(variant, k, degrees[verts_c])
        pull_rows = rows_c[pulled]
        pull_verts = verts_c[pulled]
        if pooled_rng is None and pull_rows.size:
            # The serial engine draws a uniform informed parent per pulling
            # vertex (rng.integers(k)); informing times never depend on the
            # choice, but the draws must be consumed for stream alignment.
            bounds = k[pulled]
            pull_counts = np.bincount(pull_rows, minlength=live)
            stop = 0
            for i in range(live):
                start, stop = stop, stop + int(pull_counts[i])
                if stop > start:
                    # repro: allow[RNG002] -- zero-count skip only: integers() over an empty bounds slice consumes no stream, so the guard cannot reorder draws
                    live_rngs[i].integers(0, bounds[start:stop])

        # --- Commit: pulls and pushes both stamp this round's timestamp. ---
        new_mask = np.zeros((live, n), dtype=bool)
        new_mask[pull_rows, pull_verts] = True
        new_mask[push_rows, push_verts] = True
        if times_live is not None:
            times_live[new_mask] = float(round_index)
        informed_live |= new_mask
        rows_n, verts_n = np.nonzero(new_mask)
        _bump_neighbor_counts(nbr_count.reshape(-1), rows_n, verts_n, flat, n)
        informed_live_count = informed_live.sum(axis=1)

        finished = informed_live_count == n
        if finished.any():
            done = np.flatnonzero(finished)
            done_ids = live_ids[done]
            completed[done_ids] = True
            completion_time[done_ids] = float(round_index)
            final_rounds[done_ids] = round_index
            if times_live is not None:
                final_times[done_ids] = times_live[done]
            keep = np.flatnonzero(~finished)
            informed_live = informed_live[keep]
            nbr_count = nbr_count[keep]
            if times_live is not None:
                times_live = times_live[keep]
            informed_live_count = informed_live_count[keep]
            if pooled_rng is None:
                live_rngs = [live_rngs[i] for i in keep]
            live_ids = live_ids[keep]

    if live_ids.size:
        final_rounds[live_ids] = round_index
        final_informed_count[live_ids] = informed_live_count
        if times_live is not None:
            final_times[live_ids] = times_live

    if not completed.all() and on_budget_exhausted == "error":
        _raise_incomplete(variant, graph, final_informed_count, completed, f"{budget} rounds")
    if metrics is not None:
        metrics.count(
            "engine.messages_delivered", int(final_informed_count.sum()) - batch
        )

    return BatchTimes(
        protocol=variant,
        graph_name=graph.name,
        num_vertices=n,
        sources=source_array,
        completed=completed,
        completion_time=completion_time,
        informed_time=final_times,
        rounds=final_rounds,
        steps=None,
    )


# ---------------------------------------------------------------------- #
# Clock-queue asynchronous views (node_clocks / edge_clocks)
# ---------------------------------------------------------------------- #
def _run_clock_view_pooled(
    graph: Graph,
    source_array: np.ndarray,
    mode: str,
    pooled_rng: np.random.Generator,
    step_budget: int,
    time_budget: float,
    record_times: bool,
    on_budget_exhausted: str,
    chunk: int,
    protocol_name: str,
    parts: Optional["_ScenarioParts"] = None,
    kern: Optional[ModuleType] = None,
) -> BatchTimes:
    """The chunked pooled-RNG fast path shared by both clock-queue views.

    The per-trial kernel must keep the ``(B, #clocks)`` next-tick table and
    pay two scalar RNG draws per trial per tick, because serial draw-order
    equivalence pins exactly that sequence.  Pooled mode only promises
    agreement *in distribution*, and in distribution both views are the
    same superposed Poisson process: every vertex ticks at rate 1 under
    ``node_clocks``, and under ``edge_clocks`` each caller's pair clocks
    (rate ``1/deg(v)`` each) also sum to rate 1 per vertex — so successive
    events arrive with ``Exp(1/n)`` gaps, a uniformly random caller, and a
    uniformly random neighbor as callee (the view equivalence of
    :mod:`repro.experiments.view_equivalence`).  That lets this path
    pre-draw the whole randomness of the next ``chunk`` ticks as three
    ``(B, chunk)`` blocks — gaps, callers, neighbor uniforms — resolve the
    callee matrix in one vectorised gather, and run a lean per-tick loop
    with no RNG calls and no argmin over the next-tick table at all.

    Runtime scenarios keep the same shape: a :class:`~repro.scenarios.Delay`
    reweights the superposition (per-trial total rate, weighted caller
    draws resolved at block-refill time), loss/burst-loss add one uniform
    block, and churn updates fire inside the column loop at each trial's
    epoch boundaries.  Dynamic graphs never reach this path (the callee
    blocks above are resolved against one fixed CSR); the dispatcher routes
    them through the unchunked pooled table loop instead.
    """
    n = graph.num_vertices
    batch = source_array.size
    flat = flat_adjacency(graph)
    degrees = flat.degrees
    start = flat.indptr[:-1]
    indices = flat.indices
    mode_pp = mode == "push-pull"
    push_allowed = mode in ("push", "push-pull")
    finite_time_budget = np.isfinite(time_budget)
    scale = 1.0 / n  # mean gap of the superposed rate-n tick process

    if parts is None:
        parts = _ScenarioParts(None)
    if kern is None:
        kern = resolve_backend(None)
    metrics = current_metrics()
    if metrics is not None:
        metrics.gauge("engine.backend", kern.BACKEND_NAME)
    burst = parts.burst
    # Under a Delay every vertex v ticks at rate r_v (node clocks) — and
    # its edge-view pair clocks, rate r_v/deg(v) each, superpose to the
    # same r_v — so the pooled process has per-trial total rate sum(r_v)
    # and rate-weighted callers.
    rates_cum = None
    rates_total = None
    trial_scales = None
    if parts.delay is not None:
        rates = np.stack(
            [parts.delay.draw_rates(graph, pooled_rng) for _ in range(batch)]
        )
        rates_cum = np.cumsum(rates, axis=1)
        rates_total = rates_cum[:, -1].copy()
        trial_scales = 1.0 / rates_total
    up = parts.initial_up(graph, batch)
    parts.init_adaptive(graph, batch)
    bad = np.zeros(batch, dtype=bool) if burst is not None else None
    next_epoch = np.ones(batch) if parts.needs_epochs else None

    informed = np.zeros((batch, n), dtype=bool)
    trial_rows = np.arange(batch, dtype=np.int64)
    informed[trial_rows, source_array] = True
    num_informed = np.ones(batch, dtype=np.int64)
    times = None
    if record_times:
        times = np.full((batch, n), np.inf)
        times[trial_rows, source_array] = 0.0
    now = np.zeros(batch)
    steps = np.zeros(batch, dtype=np.int64)
    completed = np.zeros(batch, dtype=bool)
    completion_time = np.full(batch, np.inf)

    live = num_informed < n
    while True:
        rows = np.flatnonzero(live)
        if rows.size == 0:
            break
        # Live trials all hold the same tick count: every live trial
        # executes one tick per column and leaves the set when it retires,
        # so one scalar tracks the remaining step budget for the block.
        executed = int(steps[rows[0]])
        remaining = step_budget - executed
        if remaining <= 0:
            live[rows] = False
            break
        width = min(chunk, remaining)
        if trial_scales is None:
            gaps = pooled_rng.exponential(scale, (rows.size, width))
        else:
            gaps = pooled_rng.exponential(
                trial_scales[rows][:, None], (rows.size, width)
            )
        tick_times = np.cumsum(gaps, axis=1)
        tick_times += now[rows][:, None]
        if rates_cum is None:
            callers = pooled_rng.integers(0, n, (rows.size, width))
        else:
            caller_uniforms = pooled_rng.random((rows.size, width))
            callers = np.empty((rows.size, width), dtype=np.int64)
            for j, b in enumerate(rows):
                callers[j] = np.minimum(
                    np.searchsorted(
                        rates_cum[b], caller_uniforms[j] * rates_total[b], side="right"
                    ),
                    n - 1,
                )
        uniforms = pooled_rng.random((rows.size, width))
        loss_block = pooled_rng.random((rows.size, width)) if parts.lossy else None
        deg = degrees[callers]
        offsets = (uniforms * deg).astype(np.int64)
        np.minimum(offsets, deg - 1, out=offsets)
        callees = indices[start[callers] + offsets]

        # Everything random about the block is resolved; the backend's
        # consumer walks its columns and mutates the per-trial state in
        # place (only epoch crossings still draw, from the pooled
        # generator — the jit backend delegates those blocks to numpy).
        informed_before = int(num_informed.sum()) if metrics is not None else 0
        kern.clock_chunk_consume(
            rows, executed, width, tick_times, callers, callees, loss_block,
            informed, times, num_informed, steps, completed, completion_time,
            live, now, n, time_budget, finite_time_budget, mode_pp,
            push_allowed, parts, bad, up, next_epoch, pooled_rng,
        )
        if metrics is not None:
            metrics.count("engine.drain_returns")
            metrics.count(
                "engine.messages_delivered", int(num_informed.sum()) - informed_before
            )

    if not completed.all() and on_budget_exhausted == "error":
        _raise_incomplete(
            protocol_name,
            graph,
            num_informed,
            completed,
            f"{step_budget} steps / time {time_budget}",
        )
    if metrics is not None:
        total_ticks = int(steps.sum())
        metrics.count("engine.clock_ticks", total_ticks)
        metrics.count("engine.messages_attempted", total_ticks)
    parts.record_budget_spent(metrics)
    return BatchTimes(
        protocol=protocol_name,
        graph_name=graph.name,
        num_vertices=n,
        sources=source_array,
        completed=completed,
        completion_time=completion_time,
        informed_time=times,
        rounds=None,
        steps=steps,
    )


def run_clock_view_batch(
    graph: Graph,
    sources: Union[int, Sequence[int], np.ndarray],
    *,
    mode: str = "push-pull",
    view: str = "node_clocks",
    rngs: Optional[Sequence[np.random.Generator]] = None,
    trials: Optional[int] = None,
    seed: SeedLike = None,
    max_steps: Optional[int] = None,
    max_time: Optional[float] = None,
    record_times: bool = True,
    on_budget_exhausted: str = "error",
    scenario: ScenarioLike = None,
    pooled_rng: Optional[np.random.Generator] = None,
    pooled_chunk: Optional[int] = None,
    backend: Optional[str] = None,
) -> BatchTimes:
    """Simulate a batch of asynchronous trials under a clock-queue view.

    The serial engine realises the ``"node_clocks"`` and ``"edge_clocks"``
    views with a priority queue of next-tick times; the batched kernel keeps
    the same next-tick table as a ``(B, #clocks)`` matrix and replaces the
    heap pop with a vectorised per-row ``argmin`` — with continuous tick
    times the minimum entry *is* the heap's next event (ties have measure
    zero, and both resolutions pick the lowest index), so the event sequence
    is identical.  Every loop iteration advances all live trials by one
    tick, with the rumor exchange vectorised across trials.

    Per-trial randomness follows the serial draw order exactly: ``Delay``
    rates first (when present), then the initial next-tick table as one
    ``exponential`` block per trial (``n`` rate-``r_v`` clocks for
    ``node_clocks``; one rate-``r_v/deg(v)`` clock per ordered adjacent
    pair, in the serial pair order, for ``edge_clocks``), then per tick the
    epoch/resample boundary draws crossed since the previous event followed
    by the tick's own draws — neighbor uniform (``node_clocks`` only), loss
    uniform (when a loss or burst-loss component is present), reschedule
    exponential — so fixed-seed results agree trial-for-trial with
    :func:`~repro.core.async_engine.run_asynchronous`, scenarios included.

    Every runtime scenario applies under both views except a dynamic graph
    under ``edge_clocks`` (the serial engine rejects it with the same
    error: resampling would change the per-pair clock set itself).  Under
    ``node_clocks`` a dynamic graph rides the per-trial padded stacked CSR
    (:class:`_TrialGraphs`); the clocks themselves are graph independent
    and are never redrawn.

    **Pooled fast path.**  With ``pooled_rng`` the serial draw order no
    longer constrains the kernel, and the per-tick scalar draws are chunked
    into ``(B, chunk)`` blocks drawn ahead of time (see
    :func:`_run_clock_view_pooled` — both views are, in distribution, the
    same superposed Poisson process, so the next-tick table and its per-row
    ``argmin`` disappear entirely).  ``pooled_chunk`` sets the block width
    (default 4096 ticks); ``pooled_chunk=0`` keeps the legacy unchunked
    pooled loop over the next-tick table, which draws per tick — it exists
    as the benchmark baseline for the fast path.  A dynamic-graph scenario
    also runs through the unchunked pooled loop (its pre-resolved callee
    blocks assume a fixed graph).  Pooled samples agree with the per-trial
    modes in distribution only (KS-tested in the suite).

    Args: as :func:`run_asynchronous_batch`, plus ``view`` and
        ``pooled_chunk``.  ``backend`` applies to the chunked pooled fast
        path only (its consumer is a :mod:`repro.core.kernels` kernel, and
        both backends produce identical results there); the per-trial and
        unchunked pooled table loops are pinned to the serial draw order
        and always run the numpy path.

    Returns:
        A :class:`~repro.core.result.BatchTimes` with continuous times.
    """
    if view not in CLOCK_VIEWS:
        raise ProtocolError(
            f"run_clock_view_batch serves the views {CLOCK_VIEWS}, got {view!r}"
        )
    scenario = as_scenario(scenario)
    if scenario is not None and scenario.dynamic is not None and view == "edge_clocks":
        raise ScenarioError(
            "dynamic-graph scenarios are not supported under the 'edge_clocks' "
            "view: resampling the graph would change the per-pair clock set "
            "itself; use the 'node_clocks' or 'global' view"
        )
    parts = _ScenarioParts(scenario)
    source_array, generators = _prepare(
        graph, sources, mode, ASYNC_MODES, rngs, trials, seed, on_budget_exhausted, pooled_rng
    )
    protocol_name = _ASYNC_MODE_NAMES[mode]
    n = graph.num_vertices
    batch = source_array.size
    step_budget = default_max_steps(n) if max_steps is None else int(max_steps)
    if step_budget < 0:
        raise ProtocolError(f"max_steps must be non-negative, got {max_steps}")
    time_budget = np.inf if max_time is None else float(max_time)
    if time_budget < 0:
        raise ProtocolError(f"max_time must be non-negative, got {max_time}")
    if pooled_chunk is not None and pooled_chunk < 0:
        raise ProtocolError(f"pooled_chunk must be non-negative, got {pooled_chunk}")
    if pooled_chunk and pooled_rng is None:
        # The chunked block draws exist only where the serial draw order
        # does not constrain the kernel; silently running the per-trial
        # path instead would time/benchmark the wrong kernel.
        raise ProtocolError(
            "pooled_chunk requires pooled_rng (the per-trial path is pinned "
            "to the serial draw order and cannot chunk its draws)"
        )
    if n == 1:
        return _trivial_batch(protocol_name, graph, source_array, record_times, False)
    if pooled_rng is not None and pooled_chunk != 0 and parts.dynamic is None:
        return _run_clock_view_pooled(
            graph,
            source_array,
            mode,
            pooled_rng,
            step_budget,
            time_budget,
            record_times,
            on_budget_exhausted,
            _POOLED_CLOCK_CHUNK if pooled_chunk is None else int(pooled_chunk),
            protocol_name,
            parts,
            kern=resolve_backend(backend),
        )

    flat = flat_adjacency(graph)
    degrees = flat.degrees
    node_view = view == "node_clocks"
    # The next-tick table loops are pinned to the serial draw order and
    # always run on the numpy path (see the docstring).
    metrics = current_metrics()
    if metrics is not None:
        metrics.gauge("engine.backend", "numpy")

    # Delay rates are the first randomness each trial consumes (before the
    # initial next-tick block), matching the serial engine.
    rates = None
    node_scales = None
    if parts.delay is not None:
        rates = np.stack(
            [
                parts.delay.draw_rates(
                    graph, pooled_rng if pooled_rng is not None else generators[b]
                )
                for b in range(batch)
            ]
        )
        node_scales = 1.0 / rates  # (B, n): mean gap of each vertex clock

    pair_caller = pair_callee = pair_scale = None
    if node_view:
        # One rate-r_v clock per vertex (r_v = 1 without a Delay): the
        # first ticks are the serial engine's initial exponential block.
        next_tick = np.empty((batch, n))
        if pooled_rng is not None:
            if node_scales is None:
                next_tick[:] = pooled_rng.exponential(1.0, (batch, n))
            else:
                next_tick[:] = pooled_rng.exponential(node_scales)
        else:
            for b in range(batch):
                if node_scales is None:
                    next_tick[b] = generators[b].exponential(1.0, n)
                else:
                    next_tick[b] = generators[b].exponential(node_scales[b])
    else:
        # One clock per ordered pair (v, w) with rate r_v/deg(v).  The pair
        # order (v ascending, neighbors in adjacency order) is exactly the
        # flat CSR layout, and a single array-scale exponential call draws
        # the same stream as the serial engine's per-pair scalar draws.
        pair_caller = np.repeat(np.arange(n, dtype=np.int64), degrees)
        pair_callee = flat.indices
        pair_scale = degrees[pair_caller].astype(float)
        if rates is not None:
            # (B, #pairs): each trial's own rates reweight its pair clocks.
            pair_scale = pair_scale[None, :] / rates[:, pair_caller]
        next_tick = np.empty((batch, pair_caller.size))
        if pooled_rng is not None:
            if rates is None:
                next_tick[:] = pooled_rng.exponential(
                    pair_scale, (batch, pair_caller.size)
                )
            else:
                next_tick[:] = pooled_rng.exponential(pair_scale)
        else:
            for b in range(batch):
                next_tick[b] = generators[b].exponential(
                    pair_scale if rates is None else pair_scale[b]
                )

    informed = np.zeros((batch, n), dtype=bool)
    trial_rows = np.arange(batch, dtype=np.int64)
    informed[trial_rows, source_array] = True
    num_informed = np.ones(batch, dtype=np.int64)
    times = None
    if record_times:
        times = np.full((batch, n), np.inf)
        times[trial_rows, source_array] = 0.0
    now = np.zeros(batch)
    steps = np.zeros(batch, dtype=np.int64)
    completed = np.zeros(batch, dtype=bool)
    completion_time = np.full(batch, np.inf)
    finite_time_budget = np.isfinite(time_budget)
    mode_pp = mode == "push-pull"
    push_allowed = mode in ("push", "push-pull")

    # Scenario state, indexed by absolute trial row (rows are masked, not
    # compacted): see run_asynchronous_batch.  Dynamic graphs only reach
    # the node view (edge_clocks rejected above) and never touch the
    # next-tick table — vertex clocks are graph independent.
    burst = parts.burst
    dynamic = parts.dynamic
    up = parts.initial_up(graph, batch)
    parts.init_adaptive(graph, batch)
    bad = np.zeros(batch, dtype=bool) if burst is not None else None
    next_epoch = np.ones(batch) if parts.needs_epochs else None
    next_resample = (
        np.full(batch, float(dynamic.period)) if dynamic is not None else None
    )
    trial_graphs = _TrialGraphs(graph, batch) if dynamic is not None else None

    live = num_informed < n
    while True:
        rows = np.flatnonzero(live)
        if rows.size == 0:
            break
        # The serial while-condition checks the step budget before each pop.
        exhausted = steps[rows] >= step_budget
        if exhausted.any():
            live[rows[exhausted]] = False
            rows = rows[~exhausted]
            if rows.size == 0:
                break
        idx = np.argmin(next_tick[rows], axis=1)
        tick_time = next_tick[rows, idx]
        if finite_time_budget:
            # Serial pops the over-budget event and stops without drawing.
            over = tick_time > time_budget
            if over.any():
                live[rows[over]] = False
                keep = ~over
                rows = rows[keep]
                idx = idx[keep]
                tick_time = tick_time[keep]
                if rows.size == 0:
                    continue
        if next_epoch is not None or next_resample is not None:
            # Boundaries crossed in (previous event, now] fire before the
            # exchange, chronologically, epoch before resample on ties —
            # the serial engine's interleaved draws.
            if next_epoch is None:
                bound = next_resample.take(rows)
            elif next_resample is None:
                bound = next_epoch.take(rows)
            else:
                bound = np.minimum(next_epoch.take(rows), next_resample.take(rows))
            crossing = tick_time >= bound
            if crossing.any():
                for b, t in zip(rows[crossing], tick_time[crossing]):
                    rng = pooled_rng if pooled_rng is not None else generators[b]
                    parts.cross_boundaries(
                        b, t, rng, n, up, bad, next_epoch, next_resample,
                        trial_graphs, informed,
                    )
        steps[rows] += 1
        now[rows] = tick_time
        loss_u = np.empty(rows.size) if parts.lossy else None
        if node_view:
            caller = idx
            u = np.empty(rows.size)
            resched = np.empty(rows.size)
            if pooled_rng is not None:
                u[:] = pooled_rng.random(rows.size)
                if loss_u is not None:
                    # repro: allow[RNG002] -- loss_u is reallocated every tick but its None-ness is pinned by the loop-invariant parts.lossy; the gate fires identically each iteration
                    loss_u[:] = pooled_rng.random(rows.size)
                if node_scales is None:
                    resched[:] = pooled_rng.exponential(1.0, rows.size)
                else:
                    resched[:] = pooled_rng.exponential(node_scales[rows, caller])
            else:
                for j, b in enumerate(rows):
                    rng = generators[b]
                    # Neighbor uniform, loss uniform (when lossy), then the
                    # reschedule exponential — the serial per-tick order.
                    u[j] = rng.random()
                    if loss_u is not None:
                        # repro: allow[RNG002] -- loss_u is reallocated every tick but its None-ness is pinned by the loop-invariant parts.lossy; the gate fires identically each iteration
                        loss_u[j] = rng.random()
                    resched[j] = rng.exponential(
                        1.0 if node_scales is None else node_scales[b, caller[j]]
                    )
            if trial_graphs is not None:
                callee = trial_graphs.callees(rows, caller, u)
            else:
                deg = degrees[caller]
                offsets = (u * deg).astype(np.int64)
                np.minimum(offsets, deg - 1, out=offsets)
                callee = flat.indices[flat.indptr[caller] + offsets]
            next_tick[rows, caller] = tick_time + resched
        else:
            caller = pair_caller[idx]
            callee = pair_callee[idx]
            resched = np.empty(rows.size)
            if pooled_rng is not None:
                if loss_u is not None:
                    # repro: allow[RNG002] -- loss_u is reallocated every tick but its None-ness is pinned by the loop-invariant parts.lossy; the gate fires identically each iteration
                    loss_u[:] = pooled_rng.random(rows.size)
                resched[:] = pooled_rng.exponential(
                    pair_scale[idx] if rates is None else pair_scale[rows, idx]
                )
            else:
                for j, b in enumerate(rows):
                    rng = generators[b]
                    # Loss uniform (when lossy) then the reschedule — the
                    # serial per-tick order (no neighbor draw: the pair
                    # determines the callee).
                    if loss_u is not None:
                        # repro: allow[RNG002] -- loss_u is reallocated every tick but its None-ness is pinned by the loop-invariant parts.lossy; the gate fires identically each iteration
                        loss_u[j] = rng.random()
                    resched[j] = rng.exponential(
                        pair_scale[idx[j]] if rates is None else pair_scale[b, idx[j]]
                    )
            next_tick[rows, idx] = tick_time + resched

        caller_informed = informed[rows, caller]
        callee_informed = informed[rows, callee]
        if mode_pp:
            active = caller_informed != callee_informed
            targets = np.where(caller_informed, callee, caller)
        elif push_allowed:
            active = caller_informed & ~callee_informed
            targets = callee
        else:
            active = ~caller_informed & callee_informed
            targets = caller
        if loss_u is not None and parts.adaptive_loss is None:
            active &= loss_u >= parts.loss_threshold(bad, rows)
        if up is not None:
            # Crashed endpoints suppress the exchange in either direction.
            active &= up[rows, caller] & up[rows, callee]
        if parts.adaptive_loss is not None:
            # At this point `active` is exactly the would-transmit mask
            # (informative direction between two up vertices): jam those
            # whose pre-drawn loss uniform fires, while budget remains.
            jam = active & (loss_u < parts.adaptive_loss.p) & (
                parts.jam_budget[rows] > 0
            )
            if jam.any():
                parts.jam_budget[rows[jam]] -= 1
                active &= ~jam
        if active.any():
            active_rows = rows[active]
            active_targets = targets[active]
            informed[active_rows, active_targets] = True
            if times is not None:
                times[active_rows, active_targets] = tick_time[active]
            num_informed[active_rows] += 1
            done = active_rows[num_informed[active_rows] == n]
            if done.size:
                completed[done] = True
                completion_time[done] = now[done]
                live[done] = False

    if not completed.all() and on_budget_exhausted == "error":
        _raise_incomplete(
            protocol_name,
            graph,
            num_informed,
            completed,
            f"{step_budget} steps / time {time_budget}",
        )
    if metrics is not None:
        total_ticks = int(steps.sum())
        metrics.count("engine.clock_ticks", total_ticks)
        metrics.count("engine.messages_attempted", total_ticks)
        metrics.count("engine.messages_delivered", int(num_informed.sum()) - batch)
    parts.record_budget_spent(metrics)
    return BatchTimes(
        protocol=protocol_name,
        graph_name=graph.name,
        num_vertices=n,
        sources=source_array,
        completed=completed,
        completion_time=completion_time,
        informed_time=times,
        rounds=None,
        steps=steps,
    )


# ---------------------------------------------------------------------- #
# Uniform entry point
# ---------------------------------------------------------------------- #
def run_batch(
    graph: Graph,
    sources: Union[int, Sequence[int], np.ndarray],
    protocol: str = "pp",
    *,
    rngs: Optional[Sequence[np.random.Generator]] = None,
    trials: Optional[int] = None,
    seed: SeedLike = None,
    record_times: bool = True,
    scenario: ScenarioLike = None,
    pooled_rng: Optional[np.random.Generator] = None,
    **options: object,
) -> BatchTimes:
    """Run a batch of trials of any batchable protocol.

    The batched analogue of :func:`repro.core.protocols.spread`: dispatches
    on the canonical protocol name to the synchronous, asynchronous (any of
    the three views), or auxiliary-process batch kernel.  ``options`` are
    forwarded to the kernel (``max_rounds`` / ``max_steps`` / ``max_time`` /
    ``view`` / ``on_budget_exhausted`` / ``backend``).  ``scenario`` applies a
    :mod:`repro.scenarios` adversity model; note that source strategies are
    *not* applied here (``sources`` is explicit — use
    :func:`~repro.analysis.montecarlo.run_trials` or
    :func:`~repro.core.protocols.spread` for that).  ``pooled_rng`` switches
    to the pooled single-generator mode (see the module docstring).
    """
    metrics = current_metrics()
    if metrics is not None:
        metrics.count("engine.kernel_invocations")
    if protocol in AUX_BATCH_PROTOCOLS:
        return run_auxiliary_batch(
            graph,
            sources,
            variant=protocol,
            rngs=rngs,
            trials=trials,
            seed=seed,
            record_times=record_times,
            scenario=scenario,
            pooled_rng=pooled_rng,
            **options,
        )
    if protocol in SYNC_BATCH_PROTOCOLS:
        return run_synchronous_batch(
            graph,
            sources,
            mode=SYNC_BATCH_PROTOCOLS[protocol],
            rngs=rngs,
            trials=trials,
            seed=seed,
            record_times=record_times,
            scenario=scenario,
            pooled_rng=pooled_rng,
            **options,
        )
    if protocol in ASYNC_BATCH_PROTOCOLS:
        view = options.pop("view", "global")
        if view in CLOCK_VIEWS:
            return run_clock_view_batch(
                graph,
                sources,
                mode=ASYNC_BATCH_PROTOCOLS[protocol],
                view=view,
                rngs=rngs,
                trials=trials,
                seed=seed,
                record_times=record_times,
                scenario=scenario,
                pooled_rng=pooled_rng,
                **options,
            )
        if view != "global":
            raise ProtocolError(
                f"unknown asynchronous view {view!r}; expected one of {ASYNC_VIEWS}"
            )
        return run_asynchronous_batch(
            graph,
            sources,
            mode=ASYNC_BATCH_PROTOCOLS[protocol],
            rngs=rngs,
            trials=trials,
            seed=seed,
            record_times=record_times,
            scenario=scenario,
            pooled_rng=pooled_rng,
            **options,
        )
    raise ProtocolError(
        f"protocol {protocol!r} has no batched kernel; batchable protocols: "
        f"{sorted(SYNC_BATCH_PROTOCOLS) + sorted(ASYNC_BATCH_PROTOCOLS) + sorted(AUX_BATCH_PROTOCOLS)}"
    )
