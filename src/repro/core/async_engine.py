"""Asynchronous rumor spreading engines (the paper's ``pp-a`` and friends).

In the asynchronous model every vertex carries an independent Poisson clock
of rate 1.  Whenever the clock of ``v`` ticks, ``v`` contacts a uniformly
random neighbor ``w`` and the rumor is exchanged exactly as in the
synchronous protocol (push, pull, or both), using the informed set at the
instant of the tick.  The rumor spreading time is measured in continuous
time units.

Section 2 of the paper lists three equivalent descriptions of the model, and
this module implements all three so their equivalence can be validated
empirically (experiment E10):

* ``"global"`` — a single Poisson clock of rate ``n``; on every tick a
  uniformly random vertex takes a step.  This is the fastest view (one
  exponential gap and two uniform draws per step) and the default.
* ``"node_clocks"`` — a literal per-vertex clock realised with a priority
  queue of next-tick times.
* ``"edge_clocks"`` — one clock per *ordered* adjacent pair ``(v, w)`` with
  rate ``1 / deg(v)``; on a tick, ``v`` contacts ``w``.

The equivalence follows from the superposition and thinning properties of
Poisson processes plus the memorylessness of the exponential distribution —
precisely the facts the paper quotes.

As with the synchronous engine, this module simulates one trial with full
:class:`~repro.core.result.SpreadingResult` bookkeeping; times-only Monte
Carlo runs of any view should go through :mod:`repro.core.batch_engine` —
:func:`~repro.core.batch_engine.run_asynchronous_batch` batches the
``"global"`` tick loop and
:func:`~repro.core.batch_engine.run_clock_view_batch` batches the
``"node_clocks"``/``"edge_clocks"`` priority queues as per-row argmin
next-event tables — reproducing this engine's results trial-for-trial for
the same per-trial generators.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional

import numpy as np

from repro.core.result import ContactEvent, SpreadingResult
from repro.errors import ProtocolError, ScenarioError, SimulationError
from repro.graphs.base import Graph
from repro.randomness.rng import SeedLike, as_generator
from repro.scenarios.base import Scenario, ScenarioLike, as_scenario

__all__ = [
    "run_asynchronous",
    "default_max_steps",
    "ASYNC_MODES",
    "ASYNC_VIEWS",
]

#: Valid values for the ``mode`` argument.
ASYNC_MODES = ("push", "pull", "push-pull")

#: Valid values for the ``view`` argument.
ASYNC_VIEWS = ("global", "node_clocks", "edge_clocks")

_PROTOCOL_NAMES = {"push": "push-a", "pull": "pull-a", "push-pull": "pp-a"}


def default_max_steps(num_vertices: int) -> int:
    """A generous default step budget.

    The slowest standard case is asynchronous push (or pull) on the star,
    which needs :math:`\\Theta(n \\log n)` time units, i.e.
    :math:`\\Theta(n^2 \\log n)` steps.  The default budget is a constant
    multiple of that, so in practice it is only ever hit for disconnected
    graphs or genuinely pathological inputs.
    """
    n = max(2, num_vertices)
    return int(40 * n * n * max(1.0, math.log(n)) + 20_000)


def _validate(graph: Graph, source: int, mode: str, view: str) -> None:
    if mode not in ASYNC_MODES:
        raise ProtocolError(f"unknown asynchronous mode {mode!r}; expected one of {ASYNC_MODES}")
    if view not in ASYNC_VIEWS:
        raise ProtocolError(f"unknown asynchronous view {view!r}; expected one of {ASYNC_VIEWS}")
    if not (0 <= source < graph.num_vertices):
        raise ProtocolError(
            f"source {source} is not a vertex of {graph.name} (n={graph.num_vertices})"
        )
    if graph.num_vertices > 1 and not graph.is_connected():
        raise ProtocolError(
            f"{graph.name} is not connected; the rumor can never reach every vertex"
        )


def run_asynchronous(
    graph: Graph,
    source: int,
    *,
    mode: str = "push-pull",
    view: str = "global",
    seed: SeedLike = None,
    max_steps: Optional[int] = None,
    max_time: Optional[float] = None,
    record_trace: bool = False,
    on_budget_exhausted: str = "error",
    scenario: ScenarioLike = None,
) -> SpreadingResult:
    """Simulate one run of an asynchronous rumor spreading protocol.

    Args:
        graph: the (connected) graph to spread on.
        source: the initially informed vertex ``u``.
        mode: ``"push"``, ``"pull"``, or ``"push-pull"`` (the paper's
            ``push-a``, ``pull-a`` and ``pp-a``).
        view: which of the three equivalent model descriptions to simulate
            (``"global"``, ``"node_clocks"``, ``"edge_clocks"``).
        seed: RNG seed / generator.
        max_steps: step budget; defaults to :func:`default_max_steps`.
        max_time: optional wall-clock (simulated time) budget; whichever of
            the two budgets is hit first stops the run.
        record_trace: record every contact as a :class:`ContactEvent`.
            Under a scenario the trace records every attempted contact,
            including those suppressed by loss or churn.
        on_budget_exhausted: ``"error"`` raises :class:`SimulationError` when
            the run stops before everyone is informed; ``"partial"`` returns
            the incomplete result.
        scenario: optional adversity scenario (or spec string) from
            :mod:`repro.scenarios`.  Message loss (independent or bursty),
            node churn (random or targeted; state updates once per unit of
            simulated time), dynamic graphs (resampled every ``period``
            time units), and heterogeneous clock rates
            (:class:`~repro.scenarios.Delay`) all apply, under every view.
            The single exception is a dynamic graph under ``"edge_clocks"``
            — resampling the graph would change the per-pair clock set
            itself, so that combination raises
            :class:`~repro.errors.ScenarioError` (use the ``"node_clocks"``
            or ``"global"`` view).  Under the clock-queue views churn never
            stops a clock (a crashed vertex's clocks keep ticking; its
            exchanges are suppressed) and ``Delay`` reweights the per-clock
            rates (vertex ``v`` ticks at rate ``r_v``; pair ``(v, w)`` at
            rate ``r_v / deg(v)``).

    Returns:
        A :class:`SpreadingResult` with continuous informing times; the
        ``steps`` field counts how many clock ticks were simulated.
    """
    _validate(graph, source, mode, view)
    scenario = as_scenario(scenario)
    if (
        scenario is not None
        and scenario.dynamic is not None
        and view == "edge_clocks"
    ):
        raise ScenarioError(
            "dynamic-graph scenarios are not supported under the 'edge_clocks' "
            "view: resampling the graph would change the per-pair clock set "
            "itself; use the 'node_clocks' or 'global' view"
        )
    if on_budget_exhausted not in ("error", "partial"):
        raise ProtocolError(
            f"on_budget_exhausted must be 'error' or 'partial', got {on_budget_exhausted!r}"
        )
    n = graph.num_vertices
    step_budget = default_max_steps(n) if max_steps is None else int(max_steps)
    if step_budget < 0:
        raise ProtocolError(f"max_steps must be non-negative, got {max_steps}")
    time_budget = math.inf if max_time is None else float(max_time)
    if time_budget < 0:
        raise ProtocolError(f"max_time must be non-negative, got {max_time}")

    protocol_name = _PROTOCOL_NAMES[mode]
    if n == 1:
        return SpreadingResult(
            protocol=protocol_name,
            graph_name=graph.name,
            num_vertices=1,
            source=source,
            informed_time=(0.0,),
            parent=(-1,),
            infection_kind=("source",),
            completed=True,
            steps=0,
            push_infections=0,
            pull_infections=0,
            total_contacts=0,
            trace=None,
        )

    rng = as_generator(seed)
    runtime_scenario = (
        scenario if scenario is not None and scenario.runtime_active() else None
    )
    if view == "global":
        if runtime_scenario is not None:
            return _run_global_view_scenario(
                graph,
                source,
                mode,
                rng,
                step_budget,
                time_budget,
                record_trace,
                on_budget_exhausted,
                protocol_name,
                runtime_scenario,
            )
        runner = _run_global_view
        return runner(
            graph,
            source,
            mode,
            rng,
            step_budget,
            time_budget,
            record_trace,
            on_budget_exhausted,
            protocol_name,
        )
    runner = _run_node_clock_view if view == "node_clocks" else _run_edge_clock_view
    return runner(
        graph,
        source,
        mode,
        rng,
        step_budget,
        time_budget,
        record_trace,
        on_budget_exhausted,
        protocol_name,
        runtime_scenario,
    )


# ---------------------------------------------------------------------- #
# Shared per-step rumor exchange logic
# ---------------------------------------------------------------------- #
def _exchange(
    mode: str,
    caller: int,
    callee: int,
    informed: list[bool],
    informed_time: list[float],
    parent: list[int],
    kind: list[Optional[str]],
    now: float,
) -> tuple[Optional[int], Optional[str]]:
    """Apply one contact; returns (vertex informed, kind) or (None, None)."""
    caller_informed = informed[caller]
    callee_informed = informed[callee]
    if caller_informed == callee_informed:
        return None, None
    if caller_informed:
        if mode in ("push", "push-pull"):
            informed[callee] = True
            informed_time[callee] = now
            parent[callee] = caller
            kind[callee] = "push"
            return callee, "push"
        return None, None
    # Caller is uninformed, callee informed: a pull.
    if mode in ("pull", "push-pull"):
        informed[caller] = True
        informed_time[caller] = now
        parent[caller] = callee
        kind[caller] = "pull"
        return caller, "pull"
    return None, None


def _build_result(
    protocol_name: str,
    graph: Graph,
    source: int,
    informed_time: list[float],
    parent: list[int],
    kind: list[Optional[str]],
    steps: int,
    push_infections: int,
    pull_infections: int,
    trace: list[ContactEvent],
    record_trace: bool,
    on_budget_exhausted: str,
    budget_description: str,
    total_contacts: Optional[int] = None,
    adversary_budget_spent: Optional[int] = None,
) -> SpreadingResult:
    completed = all(math.isfinite(t) for t in informed_time)
    if not completed and on_budget_exhausted == "error":
        informed_count = sum(1 for t in informed_time if math.isfinite(t))
        raise SimulationError(
            f"{protocol_name} on {graph.name} informed only {informed_count}/"
            f"{graph.num_vertices} vertices within {budget_description}"
        )
    return SpreadingResult(
        protocol=protocol_name,
        graph_name=graph.name,
        num_vertices=graph.num_vertices,
        source=source,
        informed_time=tuple(informed_time),
        parent=tuple(parent),
        infection_kind=tuple(kind),
        completed=completed,
        steps=steps,
        push_infections=push_infections,
        pull_infections=pull_infections,
        total_contacts=steps if total_contacts is None else total_contacts,
        adversary_budget_spent=adversary_budget_spent,
        trace=tuple(trace) if record_trace else None,
    )


# ---------------------------------------------------------------------- #
# View 1: single global Poisson clock of rate n
# ---------------------------------------------------------------------- #
def _run_global_view(
    graph: Graph,
    source: int,
    mode: str,
    rng: np.random.Generator,
    step_budget: int,
    time_budget: float,
    record_trace: bool,
    on_budget_exhausted: str,
    protocol_name: str,
) -> SpreadingResult:
    n = graph.num_vertices
    adjacency = graph.adjacency
    degrees = graph.degrees

    informed = [False] * n
    informed[source] = True
    informed_time = [math.inf] * n
    informed_time[source] = 0.0
    parent = [-1] * n
    kind: list[Optional[str]] = [None] * n
    kind[source] = "source"

    push_infections = 0
    pull_infections = 0
    trace: list[ContactEvent] = []

    now = 0.0
    steps = 0
    num_informed = 1
    batch_size = 4096
    scale = 1.0 / n  # mean gap of the rate-n global clock

    while num_informed < n and steps < step_budget and now <= time_budget:
        remaining = step_budget - steps
        this_batch = min(batch_size, remaining)
        gaps = rng.exponential(scale, this_batch).tolist()
        callers = rng.integers(0, n, this_batch).tolist()
        neighbor_uniforms = rng.random(this_batch).tolist()
        for gap, caller, u in zip(gaps, callers, neighbor_uniforms):
            now += gap
            if now > time_budget:
                break
            steps += 1
            degree = degrees[caller]
            callee = adjacency[caller][min(int(u * degree), degree - 1)]
            informed_vertex, event_kind = _exchange(
                mode, caller, callee, informed, informed_time, parent, kind, now
            )
            if event_kind == "push":
                push_infections += 1
                num_informed += 1
            elif event_kind == "pull":
                pull_infections += 1
                num_informed += 1
            if record_trace:
                trace.append(
                    ContactEvent(
                        time=now,
                        caller=caller,
                        callee=callee,
                        informed=informed_vertex,
                        kind=event_kind,
                    )
                )
            if num_informed == n:
                break

    return _build_result(
        protocol_name,
        graph,
        source,
        informed_time,
        parent,
        kind,
        steps,
        push_infections,
        pull_infections,
        trace,
        record_trace,
        on_budget_exhausted,
        f"{step_budget} steps / time {time_budget}",
    )


# ---------------------------------------------------------------------- #
# View 1 under an adversity scenario (kept separate so the unperturbed hot
# path above stays byte-for-byte identical to the PR-1 pinned draw order)
# ---------------------------------------------------------------------- #
def _run_global_view_scenario(
    graph: Graph,
    source: int,
    mode: str,
    rng: np.random.Generator,
    step_budget: int,
    time_budget: float,
    record_trace: bool,
    on_budget_exhausted: str,
    protocol_name: str,
    scenario: Scenario,
) -> SpreadingResult:
    """The global view with loss / churn / dynamic-graph / delay effects.

    Per-trial randomness order (mirrored exactly by the batched kernel in
    :mod:`repro.core.batch_engine`):

    1. ``Delay`` rates, once, before any tick randomness;
    2. per refill chunk: exponential gaps, caller draws (``integers`` without
       delay, uniforms with), neighbor uniforms, loss uniforms (if a loss or
       burst-loss component is present);
    3. interleaved at consumption time: per unit-time epoch boundary
       crossed, one ``rng.random(n)`` churn update (for churn models with
       per-epoch randomness) then one scalar burst-channel draw; and the
       resampler's own draws at each dynamic-graph period boundary (the
       epoch fires before a resample on ties).
    """
    n = graph.num_vertices
    current_graph = graph
    adjacency = graph.adjacency
    degrees = graph.degrees

    loss_prob = scenario.loss_prob
    burst = scenario.burst
    churn = scenario.churn
    dynamic = scenario.dynamic
    delay = scenario.delay
    adaptive_loss = scenario.adaptive_loss
    lossy = loss_prob > 0.0 or burst is not None or adaptive_loss is not None

    cum_rates = None
    total_rate = float(n)
    if delay is not None:
        rates = delay.draw_rates(graph, rng)
        cum_rates = np.cumsum(rates)
        total_rate = float(cum_rates[-1])
    scale = 1.0 / total_rate  # mean gap of the superposed clock

    up: Optional[np.ndarray] = churn.initial_up(graph) if churn is not None else None
    churn_updates = churn is not None and churn.epoch_draws
    adaptive_churn = churn is not None and churn.adaptive
    crash_order = churn.ranking(graph) if adaptive_churn else None
    crash_budget = churn.budget if adaptive_churn else 0
    jam_budget = adaptive_loss.budget if adaptive_loss is not None else 0
    bad = False
    current_loss = loss_prob
    next_epoch = (
        1.0 if (churn_updates or adaptive_churn or burst is not None) else math.inf
    )
    next_resample = float(dynamic.period) if dynamic is not None else math.inf

    informed = [False] * n
    informed[source] = True
    informed_time = [math.inf] * n
    informed_time[source] = 0.0
    parent = [-1] * n
    kind: list[Optional[str]] = [None] * n
    kind[source] = "source"

    push_infections = 0
    pull_infections = 0
    trace: list[ContactEvent] = []

    now = 0.0
    steps = 0
    total_contacts = 0
    num_informed = 1
    batch_size = 4096

    while num_informed < n and steps < step_budget and now <= time_budget:
        remaining = step_budget - steps
        this_batch = min(batch_size, remaining)
        gaps = rng.exponential(scale, this_batch).tolist()
        if delay is not None:
            caller_draws = rng.random(this_batch).tolist()
        else:
            caller_draws = rng.integers(0, n, this_batch).tolist()
        neighbor_uniforms = rng.random(this_batch).tolist()
        loss_uniforms = rng.random(this_batch).tolist() if lossy else None
        for index in range(this_batch):
            now += gaps[index]
            if now > time_budget:
                break
            # Boundaries crossed in (previous tick, now] fire before the
            # exchange at `now`, in chronological order (epoch updates —
            # churn then burst — before a resample on ties).
            while True:
                boundary = min(next_epoch, next_resample)
                if boundary > now:
                    break
                if next_epoch <= next_resample:
                    if churn_updates:
                        # repro: allow[RNG002] -- epoch schedule is deterministic in time, not in drawn values; every engine fires the identical boundary interleave
                        up = churn.step(up, rng.random(n))
                    elif adaptive_churn:
                        # The adaptive adversary observes the informed set at
                        # the epoch boundary and crashes deterministically —
                        # no draw, so the RNG stream matches the oblivious
                        # engines'.
                        crash_budget -= churn.crash_step(
                            up, np.asarray(informed, dtype=bool), crash_order, crash_budget
                        )
                    if burst is not None:
                        # repro: allow[RNG002] -- epoch schedule is deterministic in time, not in drawn values; every engine fires the identical boundary interleave
                        bad = bool(burst.step_state(bad, rng.random()))
                        current_loss = float(burst.loss_at(bad))
                    next_epoch += 1.0
                else:
                    current_graph = dynamic.resample(current_graph, rng)
                    adjacency = current_graph.adjacency
                    degrees = current_graph.degrees
                    next_resample += float(dynamic.period)
            steps += 1
            if cum_rates is not None:
                caller = min(
                    int(np.searchsorted(cum_rates, caller_draws[index] * total_rate, side="right")),
                    n - 1,
                )
            else:
                caller = caller_draws[index]
            degree = degrees[caller]
            callee = adjacency[caller][min(int(neighbor_uniforms[index] * degree), degree - 1)]
            if up is None or up[caller]:
                # A crashed caller initiates nothing (matching the sync
                # engine's contact accounting); lost messages still count —
                # the contact happened, the payload didn't arrive.
                total_contacts += 1
            down = up is not None and not (up[caller] and up[callee])
            if adaptive_loss is not None:
                # Jam only would-transmit contacts (informative direction
                # between two up vertices); the loss uniform is consumed
                # unconditionally so the draw order never depends on state.
                if mode == "push-pull":
                    informative = informed[caller] != informed[callee]
                elif mode == "push":
                    informative = informed[caller] and not informed[callee]
                else:
                    informative = not informed[caller] and informed[callee]
                jam = (
                    not down
                    and informative
                    and jam_budget > 0
                    and loss_uniforms[index] < adaptive_loss.p
                )
                if jam:
                    jam_budget -= 1
                suppressed = down or jam
            else:
                suppressed = (
                    loss_uniforms is not None and loss_uniforms[index] < current_loss
                ) or down
            if suppressed:
                informed_vertex, event_kind = None, None
            else:
                informed_vertex, event_kind = _exchange(
                    mode, caller, callee, informed, informed_time, parent, kind, now
                )
            if event_kind == "push":
                push_infections += 1
                num_informed += 1
            elif event_kind == "pull":
                pull_infections += 1
                num_informed += 1
            if record_trace:
                trace.append(
                    ContactEvent(
                        time=now,
                        caller=caller,
                        callee=callee,
                        informed=informed_vertex,
                        kind=event_kind,
                    )
                )
            if num_informed == n:
                break

    return _build_result(
        protocol_name,
        graph,
        source,
        informed_time,
        parent,
        kind,
        steps,
        push_infections,
        pull_infections,
        trace,
        record_trace,
        on_budget_exhausted,
        f"{step_budget} steps / time {time_budget} under {scenario.spec()}",
        total_contacts=total_contacts,
        adversary_budget_spent=(
            (churn.budget if adaptive_churn else 0)
            + (adaptive_loss.budget if adaptive_loss is not None else 0)
            - crash_budget
            - jam_budget
        )
        if adaptive_churn or adaptive_loss is not None
        else None,
    )


# ---------------------------------------------------------------------- #
# Shared scenario state for the clock-queue views
# ---------------------------------------------------------------------- #
class _ClockScenarioState:
    """Per-trial scenario bookkeeping shared by both clock-queue runners.

    Per-trial randomness order (mirrored exactly by
    :func:`repro.core.batch_engine.run_clock_view_batch`):

    1. ``Delay`` rates, once, before the initial next-tick block;
    2. the initial next-tick block (``rng.exponential(1 / r_v, n)`` for
       ``node_clocks``; one per-pair block with scale ``deg(v) / r_v`` in
       CSR pair order for ``edge_clocks``);
    3. per tick popped at time ``now``: every boundary crossed in
       (previous tick, now] fires chronologically — per epoch one
       ``rng.random(n)`` churn update (for churn models with per-epoch
       randomness) then one scalar burst draw; per dynamic-graph period
       boundary the resampler's own draws (epoch before resample on ties;
       clocks are never redrawn — ``node_clocks`` clocks are graph
       independent, and ``edge_clocks`` rejects dynamic graphs);
    4. the tick's own draws, in order: neighbor uniform (``node_clocks``
       only), loss uniform (whenever a loss or burst-loss component is
       present), reschedule exponential.
    """

    __slots__ = (
        "loss_prob", "burst", "churn", "dynamic", "delay", "lossy", "rates",
        "up", "churn_updates", "bad", "current_loss", "next_epoch",
        "next_resample", "current_graph", "total_contacts", "mode",
        "adaptive_loss", "adaptive_churn", "crash_order", "crash_budget",
        "jam_budget",
    )

    def __init__(
        self,
        graph: Graph,
        scenario: Optional[Scenario],
        rng: np.random.Generator,
        mode: str = "push-pull",
    ) -> None:
        self.loss_prob = scenario.loss_prob if scenario is not None else 0.0
        self.burst = scenario.burst if scenario is not None else None
        self.churn = scenario.churn if scenario is not None else None
        self.dynamic = scenario.dynamic if scenario is not None else None
        self.delay = scenario.delay if scenario is not None else None
        self.adaptive_loss = (
            scenario.adaptive_loss if scenario is not None else None
        )
        self.lossy = (
            self.loss_prob > 0.0
            or self.burst is not None
            or self.adaptive_loss is not None
        )
        self.mode = mode
        # Delay rates are the first randomness the trial consumes.
        self.rates = (
            self.delay.draw_rates(graph, rng) if self.delay is not None else None
        )
        self.up = self.churn.initial_up(graph) if self.churn is not None else None
        self.churn_updates = self.churn is not None and self.churn.epoch_draws
        self.adaptive_churn = self.churn is not None and self.churn.adaptive
        self.crash_order = (
            self.churn.ranking(graph) if self.adaptive_churn else None
        )
        self.crash_budget = self.churn.budget if self.adaptive_churn else 0
        self.jam_budget = (
            self.adaptive_loss.budget if self.adaptive_loss is not None else 0
        )
        self.bad = False
        self.current_loss = self.loss_prob
        self.next_epoch = (
            1.0
            if (self.churn_updates or self.adaptive_churn or self.burst is not None)
            else math.inf
        )
        self.next_resample = (
            float(self.dynamic.period) if self.dynamic is not None else math.inf
        )
        self.current_graph = graph
        self.total_contacts = 0

    def budget_spent(self) -> Optional[int]:
        """Adaptive budget consumed so far (``None`` without adaptive parts)."""
        if not self.adaptive_churn and self.adaptive_loss is None:
            return None
        initial = (self.churn.budget if self.adaptive_churn else 0) + (
            self.adaptive_loss.budget if self.adaptive_loss is not None else 0
        )
        return initial - self.crash_budget - self.jam_budget

    def cross_boundaries(
        self,
        now: float,
        n: int,
        rng: np.random.Generator,
        informed: Optional[list] = None,
    ) -> bool:
        """Fire every epoch/resample boundary in (previous tick, now].

        Returns whether a resample occurred (the caller must refresh its
        adjacency view).
        """
        resampled = False
        while True:
            boundary = min(self.next_epoch, self.next_resample)
            if boundary > now:
                return resampled
            if self.next_epoch <= self.next_resample:
                if self.churn_updates:
                    self.up = self.churn.step(self.up, rng.random(n))
                elif self.adaptive_churn:
                    # Deterministic crash on the observed informed set — no
                    # draw, so the RNG stream matches the oblivious engines'.
                    self.crash_budget -= self.churn.crash_step(
                        self.up,
                        np.asarray(informed, dtype=bool),
                        self.crash_order,
                        self.crash_budget,
                    )
                if self.burst is not None:
                    self.bad = bool(self.burst.step_state(self.bad, rng.random()))
                    self.current_loss = float(self.burst.loss_at(self.bad))
                self.next_epoch += 1.0
            else:
                self.current_graph = self.dynamic.resample(self.current_graph, rng)
                self.next_resample += float(self.dynamic.period)
                resampled = True

    def suppresses(
        self,
        caller: int,
        callee: int,
        rng: np.random.Generator,
        informed: Optional[list] = None,
    ) -> bool:
        """Consume the tick's loss draw and apply the loss/churn masks.

        Also maintains the caller-must-be-up contact accounting (matching
        the global view's scenario runner).
        """
        if self.up is None or self.up[caller]:
            self.total_contacts += 1
        down = self.up is not None and not (self.up[caller] and self.up[callee])
        if self.adaptive_loss is not None:
            # The loss uniform is consumed unconditionally so the draw order
            # never depends on protocol state; it only jams would-transmit
            # contacts while budget remains.
            draw = rng.random()
            if self.mode == "push-pull":
                informative = informed[caller] != informed[callee]
            elif self.mode == "push":
                informative = informed[caller] and not informed[callee]
            else:
                informative = not informed[caller] and informed[callee]
            jam = (
                not down
                and informative
                and self.jam_budget > 0
                and draw < self.adaptive_loss.p
            )
            if jam:
                self.jam_budget -= 1
            return down or jam
        lost = self.lossy and rng.random() < self.current_loss
        return lost or down


# ---------------------------------------------------------------------- #
# View 2: one Poisson clock of rate 1 per vertex (priority queue)
# ---------------------------------------------------------------------- #
def _run_node_clock_view(
    graph: Graph,
    source: int,
    mode: str,
    rng: np.random.Generator,
    step_budget: int,
    time_budget: float,
    record_trace: bool,
    on_budget_exhausted: str,
    protocol_name: str,
    scenario: Optional[Scenario] = None,
) -> SpreadingResult:
    n = graph.num_vertices
    state = (
        _ClockScenarioState(graph, scenario, rng, mode)
        if scenario is not None
        else None
    )
    adjacency = graph.adjacency
    degrees = graph.degrees

    informed = [False] * n
    informed[source] = True
    informed_time = [math.inf] * n
    informed_time[source] = 0.0
    parent = [-1] * n
    kind: list[Optional[str]] = [None] * n
    kind[source] = "source"

    push_infections = 0
    pull_infections = 0
    trace: list[ContactEvent] = []

    if state is not None and state.rates is not None:
        # Vertex v ticks at rate r_v: gaps are Exp(1 / r_v).
        scales = 1.0 / state.rates
        first_ticks = rng.exponential(scales)
    else:
        scales = None
        first_ticks = rng.exponential(1.0, n)
    heap: list[tuple[float, int]] = [(float(first_ticks[v]), v) for v in range(n)]
    heapq.heapify(heap)

    steps = 0
    num_informed = 1
    now = 0.0
    while num_informed < n and steps < step_budget:
        now, caller = heapq.heappop(heap)
        if now > time_budget:
            break
        if state is not None and state.cross_boundaries(now, n, rng, informed):
            adjacency = state.current_graph.adjacency
            degrees = state.current_graph.degrees
        steps += 1
        degree = degrees[caller]
        callee = adjacency[caller][min(int(rng.random() * degree), degree - 1)]
        if state is not None and state.suppresses(caller, callee, rng, informed):
            informed_vertex, event_kind = None, None
        else:
            informed_vertex, event_kind = _exchange(
                mode, caller, callee, informed, informed_time, parent, kind, now
            )
        if event_kind == "push":
            push_infections += 1
            num_informed += 1
        elif event_kind == "pull":
            pull_infections += 1
            num_informed += 1
        if record_trace:
            trace.append(
                ContactEvent(
                    time=now,
                    caller=caller,
                    callee=callee,
                    informed=informed_vertex,
                    kind=event_kind,
                )
            )
        reschedule_scale = 1.0 if scales is None else float(scales[caller])
        heapq.heappush(heap, (now + float(rng.exponential(reschedule_scale)), caller))

    return _build_result(
        protocol_name,
        graph,
        source,
        informed_time,
        parent,
        kind,
        steps,
        push_infections,
        pull_infections,
        trace,
        record_trace,
        on_budget_exhausted,
        f"{step_budget} steps / time {time_budget}"
        + (f" under {scenario.spec()}" if scenario is not None else ""),
        total_contacts=state.total_contacts if state is not None else None,
        adversary_budget_spent=state.budget_spent() if state is not None else None,
    )


# ---------------------------------------------------------------------- #
# View 3: one Poisson clock of rate 1/deg(v) per ordered pair (v, w)
# ---------------------------------------------------------------------- #
def _run_edge_clock_view(
    graph: Graph,
    source: int,
    mode: str,
    rng: np.random.Generator,
    step_budget: int,
    time_budget: float,
    record_trace: bool,
    on_budget_exhausted: str,
    protocol_name: str,
    scenario: Optional[Scenario] = None,
) -> SpreadingResult:
    n = graph.num_vertices
    state = (
        _ClockScenarioState(graph, scenario, rng, mode)
        if scenario is not None
        else None
    )

    informed = [False] * n
    informed[source] = True
    informed_time = [math.inf] * n
    informed_time[source] = 0.0
    parent = [-1] * n
    kind: list[Optional[str]] = [None] * n
    kind[source] = "source"

    push_infections = 0
    pull_infections = 0
    trace: list[ContactEvent] = []

    # Ordered pairs (v, w) for every edge {v, w}: clock rate 1/deg(v) means
    # the inter-tick times have mean deg(v) — or deg(v)/r_v under a Delay,
    # so v's pair clocks still superpose to v's own rate r_v.
    rates = state.rates if state is not None else None
    ordered_pairs: list[tuple[int, int]] = []
    pair_scales: list[float] = []
    for v in range(n):
        scale = graph.degree(v) if rates is None else graph.degree(v) / float(rates[v])
        for w in graph.neighbors(v):
            ordered_pairs.append((v, w))
            pair_scales.append(scale)
    heap: list[tuple[float, int]] = []
    for index in range(len(ordered_pairs)):
        first = float(rng.exponential(pair_scales[index]))
        heap.append((first, index))
    heapq.heapify(heap)

    steps = 0
    num_informed = 1
    now = 0.0
    while num_informed < n and steps < step_budget and heap:
        now, pair_index = heapq.heappop(heap)
        if now > time_budget:
            break
        if state is not None:
            state.cross_boundaries(now, n, rng, informed)  # dynamic rejected upstream
        steps += 1
        caller, callee = ordered_pairs[pair_index]
        if state is not None and state.suppresses(caller, callee, rng, informed):
            informed_vertex, event_kind = None, None
        else:
            informed_vertex, event_kind = _exchange(
                mode, caller, callee, informed, informed_time, parent, kind, now
            )
        if event_kind == "push":
            push_infections += 1
            num_informed += 1
        elif event_kind == "pull":
            pull_infections += 1
            num_informed += 1
        if record_trace:
            trace.append(
                ContactEvent(
                    time=now,
                    caller=caller,
                    callee=callee,
                    informed=informed_vertex,
                    kind=event_kind,
                )
            )
        heapq.heappush(
            heap, (now + float(rng.exponential(pair_scales[pair_index])), pair_index)
        )

    return _build_result(
        protocol_name,
        graph,
        source,
        informed_time,
        parent,
        kind,
        steps,
        push_infections,
        pull_infections,
        trace,
        record_trace,
        on_budget_exhausted,
        f"{step_budget} steps / time {time_budget}"
        + (f" under {scenario.spec()}" if scenario is not None else ""),
        total_contacts=state.total_contacts if state is not None else None,
        adversary_budget_spent=state.budget_spent() if state is not None else None,
    )
