"""Experiment E6 — classical topologies: both models agree within constant factors.

The introduction cites hypercubes, Erdős–Rényi random graphs and random
regular graphs as families where synchronous and asynchronous push–pull have
the same spreading time up to constants (Fill & Pemantle; Amini, Draief &
Lelarge; Fountoulakis & Panagiotou; Panagiotou & Speidel; Janson).

The experiment measures both protocols on those families across sizes,
reports the per-size ratio of expected times, and checks (a) the ratio stays
in a constant band, and (b) both times fit a logarithmic growth curve.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.comparison import sweep_family
from repro.analysis.scaling import fit_logarithmic
from repro.experiments.presets import get_preset
from repro.experiments.records import ExperimentResult
from repro.randomness.rng import SeedLike

__all__ = ["run", "DEFAULT_FAMILIES"]

DEFAULT_FAMILIES: tuple[str, ...] = ("hypercube", "erdos_renyi", "random_regular_3", "complete")


def run(
    preset: str = "quick",
    *,
    seed: SeedLike = 20160730,
    families: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Run experiment E6 and return its result table."""
    config = get_preset(preset)
    family_names = tuple(families) if families is not None else DEFAULT_FAMILIES
    size_sweep = tuple(sizes) if sizes is not None else config.sizes

    rows: list[dict[str, object]] = []
    all_ratios: list[float] = []
    log_fit_r2: list[float] = []

    for family_name in family_names:
        sweep = sweep_family(
            family_name,
            ["pp", "pp-a"],
            sizes=size_sweep,
            trials=config.trials,
            seed=seed,
            ratios=[("pp", "pp-a")],
        )
        sizes_seen: list[int] = []
        sync_means: list[float] = []
        for comparison in sweep.comparisons:
            n = comparison.num_vertices
            sync_mean = comparison.measurement("pp").mean.value
            async_mean = comparison.measurement("pp-a").mean.value
            ratio = comparison.ratios["pp/pp-a"].value
            all_ratios.append(ratio)
            sizes_seen.append(n)
            sync_means.append(sync_mean)
            rows.append(
                {
                    "family": family_name,
                    "n": n,
                    "E[T(pp)]": sync_mean,
                    "E[T(pp-a)]": async_mean,
                    "ratio sync/async": ratio,
                }
            )
        if len(sizes_seen) >= 2:
            log_fit_r2.append(fit_logarithmic(sizes_seen, sync_means).r_squared)

    conclusions = {
        "min_ratio": min(all_ratios),
        "max_ratio": max(all_ratios),
        "ratio_band_width": max(all_ratios) / max(min(all_ratios), 1e-9),
        "constant_factor_agreement": max(all_ratios) / max(min(all_ratios), 1e-9) < 4.0,
        "mean_logarithmic_fit_r2": sum(log_fit_r2) / len(log_fit_r2) if log_fit_r2 else float("nan"),
    }
    notes = [
        f"preset={config.name}, trials={config.trials} per cell, sizes={list(size_sweep)}",
        "Cited literature: both models are Theta(log n) on these families, so the sync/async ratio "
        "should sit in a narrow constant band across sizes",
    ]
    return ExperimentResult(
        experiment_id="E6",
        title="Classical graphs (hypercube, G(n,p), random regular): constant-factor agreement",
        claim="On hypercubes, random graphs and random regular graphs, sync and async push-pull times agree within constant factors",
        columns=["family", "n", "E[T(pp)]", "E[T(pp-a)]", "ratio sync/async"],
        rows=rows,
        conclusions=conclusions,
        notes=notes,
    )
