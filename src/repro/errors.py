"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the library can catch a single base class.  More
specific subclasses communicate which subsystem rejected the input:

* :class:`GraphError` — malformed or unsupported graph structures.
* :class:`GraphGenerationError` — a generator was asked for parameters it
  cannot satisfy (e.g. a random regular graph with ``n * d`` odd).
* :class:`ProtocolError` — a rumor-spreading engine was configured or driven
  incorrectly (unknown protocol name, source vertex not in the graph, ...).
* :class:`SimulationError` — a simulation failed at run time (e.g. the step
  budget was exhausted before the rumor reached every vertex).
* :class:`AnalysisError` — statistical post-processing received unusable
  inputs (empty samples, impossible quantiles, ...).
* :class:`ExperimentError` — the experiment harness was asked for an unknown
  experiment or given an invalid configuration.
* :class:`ScenarioError` — an adversity scenario (message loss, churn, ...)
  was configured, composed, or applied to a protocol incorrectly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A graph structure is malformed or unsupported for the operation."""


class GraphGenerationError(GraphError):
    """A graph generator received parameters it cannot satisfy."""


class ProtocolError(ReproError):
    """A rumor-spreading protocol was configured or invoked incorrectly."""


class SimulationError(ReproError):
    """A simulation run failed (e.g. exceeded its step or round budget)."""


class AnalysisError(ReproError):
    """Statistical analysis received invalid or insufficient input."""


class ExperimentError(ReproError):
    """The experiment harness was configured or invoked incorrectly."""


class CouplingError(ReproError):
    """A coupling construction was driven with inconsistent inputs."""


class ScenarioError(ReproError):
    """An adversity scenario was configured or combined incorrectly."""
