"""Unit tests for the gap-graph constructions."""

from __future__ import annotations

import pytest

from repro.errors import GraphGenerationError
from repro.graphs import gap_graphs


class TestStringOfStars:
    def test_vertex_and_edge_counts(self):
        graph = gap_graphs.string_of_stars_graph(chain_length=3, bundle_size=5)
        # 4 hubs + 3*5 leaves.
        assert graph.num_vertices == 4 + 15
        # Each leaf contributes two edges.
        assert graph.num_edges == 2 * 15
        assert graph.is_connected()

    def test_hub_and_leaf_degrees(self):
        graph = gap_graphs.string_of_stars_graph(chain_length=3, bundle_size=5)
        # End hubs touch one bundle, middle hubs touch two.
        assert graph.degree(0) == 5
        assert graph.degree(3) == 5
        assert graph.degree(1) == 10
        assert graph.degree(2) == 10
        # Leaves have degree exactly 2.
        for leaf in range(4, graph.num_vertices):
            assert graph.degree(leaf) == 2

    def test_leaves_connect_consecutive_hubs_only(self):
        graph = gap_graphs.string_of_stars_graph(chain_length=2, bundle_size=3)
        for leaf in range(3, graph.num_vertices):
            hubs = sorted(graph.neighbors(leaf))
            assert len(hubs) == 2
            assert hubs[1] - hubs[0] == 1  # consecutive hubs

    def test_parameter_validation(self):
        with pytest.raises(GraphGenerationError):
            gap_graphs.string_of_stars_graph(0, 5)
        with pytest.raises(GraphGenerationError):
            gap_graphs.string_of_stars_graph(3, 0)


class TestGapGraphFactories:
    def test_async_favoring_size_is_near_requested(self):
        graph = gap_graphs.async_favoring_gap_graph(500)
        assert 0.6 * 500 <= graph.num_vertices <= 1.2 * 500
        assert graph.is_connected()

    def test_async_favoring_rejects_tiny_n(self):
        with pytest.raises(GraphGenerationError):
            gap_graphs.async_favoring_gap_graph(8)

    def test_sync_favoring_is_a_star(self):
        graph = gap_graphs.sync_favoring_gap_graph(50)
        assert graph.num_vertices == 50
        assert graph.degree(0) == 49
        assert graph.max_degree() == 49

    def test_balanced_suite_contains_both_directions(self):
        suite = gap_graphs.balanced_gap_suite(200)
        assert set(suite) == {"async_favoring", "sync_favoring"}
        assert all(graph.is_connected() for graph in suite.values())

    def test_balanced_suite_rejects_tiny_n(self):
        with pytest.raises(GraphGenerationError):
            gap_graphs.balanced_gap_suite(4)


class TestBackOfEnvelopeEstimates:
    def test_sync_estimate_grows_with_chain_only(self):
        short = gap_graphs.expected_sync_rounds_string_of_stars(4, 100)
        long = gap_graphs.expected_sync_rounds_string_of_stars(16, 100)
        assert long > short
        # Bundle size does not change the synchronous estimate.
        assert gap_graphs.expected_sync_rounds_string_of_stars(4, 10) == pytest.approx(short)

    def test_async_estimate_shrinks_with_bundle(self):
        narrow = gap_graphs.expected_async_time_string_of_stars(8, 4)
        wide = gap_graphs.expected_async_time_string_of_stars(8, 400)
        assert wide < narrow

    def test_estimates_predict_a_growing_gap(self):
        """The sync/async estimate ratio should grow as the construction scales."""
        ratios = []
        for n in (200, 2000, 20000):
            chain = round(n ** (1 / 3))
            bundle = max(2, n // chain)
            sync = gap_graphs.expected_sync_rounds_string_of_stars(chain, bundle)
            asynchronous = gap_graphs.expected_async_time_string_of_stars(chain, bundle)
            ratios.append(sync / asynchronous)
        assert ratios[0] < ratios[1] < ratios[2]
