#!/usr/bin/env python3
"""Information dissemination in social-network models: why asynchrony helps.

Run with::

    python examples/social_network_dissemination.py

The paper motivates the asynchronous model with rumor spreading in social
networks: on Chung–Lu power-law graphs and preferential-attachment graphs the
asynchronous push–pull protocol informs a large fraction of the vertices
noticeably faster than the synchronous one (Fountoulakis–Panagiotou–Sauerwald;
Doerr–Fouz–Friedrich).  This example measures the time to reach 50%, 90% and
100% coverage under both models and prints the speed-up factors.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_sparkline, coverage_curve, run_trials
from repro.analysis.montecarlo import collect_results
from repro.experiments.records import format_table
from repro.graphs import power_law_chung_lu_graph, preferential_attachment_graph

COVERAGE = (0.5, 0.9, 1.0)


def measure(graph, trials: int, seed: int) -> dict[str, object]:
    row: dict[str, object] = {"graph": graph.name, "n": graph.num_vertices}
    samples = {
        protocol: run_trials(
            graph, "random", protocol, trials=trials, seed=seed + index, fractions=COVERAGE
        )
        for index, protocol in enumerate(("pp", "pp-a"))
    }
    for level in COVERAGE:
        sync_mean = float(np.mean(samples["pp"].fraction_times[level]))
        async_mean = float(np.mean(samples["pp-a"].fraction_times[level]))
        row[f"speedup@{int(level * 100)}%"] = sync_mean / async_mean
    return row


def show_trajectories(graph, trials: int = 40, seed: int = 300) -> None:
    """Render the mean coverage trajectory of both protocols as sparklines.

    Both curves are drawn on a normalised time axis (0 .. completion), so the
    shapes are comparable: the asynchronous curve rises much earlier.
    """
    print(f"\nCoverage trajectories on {graph.name} (normalised time axis):")
    for protocol in ("pp", "pp-a"):
        runs = collect_results(graph, 0, protocol, trials=trials, seed=seed)
        curve = coverage_curve(runs, grid_points=120)
        print(f"  {protocol:>5} |{ascii_sparkline(curve.mean_fraction, width=60)}|")


def main() -> None:
    rows = []
    graphs_built = []
    for builder, seed in (
        (lambda: power_law_chung_lu_graph(600, exponent=2.5, seed=11), 100),
        (lambda: preferential_attachment_graph(600, edges_per_vertex=2, seed=13), 200),
    ):
        graph = builder()
        graphs_built.append(graph)
        rows.append(measure(graph, trials=80, seed=seed))
    print("Speed-up = E[time for synchronous pp] / E[time for asynchronous pp-a]\n")
    print(format_table(["graph", "n", "speedup@50%", "speedup@90%", "speedup@100%"], rows))
    show_trajectories(graphs_built[1])
    print(
        "\nThe asynchronous advantage is largest for partial coverage (50%/90%): hubs are\n"
        "contacted at high rate early in continuous time, while the synchronous protocol\n"
        "pays a full round even when only a handful of useful contacts happen in it.\n"
        "Informing the very last vertices is comparable in both models, consistent with\n"
        "Theorem 1's guarantee that asynchrony never loses more than an additive O(log n)."
    )


if __name__ == "__main__":
    main()
