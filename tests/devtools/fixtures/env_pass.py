"""Must-pass ENV001: declared knobs read through the typed helpers."""

from repro import config


def declared_reads():
    backend = config.read_env("REPRO_KERNEL_BACKEND")
    workers = config.read_env("REPRO_MAX_WORKERS")
    retries = config.read_int("REPRO_CHUNK_RETRIES", 2)
    return backend, workers, retries
