"""The registry-driven serial-vs-batch equivalence gate.

Every batched kernel registers its settings in
``tests/helpers/equivalence.KERNEL_CASES``; this suite replays each one
through the shared trial-for-trial assertion — once per kernel backend,
since the per-trial RNG modes promise bit-identical results under both
``"numpy"`` and ``"jit"`` (see :mod:`repro.core.kernels`).  A kernel that
is not in the registry is not covered by the gate — add cases when adding
kernels.  The jit legs skip cleanly when numba is not installed (the
default CI job stays numba-free; the ``jit-kernels`` job runs them).
"""

from __future__ import annotations

import pytest

from helpers.equivalence import (
    KERNEL_CASES,
    PARALLEL_CASES,
    assert_kernel_case,
    assert_parallel_case,
    case_ids,
)
from repro.core.batch_engine import (
    ASYNC_BATCH_PROTOCOLS,
    AUX_BATCH_PROTOCOLS,
    CLOCK_VIEWS,
    SYNC_BATCH_PROTOCOLS,
)
from repro.core.kernels import jit_backend

BACKENDS = [
    "numpy",
    pytest.param(
        "jit",
        marks=pytest.mark.skipif(
            not jit_backend.is_available(),
            reason="numba is not installed (and REPRO_JIT_PURE_PYTHON is unset)",
        ),
    ),
]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", KERNEL_CASES, ids=case_ids(KERNEL_CASES))
def test_registered_kernel_matches_serial(case, backend):
    assert_kernel_case(case, backend=backend)


@pytest.mark.parametrize("case", PARALLEL_CASES, ids=case_ids(PARALLEL_CASES))
def test_registered_parallel_transports_agree(case):
    """The PR-4 gate: parallel="shared" ≡ parallel="pickle" ≡ serial replay."""
    assert_parallel_case(case)


def test_parallel_registry_covers_both_transports():
    """The registry must stay non-empty and exercise coverage fractions,
    scenarios, and a non-default asynchronous view at least once."""
    assert PARALLEL_CASES
    assert any(case.fractions for case in PARALLEL_CASES)
    assert any(case.scenario is not None for case in PARALLEL_CASES)
    assert any(dict(case.engine_options).get("view") for case in PARALLEL_CASES)


def test_registry_covers_every_batched_kernel():
    """Every protocol (and every asynchronous view) with a batched kernel
    must have at least one registered equivalence case."""
    covered_protocols = {case.protocol for case in KERNEL_CASES}
    expected = (
        set(SYNC_BATCH_PROTOCOLS) | set(ASYNC_BATCH_PROTOCOLS) | set(AUX_BATCH_PROTOCOLS)
    )
    assert expected <= covered_protocols
    covered_views = {
        case.options().get("view", "global")
        for case in KERNEL_CASES
        if case.protocol in ASYNC_BATCH_PROTOCOLS
    }
    assert {"global", *CLOCK_VIEWS} <= covered_views


def _scenario_categories(scenario) -> set:
    """The perturbation categories a registered case's scenario exercises."""
    if scenario is None:
        return set()
    categories = set()
    if scenario.burst is not None:
        categories.add("burst-loss")
    elif scenario.adaptive_loss is not None:
        categories.add("adaptive-loss")
    elif scenario.loss_prob > 0.0:
        categories.add("loss")
    churn = scenario.churn
    if churn is not None:
        if churn.adaptive:
            categories.add("adaptive-crash")
        elif churn.epoch_draws:
            categories.add("churn")
        else:
            categories.add("targeted-churn")
    if scenario.dynamic is not None:
        categories.add("dynamic")
    if scenario.delay is not None:
        categories.add("delay")
    return categories


def test_registry_covers_the_scenario_view_matrix():
    """The scenario × view eligibility matrix must be pinned end to end:
    every batchable (engine family, scenario category) combination needs at
    least one registered trial-for-trial case.  The sole hole in the matrix
    — dynamic graphs under ``edge_clocks`` — is rejected by both paths and
    asserted separately in ``tests/core/test_batch_views.py``."""
    covered: dict[str, set] = {}
    for case in KERNEL_CASES:
        if case.protocol in SYNC_BATCH_PROTOCOLS:
            family = "sync"
        elif case.protocol in ASYNC_BATCH_PROTOCOLS:
            family = case.options().get("view", "global")
        else:
            continue  # aux processes reject runtime scenarios
        covered.setdefault(family, set()).update(_scenario_categories(case.scenario))
    adaptive = {"adaptive-crash", "adaptive-loss"}
    expected = {
        "sync": {"loss", "burst-loss", "churn", "targeted-churn", "dynamic"} | adaptive,
        "global": {"loss", "burst-loss", "churn", "targeted-churn", "dynamic", "delay"}
        | adaptive,
        "node_clocks": {"loss", "burst-loss", "churn", "targeted-churn", "dynamic", "delay"}
        | adaptive,
        "edge_clocks": {"loss", "burst-loss", "churn", "targeted-churn", "delay"}
        | adaptive,
    }
    for family, categories in expected.items():
        missing = categories - covered.get(family, set())
        assert not missing, f"{family} is missing equivalence cases for {sorted(missing)}"
