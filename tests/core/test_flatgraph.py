"""Unit tests for the CSR-style flat adjacency structure."""

from __future__ import annotations

import numpy as np

from repro.core.flatgraph import FlatAdjacency, cache_adjacency, flat_adjacency
from repro.graphs import cycle_graph, star_graph
from repro.graphs.base import Graph
from repro.graphs.random_graphs import random_regular_graph


class TestFlatAdjacency:
    def test_structure_matches_graph(self):
        graph = star_graph(6)
        flat = FlatAdjacency(graph)
        assert flat.num_vertices == 6
        assert list(flat.degrees) == list(graph.degrees)
        # Center 0 occupies the first slice.
        assert sorted(flat.indices[flat.indptr[0] : flat.indptr[1]]) == [1, 2, 3, 4, 5]
        # Every leaf's only neighbor is the center.
        for leaf in range(1, 6):
            assert list(flat.indices[flat.indptr[leaf] : flat.indptr[leaf + 1]]) == [0]

    def test_random_neighbors_are_valid(self):
        graph = cycle_graph(10)
        flat = FlatAdjacency(graph)
        rng = np.random.default_rng(0)
        vertices = rng.integers(0, 10, 200)
        neighbors = flat.random_neighbors(vertices, rng.random(200))
        for v, w in zip(vertices, neighbors):
            assert graph.has_edge(int(v), int(w))

    def test_random_neighbors_cover_all_options(self):
        graph = cycle_graph(6)
        flat = FlatAdjacency(graph)
        rng = np.random.default_rng(1)
        chosen = set()
        for _ in range(200):
            chosen.add(int(flat.random_neighbor(0, float(rng.random()))))
        assert chosen == set(graph.neighbors(0))

    def test_uniform_edge_case_near_one(self):
        graph = star_graph(4)
        flat = FlatAdjacency(graph)
        # uniform == 0.999999... must still select a valid index.
        assert flat.random_neighbor(0, 0.999999999) in graph.neighbors(0)
        assert flat.random_neighbor(1, 0.999999999) == 0

    def test_neighbor_choice_is_roughly_uniform(self):
        graph = cycle_graph(4)
        flat = FlatAdjacency(graph)
        rng = np.random.default_rng(2)
        draws = [flat.random_neighbor(0, float(u)) for u in rng.random(4000)]
        counts = {w: draws.count(w) for w in set(draws)}
        assert set(counts) == set(graph.neighbors(0))
        for count in counts.values():
            assert abs(count - 2000) < 200


class TestCache:
    def test_same_graph_returns_cached_object(self):
        graph = star_graph(8)
        assert flat_adjacency(graph) is flat_adjacency(graph)

    def test_distinct_graphs_get_distinct_structures(self):
        a = star_graph(8)
        b = star_graph(8)
        assert flat_adjacency(a) is not flat_adjacency(b)

    def test_cache_does_not_grow_without_bound(self):
        from repro.core import flatgraph as module

        graphs = [cycle_graph(5 + i % 7) for i in range(200)]
        for graph in graphs:
            flat_adjacency(graph)
        assert len(module._CACHE_KEEPALIVE) <= module._KEEPALIVE_LIMIT

    def test_hits_refresh_recency(self):
        """True LRU: a hit protects the entry from the next eviction."""
        from repro.core import flatgraph as module

        hot = star_graph(9)
        hot_flat = flat_adjacency(hot)
        # Fill the cache to one below the limit, then touch the hot graph so
        # it is the most recently used entry...
        fillers = [cycle_graph(4 + i % 9) for i in range(module._KEEPALIVE_LIMIT - 1)]
        for graph in fillers:
            flat_adjacency(graph)
        assert flat_adjacency(hot) is hot_flat
        # ...and overflow the limit: the evicted entries must be old
        # fillers, never the just-touched hot graph.
        overflow = [cycle_graph(10 + i % 9) for i in range(8)]
        for graph in overflow:
            flat_adjacency(graph)
        assert id(hot) in module._CACHE_KEEPALIVE
        assert flat_adjacency(hot) is hot_flat


class TestCsrRoundTrip:
    """The shared-memory transport's trusted CSR constructors."""

    def test_from_arrays_adopts_views_without_copy(self):
        graph = random_regular_graph(24, 4, seed=7)
        original = FlatAdjacency(graph)
        flat = FlatAdjacency.from_arrays(original.indptr, original.indices)
        assert flat.indptr is original.indptr  # adopted, not copied
        assert flat.num_vertices == graph.num_vertices
        assert np.array_equal(flat.degrees, original.degrees)
        uniforms = np.random.default_rng(1).random(24)
        assert np.array_equal(
            flat.random_neighbors_all(uniforms),
            original.random_neighbors_all(uniforms),
        )

    def test_graph_from_csr_reconstructs_equal_graph(self):
        graph = random_regular_graph(24, 4, seed=7)
        flat = FlatAdjacency(graph)
        rebuilt = Graph.from_csr(flat.indptr, flat.indices, name=graph.name)
        assert rebuilt == graph  # same vertex count and edge tuple
        assert rebuilt.degrees == graph.degrees
        assert rebuilt.adjacency == graph.adjacency
        assert rebuilt.name == graph.name
        assert rebuilt.is_connected()

    def test_from_csr_attach_is_lazy(self):
        """Worker attach must be O(1): no Python adjacency/edge tuples are
        built until an accessor actually needs them, and the structural
        checks the batch kernels run (connectivity, edge count) work
        straight off the CSR arrays."""
        graph = random_regular_graph(24, 4, seed=7)
        flat = FlatAdjacency(graph)
        rebuilt = Graph.from_csr(flat.indptr, flat.indices, name=graph.name)
        assert rebuilt._adjacency is None
        assert rebuilt._edges is None
        assert rebuilt._degrees is None
        # The batch-only worker path: connectivity and edge counts do not
        # materialise anything.
        assert rebuilt.num_edges == graph.num_edges
        assert rebuilt.is_connected()
        assert rebuilt._adjacency is None
        # First tuple access materialises, with plain-int contents.
        assert rebuilt.neighbors(0) == graph.neighbors(0)
        assert rebuilt._adjacency is not None
        assert type(rebuilt.edges[0][0]) is int

    def test_from_csr_disconnected_graph_detected_without_tuples(self):
        # Two triangles: enough edges to defeat the m < n - 1 early exit,
        # so the CSR-path BFS itself must find the second component.
        disconnected = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        flat = FlatAdjacency(disconnected)
        rebuilt = Graph.from_csr(flat.indptr, flat.indices)
        assert not rebuilt.is_connected()
        assert rebuilt._adjacency is None
        assert rebuilt.connected_components() == [[0, 1, 2], [3, 4, 5]]

    def test_cache_adjacency_preseeds_the_lookup(self):
        graph = star_graph(12)
        flat = FlatAdjacency.from_arrays(
            FlatAdjacency(graph).indptr, FlatAdjacency(graph).indices
        )
        cache_adjacency(graph, flat)
        assert flat_adjacency(graph) is flat
