"""Unit tests for experiment result persistence (JSON / CSV)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.records import ExperimentResult
from repro.reporting.results_io import (
    load_result_json,
    save_result_csv,
    save_result_json,
    save_results,
)


@pytest.fixture
def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="E4",
        title="star graph",
        claim="2 rounds vs log n",
        columns=["n", "T_hp(pp)", "E[T(pp-a)]"],
        rows=[
            {"n": 32, "T_hp(pp)": 2.0, "E[T(pp-a)]": 4.5},
            {"n": 64, "T_hp(pp)": 2.0, "E[T(pp-a)]": 5.2},
        ],
        conclusions={"sync_pushpull_at_most_2_rounds": True},
        notes=["unit-test artefact"],
    )


class TestJsonRoundTrip:
    def test_save_and_load(self, sample_result, tmp_path):
        path = save_result_json(sample_result, tmp_path / "e4.json")
        assert path.exists()
        loaded = load_result_json(path)
        assert loaded.experiment_id == "E4"
        assert loaded.rows == sample_result.rows
        assert loaded.conclusions["sync_pushpull_at_most_2_rounds"] is True
        assert loaded.notes == sample_result.notes

    def test_creates_parent_directories(self, sample_result, tmp_path):
        path = save_result_json(sample_result, tmp_path / "nested" / "dir" / "e4.json")
        assert path.exists()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_result_json(tmp_path / "nope.json")

    def test_load_rejects_malformed_payload(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"title": "incomplete"}))
        with pytest.raises(ExperimentError, match="missing fields"):
            load_result_json(bad)


class TestCsvExport:
    def test_rows_written_with_header(self, sample_result, tmp_path):
        path = save_result_csv(sample_result, tmp_path / "e4.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["n"] == "32"
        assert float(rows[1]["E[T(pp-a)]"]) == 5.2


class TestSaveResults:
    def test_writes_both_formats(self, sample_result, tmp_path):
        written = save_results([sample_result], tmp_path)
        names = {path.name for path in written}
        assert names == {"e4.json", "e4.csv"}

    def test_single_format(self, sample_result, tmp_path):
        written = save_results([sample_result], tmp_path, formats=("json",))
        assert [path.suffix for path in written] == [".json"]
