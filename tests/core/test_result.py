"""Unit tests for SpreadingResult and its consistency checker."""

from __future__ import annotations

import math

import pytest

from repro.core.result import ContactEvent, SpreadingResult, check_result_consistency


def make_result(**overrides) -> SpreadingResult:
    """A small, fully consistent synchronous result used as a baseline."""
    defaults = dict(
        protocol="pp",
        graph_name="test-graph",
        num_vertices=4,
        source=0,
        informed_time=(0.0, 1.0, 1.0, 2.0),
        parent=(-1, 0, 0, 1),
        infection_kind=("source", "push", "pull", "push"),
        completed=True,
        rounds=2,
        push_infections=2,
        pull_infections=1,
        total_contacts=8,
    )
    defaults.update(overrides)
    return SpreadingResult(**defaults)


class TestDerivedQuantities:
    def test_spreading_time_is_max_informing_time(self):
        assert make_result().spreading_time == 2.0

    def test_num_informed_and_fraction(self):
        result = make_result()
        assert result.num_informed == 4
        assert result.informed_fraction() == 1.0
        partial = make_result(
            informed_time=(0.0, 1.0, math.inf, math.inf),
            parent=(-1, 0, -1, -1),
            infection_kind=("source", "push", None, None),
            completed=False,
            push_infections=1,
            pull_infections=0,
        )
        assert partial.num_informed == 2
        assert partial.informed_fraction() == 0.5
        assert partial.spreading_time == math.inf

    def test_is_synchronous_flag(self):
        assert make_result().is_synchronous
        async_result = make_result(rounds=None, steps=17)
        assert not async_result.is_synchronous

    def test_time_to_inform_fraction(self):
        result = make_result()
        assert result.time_to_inform_fraction(0.25) == 0.0
        assert result.time_to_inform_fraction(0.5) == 1.0
        assert result.time_to_inform_fraction(1.0) == 2.0
        with pytest.raises(ValueError):
            result.time_to_inform_fraction(0.0)

    def test_time_to_inform_fraction_unreached(self):
        partial = make_result(
            informed_time=(0.0, math.inf, math.inf, math.inf),
            parent=(-1, -1, -1, -1),
            infection_kind=("source", None, None, None),
            completed=False,
            push_infections=0,
            pull_infections=0,
        )
        assert partial.time_to_inform_fraction(0.9) == math.inf

    def test_informed_counts_over_time(self):
        curve = make_result().informed_counts_over_time()
        assert curve == [(0.0, 1), (1.0, 3), (2.0, 4)]

    def test_infection_path(self):
        result = make_result()
        assert result.infection_path(3) == [0, 1, 3]
        assert result.infection_path(0) == [0]
        with pytest.raises(ValueError):
            result.infection_path(99)

    def test_infection_path_for_uninformed_vertex(self):
        partial = make_result(
            informed_time=(0.0, 1.0, math.inf, math.inf),
            parent=(-1, 0, -1, -1),
            infection_kind=("source", "push", None, None),
            completed=False,
            push_infections=1,
            pull_infections=0,
        )
        with pytest.raises(ValueError):
            partial.infection_path(2)

    def test_summary_mentions_protocol_and_status(self):
        text = make_result().summary()
        assert "pp" in text and "complete" in text and "4/4" in text


class TestConsistencyChecker:
    def test_consistent_result_has_no_problems(self):
        assert check_result_consistency(make_result()) == []

    def test_source_time_must_be_zero(self):
        broken = make_result(informed_time=(1.0, 1.0, 1.0, 2.0))
        assert any("source" in problem for problem in check_result_consistency(broken))

    def test_parent_must_be_informed_earlier(self):
        broken = make_result(informed_time=(0.0, 2.0, 1.0, 2.0), parent=(-1, 3, 0, 1))
        problems = check_result_consistency(broken)
        assert problems  # vertex 1's parent 3 is informed at the same time, not earlier-or-equal

    def test_counters_must_add_up(self):
        broken = make_result(push_infections=3)
        assert any("add up" in problem for problem in check_result_consistency(broken))

    def test_completed_flag_checked(self):
        broken = make_result(
            informed_time=(0.0, 1.0, 1.0, math.inf),
            parent=(-1, 0, 0, -1),
            infection_kind=("source", "push", "pull", None),
            push_infections=1,
            pull_infections=1,
            completed=True,
        )
        assert any("completed" in problem for problem in check_result_consistency(broken))

    def test_never_informed_vertex_with_parent_is_flagged(self):
        broken = make_result(
            informed_time=(0.0, 1.0, 1.0, math.inf),
            parent=(-1, 0, 0, 2),
            infection_kind=("source", "push", "pull", None),
            push_infections=1,
            pull_infections=1,
            completed=False,
        )
        assert any("never informed" in problem for problem in check_result_consistency(broken))


class TestContactEvent:
    def test_fields(self):
        event = ContactEvent(time=3.5, caller=1, callee=2, informed=2, kind="push")
        assert event.time == 3.5
        assert event.caller == 1
        assert event.callee == 2
        assert event.informed == 2
        assert event.kind == "push"

    def test_non_informing_contact(self):
        event = ContactEvent(time=1.0, caller=0, callee=1)
        assert event.informed is None
        assert event.kind is None
