"""Ablation benchmarks for the design choices called out in DESIGN.md.

Two ablations (the third — the async engine view — lives in
``bench_views.py``):

* **Quantile estimator** — the order-statistic estimator vs. the
  exponential-tail-fit estimator for the high-probability time ``T_{1/n}``,
  compared on the same sample (they must agree when the sample resolves the
  ``1 − 1/n`` level, and the tail fit must extrapolate sensibly when it does
  not).
* **Trial allocation** — fixed trial count vs. adaptive allocation that stops
  once the mean's confidence half-width is below a target; adaptive runs
  should reach the target with no more (and typically fewer) trials than the
  fixed budget while producing a statistically compatible estimate.
"""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import run_adaptive_trials, run_trials
from repro.analysis.quantiles import high_probability_time
from repro.graphs import hypercube_graph


@pytest.mark.parametrize("method", ["empirical", "tail_fit"])
def test_quantile_estimator_ablation(benchmark, method):
    """Estimate T_{1/n} with each estimator from the same Monte Carlo sample."""
    graph = hypercube_graph(7)
    sample = run_trials(graph, 0, "pp-a", trials=200, seed=31)

    estimate = benchmark.pedantic(
        high_probability_time,
        args=(sample,),
        kwargs={"method": method},
        rounds=3,
        iterations=1,
    )
    # Both estimators must land in a plausible window around the sample maximum.
    assert sample.mean <= estimate.value <= 2.0 * sample.maximum
    assert estimate.method == method


def test_fixed_trial_allocation(benchmark):
    graph = hypercube_graph(7)

    def run(counter=[0]):
        counter[0] += 1
        return run_trials(graph, 0, "pp", trials=200, seed=counter[0])

    sample = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sample.num_trials == 200


def test_adaptive_trial_allocation(benchmark):
    graph = hypercube_graph(7)

    def run(counter=[0]):
        counter[0] += 1
        return run_adaptive_trials(
            graph,
            0,
            "pp",
            initial_trials=40,
            batch_size=40,
            max_trials=200,
            relative_precision=0.03,
            seed=counter[0],
        )

    sample = benchmark.pedantic(run, rounds=1, iterations=1)
    # The adaptive run never exceeds the fixed budget and usually stops early.
    assert sample.num_trials <= 200
    half_width = 1.96 * sample.standard_error()
    assert half_width <= 0.03 * sample.mean or sample.num_trials == 200
