"""Flat (CSR-style) adjacency arrays for fast vectorised simulation.

The synchronous engines draw "one uniform random neighbor for every vertex"
each round; doing that with Python-level tuples would dominate the run time.
:class:`FlatAdjacency` stores the adjacency structure as two NumPy arrays —
``indptr`` (length ``n + 1``) and ``indices`` (length ``2m``) — so a full
round of neighbor choices is three vectorised operations.

Instances are cached per :class:`~repro.graphs.base.Graph` object (graphs are
immutable, so caching by identity is safe), which matters when the Monte
Carlo driver runs thousands of trials on the same graph.
"""

from __future__ import annotations

import numpy as np

from repro.caching import IdentityLRU
from repro.graphs.base import Graph

__all__ = ["FlatAdjacency", "flat_adjacency", "cache_adjacency", "uncache_adjacency"]


class FlatAdjacency:
    """CSR-style adjacency arrays for a graph.

    Attributes:
        indptr: ``indptr[v]:indptr[v+1]`` is the slice of ``indices`` holding
            the neighbors of ``v``.
        indices: concatenated neighbor lists.
        degrees: ``degrees[v] = deg(v)`` as an ``int64`` array.
        num_vertices: number of vertices.
    """

    __slots__ = ("indptr", "indices", "degrees", "num_vertices", "__weakref__")

    def __init__(self, graph: Graph) -> None:
        csr = graph.csr()
        if csr is not None:
            # CSR-built graphs already hold the native arrays: adopt them
            # zero-copy instead of re-deriving them through the (lazily
            # materialised) Python neighbor tuples.
            indptr = np.asarray(csr[0], dtype=np.int64)
            self.indptr = indptr
            self.indices = np.asarray(csr[1], dtype=np.int64)
            self.degrees = np.diff(indptr)
            self.num_vertices = int(indptr.size - 1)
            return
        n = graph.num_vertices
        degrees = np.asarray(graph.degrees, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for v in range(n):
            nbrs = graph.neighbors(v)
            indices[indptr[v] : indptr[v + 1]] = nbrs
        self.indptr = indptr
        self.indices = indices
        self.degrees = degrees
        self.num_vertices = n

    @classmethod
    def from_arrays(cls, indptr: np.ndarray, indices: np.ndarray) -> "FlatAdjacency":
        """Wrap existing CSR arrays without touching a :class:`Graph`.

        The arrays are adopted as-is (no copy), so views into a
        :mod:`multiprocessing.shared_memory` buffer stay zero-copy all the
        way into the simulation kernels.  Degrees are derived from
        ``indptr``.
        """
        flat = cls.__new__(cls)
        flat.indptr = np.asarray(indptr, dtype=np.int64)
        flat.indices = np.asarray(indices, dtype=np.int64)
        flat.degrees = np.diff(flat.indptr)
        flat.num_vertices = int(flat.indptr.size - 1)
        return flat

    def random_neighbors(self, vertices: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        """Map each vertex to a uniform random neighbor.

        Args:
            vertices: array of vertex ids.
            uniforms: array of uniform(0, 1) draws of the same shape; entry
                ``i`` selects the neighbor of ``vertices[i]``.

        Returns:
            Array of chosen neighbor ids (same shape as ``vertices``).

        Vertices of degree zero are not supported (the protocols only run on
        connected graphs, where every vertex has a neighbor).
        """
        degs = self.degrees[vertices]
        offsets = (uniforms * degs).astype(np.int64)
        # Guard against the measure-zero event uniform == 1.0.
        np.minimum(offsets, degs - 1, out=offsets)
        return self.indices[self.indptr[vertices] + offsets]

    def random_neighbors_all(self, uniforms: np.ndarray) -> np.ndarray:
        """One uniform random neighbor for *every* vertex at once.

        Args:
            uniforms: uniform(0, 1) draws of shape ``(n,)`` or ``(B, n)``;
                the last axis indexes vertices, so a ``(B, n)`` matrix selects
                one neighbor per vertex for ``B`` independent trials in a
                single vectorised call.

        Returns:
            Chosen neighbor ids, same shape as ``uniforms``.  Equivalent to
            ``random_neighbors(arange(n), row)`` applied to every row.
        """
        offsets = (uniforms * self.degrees).astype(np.int64)
        np.minimum(offsets, self.degrees - 1, out=offsets)
        return self.indices[self.indptr[:-1] + offsets]

    def random_neighbor(self, vertex: int, uniform: float) -> int:
        """Scalar version of :meth:`random_neighbors`."""
        degree = int(self.degrees[vertex])
        offset = min(int(uniform * degree), degree - 1)
        return int(self.indices[self.indptr[vertex] + offset])


# LRU cache of FlatAdjacency structures keyed by graph identity (the shared
# discipline lives in repro.caching).
_KEEPALIVE_LIMIT = 64
_CACHE_KEEPALIVE = IdentityLRU(_KEEPALIVE_LIMIT)


def flat_adjacency(graph: Graph) -> FlatAdjacency:
    """Return the (cached) :class:`FlatAdjacency` for ``graph``.

    The cache keeps a bounded number of recently used structures alive (true
    LRU: a hit refreshes the entry's recency) and drops entries automatically
    once their graph is garbage collected.
    """
    flat = _CACHE_KEEPALIVE.get(graph)
    if flat is not None:
        return flat
    csr = graph.csr()
    if csr is not None:
        # CSR-built graphs (shared-memory worker attach) rebuild zero-copy
        # from the adopted arrays even after a cache eviction, so the O(1)
        # attach guarantee never degrades into a Python tuple pass.
        return cache_adjacency(graph, FlatAdjacency.from_arrays(*csr))
    return cache_adjacency(graph, FlatAdjacency(graph))


def cache_adjacency(graph: Graph, flat: FlatAdjacency) -> FlatAdjacency:
    """Insert a pre-built :class:`FlatAdjacency` into the per-graph cache.

    Used by the shared-memory parallel layer to pre-seed the cache with CSR
    arrays that are views into a shared segment, so every later
    ``flat_adjacency(graph)`` lookup in the worker is zero-copy.
    """
    return _CACHE_KEEPALIVE.put(graph, flat)


def uncache_adjacency(graph: Graph) -> None:
    """Drop ``graph``'s cache entry (if any) immediately.

    Needed by the shared-memory layer when it retires a graph whose
    :class:`FlatAdjacency` arrays are views into a segment about to be
    closed: the cache would otherwise keep those views (and therefore the
    mapping) alive until eviction.
    """
    _CACHE_KEEPALIVE.pop(graph)
