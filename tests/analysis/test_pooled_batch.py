"""Tests for the pooled-RNG batch mode (``batch="pooled"``).

Pooled mode shares one generator across the whole batch instead of spawning
one per trial, so it cannot reproduce serial runs bit-for-bit — the contract
is *distributional* equality with the per-trial modes, checked here with
two-sample Kolmogorov–Smirnov tests, plus the usual reproducibility and
dispatch properties.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from helpers.equivalence import assert_same_distribution
from repro.analysis.montecarlo import run_trials
from repro.core.batch_engine import run_batch
from repro.core.kernels import jit_backend
from repro.errors import AnalysisError, ProtocolError
from repro.graphs import complete_graph, star_graph
from repro.graphs.random_graphs import random_regular_graph
from repro.randomness.rng import spawn_generators
from repro.scenarios import (
    BurstLoss,
    Delay,
    DynamicGraph,
    FamilyResampler,
    MessageLoss,
    NodeChurn,
)


#: Kernel backends for the pooled KS suites.  Pooled async draining is the
#: one place the jit backend is KS-only rather than bit-identical (per-trial
#: draining reorders the shared generator's stream), so these tests are its
#: contract; the jit legs skip cleanly when numba is unavailable.
BACKENDS = [
    "numpy",
    pytest.param(
        "jit",
        marks=pytest.mark.skipif(
            not jit_backend.is_available(),
            reason="numba is not installed (and REPRO_JIT_PURE_PYTHON is unset)",
        ),
    ),
]


class TestPooledDispatch:
    def test_pooled_runs_and_is_reproducible(self):
        graph = complete_graph(24)
        a = run_trials(graph, 0, "pp", trials=40, seed=9, batch="pooled")
        b = run_trials(graph, 0, "pp", trials=40, seed=9, batch="pooled")
        assert a.num_trials == 40
        assert a.times == b.times  # same seed -> same pooled stream

    def test_pooled_differs_from_per_trial_stream(self):
        # Same seed, different stream discipline: agreement would be a
        # one-in-astronomical coincidence, and silently identical streams
        # would mean pooled mode is not actually pooled.
        graph = complete_graph(24)
        pooled = run_trials(graph, 0, "pp", trials=40, seed=9, batch="pooled")
        spawned = run_trials(graph, 0, "pp", trials=40, seed=9, batch=True)
        assert pooled.times != spawned.times

    def test_pooled_random_sources_and_fractions(self):
        graph = star_graph(16)
        sample = run_trials(
            graph, "random", "pp", trials=30, seed=3, batch="pooled", fractions=(0.5,)
        )
        assert sample.num_trials == 30
        assert len(sample.fraction_times[0.5]) == 30

    def test_pooled_rejects_unbatchable_settings(self):
        graph = star_graph(12)
        with pytest.raises(AnalysisError):
            run_trials(
                graph,
                1,
                "pp",
                trials=4,
                seed=1,
                batch="pooled",
                engine_options={"record_trace": True},
            )

        def factory(rng):
            return complete_graph(12)

        with pytest.raises(AnalysisError):
            run_trials(factory, 0, "pp", trials=4, seed=1, batch="pooled")

    def test_kernel_rejects_both_rngs_and_pooled_rng(self):
        graph = star_graph(8)
        with pytest.raises(ProtocolError):
            run_batch(
                graph,
                [0, 1],
                "pp",
                rngs=spawn_generators(2, 0),
                pooled_rng=np.random.default_rng(0),
            )


class TestPooledDistribution:
    """KS checks: pooled and per-trial modes sample the same law."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("protocol", ["pp", "pp-a"])
    def test_pooled_matches_per_trial_distribution(self, protocol, backend):
        graph = random_regular_graph(32, 4, seed=1)
        trials = 400
        options = {"backend": backend}
        pooled = run_trials(
            graph, 0, protocol, trials=trials, seed=101, batch="pooled",
            engine_options=options,
        )
        spawned = run_trials(
            graph, 0, protocol, trials=trials, seed=202, batch=True,
            engine_options=options,
        )
        result = scipy_stats.ks_2samp(pooled.as_array(), spawned.as_array())
        assert result.pvalue > 0.01, (
            f"pooled vs per-trial {protocol} KS p-value {result.pvalue:.4f} "
            "(distributions should agree)"
        )

    @pytest.mark.parametrize("variant", ["ppx", "ppy"])
    def test_pooled_matches_per_trial_on_aux_processes(self, variant):
        graph = random_regular_graph(32, 4, seed=1)
        trials = 400
        pooled = run_trials(graph, 0, variant, trials=trials, seed=101, batch="pooled")
        spawned = run_trials(graph, 0, variant, trials=trials, seed=202, batch=True)
        assert_same_distribution(
            pooled.as_array(),
            spawned.as_array(),
            min_pvalue=0.01,
            label=f"pooled vs per-trial {variant}",
        )

    def test_pooled_aux_is_reproducible_and_distinct_from_spawned(self):
        graph = complete_graph(20)
        a = run_trials(graph, 0, "ppx", trials=30, seed=9, batch="pooled")
        b = run_trials(graph, 0, "ppx", trials=30, seed=9, batch="pooled")
        assert a.times == b.times
        spawned = run_trials(graph, 0, "ppx", trials=30, seed=9, batch=True)
        assert a.times != spawned.times  # pooled mode really pools

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("view", ["node_clocks", "edge_clocks"])
    def test_pooled_matches_per_trial_on_clock_views(self, view, backend):
        graph = random_regular_graph(24, 4, seed=3)
        trials = 300
        options = {"view": view, "backend": backend}
        pooled = run_trials(
            graph, 0, "pp-a", trials=trials, seed=7, batch="pooled", engine_options=options
        )
        spawned = run_trials(
            graph, 0, "pp-a", trials=trials, seed=77, batch=True, engine_options=options
        )
        assert_same_distribution(
            pooled.as_array(),
            spawned.as_array(),
            min_pvalue=0.01,
            label=f"pooled vs per-trial {view} view",
        )

    def test_pooled_matches_per_trial_under_scenario(self):
        graph = complete_graph(24)
        trials = 400
        scenario = MessageLoss(0.3)
        pooled = run_trials(
            graph, 0, "pp", trials=trials, seed=11, batch="pooled", scenario=scenario
        )
        spawned = run_trials(
            graph, 0, "pp", trials=trials, seed=22, batch=True, scenario=scenario
        )
        result = scipy_stats.ks_2samp(pooled.as_array(), spawned.as_array())
        assert result.pvalue > 0.01


class TestChunkedPooledClockViews:
    """The PR-4 pooled-only fast path of ``run_clock_view_batch``.

    With a pooled generator the kernel pre-draws ``(B, chunk)`` randomness
    blocks and drops the next-tick table entirely (both clock views are the
    same superposed Poisson process in distribution); ``pooled_chunk=0``
    keeps the legacy unchunked pooled loop as the reference.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("view", ["node_clocks", "edge_clocks"])
    def test_chunked_matches_unchunked_pooled_distribution(self, view, backend):
        graph = random_regular_graph(24, 4, seed=3)
        trials = 300
        chunked = run_batch(
            graph,
            0,
            "pp-a",
            trials=trials,
            pooled_rng=np.random.default_rng(7),
            view=view,
            backend=backend,
        )
        unchunked = run_batch(
            graph,
            0,
            "pp-a",
            trials=trials,
            pooled_rng=np.random.default_rng(8),
            view=view,
            pooled_chunk=0,
            backend=backend,
        )
        assert_same_distribution(
            chunked.spreading_times(),
            unchunked.spreading_times(),
            min_pvalue=0.01,
            label=f"chunked vs unchunked pooled {view}",
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("view", ["node_clocks", "edge_clocks"])
    @pytest.mark.parametrize("mode_protocol", ["pp-a", "push-a", "pull-a"])
    def test_chunked_matches_serial_distribution(self, view, mode_protocol, backend):
        graph = random_regular_graph(24, 4, seed=3)
        trials = 300
        chunked = run_batch(
            graph,
            0,
            mode_protocol,
            trials=trials,
            pooled_rng=np.random.default_rng(7),
            view=view,
            backend=backend,
        )
        serial = run_trials(
            graph,
            0,
            mode_protocol,
            trials=trials,
            seed=77,
            batch=False,
            engine_options={"view": view},
        )
        assert_same_distribution(
            chunked.spreading_times(),
            serial.as_array(),
            min_pvalue=0.01,
            label=f"chunked pooled vs serial {mode_protocol} {view}",
        )

    def test_chunked_is_reproducible_and_respects_small_chunks(self):
        graph = random_regular_graph(24, 4, seed=3)
        a = run_batch(
            graph, 0, "pp-a", trials=40, pooled_rng=np.random.default_rng(5),
            view="node_clocks",
        )
        b = run_batch(
            graph, 0, "pp-a", trials=40, pooled_rng=np.random.default_rng(5),
            view="node_clocks",
        )
        assert np.array_equal(a.completion_time, b.completion_time)
        # A tiny chunk width forces many block refills; results stay valid.
        tiny = run_batch(
            graph, 0, "pp-a", trials=40, pooled_rng=np.random.default_rng(5),
            view="node_clocks", pooled_chunk=7,
        )
        assert tiny.completed.all()

    def test_chunked_honors_step_and_time_budgets(self):
        graph = random_regular_graph(24, 4, seed=3)
        stepped = run_batch(
            graph, 0, "pp-a", trials=20, pooled_rng=np.random.default_rng(5),
            view="node_clocks", max_steps=15, on_budget_exhausted="partial",
        )
        assert stepped.steps.max() <= 15
        assert not stepped.completed.any()
        timed = run_batch(
            graph, 0, "pp-a", trials=20, pooled_rng=np.random.default_rng(5),
            view="edge_clocks", max_time=0.4, on_budget_exhausted="partial",
        )
        finished = timed.completion_time[timed.completed]
        assert (finished <= 0.4).all()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("view", ["node_clocks", "edge_clocks"])
    @pytest.mark.parametrize(
        "scenario",
        [
            MessageLoss(0.25),
            BurstLoss(0.3, 0.5, 0.8),
            NodeChurn(0.1, 0.5),
            Delay(low=0.5, high=2.0),
        ],
        ids=lambda s: s.spec().split(":")[0],
    )
    def test_chunked_scenarios_match_per_trial_distribution(self, view, scenario, backend):
        """The pooled fast path carries every non-dynamic runtime scenario;
        its samples must agree with the (serial-equivalent) per-trial
        kernel in distribution."""
        graph = random_regular_graph(24, 4, seed=3)
        trials = 250
        chunked = run_batch(
            graph, 0, "pp-a", trials=trials,
            pooled_rng=np.random.default_rng(7), view=view, scenario=scenario,
            backend=backend,
        )
        per_trial = run_batch(
            graph, 0, "pp-a", trials=trials, seed=77, view=view, scenario=scenario,
            backend=backend,
        )
        assert_same_distribution(
            chunked.spreading_times(),
            per_trial.spreading_times(),
            min_pvalue=0.01,
            label=f"chunked pooled vs per-trial {view} under {scenario.spec()}",
        )

    def test_dynamic_scenario_routes_through_the_unchunked_pooled_loop(self):
        """Dynamic graphs cannot use the pre-resolved callee blocks; the
        pooled dispatcher must fall back to the next-tick-table loop and
        still agree with the per-trial kernel in distribution."""
        scenario = DynamicGraph(FamilyResampler("erdos_renyi"), period=2)
        graph = complete_graph(16)
        pooled = run_batch(
            graph, 0, "pp-a", trials=200,
            pooled_rng=np.random.default_rng(3), view="node_clocks", scenario=scenario,
        )
        per_trial = run_batch(
            graph, 0, "pp-a", trials=200, seed=5, view="node_clocks", scenario=scenario
        )
        assert_same_distribution(
            pooled.spreading_times(),
            per_trial.spreading_times(),
            min_pvalue=0.01,
            label="pooled dynamic fallback vs per-trial node_clocks",
        )

    def test_invalid_pooled_chunk_rejected(self):
        graph = complete_graph(8)
        with pytest.raises(ProtocolError):
            run_batch(
                graph, 0, "pp-a", trials=4, pooled_rng=np.random.default_rng(1),
                view="node_clocks", pooled_chunk=-1,
            )

    def test_pooled_chunk_without_pooled_rng_rejected(self):
        # The per-trial path is pinned to the serial draw order; silently
        # ignoring pooled_chunk there would benchmark the wrong kernel.
        graph = complete_graph(8)
        with pytest.raises(ProtocolError):
            run_batch(
                graph, 0, "pp-a", trials=4, seed=1,
                view="node_clocks", pooled_chunk=64,
            )
