"""Reference NumPy kernels, extracted verbatim from the batch engine.

These are the vectorised hot loops that :mod:`repro.core.batch_engine`
shipped with before the backend split — every array trick (narrow-dtype
gathers, ``casting="unsafe"`` contact arithmetic, preallocated round
buffers, the scalar refill countdown) is preserved, so ``backend="numpy"``
is bit-for-bit the engine's historical behaviour.  The one upgrade is the
asynchronous tick loop, which now *compacts* retired trials out of its
working set (as the synchronous kernel always did) instead of masking
them; the compaction is order-preserving and threshold-triggered, so the
event sequence — and therefore every RNG draw, pooled modes included — is
unchanged while straggler-dominated workloads stop paying full-batch
gathers per tick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.telemetry.metrics import current_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.batch_engine import _ScenarioParts
    from repro.core.kernels import AsyncState

BACKEND_NAME = "numpy"

#: Compact the async working set only once at least this many rows retired
#: (and they are the majority): each compaction copies the survivors, so a
#: threshold keeps the total copy volume linear in the batch size instead
#: of quadratic under one-at-a-time straggler retirement.
_COMPACT_MIN_RETIRED = 32


def warmup() -> None:
    """Nothing to compile: the numpy kernels are ready at import."""


# ---------------------------------------------------------------------- #
# Synchronous round step
# ---------------------------------------------------------------------- #
class SyncWorkspace:
    """Preallocated per-round buffers (sliced to the live row count): the
    round loop reuses them instead of allocating ~n * live temporaries
    every round.  ``row_offsets`` turns (row, vertex) pairs into indices of
    the raveled (live, n) arrays; the whole round works in that flat
    address space."""

    __slots__ = ("offsets", "contact", "contacted", "pull", "push", "row_offsets")

    def __init__(self, batch: int, n: int, idx_dtype: type) -> None:
        self.offsets = np.empty((batch, n), dtype=idx_dtype)
        self.contact = np.empty((batch, n), dtype=idx_dtype)
        self.contacted = np.empty((batch, n), dtype=bool)
        self.pull = np.empty((batch, n), dtype=bool)
        self.push = np.empty((batch, n), dtype=bool)
        self.row_offsets = (np.arange(batch, dtype=idx_dtype) * idx_dtype(n))[:, None]


def sync_workspace(batch: int, n: int, idx_dtype: type) -> SyncWorkspace:
    return SyncWorkspace(batch, n, idx_dtype)


def _exchange(
    contact_flat: np.ndarray,
    kept: Optional[np.ndarray],
    up_live: Optional[np.ndarray],
    informed_live: np.ndarray,
    times_live: Optional[np.ndarray],
    round_index: int,
    push_allowed: bool,
    pull_allowed: bool,
    ws: SyncWorkspace,
) -> np.ndarray:
    """The round-snapshot push/pull exchange shared by both contact paths."""
    live = informed_live.shape[0]
    informed_flat = informed_live.reshape(-1)
    contacted_informed = ws.contacted[:live]
    np.take(informed_flat, contact_flat, out=contacted_informed, mode="clip")
    exchange_ok = None
    if up_live is not None:
        # Both endpoints must be up: crashed vertices neither initiate
        # nor answer.
        exchange_ok = up_live & np.take(up_live.reshape(-1), contact_flat, mode="clip")
    if kept is not None:
        exchange_ok = kept if exchange_ok is None else exchange_ok & kept

    # Everything below reads the round-start snapshot of the informed
    # set before mutating it.  A flat position is its own "caller"
    # index, so the pull update is a plain elementwise OR with the
    # contacted statuses (a no-op on already-informed callers), and
    # push infections scatter at the contacted positions of informed
    # callers (a no-op on already-informed targets, so the snapshot
    # mask `informed > contacted` drops them before the scatter).
    push_targets = None
    if push_allowed:
        push_mask = np.greater(informed_live, contacted_informed, out=ws.push[:live])
        if exchange_ok is not None:
            push_mask &= exchange_ok
        push_targets = contact_flat[push_mask]
    if times_live is not None:
        times_flat = times_live.reshape(-1)
        if pull_allowed:
            pull_mask = np.less(informed_live, contacted_informed, out=ws.pull[:live])
            if exchange_ok is not None:
                pull_mask &= exchange_ok
            np.copyto(times_live, float(round_index), where=pull_mask)
        if push_targets is not None:
            times_flat[push_targets] = float(round_index)
    if pull_allowed:
        if exchange_ok is None:
            informed_live |= contacted_informed
        else:
            informed_live |= np.logical_and(
                contacted_informed, exchange_ok, out=ws.pull[:live]
            )
    if push_targets is not None:
        informed_flat[push_targets] = True

    return informed_live.sum(axis=1)


def sync_round_step(
    csr: tuple,
    draws: np.ndarray,
    kept: Optional[np.ndarray],
    up_live: Optional[np.ndarray],
    informed_live: np.ndarray,
    times_live: Optional[np.ndarray],
    round_index: int,
    push_allowed: bool,
    pull_allowed: bool,
    ws: SyncWorkspace,
    counts: np.ndarray,
) -> np.ndarray:
    """One synchronous round over the shared static CSR.

    ``csr`` is the engine's narrow ``(degrees, max_offset, start, indices)``
    tuple; ``draws`` the round's ``(live, n)`` contact uniforms; ``kept``
    the precomputed loss mask (or ``None``).  Mutates ``informed_live`` /
    ``times_live`` in place and returns the new per-trial informed counts
    (``counts``, the counts at round start, is unused here — the vectorised
    path recounts; the jit path increments it).
    """
    degrees_nw, max_offset_nw, start_nw, indices_nw = csr
    live = draws.shape[0]
    # Contact selection, identical arithmetic to
    # FlatAdjacency.random_neighbors_all but on narrow dtypes (the
    # unsafe cast truncates toward zero exactly like .astype, and the
    # 'clip' take mode skips bounds checks on indices that are in
    # range by construction).
    offsets = ws.offsets[:live]
    np.multiply(draws, degrees_nw, out=offsets, casting="unsafe")
    np.minimum(offsets, max_offset_nw, out=offsets)
    offsets += start_nw
    contact_flat = ws.contact[:live]
    np.take(indices_nw, offsets, out=contact_flat, mode="clip")
    contact_flat += ws.row_offsets[:live]  # flat index of each contacted vertex
    return _exchange(
        contact_flat, kept, up_live, informed_live, times_live,
        round_index, push_allowed, pull_allowed, ws,
    )


def sync_round_step_dynamic(
    stacked: tuple,
    row_offsets_wide: np.ndarray,
    draws: np.ndarray,
    kept: Optional[np.ndarray],
    up_live: Optional[np.ndarray],
    informed_live: np.ndarray,
    times_live: Optional[np.ndarray],
    round_index: int,
    push_allowed: bool,
    pull_allowed: bool,
    ws: SyncWorkspace,
    counts: np.ndarray,
) -> np.ndarray:
    """One synchronous round against per-trial stacked CSRs (dynamic graphs).

    Same contact arithmetic as :func:`sync_round_step` but the ``stacked``
    ``(degrees, start, indices)`` tables are per-trial and the start
    offsets are already absolute into the concatenated neighbor array.
    """
    degrees_st, start_st, indices_cat = stacked
    offsets_wide = (draws * degrees_st).astype(np.int64)
    np.minimum(offsets_wide, degrees_st - 1, out=offsets_wide)
    offsets_wide += start_st
    contact_flat = indices_cat[offsets_wide]
    contact_flat += row_offsets_wide
    return _exchange(
        contact_flat, kept, up_live, informed_live, times_live,
        round_index, push_allowed, pull_allowed, ws,
    )


# ---------------------------------------------------------------------- #
# Asynchronous ("global" view) tick loop
# ---------------------------------------------------------------------- #
def async_tick_loop(state: "AsyncState") -> None:
    """Drain an :class:`~repro.core.kernels.AsyncState` to completion.

    The engine's flattened tick loop, with retired trials *compacted* out
    of the working set instead of masked: row ``i`` of the local buffer
    arrays belongs to trial ``ids[i]``, and whenever at least half of the
    local rows (and at least ``_COMPACT_MIN_RETIRED`` of them) have
    retired, the survivors are copied down.  Compaction preserves row
    order, so every refill and boundary crossing fires in the same
    sequence as before — pooled-mode draws included.  Per-trial outputs
    (``informed`` / ``times`` / ``steps`` / ``completed`` / …) stay
    absolute; ``steps`` is recorded at each trial's retirement.
    """
    n = state.n
    chunk_size = state.chunk
    parts = state.parts
    pooled_rng = state.pooled_rng
    trial_graphs = state.trial_graphs
    mode_pp = state.mode == "push-pull"
    push_allowed = state.mode in ("push", "push-pull")
    step_budget = state.step_budget
    time_budget = state.time_budget
    finite_time_budget = state.finite_time_budget
    has_boundaries = state.has_boundaries
    boundary_floor = state.boundary_floor
    next_epoch = state.next_epoch
    next_resample = state.next_resample
    up = state.up
    bad = state.bad
    degrees_nw = state.degrees
    max_offset_nw = state.max_offset
    start_nw = state.start
    indices_nw = state.indices

    # Absolute per-trial state (never compacted; scattered into by id).
    live = state.live
    if not live.any():
        return
    num_informed = state.num_informed
    completed = state.completed
    completion_time = state.completion_time
    overtime = state.overtime
    steps_out = state.steps
    informed_flat = state.informed.reshape(-1)
    times_flat = state.times.reshape(-1) if state.times is not None else None

    # Local (compacted) working set: row i belongs to trial ids[i].  The
    # engine hands every trial over live, so the locals start as the
    # state's own arrays and only become copies at the first compaction.
    ids = np.arange(state.batch, dtype=np.int64)
    alive = np.ones(state.batch, dtype=bool)
    retired = 0
    gaps = state.gaps
    callers = state.callers
    nbr_uniforms = state.nbr_uniforms
    loss_uniforms = state.loss_uniforms
    positions = state.positions
    buffer_lengths = state.buffer_lengths
    chunk_base = state.chunk_base
    now = state.now
    local_gens = list(state.generators) if state.generators is not None else None

    # Flat views of the per-trial buffers: the loop gathers through 1-D
    # np.take (and scatters through flat indices), which skips the 2-D
    # fancy-indexing machinery on the hottest lines.
    gaps_flat = gaps.reshape(-1)
    callers_flat = callers.reshape(-1)
    nbr_flat = nbr_uniforms.reshape(-1)
    loss_flat = loss_uniforms.reshape(-1) if loss_uniforms is not None else None

    def _compact() -> None:
        nonlocal ids, alive, retired, gaps, callers, nbr_uniforms, loss_uniforms
        nonlocal positions, buffer_lengths, chunk_base, now, local_gens
        nonlocal gaps_flat, callers_flat, nbr_flat, loss_flat
        keep = np.flatnonzero(alive)
        ids = ids[keep]
        gaps = gaps[keep]
        callers = callers[keep]
        nbr_uniforms = nbr_uniforms[keep]
        positions = positions[keep]
        buffer_lengths = buffer_lengths[keep]
        chunk_base = chunk_base[keep]
        now = now[keep]
        if local_gens is not None:
            local_gens = [local_gens[i] for i in keep]
        alive = np.ones(ids.size, dtype=bool)
        retired = 0
        gaps_flat = gaps.reshape(-1)
        callers_flat = callers.reshape(-1)
        nbr_flat = nbr_uniforms.reshape(-1)
        if loss_uniforms is not None:
            loss_uniforms = loss_uniforms[keep]
            loss_flat = loss_uniforms.reshape(-1)

    def _compact_due() -> bool:
        return retired >= _COMPACT_MIN_RETIRED and retired * 2 >= ids.size

    rows = np.flatnonzero(alive)
    # Telemetry is observational only: deliveries are counted from informed
    # deltas the loop computes anyway, so no draw order or state changes.
    metrics = current_metrics()
    # Every live trial consumes exactly one buffered draw per iteration, so
    # the earliest possible refill is a scalar countdown — the loop skips
    # the per-iteration buffer-exhaustion scan entirely until it reaches 0.
    ticks_until_refill = 0
    # Index bases derived from `rows` (flat positions into the local
    # buffers and the absolute (B, n) state), recomputed only when the
    # live set changes.
    pos_base = row_base = w_base = abs_rows = None
    tg_width = trial_graphs.width if trial_graphs is not None else None
    while rows.size:
        if ticks_until_refill <= 0:
            at_boundary = positions.take(rows) >= buffer_lengths.take(rows)
            if at_boundary.any():
                if metrics is not None:
                    metrics.count("engine.drain_returns", int(at_boundary.sum()))
                for l in rows[at_boundary]:
                    # The exhausted chunk moves into the retired-tick count
                    # whether or not the trial goes on; `positions` always
                    # restarts from the head of the (possibly new) buffer.
                    chunk_base[l] += buffer_lengths[l]
                    positions[l] = 0
                    buffer_lengths[l] = 0
                    remaining = step_budget - int(chunk_base[l])
                    if remaining <= 0:
                        trial = int(ids[l])
                        live[trial] = False
                        steps_out[trial] = chunk_base[l]
                        alive[l] = False
                        retired += 1
                        continue
                    chunk = min(chunk_size, remaining)
                    rng = pooled_rng if pooled_rng is not None else local_gens[l]
                    state.draw_chunk(
                        rng, int(ids[l]), chunk, l,
                        gaps, callers, nbr_uniforms, loss_uniforms,
                    )
                    buffer_lengths[l] = chunk
                    positions[l] = 0
                keep_mask = alive[rows]
                if not keep_mask.all():
                    rows = rows[keep_mask]
                    pos_base = None
                    if rows.size and _compact_due():
                        _compact()
                        rows = np.flatnonzero(alive)
                if rows.size == 0:
                    break
            ticks_until_refill = int(
                (buffer_lengths.take(rows) - positions.take(rows)).min()
            )
        ticks_until_refill -= 1

        if pos_base is None:
            pos_base = rows * chunk_size
            abs_rows = ids.take(rows)
            row_base = abs_rows * n
            if trial_graphs is not None:
                tg_width = trial_graphs.width
                w_base = abs_rows * tg_width

        cursor = positions.take(rows)
        pos = pos_base + cursor
        gap = gaps_flat.take(pos, mode="clip")
        caller = callers_flat.take(pos, mode="clip")
        uniform = nbr_flat.take(pos, mode="clip")
        loss_u = loss_flat.take(pos, mode="clip") if loss_flat is not None else None
        positions[rows] = cursor + 1
        tick_time = now.take(rows) + gap
        now[rows] = tick_time

        if finite_time_budget:
            over_time = tick_time > time_budget
            if over_time.any():
                over_rows = rows[over_time]
                over_ids = abs_rows[over_time]
                live[over_ids] = False
                overtime[over_ids] = True
                steps_out[over_ids] = chunk_base.take(over_rows) + positions.take(over_rows)
                alive[over_rows] = False
                retired += over_rows.size
                keep = ~over_time
                rows = rows[keep]
                pos_base = pos_base[keep]
                row_base = row_base[keep]
                abs_rows = abs_rows[keep]
                if w_base is not None:
                    w_base = w_base[keep]
                caller = caller[keep]
                uniform = uniform[keep]
                tick_time = tick_time[keep]
                if loss_u is not None:
                    loss_u = loss_u[keep]
                if rows.size == 0:
                    if _compact_due():
                        _compact()
                    rows = np.flatnonzero(alive)
                    pos_base = None
                    continue
        if has_boundaries and float(tick_time.max()) >= boundary_floor:
            # Boundaries at integer times (churn/burst epochs) and at
            # dynamic-graph periods: every boundary crossed in
            # (previous tick, now] fires before the exchange at `now`, in
            # chronological order with the epoch first on ties — drawing
            # the same interleaved randomness the serial engine does.
            if next_epoch is None:
                bound = next_resample.take(abs_rows)
            elif next_resample is None:
                bound = next_epoch.take(abs_rows)
            else:
                bound = np.minimum(
                    next_epoch.take(abs_rows), next_resample.take(abs_rows)
                )
            crossing = tick_time >= bound
            if crossing.any():
                for l, t in zip(rows[crossing], tick_time[crossing]):
                    rng = pooled_rng if pooled_rng is not None else local_gens[l]
                    parts.cross_boundaries(
                        int(ids[l]), t, rng, n, up, bad,
                        next_epoch, next_resample, trial_graphs,
                        state.informed,
                    )
                # The floor tracks the earliest boundary still pending over
                # the (conservatively: all) trials.
                boundary_floor = np.inf
                if next_epoch is not None:
                    boundary_floor = float(next_epoch.min())
                if next_resample is not None:
                    boundary_floor = min(boundary_floor, float(next_resample.min()))
        # The loss threshold depends on the burst channel state *after* the
        # boundaries at this tick fired, so it resolves only now.  Under an
        # adaptive jammer the uniform is judged later, against the
        # would-transmit mask, not here.
        lost = (
            loss_u < parts.loss_threshold(bad, abs_rows)
            if loss_u is not None and parts.adaptive_loss is None
            else None
        )

        caller_pos = row_base + caller
        if trial_graphs is not None:
            if trial_graphs.width != tg_width:  # a resample grew the pad
                tg_width = trial_graphs.width
                w_base = abs_rows * tg_width
            callee = trial_graphs.callees_at(caller_pos, w_base, uniform)
        else:
            offsets = (uniform * degrees_nw.take(caller, mode="clip")).astype(np.int64)
            np.minimum(offsets, max_offset_nw.take(caller, mode="clip"), out=offsets)
            offsets += start_nw.take(caller, mode="clip")
            callee = indices_nw.take(offsets, mode="clip")

        caller_informed = informed_flat.take(caller_pos, mode="clip")
        callee_informed = informed_flat.take(row_base + callee, mode="clip")
        # One contact per trial per tick, so the exchange vectorises with no
        # intra-iteration conflicts: push informs the callee, pull informs
        # the caller, and in push-pull exactly the uninformed endpoint of an
        # informative contact (caller_informed XOR callee_informed) learns.
        if mode_pp:
            active = caller_informed != callee_informed
            targets = np.where(caller_informed, callee, caller)
        elif push_allowed:
            active = caller_informed & ~callee_informed
            targets = callee
        else:
            active = ~caller_informed & callee_informed
            targets = caller
        if lost is not None:
            active &= ~lost
        if up is not None:
            # Crashed endpoints suppress the exchange in either direction.
            active &= up[abs_rows, caller] & up[abs_rows, callee]
        if parts.adaptive_loss is not None:
            # `active` is now exactly the would-transmit mask: jam the
            # contacts whose pre-drawn uniform fires, while budget remains.
            jam = active & (loss_u < parts.adaptive_loss.p) & (
                parts.jam_budget[abs_rows] > 0
            )
            if jam.any():
                parts.jam_budget[abs_rows[jam]] -= 1
                active &= ~jam
        if active.any():
            active_ids = abs_rows[active]
            if metrics is not None:
                metrics.count("engine.messages_delivered", int(active_ids.size))
            active_flat = row_base[active] + targets[active]
            informed_flat[active_flat] = True
            if times_flat is not None:
                times_flat[active_flat] = tick_time[active]
            num_informed[active_ids] += 1
            done_mask = num_informed[active_ids] == n
            if done_mask.any():
                done_local = rows[active][done_mask]
                done_ids = active_ids[done_mask]
                completed[done_ids] = True
                completion_time[done_ids] = now.take(done_local)
                steps_out[done_ids] = (
                    chunk_base.take(done_local) + positions.take(done_local)
                )
                live[done_ids] = False
                alive[done_local] = False
                retired += done_local.size
                if _compact_due():
                    _compact()
                rows = np.flatnonzero(alive)
                pos_base = None
        # `rows` stays valid across iterations: every path that retires a
        # trial (budget boundary, overtime, completion) refreshed it above.


# ---------------------------------------------------------------------- #
# Pooled clock-view chunk consumer
# ---------------------------------------------------------------------- #
def clock_chunk_consume(
    rows: np.ndarray,
    executed: int,
    width: int,
    tick_times: np.ndarray,
    callers: np.ndarray,
    callees: np.ndarray,
    loss_block: Optional[np.ndarray],
    informed: np.ndarray,
    times: Optional[np.ndarray],
    num_informed: np.ndarray,
    steps: np.ndarray,
    completed: np.ndarray,
    completion_time: np.ndarray,
    live: np.ndarray,
    now: np.ndarray,
    n: int,
    time_budget: float,
    finite_time_budget: bool,
    mode_pp: bool,
    push_allowed: bool,
    parts: "_ScenarioParts",
    bad: Optional[np.ndarray],
    up: Optional[np.ndarray],
    next_epoch: Optional[np.ndarray],
    pooled_rng: Optional[np.random.Generator],
) -> None:
    """Consume one pre-drawn ``(rows, width)`` block of pooled clock ticks.

    The column loop of the chunked pooled fast path: all randomness
    (``tick_times`` / ``callers`` / ``callees`` / ``loss_block``) is
    already resolved by the engine; only churn/burst epoch crossings draw
    from ``pooled_rng`` mid-block.  Mutates the absolute per-trial state
    in place.  The column loop touches ``steps`` only at retirement: while
    alive, every trial executes every column, so the count is implied by
    the column index (``executed + column``).
    """
    alive = np.ones(rows.size, dtype=bool)
    local = np.arange(rows.size, dtype=np.int64)
    active_rows = rows
    for column in range(width):
        tick_time = tick_times[local, column]
        if finite_time_budget:
            # Like the serial engine: the first over-budget event is
            # popped but not executed (no step counted).
            over = tick_time > time_budget
            if over.any():
                over_local = local[over]
                live[rows[over_local]] = False
                alive[over_local] = False
                steps[rows[over_local]] = executed + column
                local = local[~over]
                if local.size == 0:
                    break
                active_rows = rows[local]
                tick_time = tick_time[~over]
        if next_epoch is not None:
            # Churn/burst epochs at integer times, as in the per-trial
            # kernel; the updates draw from the pooled generator.
            crossing = tick_time >= next_epoch[active_rows]
            if crossing.any():
                for b, t in zip(active_rows[crossing], tick_time[crossing]):
                    parts.cross_boundaries(
                        b, t, pooled_rng, n, up, bad, next_epoch, None, None,
                        informed,
                    )
        caller = callers[local, column]
        callee = callees[local, column]
        caller_informed = informed[active_rows, caller]
        callee_informed = informed[active_rows, callee]
        if mode_pp:
            active = caller_informed != callee_informed
            targets = np.where(caller_informed, callee, caller)
        elif push_allowed:
            active = caller_informed & ~callee_informed
            targets = callee
        else:
            active = ~caller_informed & callee_informed
            targets = caller
        if loss_block is not None and parts.adaptive_loss is None:
            active &= loss_block[local, column] >= parts.loss_threshold(
                bad, active_rows
            )
        if up is not None:
            active &= up[active_rows, caller] & up[active_rows, callee]
        if parts.adaptive_loss is not None:
            jam = active & (loss_block[local, column] < parts.adaptive_loss.p) & (
                parts.jam_budget[active_rows] > 0
            )
            if jam.any():
                parts.jam_budget[active_rows[jam]] -= 1
                active &= ~jam
        if active.any():
            hit_local = local[active]
            hit_rows = rows[hit_local]
            hit_targets = targets[active]
            hit_times = tick_time[active]
            informed[hit_rows, hit_targets] = True
            if times is not None:
                times[hit_rows, hit_targets] = hit_times
            num_informed[hit_rows] += 1
            done = num_informed[hit_rows] == n
            if done.any():
                done_local = hit_local[done]
                done_rows = rows[done_local]
                completed[done_rows] = True
                completion_time[done_rows] = hit_times[done]
                steps[done_rows] = executed + column + 1
                live[done_rows] = False
                alive[done_local] = False
                local = np.flatnonzero(alive)
                if local.size == 0:
                    break
                active_rows = rows[local]
    if local.size:
        steps[active_rows] = executed + width
        now[active_rows] = tick_times[local, width - 1]
