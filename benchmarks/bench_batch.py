"""Batched vs serial Monte Carlo throughput (the PR-acceptance benchmark).

Unlike the experiment benchmarks (``bench_theorem1.py`` and friends), which
time whole paper-reproduction experiments, this file times the *trial
engine* itself three ways on the same workload — synchronous push–pull on a
1024-vertex random regular graph:

* ``seed_baseline`` — a frozen copy of the pre-batching engine loop (the
  repository's original serial hot path, kept here verbatim so the speedup
  is measured against a fixed historical baseline rather than against the
  continually-optimised current serial engine);
* ``serial`` — today's ``run_trials(batch=False)`` path;
* ``batched`` — the 2-D batch kernel path (``run_trials(batch="auto")``).

``test_batched_speedup_over_seed_baseline`` asserts the batched path is at
least 5x the seed baseline's throughput (trials/second); the pytest-benchmark
entries record the absolute numbers for the perf trajectory.

The scenario benchmarks time the same comparison under a lossy push–pull
workload (``MessageLoss(0.3)``): the vectorised scenario masks must keep the
batched path at least 5x *today's* serial scenario loop
(``test_batched_scenario_speedup_over_serial`` — a stricter reference than
the frozen seed baseline, since the serial engine itself is vectorised
per-round), so scenario sweeps never silently fall off the fast path.

The PR-9 gate (``test_batched_adaptive_scenario_speedup_over_serial``)
repeats the scenario comparison under the composed adaptive adversary
(``AdaptiveCrash | AdaptiveLoss`` — the E13 cell shape, mostly stalled
partial-budget rounds) at >= 2x serial, so adaptive sweeps stay on the
batched path too.

The auxiliary-process benchmarks gate the PR-3 kernels the same way:
``test_batched_aux_speedup_over_serial`` asserts batched ``ppx``/``ppy`` at
least 5x today's serial aux engine on the 1024-vertex random regular graph
(while double-checking the fixed-seed sample equality), so the Theorem-1
suites can rely on the fast path staying fast.

The PR-4 gates cover the zero-copy parallel layer and the pooled clock-view
fast path:

* ``test_shared_sweep_speedup_over_per_call_executor`` runs a 16-point
  sweep through ``run_trials_parallel(parallel="shared")`` on the session's
  persistent pool and asserts >= 3x the frozen pre-PR-4 baseline (a fresh
  ``ProcessPoolExecutor`` per grid point, graph pickled into every chunk,
  samples pickled back, pairwise ``merged_with`` chain) — while checking
  the two paths stay bit-identical;
* ``test_chunked_pooled_clock_view_speedup`` asserts the chunked pooled
  ``node_clocks``/``edge_clocks`` kernel at >= 4x the unchunked pooled path
  (``pooled_chunk=0``, the legacy per-tick-draw next-tick-table loop).

The PR-6 gate covers the compiled kernel tier:
``test_jit_sync_round_speedup_over_numpy`` asserts the numba jit backend
at >= 3x the numpy reference on the synchronous round kernel at n=10^4
(warm-up — including jit compilation — excluded from the timed region,
bit-identical samples double-checked).  On a numba-free machine the gate
skips but still writes a ``skipped`` record, so BENCH_batch.json shows
*why* the number is missing rather than silently omitting it.

Every gate records its measured numbers through ``bench_record`` into
``BENCH_batch.json`` (see ``conftest.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.analysis.montecarlo import run_trials
from repro.analysis.parallel import (
    ParallelTrialSpec,
    _run_chunk,
    run_trials_parallel,
)
from repro.analysis.pool import shutdown_pool
from repro.core.batch_engine import run_clock_view_batch, run_synchronous_batch
from repro.core.flatgraph import flat_adjacency
from repro.core.kernels import jit_backend, warmup_kernels
from repro.graphs.random_graphs import random_regular_graph
from repro.randomness.rng import spawn_generators, spawn_seeds
from repro.scenarios import (
    AdaptiveCrash,
    AdaptiveLoss,
    DynamicGraph,
    FamilyResampler,
    MessageLoss,
)

#: Trials per preset; the smoke preset keeps the whole file under ~10 s.
TRIALS = {"smoke": 96, "quick": 256, "full": 768}

GRAPH_SIZE = 1024
GRAPH_DEGREE = 8

#: The scenario gate uses a smaller graph and more trials: batching amortizes
#: Python-level per-round overhead across trials, which is the dominant cost
#: at moderate n (at n=1024 the serial rounds are already numpy-bound and the
#: measured gap narrows to ~5x — too close to gate on).
SCENARIO_GRAPH_SIZE = 256
SCENARIO_TRIALS = {"smoke": 192, "quick": 384, "full": 1024}

#: The lossy workload: 30% of exchanges dropped.
LOSSY = MessageLoss(0.3)

#: Trials for the auxiliary-process (ppx/ppy) gate.  The serial aux engine
#: pays per-pulling-vertex Python loops plus full SpreadingResult
#: materialization, so a modest trial count gives a stable signal on the
#: 1024-vertex graph.
AUX_TRIALS = {"smoke": 24, "quick": 64, "full": 192}

#: The shared-memory sweep gate: 16 grid points, 2 workers per point (the
#: CI cap), small per-point trial counts — exactly the shape where per-call
#: executor startup used to dominate a sweep.
SWEEP_POINTS = 16
SWEEP_WORKERS = 2
SWEEP_GRAPH_SIZE = 128
SWEEP_TRIALS = {"smoke": 24, "quick": 48, "full": 96}

#: The async dynamic-graph gate (PR 5): the batched tick loop with the
#: per-trial padded CSR vs the serial per-tick Python loop (the pre-PR-5
#: fallback for this scenario).  The resampler draws from a prebuilt pool
#: of graphs so every trial's graph genuinely changes each period while the
#: Python graph-construction cost — identical per trial on both paths, and
#: easily the largest term with a family resampler — stays out of the
#: timed region: the gate times the kernels, not the family constructor.
#: The batch width matches the trial count (one block), where the batched
#: tick loop's fixed per-iteration cost amortizes fully.
DYNAMIC_GRAPH_SIZE = 256
DYNAMIC_PERIOD = 3
DYNAMIC_POOL = 8
DYNAMIC_TRIALS = {"smoke": 1024, "quick": 1536, "full": 2048}


class _PooledGraphResampler:
    """Draw the next graph uniformly from a prebuilt pool (picklable)."""

    def __init__(self, graphs):
        self.graphs = tuple(graphs)
        self.family_name = f"pool({len(self.graphs)})"

    def __call__(self, graph, rng):
        return self.graphs[int(rng.integers(len(self.graphs)))]


def _dynamic_scenario():
    pool = [
        random_regular_graph(DYNAMIC_GRAPH_SIZE, GRAPH_DEGREE, seed=100 + index)
        for index in range(DYNAMIC_POOL)
    ]
    return DynamicGraph(_PooledGraphResampler(pool), period=DYNAMIC_PERIOD)


#: The chunked pooled clock-view gate: per-view workloads sized so the
#: unchunked baseline's per-tick (B, #clocks) argmin is the dominant cost
#: it is in real sweeps (edge_clocks has ~n*d clocks per trial, so it gates
#: on a smaller graph).
CLOCK_VIEW_WORKLOADS = {
    "node_clocks": (1024, 8),
    "edge_clocks": (512, 8),
}
CLOCK_VIEW_TRIALS = {
    "node_clocks": {"smoke": 160, "quick": 224, "full": 320},
    "edge_clocks": {"smoke": 64, "quick": 96, "full": 160},
}


@pytest.fixture(scope="module")
def bench_graph():
    return random_regular_graph(GRAPH_SIZE, GRAPH_DEGREE, seed=1)


@pytest.fixture(scope="module")
def scenario_graph():
    return random_regular_graph(SCENARIO_GRAPH_SIZE, GRAPH_DEGREE, seed=1)


# --------------------------------------------------------------------- #
# Frozen seed baseline: the original (pre-batching) synchronous engine
# loop, verbatim in structure — per-vertex Python loops for infection
# kinds, np.unique parent resolution, and per-vertex tuple materialization.
# Do not "optimise" this function; it exists to pin the comparison point.
# --------------------------------------------------------------------- #
def _seed_baseline_trial(graph, source, rng):
    n = graph.num_vertices
    flat = flat_adjacency(graph)
    all_vertices = np.arange(n, dtype=np.int64)
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_round = np.full(n, np.inf)
    informed_round[source] = 0.0
    parent = np.full(n, -1, dtype=np.int64)
    kind = [None] * n
    kind[source] = "source"
    num_informed = 1
    rounds_executed = 0
    while num_informed < n:
        rounds_executed += 1
        contacts = flat.random_neighbors(all_vertices, rng.random(n))
        informed_before = informed
        contacted_informed = informed_before[contacts]
        new_by_pull = (~informed_before) & contacted_informed
        new_by_push = np.zeros(n, dtype=bool)
        pusher_mask = informed_before & ~informed_before[contacts]
        push_sources = all_vertices[pusher_mask]
        push_targets = contacts[pusher_mask]
        if push_targets.size:
            unique_targets, first_index = np.unique(push_targets, return_index=True)
            push_targets = unique_targets
            push_sources = push_sources[first_index]
            fresh = ~new_by_pull[push_targets]
            push_targets = push_targets[fresh]
            push_sources = push_sources[fresh]
            new_by_push[push_targets] = True
        newly_informed = new_by_pull | new_by_push
        if newly_informed.any():
            new_ids = all_vertices[newly_informed]
            informed_round[new_ids] = float(rounds_executed)
            pull_ids = all_vertices[new_by_pull]
            parent[pull_ids] = contacts[pull_ids]
            for v in pull_ids:
                kind[int(v)] = "pull"
            parent[push_targets] = push_sources
            for v in push_targets:
                kind[int(v)] = "push"
            informed = informed_before.copy()
            informed[new_ids] = True
            num_informed += int(new_ids.size)
    informed_time = tuple(float(t) for t in informed_round)
    tuple(int(p) for p in parent)
    tuple(kind)
    return max(informed_time)


def _seed_baseline_run_trials(graph, source, trials, seed):
    return [
        _seed_baseline_trial(graph, source, rng)
        for rng in spawn_generators(trials, seed)
    ]


def _throughput(fn, trials):
    start = time.perf_counter()
    fn()
    return trials / (time.perf_counter() - start)


def test_seed_baseline_throughput(benchmark, bench_preset, bench_graph):
    trials = TRIALS[bench_preset]
    times = benchmark.pedantic(
        _seed_baseline_run_trials,
        args=(bench_graph, 0, trials, 5),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert len(times) == trials


def test_serial_throughput(benchmark, bench_preset, bench_graph):
    trials = TRIALS[bench_preset]
    sample = benchmark.pedantic(
        run_trials,
        args=(bench_graph, 0, "pp"),
        kwargs=dict(trials=trials, seed=5, batch=False),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert sample.num_trials == trials


def test_batched_throughput(benchmark, bench_preset, bench_graph):
    trials = TRIALS[bench_preset]
    sample = benchmark.pedantic(
        run_trials,
        args=(bench_graph, 0, "pp"),
        kwargs=dict(trials=trials, seed=5, batch="auto"),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert sample.num_trials == trials


def test_batched_async_throughput(benchmark, bench_preset, bench_graph):
    trials = max(128, TRIALS[bench_preset])
    sample = benchmark.pedantic(
        run_trials,
        args=(bench_graph, 0, "pp-a"),
        kwargs=dict(trials=trials, seed=5, batch="auto"),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert sample.num_trials == trials


def test_serial_scenario_throughput(benchmark, bench_preset, scenario_graph):
    trials = SCENARIO_TRIALS[bench_preset]
    sample = benchmark.pedantic(
        run_trials,
        args=(scenario_graph, 0, "pp"),
        kwargs=dict(trials=trials, seed=5, batch=False, scenario=LOSSY),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert sample.num_trials == trials


def test_batched_scenario_throughput(benchmark, bench_preset, scenario_graph):
    trials = SCENARIO_TRIALS[bench_preset]
    sample = benchmark.pedantic(
        run_trials,
        args=(scenario_graph, 0, "pp"),
        kwargs=dict(trials=trials, seed=5, batch="auto", scenario=LOSSY),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert sample.num_trials == trials


def test_pooled_scenario_throughput(benchmark, bench_preset, scenario_graph):
    trials = SCENARIO_TRIALS[bench_preset]
    sample = benchmark.pedantic(
        run_trials,
        args=(scenario_graph, 0, "pp"),
        kwargs=dict(trials=trials, seed=5, batch="pooled", scenario=LOSSY),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert sample.num_trials == trials


def test_batched_scenario_speedup_over_serial(bench_preset, scenario_graph, bench_record):
    """The scenario gate: batched lossy push-pull >= 5x the serial loop."""
    trials = SCENARIO_TRIALS[bench_preset]
    # Warm both paths (flat adjacency cache, allocator).
    run_trials(scenario_graph, 0, "pp", trials=8, seed=0, batch=False, scenario=LOSSY)
    run_trials(scenario_graph, 0, "pp", trials=8, seed=0, batch="auto", scenario=LOSSY)

    serial = _throughput(
        lambda: run_trials(
            scenario_graph, 0, "pp", trials=trials, seed=5, batch=False, scenario=LOSSY
        ),
        trials,
    )
    batched = _throughput(
        lambda: run_trials(
            scenario_graph, 0, "pp", trials=trials, seed=5, batch="auto", scenario=LOSSY
        ),
        trials,
    )
    speedup = batched / serial
    print(
        f"\nserial scenario {serial:.0f} trials/s, batched scenario {batched:.0f} "
        f"trials/s, speedup {speedup:.2f}x"
    )
    bench_record(
        "batched_scenario_vs_serial",
        seconds=trials / batched,
        speedup=speedup,
        gate=5.0,
        baseline_seconds=trials / serial,
        trials=trials,
    )
    assert speedup >= 5.0, (
        f"batched scenario path is only {speedup:.2f}x today's serial scenario loop "
        f"({serial:.0f} vs {batched:.0f} trials/s)"
    )


#: The PR-9 adaptive-adversary gate: both adaptive models at once (the E13
#: cell shape).  The crash adversary kills the source at the first epoch, so
#: most of each trial is spent in stalled partial-budget rounds — exactly
#: the regime E13 sweeps — where the batched path's win is amortized Python
#: overhead, not narrower numpy work; the measured gap (~2.5x) is therefore
#: gated at 2x, below the oblivious-scenario 5x by design, not regression.
ADAPTIVE_SCENARIO = AdaptiveCrash(budget=4) | AdaptiveLoss(p=0.5, budget=32)
ADAPTIVE_OPTIONS = {"max_rounds": 100, "on_budget_exhausted": "partial"}


def test_batched_adaptive_scenario_speedup_over_serial(
    bench_preset, scenario_graph, bench_record
):
    """The PR-9 gate: batched adaptive-adversary push-pull >= 2x the serial
    loop (and exactly seed-equivalent to it)."""
    trials = SCENARIO_TRIALS[bench_preset]
    kwargs = dict(scenario=ADAPTIVE_SCENARIO, engine_options=ADAPTIVE_OPTIONS)
    # Warm both paths (flat adjacency cache, allocator).
    run_trials(scenario_graph, 0, "pp", trials=8, seed=0, batch=False, **kwargs)
    run_trials(scenario_graph, 0, "pp", trials=8, seed=0, batch="auto", **kwargs)

    serial_sample = run_trials(
        scenario_graph, 0, "pp", trials=trials, seed=5, batch=False, **kwargs
    )
    batched_sample = run_trials(
        scenario_graph, 0, "pp", trials=trials, seed=5, batch="auto", **kwargs
    )
    assert serial_sample.times == batched_sample.times  # exact equivalence

    # Best of two runs per path: loaded CI runners spike single measurements.
    serial = max(
        _throughput(
            lambda: run_trials(
                scenario_graph, 0, "pp", trials=trials, seed=5, batch=False, **kwargs
            ),
            trials,
        )
        for _ in range(2)
    )
    batched = max(
        _throughput(
            lambda: run_trials(
                scenario_graph, 0, "pp", trials=trials, seed=5, batch="auto", **kwargs
            ),
            trials,
        )
        for _ in range(2)
    )
    speedup = batched / serial
    print(
        f"\nserial adaptive scenario {serial:.0f} trials/s, batched "
        f"{batched:.0f} trials/s, speedup {speedup:.2f}x"
    )
    bench_record(
        "batched_adaptive_scenario_vs_serial",
        seconds=trials / batched,
        speedup=speedup,
        gate=2.0,
        baseline_seconds=trials / serial,
        trials=trials,
    )
    assert speedup >= 2.0, (
        f"batched adaptive-scenario path is only {speedup:.2f}x today's serial "
        f"loop ({serial:.0f} vs {batched:.0f} trials/s)"
    )


def test_serial_aux_throughput(benchmark, bench_preset, bench_graph):
    trials = AUX_TRIALS[bench_preset]
    sample = benchmark.pedantic(
        run_trials,
        args=(bench_graph, 0, "ppx"),
        kwargs=dict(trials=trials, seed=5, batch=False),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert sample.num_trials == trials


def test_batched_aux_throughput(benchmark, bench_preset, bench_graph):
    trials = AUX_TRIALS[bench_preset]
    sample = benchmark.pedantic(
        run_trials,
        args=(bench_graph, 0, "ppx"),
        kwargs=dict(trials=trials, seed=5, batch="auto"),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert sample.num_trials == trials


@pytest.mark.parametrize("variant", ["ppx", "ppy"])
def test_batched_aux_speedup_over_serial(bench_preset, bench_graph, variant, bench_record):
    """The PR-3 gate: batched ppx/ppy >= 5x the serial aux engine on the
    1024-vertex random regular graph (and exactly seed-equivalent to it)."""
    trials = AUX_TRIALS[bench_preset]
    # Warm both paths (flat adjacency cache, allocator).
    run_trials(bench_graph, 0, variant, trials=4, seed=0, batch=False)
    run_trials(bench_graph, 0, variant, trials=4, seed=0, batch="auto")

    serial_sample = {}
    batched_sample = {}
    serial = _throughput(
        lambda: serial_sample.setdefault(
            "s", run_trials(bench_graph, 0, variant, trials=trials, seed=5, batch=False)
        ),
        trials,
    )
    batched = _throughput(
        lambda: batched_sample.setdefault(
            "b", run_trials(bench_graph, 0, variant, trials=trials, seed=5, batch="auto")
        ),
        trials,
    )
    assert serial_sample["s"].times == batched_sample["b"].times  # exact equivalence
    speedup = batched / serial
    print(
        f"\nserial {variant} {serial:.0f} trials/s, batched {variant} {batched:.0f} "
        f"trials/s, speedup {speedup:.2f}x"
    )
    bench_record(
        f"batched_aux_{variant}_vs_serial",
        seconds=trials / batched,
        speedup=speedup,
        gate=5.0,
        baseline_seconds=trials / serial,
        trials=trials,
    )
    assert speedup >= 5.0, (
        f"batched {variant} path is only {speedup:.2f}x the serial aux engine "
        f"({serial:.0f} vs {batched:.0f} trials/s)"
    )


def test_batched_dynamic_async_speedup_over_serial(bench_preset, bench_record):
    """The PR-5 gate: batched dynamic-graph async (per-trial padded CSR in
    the tick loop) >= 4x the serial engine it used to fall back to — while
    double-checking the fixed-seed sample equality."""
    trials = DYNAMIC_TRIALS[bench_preset]
    graph = random_regular_graph(DYNAMIC_GRAPH_SIZE, GRAPH_DEGREE, seed=1)
    kwargs = dict(scenario=_dynamic_scenario())
    # Warm both paths (flat adjacency cache for the whole pool, allocator).
    run_trials(graph, 0, "pp-a", trials=8, seed=0, batch=False, **kwargs)
    run_trials(graph, 0, "pp-a", trials=8, seed=0, batch=8, **kwargs)

    # Best of two runs per path: loaded CI runners put multi-hundred-ms
    # noise spikes on single measurements (see the PR-4 gates).
    serial_sample = run_trials(
        graph, 0, "pp-a", trials=trials, seed=5, batch=False, **kwargs
    )
    batched_sample = run_trials(
        graph, 0, "pp-a", trials=trials, seed=5, batch=trials, **kwargs
    )
    assert serial_sample.times == batched_sample.times  # exact equivalence
    serial = max(
        _throughput(
            lambda: run_trials(
                graph, 0, "pp-a", trials=trials, seed=5, batch=False, **kwargs
            ),
            trials,
        )
        for _ in range(2)
    )
    batched = max(
        _throughput(
            lambda: run_trials(
                graph, 0, "pp-a", trials=trials, seed=5, batch=trials, **kwargs
            ),
            trials,
        )
        for _ in range(2)
    )
    speedup = batched / serial
    print(
        f"\nserial dynamic async {serial:.0f} trials/s, batched {batched:.0f} "
        f"trials/s, speedup {speedup:.2f}x"
    )
    bench_record(
        "batched_dynamic_async_vs_serial",
        seconds=trials / batched,
        speedup=speedup,
        gate=4.0,
        baseline_seconds=trials / serial,
        trials=trials,
    )
    assert speedup >= 4.0, (
        f"batched dynamic-graph async path is only {speedup:.2f}x the serial "
        f"engine ({serial:.0f} vs {batched:.0f} trials/s)"
    )


def test_batched_speedup_over_seed_baseline(bench_preset, bench_graph, bench_record):
    """The PR acceptance gate: batched >= 5x the seed's serial throughput."""
    trials = TRIALS[bench_preset]
    # Warm both paths (flat adjacency cache, allocator).
    _seed_baseline_run_trials(bench_graph, 0, 8, 0)
    run_trials(bench_graph, 0, "pp", trials=8, seed=0, batch="auto")

    baseline = _throughput(
        lambda: _seed_baseline_run_trials(bench_graph, 0, trials, 5), trials
    )
    batched = _throughput(
        lambda: run_trials(bench_graph, 0, "pp", trials=trials, seed=5, batch="auto"),
        trials,
    )
    speedup = batched / baseline
    print(
        f"\nseed baseline {baseline:.0f} trials/s, batched {batched:.0f} trials/s, "
        f"speedup {speedup:.2f}x"
    )
    bench_record(
        "batched_vs_seed_baseline",
        seconds=trials / batched,
        speedup=speedup,
        gate=5.0,
        baseline_seconds=trials / baseline,
        trials=trials,
    )
    assert speedup >= 5.0, (
        f"batched path is only {speedup:.2f}x the seed serial baseline "
        f"({baseline:.0f} vs {batched:.0f} trials/s)"
    )


# --------------------------------------------------------------------- #
# PR-6 gate: the numba jit backend vs the numpy reference kernels on the
# synchronous round step.  n=10^4 is where the numpy kernel's full-width
# (B, n) temporaries hurt most and the per-vertex compiled loop wins; the
# sync round kernel is also the one with no Python-side draw loop inside,
# so the measured ratio is the kernel ratio, not an RNG artifact.
# --------------------------------------------------------------------- #
JIT_GRAPH_SIZE = 10_000
JIT_TRIALS = {"smoke": 32, "quick": 64, "full": 128}


def test_jit_sync_round_speedup_over_numpy(bench_preset, bench_record):
    """The PR-6 gate: jit sync kernel >= 3x numpy at n=10^4 (bit-identical)."""
    if not jit_backend.is_compiled():
        bench_record(
            "jit_sync_round_vs_numpy",
            seconds=None,
            speedup=None,
            gate=3.0,
            skipped="numba not installed",
        )
        pytest.skip("numba is not installed; jit gate records itself as skipped")
    trials = JIT_TRIALS[bench_preset]
    graph = random_regular_graph(JIT_GRAPH_SIZE, GRAPH_DEGREE, seed=1)

    # Warm both backends outside the timed region: jit compilation happens
    # here (warmup_kernels plus one real-shape call per backend), so the
    # timings below measure steady-state kernels only.
    warmup_kernels("jit")
    check = {
        backend: run_synchronous_batch(
            graph, 0, trials=8, seed=5, record_times=False, backend=backend
        )
        for backend in ("numpy", "jit")
    }
    assert np.array_equal(
        check["numpy"].completion_time, check["jit"].completion_time
    )  # exact equivalence

    def timed(backend):
        # Min of two runs: loaded CI runners spike single measurements.
        seconds = []
        for _ in range(2):
            start = time.perf_counter()
            run_synchronous_batch(
                graph, 0, trials=trials, seed=5, record_times=False, backend=backend
            )
            seconds.append(time.perf_counter() - start)
        return min(seconds)

    numpy_seconds = timed("numpy")
    jit_seconds = timed("jit")
    speedup = numpy_seconds / jit_seconds
    print(
        f"\nnumpy sync kernel {numpy_seconds:.2f}s, jit {jit_seconds:.2f}s for "
        f"{trials} trials on n={JIT_GRAPH_SIZE}, speedup {speedup:.2f}x"
    )
    bench_record(
        "jit_sync_round_vs_numpy",
        seconds=jit_seconds,
        speedup=speedup,
        gate=3.0,
        baseline_seconds=numpy_seconds,
        trials=trials,
        graph_size=JIT_GRAPH_SIZE,
    )
    assert speedup >= 3.0, (
        f"jit sync kernel is only {speedup:.2f}x the numpy reference "
        f"({numpy_seconds:.2f}s vs {jit_seconds:.2f}s)"
    )


# --------------------------------------------------------------------- #
# PR-4 gate 1: zero-copy shared-memory sweep vs a fresh executor per call.
# The baseline is a frozen copy of the pre-PR-4 dispatch — a brand-new
# ProcessPoolExecutor per sweep point, the graph pickled into every chunk
# spec, whole SpreadingTimeSample objects pickled back, and a pairwise
# merged_with chain.  Do not "optimise" it; it pins the comparison point.
# --------------------------------------------------------------------- #
def _per_call_executor_point(graph, trials, seed):
    graph_seed, *chunk_seeds = spawn_seeds(SWEEP_WORKERS + 1, seed)
    base, remainder = divmod(trials, SWEEP_WORKERS)
    specs = [
        ParallelTrialSpec(
            protocol="pp",
            source=0,
            trials=base + (1 if index < remainder else 0),
            trial_seed=chunk_seed,
            graph=graph,
        )
        for index, chunk_seed in enumerate(chunk_seeds)
    ]
    with ProcessPoolExecutor(max_workers=SWEEP_WORKERS) as executor:
        samples = list(executor.map(_run_chunk, specs))
    merged = samples[0]
    for sample in samples[1:]:
        merged = merged.merged_with(sample)
    return merged


def test_shared_sweep_speedup_over_per_call_executor(bench_preset, bench_record):
    """The PR-4 sweep gate: persistent-pool shared-memory sweep >= 3x the
    fresh-executor-per-call baseline on a 16-point sweep (bit-identically)."""
    trials = SWEEP_TRIALS[bench_preset]
    graphs = [
        random_regular_graph(SWEEP_GRAPH_SIZE, 6, seed=point)
        for point in range(SWEEP_POINTS)
    ]

    def run_baseline_sweep():
        return [
            _per_call_executor_point(graph, trials, 1000 + point)
            for point, graph in enumerate(graphs)
        ]

    def run_shared_sweep():
        return [
            run_trials_parallel(
                graph,
                0,
                "pp",
                trials=trials,
                seed=1000 + point,
                num_workers=SWEEP_WORKERS,
                parallel="shared",
            )
            for point, graph in enumerate(graphs)
        ]

    # Warm both paths (allocator, flat adjacency cache, and — for the
    # shared path — the persistent pool itself: a sweep is the steady
    # state this gate measures, so the one-time session startup is paid
    # before the timer, exactly as it is amortized across real sweeps).
    shutdown_pool()
    _per_call_executor_point(graphs[0], 8, 1)
    run_trials_parallel(
        graphs[0], 0, "pp", trials=8, seed=1, num_workers=SWEEP_WORKERS
    )

    # One-CPU CI runners make multi-process timings noisy; the min of two
    # runs per path is the standard stabiliser.
    baseline_samples = run_baseline_sweep()
    shared_samples = run_shared_sweep()

    def best_of_two(sweep):
        seconds = []
        for _ in range(2):
            start = time.perf_counter()
            sweep()
            seconds.append(time.perf_counter() - start)
        return min(seconds)

    baseline_seconds = best_of_two(run_baseline_sweep)
    shared_seconds = best_of_two(run_shared_sweep)
    shutdown_pool()

    # Same chunk plan, same seeds -> the transports must agree bit for bit.
    for baseline_sample, shared_sample in zip(baseline_samples, shared_samples):
        assert baseline_sample.times == shared_sample.times

    speedup = baseline_seconds / shared_seconds
    print(
        f"\nper-call executors {baseline_seconds:.2f}s, shared-memory sweep "
        f"{shared_seconds:.2f}s over {SWEEP_POINTS} points, speedup {speedup:.2f}x"
    )
    bench_record(
        "shared_memory_sweep",
        seconds=shared_seconds,
        speedup=speedup,
        gate=3.0,
        baseline_seconds=baseline_seconds,
        points=SWEEP_POINTS,
        trials_per_point=trials,
        workers=SWEEP_WORKERS,
    )
    assert speedup >= 3.0, (
        f"shared-memory sweep is only {speedup:.2f}x the per-call-executor "
        f"baseline ({baseline_seconds:.2f}s vs {shared_seconds:.2f}s)"
    )


# --------------------------------------------------------------------- #
# PR-4 gate 2: chunked pooled clock-view kernel vs the unchunked pooled
# path (pooled_chunk=0 — the legacy per-tick-draw next-tick-table loop).
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("view", ["node_clocks", "edge_clocks"])
def test_chunked_pooled_clock_view_speedup(bench_preset, bench_record, view):
    """The PR-4 clock gate: chunked pooled clock views >= 4x unchunked pooled."""
    size, degree = CLOCK_VIEW_WORKLOADS[view]
    trials = CLOCK_VIEW_TRIALS[view][bench_preset]
    graph = random_regular_graph(size, degree, seed=1)

    # Warm both paths (flat adjacency cache, allocator).
    for chunk in (0, None):
        run_clock_view_batch(
            graph, 0, view=view, trials=8,
            pooled_rng=np.random.default_rng(0), pooled_chunk=chunk,
            record_times=False,
        )

    def timed(chunk):
        # Min of two runs: the loaded single-core CI runners put multi-second
        # noise spikes on single measurements.
        seconds = []
        for _ in range(2):
            rng = np.random.default_rng(5)
            start = time.perf_counter()
            run_clock_view_batch(
                graph, 0, view=view, trials=trials, pooled_rng=rng,
                pooled_chunk=chunk, record_times=False,
            )
            seconds.append(time.perf_counter() - start)
        return min(seconds)

    unchunked_seconds = timed(0)
    chunked_seconds = timed(None)
    speedup = unchunked_seconds / chunked_seconds
    print(
        f"\nunchunked pooled {view} {unchunked_seconds:.2f}s, chunked "
        f"{chunked_seconds:.2f}s for {trials} trials on n={size}, "
        f"speedup {speedup:.2f}x"
    )
    bench_record(
        f"chunked_pooled_{view}",
        seconds=chunked_seconds,
        speedup=speedup,
        gate=4.0,
        baseline_seconds=unchunked_seconds,
        trials=trials,
        graph_size=size,
    )
    assert speedup >= 4.0, (
        f"chunked pooled {view} kernel is only {speedup:.2f}x the unchunked "
        f"pooled path ({unchunked_seconds:.2f}s vs {chunked_seconds:.2f}s)"
    )


# --------------------------------------------------------------------- #
# PR-7 gate: disabled telemetry must cost nothing on the batched hot
# path.  The baseline stubs the `current_metrics` accessor in every
# instrumented module down to the cheapest possible no-op, so the gate
# fails if the accessor (or anything guarded by it) ever grows real work
# on the telemetry-off path — e.g. a registry that defaults on, or an
# unconditional allocation sneaking ahead of the None check.
# --------------------------------------------------------------------- #
TELEMETRY_ROUNDS = {"smoke": 3, "quick": 5, "full": 7}


def test_telemetry_off_overhead(bench_preset, bench_graph, bench_record, monkeypatch):
    """Telemetry off: within 2% of an accessor-stubbed baseline."""
    from repro.analysis import montecarlo as montecarlo_module
    from repro.core import batch_engine as batch_engine_module
    from repro.core import protocols as protocols_module
    from repro.core.kernels import jit_backend as jit_module
    from repro.core.kernels import numpy_backend as numpy_module
    from repro.telemetry.metrics import current_metrics

    assert current_metrics() is None, "telemetry must be off by default"
    trials = TRIALS[bench_preset]
    rounds = TELEMETRY_ROUNDS[bench_preset]

    def workload():
        start = time.perf_counter()
        run_trials(bench_graph, 0, "pp", trials=trials, seed=5, batch=True)
        run_trials(bench_graph, 0, "pp-a", trials=max(trials // 4, 8), seed=5, batch=True)
        return time.perf_counter() - start

    def stub_accessor():
        return None

    instrumented = (
        montecarlo_module,
        batch_engine_module,
        protocols_module,
        numpy_module,
        jit_module,
    )

    workload()  # warm both engines (flat adjacency cache, allocator)
    shipped = stubbed = float("inf")
    # Interleave the two measurements so machine noise (thermal drift, a
    # background process) hits both sides; best-of-N rejects outliers.
    for _ in range(rounds):
        shipped = min(shipped, workload())
        with monkeypatch.context() as patch:
            for module in instrumented:
                patch.setattr(module, "current_metrics", stub_accessor)
            stubbed = min(stubbed, workload())

    speedup = stubbed / shipped  # >= 1 means the shipped accessor is free
    print(
        f"\ntelemetry-off {shipped:.4f}s vs stubbed baseline {stubbed:.4f}s "
        f"for {trials} sync + {max(trials // 4, 8)} async trials, "
        f"ratio {speedup:.3f}"
    )
    bench_record(
        "telemetry_off_overhead",
        seconds=shipped,
        speedup=speedup,
        gate=0.98,
        baseline_seconds=stubbed,
        trials=trials,
    )
    assert speedup >= 0.98, (
        f"disabled telemetry costs {(1 - speedup) * 100:.1f}% on the batched "
        f"hot path ({shipped:.4f}s vs {stubbed:.4f}s stubbed)"
    )


# --------------------------------------------------------------------- #
# PR-8 gate: CSR-native generation at one million vertices.  The whole
# point of building graphs as CSR arrays end to end is that *construction*
# stops being the wall at large n, so this gate times an E1-style workload
# on a random regular graph at n = 10^6 (10^5 on the smoke preset):
# configuration-model sampling + vectorised simplicity check + array-side
# connectivity, then a short synchronous push-pull sweep through the batch
# kernels.  Build time and tracemalloc peak are hard ceilings; the sweep
# time is recorded for the trajectory.  d = 3 keeps the pairing model's
# simple-sample probability at e^-2, so the fixed seed needs only a
# handful of permutation attempts.
# --------------------------------------------------------------------- #
MILLION_SIZE = {"smoke": 100_000, "quick": 1_000_000, "full": 1_000_000}
MILLION_DEGREE = 3
MILLION_TRIALS = 4
#: Ceilings at n = 10^6 (measured ~2.3 s / ~190 MiB on a laptop-class
#: machine; 20x / 5x headroom for loaded CI runners).  The smoke preset's
#: n = 10^5 run shares them — it is strictly cheaper.
MILLION_BUILD_GATE_SECONDS = 45.0
MILLION_PEAK_GATE_MIB = 1024.0


def test_million_vertex_csr_build_and_sweep(bench_preset, bench_record):
    """The PR-8 gate: build + sweep a million-vertex random regular graph."""
    import tracemalloc

    size = MILLION_SIZE[bench_preset]

    tracemalloc.start()
    start = time.perf_counter()
    graph = random_regular_graph(size, MILLION_DEGREE, seed=1)
    build_seconds = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_mib = peak / 2**20
    assert graph.num_vertices == size
    assert graph.csr() is not None  # stayed on the lazy CSR path

    # E1-style measurement: synchronous push-pull through the 2-D batch
    # kernels (the async event loop is inherently sequential and would
    # dominate at this n without saying anything about construction).
    start = time.perf_counter()
    sample = run_trials(graph, 0, "pp", trials=MILLION_TRIALS, seed=5, batch="auto")
    sweep_seconds = time.perf_counter() - start
    assert sample.num_trials == MILLION_TRIALS

    print(
        f"\nn={size} d={MILLION_DEGREE}: build {build_seconds:.2f}s "
        f"(peak {peak_mib:.0f} MiB), {MILLION_TRIALS}-trial pp sweep "
        f"{sweep_seconds:.2f}s"
    )
    bench_record(
        "million_vertex_csr_build",
        seconds=build_seconds,
        speedup=None,
        gate=MILLION_BUILD_GATE_SECONDS,
        peak_mib=round(peak_mib, 1),
        peak_gate_mib=MILLION_PEAK_GATE_MIB,
        sweep_seconds=round(sweep_seconds, 3),
        graph_size=size,
        degree=MILLION_DEGREE,
        trials=MILLION_TRIALS,
    )
    assert build_seconds <= MILLION_BUILD_GATE_SECONDS, (
        f"building n={size} took {build_seconds:.1f}s "
        f"(gate {MILLION_BUILD_GATE_SECONDS:.0f}s)"
    )
    assert peak_mib <= MILLION_PEAK_GATE_MIB, (
        f"building n={size} peaked at {peak_mib:.0f} MiB "
        f"(gate {MILLION_PEAK_GATE_MIB:.0f} MiB)"
    )
