"""Unit tests for experiment presets and the registry."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.presets import PRESETS, get_preset
from repro.experiments.registry import (
    EXPERIMENTS,
    available_experiments,
    get_experiment,
    run_experiment,
)


class TestPresets:
    def test_all_presets_resolve(self):
        for name in PRESETS:
            preset = get_preset(name)
            assert preset.name == name
            assert preset.trials > 0
            assert preset.coupling_trials > 0
            assert all(size >= 2 for size in preset.sizes)

    def test_presets_are_ordered_by_cost(self):
        assert get_preset("smoke").trials < get_preset("quick").trials < get_preset("full").trials
        assert get_preset("smoke").sizes[-1] <= get_preset("full").sizes[-1]

    def test_unknown_preset(self):
        with pytest.raises(ExperimentError, match="available"):
            get_preset("gigantic")


class TestRegistry:
    def test_expected_experiment_ids(self):
        ids = available_experiments()
        assert ids[0] == "E1"
        assert ids[-1] == "E13"
        assert len(ids) == 13

    def test_ids_cover_design_doc_index(self):
        # E1..E11 reproduce DESIGN.md's per-claim index; E12 is the
        # adversity-scenario robustness suite added on top, E13 the
        # adaptive-adversary suite.
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 14)}

    def test_get_experiment_accepts_plain_numbers(self):
        assert get_experiment("3").experiment_id == "E3"
        assert get_experiment("e4").experiment_id == "E4"
        assert get_experiment("E10").experiment_id == "E10"

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError, match="available"):
            get_experiment("E99")

    def test_specs_have_titles_and_claims(self):
        for spec in EXPERIMENTS.values():
            assert spec.title
            assert spec.claim
            assert callable(spec.runner)

    def test_run_experiment_rejects_unknown_preset(self):
        with pytest.raises(ExperimentError):
            run_experiment("E4", preset="enormous")
