"""Telemetry: coverage tracing, runtime metrics, and run manifests.

Three independent, composable pieces, all free when off:

* :mod:`repro.telemetry.trace` — ``TraceSpec`` / ``CoverageRecorder``:
  per-trial coverage histories derived at batch speed from the kernels'
  bit-identical ``(B, n)`` informing-time matrices, compacted into
  p10/p50/p90 envelopes.
* :mod:`repro.telemetry.metrics` — process-local counters / timers /
  gauges with worker-snapshot merge through the shared-memory pool path.
* :mod:`repro.telemetry.manifest` — JSONL event streams plus a summary
  record per run, aggregated by ``repro telemetry summarize``.

Quickstart::

    from repro.telemetry import CoverageRecorder, collecting_metrics

    recorder = CoverageRecorder()
    with collecting_metrics() as m:
        sample = run_trials(graph, 0, "pp", trials=256, seed=7, trace=recorder)
    trace = recorder.trace(protocol="pp", graph_name=graph.name)
    trace.quantile_fractions      # (3, T) p10/p50/p90 coverage envelope
    m.snapshot()["counters"]      # rounds, messages, trials, ...
"""

from repro.telemetry.manifest import ManifestWriter, summarize_manifest
from repro.telemetry.metrics import (
    MetricsRegistry,
    collecting_metrics,
    current_metrics,
    disable_metrics,
    enable_metrics,
)
from repro.telemetry.trace import (
    CoverageRecorder,
    CoverageTrace,
    TraceCollector,
    TraceSpec,
    active_trace_collector,
    collecting_traces,
    coverage_histories,
)

__all__ = [
    "TraceSpec",
    "CoverageRecorder",
    "CoverageTrace",
    "TraceCollector",
    "active_trace_collector",
    "collecting_traces",
    "coverage_histories",
    "MetricsRegistry",
    "current_metrics",
    "enable_metrics",
    "disable_metrics",
    "collecting_metrics",
    "ManifestWriter",
    "summarize_manifest",
]
