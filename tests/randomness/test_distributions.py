"""Unit tests for the named distributions of Section 2."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.randomness.distributions import (
    Erlang,
    Exponential,
    Geometric,
    NegativeBinomial,
    exponential_minimum_rate,
    exponential_tail,
    geometric_tail,
)


class TestExponential:
    def test_moments(self):
        law = Exponential(rate=2.0)
        assert law.mean == pytest.approx(0.5)
        assert law.variance == pytest.approx(0.25)

    def test_cdf_and_survival(self):
        law = Exponential(rate=1.0)
        assert law.cdf(0.0) == 0.0
        assert law.cdf(1.0) == pytest.approx(1 - math.exp(-1))
        assert law.survival(2.0) == pytest.approx(math.exp(-2))

    def test_sampling_matches_mean(self):
        law = Exponential(rate=4.0)
        samples = law.sample(rng=0, size=20000)
        assert np.mean(samples) == pytest.approx(0.25, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(AnalysisError):
            Exponential(rate=0.0)

    def test_memorylessness_empirically(self):
        """P[X > s + t | X > s] == P[X > t] — the key property behind the model views."""
        law = Exponential(rate=1.5)
        samples = np.asarray(law.sample(rng=1, size=60000))
        s, t = 0.4, 0.7
        conditional = np.mean(samples[samples > s] > s + t)
        unconditional = np.mean(samples > t)
        assert conditional == pytest.approx(unconditional, abs=0.02)


class TestGeometric:
    def test_moments(self):
        law = Geometric(0.25)
        assert law.mean == pytest.approx(4.0)
        assert law.variance == pytest.approx(0.75 / 0.0625)

    def test_pmf_and_cdf(self):
        law = Geometric(0.5)
        assert law.pmf(1) == pytest.approx(0.5)
        assert law.pmf(3) == pytest.approx(0.125)
        assert law.pmf(0) == 0.0
        assert law.cdf(2) == pytest.approx(0.75)
        assert law.cdf(0.5) == 0.0

    def test_sampling_support_starts_at_one(self):
        samples = Geometric(0.3).sample(rng=2, size=1000)
        assert samples.min() >= 1

    def test_invalid_probability(self):
        with pytest.raises(AnalysisError):
            Geometric(0.0)
        with pytest.raises(AnalysisError):
            Geometric(1.5)


class TestNegativeBinomial:
    def test_moments(self):
        law = NegativeBinomial(5, 0.5)
        assert law.mean == pytest.approx(10.0)
        assert law.variance == pytest.approx(5 * 0.5 / 0.25)

    def test_cdf_starts_at_num_successes(self):
        law = NegativeBinomial(4, 0.7)
        assert law.cdf(3) == 0.0
        assert 0.0 < law.cdf(5) < 1.0
        assert law.cdf(200) == pytest.approx(1.0)

    def test_sampling_matches_mean(self):
        law = NegativeBinomial(6, 0.4)
        samples = law.sample(rng=3, size=5000)
        assert np.mean(samples) == pytest.approx(law.mean, rel=0.05)

    def test_scalar_sample_is_int(self):
        assert isinstance(NegativeBinomial(3, 0.5).sample(rng=4), int)

    def test_invalid_parameters(self):
        with pytest.raises(AnalysisError):
            NegativeBinomial(0, 0.5)
        with pytest.raises(AnalysisError):
            NegativeBinomial(3, 0.0)


class TestErlang:
    def test_moments(self):
        law = Erlang(4, 2.0)
        assert law.mean == pytest.approx(2.0)
        assert law.variance == pytest.approx(1.0)

    def test_cdf_monotone_and_normalised(self):
        law = Erlang(3, 1.0)
        values = [law.cdf(t) for t in (0.0, 1.0, 3.0, 10.0, 40.0)]
        assert values[0] == 0.0
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0, abs=1e-6)

    def test_sampling_matches_mean(self):
        law = Erlang(5, 0.5)
        samples = law.sample(rng=5, size=5000)
        assert np.mean(samples) == pytest.approx(10.0, rel=0.05)

    def test_dominating_negbin_matches_lemma(self):
        """Erl(k, λ) ≼ NegBin(k, 1 - e^{-λ}): the NegBin CDF never exceeds the Erlang CDF."""
        law = Erlang(4, 0.8)
        negbin = law.dominating_negative_binomial()
        assert negbin.num_successes == 4
        assert negbin.success_probability == pytest.approx(1 - math.exp(-0.8))
        for t in np.linspace(0.1, 30.0, 60):
            assert negbin.cdf(t) <= law.cdf(t) + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(AnalysisError):
            Erlang(0, 1.0)
        with pytest.raises(AnalysisError):
            Erlang(2, -1.0)


class TestHelpers:
    def test_minimum_rate_is_sum(self):
        assert exponential_minimum_rate([1.0, 2.0, 0.5]) == pytest.approx(3.5)
        with pytest.raises(AnalysisError):
            exponential_minimum_rate([])
        with pytest.raises(AnalysisError):
            exponential_minimum_rate([1.0, -1.0])

    def test_minimum_of_exponentials_distribution(self):
        """min of independent Exp(λi) ~ Exp(Σ λi) — checked on samples."""
        rng = np.random.default_rng(8)
        rates = np.array([0.5, 1.5, 2.0])
        draws = np.column_stack([rng.exponential(1.0 / r, 20000) for r in rates])
        minima = draws.min(axis=1)
        assert np.mean(minima) == pytest.approx(1.0 / rates.sum(), rel=0.05)

    def test_tails(self):
        assert geometric_tail(0.5, 3) == pytest.approx(0.125)
        assert geometric_tail(0.5, 0) == 1.0
        assert geometric_tail(0.5, -1) == 1.0
        assert exponential_tail(2.0, 1.0) == pytest.approx(math.exp(-2.0))
        assert exponential_tail(2.0, 0.0) == 1.0
        with pytest.raises(AnalysisError):
            geometric_tail(0.0, 2)
        with pytest.raises(AnalysisError):
            exponential_tail(-1.0, 2)
