"""The classical push coupling (Sauerwald) between synchronous and asynchronous push.

Section 3 of the paper recalls the simple coupling used to compare the
synchronous push protocol with its asynchronous variant ``push-a``: once a
vertex ``v`` becomes informed, it contacts its neighbors *in the same order*
in both protocols.  Concretely, two shared families of random variables
drive both processes:

* ``X[v][i]`` — the ``i``-th neighbor ``v`` contacts after becoming informed
  (uniform over ``Γ(v)``, i.i.d.);
* ``G[v][i]`` — the waiting time between ``v``'s ``(i-1)``-th and ``i``-th
  clock ticks after it became informed (``Exp(1)``, i.i.d.).

In the synchronous protocol, ``v`` pushes to ``X[v][i]`` in round
``r_v + i``; in the asynchronous protocol, ``v`` pushes to ``X[v][i]`` at
time ``t_v + G[v][1] + ... + G[v][i]``.  Because the expected waiting time
for the ``i``-th tick is exactly ``i`` rounds' worth of time, the coupling
yields ``E[t_v] <= E[r_v]`` for every vertex — the heart of the argument
that asynchrony never hurts the push protocol by more than a constant
factor.

:func:`run_coupled_push` executes both processes on the shared randomness
and returns the per-vertex informing rounds/times, so the inequality can be
inspected on concrete runs and averaged over trials in the experiments.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CouplingError, ProtocolError
from repro.graphs.base import Graph
from repro.randomness.rng import SeedLike, as_generator

__all__ = ["CoupledPushRun", "run_coupled_push"]


@dataclass(frozen=True)
class CoupledPushRun:
    """Result of one coupled (synchronous push, asynchronous push) run.

    Attributes:
        graph_name: display name of the simulated graph.
        source: the initially informed vertex.
        sync_round: per-vertex informing round in synchronous push.
        async_time: per-vertex informing time in asynchronous push, driven by
            the same contact choices.
        sync_spreading_time: ``max(sync_round)``.
        async_spreading_time: ``max(async_time)``.
    """

    graph_name: str
    source: int
    sync_round: tuple[float, ...]
    async_time: tuple[float, ...]

    @property
    def sync_spreading_time(self) -> float:
        return max(self.sync_round)

    @property
    def async_spreading_time(self) -> float:
        return max(self.async_time)

    def per_vertex_differences(self) -> list[float]:
        """``async_time[v] - sync_round[v]`` for every vertex.

        Negative values mean the asynchronous protocol informed the vertex
        earlier than the synchronous one did under the shared randomness.
        The coupling argument says these differences have non-positive mean
        when averaged over runs.
        """
        return [a - s for a, s in zip(self.async_time, self.sync_round)]


def _check_inputs(graph: Graph, source: int) -> None:
    if not (0 <= source < graph.num_vertices):
        raise ProtocolError(
            f"source {source} is not a vertex of {graph.name} (n={graph.num_vertices})"
        )
    if graph.num_vertices > 1 and not graph.is_connected():
        raise ProtocolError(f"{graph.name} is not connected")


def run_coupled_push(
    graph: Graph,
    source: int,
    *,
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> CoupledPushRun:
    """Run synchronous and asynchronous push on shared contact randomness.

    Both processes are simulated exactly; they share the per-vertex contact
    sequences ``X[v][i]`` but the asynchronous side additionally draws the
    exponential tick gaps ``G[v][i]``.  The push-only protocol has the
    convenient property that a vertex's behaviour after it becomes informed
    does not depend on anything else, which is what makes this direct
    coupling possible (and what fails for pull — the motivation for the
    paper's new coupling in Section 4).

    Returns:
        A :class:`CoupledPushRun` with per-vertex informing rounds and times.

    Raises:
        CouplingError: if either process fails to inform every vertex within
            a very generous budget (only possible on disconnected input,
            which is rejected earlier anyway).
    """
    _check_inputs(graph, source)
    n = graph.num_vertices
    rng = as_generator(seed)
    adjacency = graph.adjacency
    budget = max_rounds if max_rounds is not None else int(400 * n * max(1.0, math.log(max(n, 2))) + 4000)

    if n == 1:
        return CoupledPushRun(graph.name, source, (0.0,), (0.0,))

    # Shared contact sequences, generated lazily per (vertex, index).
    contact_cache: dict[int, list[int]] = {v: [] for v in range(n)}

    def contact(v: int, i: int) -> int:
        """The i-th (1-based) neighbor v contacts after becoming informed."""
        sequence = contact_cache[v]
        while len(sequence) < i:
            nbrs = adjacency[v]
            sequence.append(int(nbrs[int(rng.integers(len(nbrs)))]))
        return sequence[i - 1]

    # ---------------- Synchronous push on the shared contacts ---------------- #
    sync_round = [math.inf] * n
    sync_round[source] = 0.0
    informed_order = [source]
    current_round = 0
    informed_count = 1
    while informed_count < n and current_round < budget:
        current_round += 1
        newly: list[int] = []
        for v in informed_order:
            offset = current_round - int(sync_round[v])
            if offset < 1:
                continue
            target = contact(v, offset)
            if math.isinf(sync_round[target]):
                sync_round[target] = float(current_round)
                newly.append(target)
        informed_order.extend(newly)
        informed_count += len(newly)
    if informed_count < n:
        raise CouplingError(
            f"synchronous push did not finish on {graph.name} within {budget} rounds"
        )

    # ---------------- Asynchronous push on the same contacts ---------------- #
    async_time = [math.inf] * n
    async_time[source] = 0.0
    # Heap entries: (tick_time, vertex, tick_index) — the tick_index-th tick
    # of `vertex` after it became informed.
    heap: list[tuple[float, int, int]] = [(float(rng.exponential(1.0)), source, 1)]
    async_informed = 1
    safety = 0
    step_cap = budget * n + 10_000
    while heap and async_informed < n and safety < step_cap:
        safety += 1
        tick_time, v, index = heapq.heappop(heap)
        target = contact(v, index)
        if math.isinf(async_time[target]):
            async_time[target] = tick_time
            async_informed += 1
            heapq.heappush(heap, (tick_time + float(rng.exponential(1.0)), target, 1))
        heapq.heappush(heap, (tick_time + float(rng.exponential(1.0)), v, index + 1))
    if async_informed < n:
        raise CouplingError(
            f"asynchronous push did not finish on {graph.name} within {step_cap} ticks"
        )

    return CoupledPushRun(
        graph_name=graph.name,
        source=source,
        sync_round=tuple(sync_round),
        async_time=tuple(async_time),
    )


def average_push_coupling_gap(
    graph: Graph,
    source: int,
    *,
    trials: int,
    seed: SeedLike = None,
) -> float:
    """Average of ``mean_v(async_time[v] - sync_round[v])`` over coupled trials.

    The coupling argument shows this is at most 0 in expectation; the
    experiments report the measured value as evidence.
    """
    if trials < 1:
        raise CouplingError(f"trials must be >= 1, got {trials}")
    rng = as_generator(seed)
    total = 0.0
    for _ in range(trials):
        run = run_coupled_push(graph, source, seed=rng)
        differences = run.per_vertex_differences()
        total += float(np.mean(differences))
    return total / trials
