"""The auxiliary synchronous processes ``ppx`` and ``ppy`` (Definitions 5 and 7).

Section 4 of the paper introduces two synthetic round-based processes that
interpolate between synchronous push–pull (``pp``) and the asynchronous
protocol (``pp-a``).  They are not realistic rumor spreading algorithms —
they assume each vertex knows which of its neighbors are informed — but they
are perfectly well-defined stochastic processes, and simulating them lets us
check the two domination lemmas that the upper-bound proof chains together:

* **``ppx``** (Definition 5): every informed vertex pushes to a uniformly
  random neighbor each round; an uninformed vertex ``v`` with ``k`` informed
  neighbors pulls from a uniformly random *informed* neighbor with
  probability ``1 - exp(-2k / deg(v))`` if ``k < deg(v) / 2`` and with
  probability 1 once ``k >= deg(v) / 2``.
  Lemma 6: ``T(ppx) ≼ T(pp)``.
* **``ppy``** (Definition 7): identical, except the pull probability is
  ``1 - exp(-2k / deg(v))`` for every ``k`` (no "half the neighbors" cutoff).
  Lemma 9: ``T_δ(ppy) = O(T_δ(ppx) + log(n/δ))``.

Both engines use the informed set from the *start* of the round for every
decision, mirroring the synchronous engine.

This module simulates one trial with full
:class:`~repro.core.result.SpreadingResult` bookkeeping; times-only Monte
Carlo runs should go through
:func:`repro.core.batch_engine.run_auxiliary_batch`, which simulates whole
``(B, n)`` blocks of trials at once, shares this module's
:func:`pull_probabilities`, and reproduces this engine's informing times
trial-for-trial for the same per-trial generators.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.flatgraph import flat_adjacency
from repro.core.result import SpreadingResult
from repro.core.sync_engine import default_max_rounds
from repro.errors import ProtocolError, SimulationError
from repro.graphs.base import Graph
from repro.randomness.rng import SeedLike, as_generator

__all__ = [
    "run_ppx",
    "run_ppy",
    "run_auxiliary_process",
    "pull_probability",
    "pull_probabilities",
    "AUX_VARIANTS",
]

#: Valid auxiliary process names.
AUX_VARIANTS = ("ppx", "ppy")


def pull_probability(variant: str, informed_neighbors: int, degree: int) -> float:
    """The per-round pull probability of an uninformed vertex.

    Args:
        variant: ``"ppx"`` or ``"ppy"``.
        informed_neighbors: the number ``k`` of currently informed neighbors.
        degree: the vertex degree.

    Returns:
        The probability from Definition 5 (``ppx``) or Definition 7
        (``ppy``).  Zero when ``k == 0`` in both variants.
    """
    if variant not in AUX_VARIANTS:
        raise ProtocolError(f"unknown auxiliary variant {variant!r}; expected one of {AUX_VARIANTS}")
    if degree <= 0:
        raise ProtocolError("pull probability undefined for an isolated vertex")
    # Delegate to the vectorised formula so the scalar reference is
    # bit-for-bit the engines' probability (numpy's exp and libm's may
    # differ in the last ulp).
    return float(
        pull_probabilities(
            variant,
            np.asarray([informed_neighbors], dtype=np.int64),
            np.asarray([degree], dtype=np.int64),
        )[0]
    )


def pull_probabilities(
    variant: str, informed_neighbors: np.ndarray, degrees: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`pull_probability` over per-vertex count/degree arrays.

    Both the serial round loop and the batched ``(B, n)`` kernel compute
    their pull probabilities through this one function, so the two paths
    cannot drift apart.  Entries with ``k <= 0`` get probability zero.

    Args:
        variant: ``"ppx"`` or ``"ppy"``.
        informed_neighbors: integer array of informed-neighbor counts ``k``.
        degrees: matching array of (positive) vertex degrees.

    Returns:
        A float array of per-vertex pull probabilities, same shape.
    """
    if variant not in AUX_VARIANTS:
        raise ProtocolError(f"unknown auxiliary variant {variant!r}; expected one of {AUX_VARIANTS}")
    k = np.asarray(informed_neighbors)
    degrees = np.asarray(degrees)
    if degrees.size and degrees.min() <= 0:
        raise ProtocolError("pull probability undefined for an isolated vertex")
    probabilities = 1.0 - np.exp(-2.0 * k / degrees)
    if variant == "ppx":
        probabilities = np.where(k >= degrees / 2.0, 1.0, probabilities)
    return np.where(k > 0, probabilities, 0.0)


def run_auxiliary_process(
    graph: Graph,
    source: int,
    *,
    variant: str,
    seed: SeedLike = None,
    max_rounds: Optional[int] = None,
    on_budget_exhausted: str = "error",
) -> SpreadingResult:
    """Simulate one run of ``ppx`` or ``ppy``.

    The result's informing times are round numbers, exactly as for the
    synchronous engine, so results are directly comparable to ``pp`` runs.
    """
    if variant not in AUX_VARIANTS:
        raise ProtocolError(f"unknown auxiliary variant {variant!r}; expected one of {AUX_VARIANTS}")
    if not (0 <= source < graph.num_vertices):
        raise ProtocolError(
            f"source {source} is not a vertex of {graph.name} (n={graph.num_vertices})"
        )
    if graph.num_vertices > 1 and not graph.is_connected():
        raise ProtocolError(
            f"{graph.name} is not connected; the rumor can never reach every vertex"
        )
    if on_budget_exhausted not in ("error", "partial"):
        raise ProtocolError(
            f"on_budget_exhausted must be 'error' or 'partial', got {on_budget_exhausted!r}"
        )

    n = graph.num_vertices
    budget = default_max_rounds(n) if max_rounds is None else int(max_rounds)
    rng = as_generator(seed)
    flat = flat_adjacency(graph)
    adjacency = graph.adjacency
    degrees = np.asarray(graph.degrees, dtype=np.int64)
    all_vertices = np.arange(n, dtype=np.int64)

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_round = np.full(n, np.inf)
    informed_round[source] = 0.0
    parent = np.full(n, -1, dtype=np.int64)
    kind: list[Optional[str]] = [None] * n
    kind[source] = "source"

    # informed_neighbor_count[v] = |{w in Γ(v): w informed}| (before the round).
    informed_neighbor_count = np.zeros(n, dtype=np.int64)
    for w in graph.neighbors(source):
        informed_neighbor_count[w] += 1

    push_infections = 0
    pull_infections = 0
    total_contacts = 0
    rounds_executed = 0
    num_informed = 1

    if n == 1:
        return SpreadingResult(
            protocol=variant,
            graph_name=graph.name,
            num_vertices=1,
            source=source,
            informed_time=(0.0,),
            parent=(-1,),
            infection_kind=("source",),
            completed=True,
            rounds=0,
        )

    while num_informed < n and rounds_executed < budget:
        rounds_executed += 1
        informed_before = informed.copy()

        # --- Push half: every informed vertex pushes to a random neighbor. ---
        informed_ids = all_vertices[informed_before]
        contacts = flat.random_neighbors(informed_ids, rng.random(informed_ids.size))
        total_contacts += int(informed_ids.size)
        pusher_mask = ~informed_before[contacts]
        push_sources = informed_ids[pusher_mask]
        push_targets = contacts[pusher_mask]
        if push_targets.size:
            unique_targets, first_index = np.unique(push_targets, return_index=True)
            push_targets = unique_targets
            push_sources = push_sources[first_index]

        # --- Pull half: uninformed vertices pull with the variant's probability. ---
        uninformed_ids = all_vertices[~informed_before]
        counts = informed_neighbor_count[uninformed_ids]
        candidate_mask = counts > 0
        candidates = uninformed_ids[candidate_mask]
        candidate_counts = counts[candidate_mask]
        probabilities = pull_probabilities(variant, candidate_counts, degrees[candidates])
        pulls = rng.random(candidates.size) < probabilities
        pulling_vertices = candidates[pulls]
        pull_parents = np.empty(pulling_vertices.size, dtype=np.int64)
        for index, v in enumerate(pulling_vertices):
            informed_nbrs = [w for w in adjacency[int(v)] if informed_before[w]]
            pull_parents[index] = informed_nbrs[int(rng.integers(len(informed_nbrs)))]
        total_contacts += int(pulling_vertices.size)

        # --- Commit the round: pulls first, then pushes to still-uninformed vertices. ---
        newly: list[tuple[int, int, str]] = []
        pulled_set = set(int(v) for v in pulling_vertices)
        for v, p in zip(pulling_vertices, pull_parents):
            newly.append((int(v), int(p), "pull"))
        for v, p in zip(push_targets, push_sources):
            if int(v) not in pulled_set:
                newly.append((int(v), int(p), "push"))

        for v, p, how in newly:
            informed[v] = True
            informed_round[v] = float(rounds_executed)
            parent[v] = p
            kind[v] = how
            if how == "push":
                push_infections += 1
            else:
                pull_infections += 1
            num_informed += 1
            for w in adjacency[v]:
                informed_neighbor_count[w] += 1

    completed = num_informed == n
    if not completed and on_budget_exhausted == "error":
        raise SimulationError(
            f"{variant} on {graph.name} informed only {num_informed}/{n} vertices "
            f"within {budget} rounds"
        )

    return SpreadingResult(
        protocol=variant,
        graph_name=graph.name,
        num_vertices=n,
        source=source,
        informed_time=tuple(float(t) for t in informed_round),
        parent=tuple(int(p) for p in parent),
        infection_kind=tuple(kind),
        completed=completed,
        rounds=rounds_executed,
        push_infections=push_infections,
        pull_infections=pull_infections,
        total_contacts=total_contacts,
    )


def run_ppx(
    graph: Graph,
    source: int,
    *,
    seed: SeedLike = None,
    max_rounds: Optional[int] = None,
    on_budget_exhausted: str = "error",
) -> SpreadingResult:
    """Simulate the ``ppx`` process of Definition 5."""
    return run_auxiliary_process(
        graph,
        source,
        variant="ppx",
        seed=seed,
        max_rounds=max_rounds,
        on_budget_exhausted=on_budget_exhausted,
    )


def run_ppy(
    graph: Graph,
    source: int,
    *,
    seed: SeedLike = None,
    max_rounds: Optional[int] = None,
    on_budget_exhausted: str = "error",
) -> SpreadingResult:
    """Simulate the ``ppy`` process of Definition 7."""
    return run_auxiliary_process(
        graph,
        source,
        variant="ppy",
        seed=seed,
        max_rounds=max_rounds,
        on_budget_exhausted=on_budget_exhausted,
    )
