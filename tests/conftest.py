"""Shared fixtures for the test suite.

Also puts ``tests/`` itself on ``sys.path`` so suites anywhere in the tree
can import the shared serial-vs-batch equivalence harness as
``from helpers.equivalence import ...`` regardless of pytest's rootdir
insertion rules.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.graphs import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def small_star():
    """A 16-vertex star (center 0, leaves 1..15)."""
    return star_graph(16)


@pytest.fixture
def small_cycle():
    """A 12-vertex cycle (2-regular)."""
    return cycle_graph(12)


@pytest.fixture
def small_complete():
    """The complete graph on 10 vertices."""
    return complete_graph(10)


@pytest.fixture
def small_hypercube():
    """The 4-dimensional hypercube (16 vertices, 4-regular)."""
    return hypercube_graph(4)


@pytest.fixture
def small_path():
    """A 10-vertex path."""
    return path_graph(10)


@pytest.fixture(params=["star", "cycle", "complete", "hypercube", "path"])
def small_graph(request, small_star, small_cycle, small_complete, small_hypercube, small_path):
    """Parametrised fixture cycling through the small test graphs."""
    return {
        "star": small_star,
        "cycle": small_cycle,
        "complete": small_complete,
        "hypercube": small_hypercube,
        "path": small_path,
    }[request.param]
