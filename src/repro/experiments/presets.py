"""Experiment presets: how big and how many.

Every experiment accepts a ``preset`` argument controlling the size sweep
and the number of Monte Carlo trials:

* ``"smoke"`` — a few seconds; used by the unit/integration tests.
* ``"quick"`` — tens of seconds per experiment; the default for the
  pytest-benchmark harness so the full suite completes on a laptop.
* ``"full"`` — the configuration used to produce the numbers quoted in
  EXPERIMENTS.md; minutes per experiment.

Experiments read the fields they need and ignore the rest, so one preset
type serves all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError

__all__ = ["Preset", "get_preset", "PRESETS"]


@dataclass(frozen=True)
class Preset:
    """Knobs shared by all experiments.

    Attributes:
        name: preset name.
        trials: Monte Carlo trials per measurement cell.
        sizes: default size sweep for family experiments.
        large_sizes: sweep for experiments that need larger graphs to show
            asymptotics (gap graphs, Theorem 2 ratios).
        coupling_trials: trials for coupled-run experiments (each coupled
            trial is more expensive than a plain simulation).
    """

    name: str
    trials: int
    sizes: tuple[int, ...]
    large_sizes: tuple[int, ...]
    coupling_trials: int


PRESETS: dict[str, Preset] = {
    "smoke": Preset(
        name="smoke",
        trials=20,
        sizes=(32, 64),
        large_sizes=(64, 128),
        coupling_trials=10,
    ),
    "quick": Preset(
        name="quick",
        trials=60,
        sizes=(32, 64, 128),
        large_sizes=(64, 128, 256),
        coupling_trials=25,
    ),
    "full": Preset(
        name="full",
        trials=300,
        sizes=(64, 128, 256, 512),
        large_sizes=(128, 256, 512, 1024),
        coupling_trials=100,
    ),
}


def get_preset(name: str) -> Preset:
    """Look up a preset by name; raises with the list of valid names."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
