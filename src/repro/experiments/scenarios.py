"""Experiment E12 — spreading-time blowup under adversity scenarios.

The paper's guarantees are proved for a static graph with perfectly reliable
exchanges.  This experiment measures how robust the measured spreading times
are when that assumption is broken: it sweeps message-loss and node-churn
rates (plus one composed loss+churn setting) over the paper's standard
topologies — the star, a random regular graph, and the async-favoring gap
construction — for both the synchronous and asynchronous push–pull
protocols, and reports the *blowup*: the ratio of the perturbed mean
spreading time to the unperturbed baseline on the same (graph, protocol)
cell.

Expected shape: blowups are ≥ 1 (adversity never helps — scenario times
stochastically dominate the clean times) and increase monotonically with the
loss rate.  For synchronous push–pull a loss rate ``p`` roughly stretches
time by ``1/(1-p)`` on conductance-limited graphs; churn hits hub-dominated
topologies (star) much harder than expanders, because progress stalls
whenever the hub is down.

All measurement cells run through ``run_trials(batch="auto")``, so the sweep
exercises the vectorised scenario kernels end to end.
"""

from __future__ import annotations

import csv
import time
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.montecarlo import run_trials
from repro.analysis.parallel import run_trials_parallel
from repro.core.protocols import is_synchronous_protocol
from repro.errors import AnalysisError
from repro.experiments.presets import get_preset
from repro.experiments.records import ExperimentResult
from repro.graphs.base import Graph
from repro.graphs.families import get_family
from repro.graphs.gap_graphs import async_favoring_gap_graph
from repro.graphs.generators import star_graph
from repro.graphs.random_graphs import random_regular_graph
from repro.randomness.rng import SeedLike, derive_generator
from repro.scenarios.base import MessageLoss, NodeChurn, Scenario, as_scenario
from repro.telemetry.manifest import ManifestWriter
from repro.telemetry.metrics import current_metrics
from repro.telemetry.trace import CoverageRecorder, TraceSpec

#: Column order of the ``--curves`` CSV emitted by :func:`sweep_scenarios`.
CURVE_FIELDS = (
    "family", "n", "protocol", "view", "scenario",
    "time", "p10", "p50", "p90", "mean",
)

__all__ = ["run", "sweep_scenarios", "DEFAULT_SWEEP_GRID"]

#: The default scenario sweep: label -> scenario (None = clean baseline).
DEFAULT_SWEEP: tuple[tuple[str, Optional[Scenario]], ...] = (
    ("baseline", None),
    ("loss 0.1", MessageLoss(0.1)),
    ("loss 0.3", MessageLoss(0.3)),
    ("churn 0.05", NodeChurn(0.05, 0.5)),
    ("churn 0.15", NodeChurn(0.15, 0.5)),
    ("loss 0.2 + churn 0.05", MessageLoss(0.2) | NodeChurn(0.05, 0.5)),
)


def _graphs(n: int) -> list[Graph]:
    return [
        star_graph(n),
        random_regular_graph(n, 4, seed=n),
        async_favoring_gap_graph(max(n, 16)),
    ]


def run(
    preset: str = "quick",
    *,
    seed: SeedLike = 20160729,
    sizes: Optional[Sequence[int]] = None,
    protocols: Sequence[str] = ("pp", "pp-a"),
    scenario=None,
    parallel: bool = False,
    num_workers: Optional[int] = None,
) -> ExperimentResult:
    """Run experiment E12 and return its result table.

    Args:
        preset: experiment preset (sets graph size and trial count).
        seed: master seed (each cell derives its own stable sub-stream).
        sizes: optional size sweep override; only the largest size is used
            (the experiment is about perturbation strength, not scaling).
        protocols: protocols to measure (defaults to both push–pull models).
        scenario: optional single scenario (or CLI spec string) replacing
            the default loss/churn sweep — the table then compares just that
            scenario against the clean baseline (this is what
            ``python -m repro run E12 --scenario ...`` passes).
        parallel: shard every cell's trials across the session's persistent
            process pool via the zero-copy shared-memory transport; the pool
            and the per-graph CSR segments are reused across the whole
            (graph, protocol, scenario) grid.  Changes the per-trial seed
            spawning (reproducible, but a different draw than serial).
        num_workers: worker override for the parallel path.
    """
    config = get_preset(preset)
    size_sweep = tuple(sizes) if sizes is not None else config.sizes
    n = max(size_sweep)

    override = as_scenario(scenario)
    if override is not None:
        sweep: tuple[tuple[str, Optional[Scenario]], ...] = (
            ("baseline", None),
            (override.spec(), override),
        )
    else:
        sweep = DEFAULT_SWEEP

    rows: list[dict[str, object]] = []
    blowups: dict[tuple[str, str], dict[str, float]] = {}
    skipped: list[str] = []
    for graph in _graphs(n):
        for protocol in protocols:
            if (
                override is not None
                and override.delay is not None
                and is_synchronous_protocol(protocol)
            ):
                # Clock-rate scenarios have no synchronous meaning; measure
                # the asynchronous protocols only.
                if protocol not in skipped:
                    skipped.append(protocol)
                continue
            baseline_mean: Optional[float] = None
            for label, cell_scenario in sweep:
                cell_kwargs = dict(
                    trials=config.trials,
                    seed=derive_generator(seed, "scenarios", graph.name, protocol, label),
                    batch="auto",
                    scenario=cell_scenario,
                    engine_options={"on_budget_exhausted": "partial"},
                )
                if parallel:
                    sample = run_trials_parallel(
                        graph, 0, protocol,
                        num_workers=num_workers, parallel="shared", **cell_kwargs,
                    )
                else:
                    sample = run_trials(graph, 0, protocol, **cell_kwargs)
                mean = sample.mean
                if label == "baseline":
                    baseline_mean = mean
                blowup = mean / baseline_mean if baseline_mean else float("nan")
                blowups.setdefault((graph.name, protocol), {})[label] = blowup
                rows.append(
                    {
                        "graph": graph.name,
                        "protocol": protocol,
                        "scenario": label,
                        "mean T": mean,
                        "blowup": blowup,
                    }
                )

    conclusions: dict[str, object] = {}
    all_blowups = [
        value
        for per_cell in blowups.values()
        for label, value in per_cell.items()
        if label != "baseline"
    ]
    if all_blowups:
        conclusions["max_blowup"] = max(all_blowups)
        # Adversity never helps (0.9 tolerates Monte Carlo noise on the
        # fastest cells, where the clean time is only a couple of rounds).
        conclusions["adversity_never_helps"] = min(all_blowups) >= 0.9
    if override is None:
        monotone = all(
            per_cell["loss 0.3"] >= per_cell["loss 0.1"] - 0.15
            for per_cell in blowups.values()
        )
        conclusions["loss_blowup_monotone"] = monotone
        conclusions["max_churn_blowup"] = max(
            per_cell["churn 0.15"] for per_cell in blowups.values()
        )

    notes = [
        f"preset={config.name}, trials={config.trials} per cell, n={n}, source = vertex 0",
        "blowup = mean perturbed spreading time / mean clean spreading time on the same cell",
        "all cells dispatch through run_trials(batch='auto'): the vectorised scenario kernels",
    ]
    if override is not None:
        notes.append(f"scenario override: {override.spec()}")
    if skipped:
        notes.append(
            f"skipped synchronous protocols {skipped} (the override carries a Delay)"
        )
    return ExperimentResult(
        experiment_id="E12",
        title="Adversity scenarios: spreading-time blowup under loss and churn",
        claim="Perturbed spreading times dominate the clean ones; blowup grows with loss rate",
        columns=["graph", "protocol", "scenario", "mean T", "blowup"],
        rows=rows,
        conclusions=conclusions,
        notes=notes,
    )


#: Default scenario grid of :func:`sweep_scenarios` (``;``-separated CLI form).
DEFAULT_SWEEP_GRID: tuple[str, ...] = (
    "loss:p=0.1",
    "loss:p=0.3",
    "burst-loss:p_gb=0.2,p_bg=0.5,p_loss_bad=0.8",
    "churn:crash_rate=0.05",
    "targeted-churn:fraction=0.05",
)


def sweep_scenarios(
    families: Sequence[str],
    scenarios: Sequence[Union[str, Scenario]],
    *,
    size: int = 128,
    protocols: Sequence[str] = ("pp", "pp-a"),
    view: str = "global",
    trials: int = 64,
    seed: SeedLike = 20160729,
    output: Optional[Union[str, Path]] = None,
    parallel: bool = False,
    num_workers: Optional[int] = None,
    curves: bool = False,
    curves_output: Optional[Union[str, Path]] = None,
    curve_points: int = 200,
    manifest: Optional[Union[str, Path]] = None,
) -> list[dict[str, object]]:
    """Blowup curves over a (family × scenario-grid) product.

    The workhorse behind ``python -m repro scenarios sweep``: for every
    (family, protocol) cell it measures the clean baseline plus every
    scenario of the grid, reports the blowup (perturbed mean over clean
    mean), and optionally writes the rows as a CSV.  Incompletable cells
    (e.g. targeted churn, which leaves the crashed vertices uninformed
    forever) run with ``on_budget_exhausted="partial"`` like E12.

    Args:
        families: registered graph-family names (see ``python -m repro
            families``).
        scenarios: scenario spec strings (or :class:`Scenario` objects);
            the clean baseline is always measured and need not be listed.
        size: number of vertices for every family build.
        protocols: canonical protocol names to measure.
        view: asynchronous view for the asynchronous protocols (the
            synchronous ones ignore it), so the sweep can exercise the
            clock-queue kernels end to end.
        trials: Monte Carlo trials per cell.
        seed: master seed (each cell derives its own stable sub-stream).
        output: optional CSV path for the blowup table.
        parallel: shard every cell across the session's persistent process
            pool (the zero-copy shared transport; one pool reused over the
            whole grid).
        num_workers: worker override for the parallel path.
        curves: record a per-cell coverage trace and emit a per-time
            coverage-quantile CSV (columns :data:`CURVE_FIELDS`; one row per
            grid time per cell).  Every cell is forced onto the batched
            kernels (``batch=True`` — seed-identical to what ``"auto"``
            batches, but with no serial fallback), so the curves come from
            the vectorised ``(trials, n)`` informing-time matrices, not a
            per-trial Python loop.
        curves_output: destination of the curve CSV; defaults to
            ``<output-stem>_curves.csv`` next to ``output`` (one of the two
            must be given when ``curves`` is set).
        curve_points: coverage-grid resolution per cell trace.
        manifest: optional JSONL manifest path — writes a ``run_start``
            event, one ``cell`` event per measurement (with wall seconds),
            one ``coverage`` event per traced cell, and a final ``summary``
            record carrying the ambient metric totals (when a registry is
            active via ``collecting_metrics``).

    Returns:
        The table as a list of row dicts
        (``family, n, protocol, view, scenario, mean, blowup``).
    """
    if not families:
        raise AnalysisError("sweep_scenarios needs at least one family")
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    grid: list[tuple[str, Optional[Scenario]]] = [("baseline", None)]
    for entry in scenarios:
        scenario = as_scenario(entry)
        if scenario is None:
            continue
        grid.append((scenario.spec(), scenario))
    if len(grid) < 2:
        raise AnalysisError("sweep_scenarios needs at least one scenario")
    curves_path: Optional[Path] = None
    if curves:
        if curve_points < 2:
            raise AnalysisError(f"curve_points must be >= 2, got {curve_points}")
        if curves_output is not None:
            curves_path = Path(curves_output)
        elif output is not None:
            out = Path(output)
            curves_path = out.with_name(out.stem + "_curves.csv")
        else:
            raise AnalysisError(
                "curves need a destination: pass curves_output, or output "
                "(the curve CSV then lands next to it as <stem>_curves.csv)"
            )

    manifest_writer = ManifestWriter(manifest) if manifest is not None else None
    sweep_started = time.perf_counter()
    if manifest_writer is not None:
        manifest_writer.event(
            "run_start",
            command="scenarios sweep",
            families=list(families),
            scenarios=[label for label, _ in grid[1:]],
            size=int(size),
            protocols=list(protocols),
            view=view,
            trials=int(trials),
            parallel=bool(parallel),
            curves=bool(curves),
        )

    rows: list[dict[str, object]] = []
    curve_rows: list[dict[str, object]] = []
    for family_name in families:
        family = get_family(family_name)  # validates the name eagerly
        graph = family.build(size, seed=size)
        for protocol in protocols:
            synchronous = is_synchronous_protocol(protocol)
            cell_view = "global" if synchronous else view
            options: dict[str, object] = {"on_budget_exhausted": "partial"}
            if not synchronous:
                options["view"] = cell_view
            baseline_mean: Optional[float] = None
            for label, cell_scenario in grid:
                if cell_scenario is not None and (
                    (synchronous and cell_scenario.delay is not None)
                    or (
                        cell_view == "edge_clocks"
                        and cell_scenario.dynamic is not None
                    )
                ):
                    # Combinations the engines reject (sync protocols have
                    # no clocks to delay; edge clocks cannot survive a
                    # graph resample) are skipped, not errored, so one grid
                    # serves mixed protocol lists.
                    continue
                recorder: Optional[CoverageRecorder] = None
                cell_kwargs = dict(
                    trials=trials,
                    seed=derive_generator(
                        seed, "scenario-sweep", family_name, protocol, label
                    ),
                    batch="auto",
                    scenario=cell_scenario,
                    engine_options=options,
                )
                if curves:
                    # Force the batched kernels: "auto" would fall back to
                    # the serial loop on small asynchronous cells, and the
                    # curves are specified to come from the (trials, n)
                    # batch matrices.  batch=True draws the same sample.
                    recorder = CoverageRecorder(TraceSpec(grid_points=curve_points))
                    cell_kwargs["batch"] = True
                    cell_kwargs["trace"] = recorder
                cell_started = time.perf_counter()
                if parallel:
                    sample = run_trials_parallel(
                        graph, 0, protocol,
                        num_workers=num_workers, parallel="shared", **cell_kwargs,
                    )
                else:
                    sample = run_trials(graph, 0, protocol, **cell_kwargs)
                cell_seconds = time.perf_counter() - cell_started
                mean = sample.mean
                if label == "baseline":
                    baseline_mean = mean
                blowup = mean / baseline_mean if baseline_mean else float("nan")
                row: dict[str, object] = {
                    "family": family_name,
                    "n": graph.num_vertices,
                    "protocol": protocol,
                    "view": cell_view,
                    "scenario": label,
                    "mean": mean,
                    "blowup": blowup,
                }
                rows.append(row)
                if manifest_writer is not None:
                    manifest_writer.event("cell", wall_seconds=cell_seconds, **row)
                if recorder is not None:
                    trace = recorder.trace(protocol=protocol, graph_name=graph.name)
                    for point in trace.envelope_rows():
                        curve_rows.append(
                            {
                                "family": family_name,
                                "n": graph.num_vertices,
                                "protocol": protocol,
                                "view": cell_view,
                                "scenario": label,
                                **point,
                            }
                        )
                    if manifest_writer is not None:
                        manifest_writer.coverage(
                            trace,
                            family=family_name,
                            view=cell_view,
                            scenario=label,
                        )

    if output is not None:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(
                handle,
                fieldnames=["family", "n", "protocol", "view", "scenario", "mean", "blowup"],
            )
            writer.writeheader()
            writer.writerows(rows)
    if curves_path is not None:
        curves_path.parent.mkdir(parents=True, exist_ok=True)
        with curves_path.open("w", newline="") as handle:
            curve_writer = csv.DictWriter(handle, fieldnames=list(CURVE_FIELDS))
            curve_writer.writeheader()
            curve_writer.writerows(curve_rows)
    if manifest_writer is not None:
        metrics = current_metrics()
        manifest_writer.summary(
            metrics=metrics.snapshot() if metrics is not None else None,
            command="scenarios sweep",
            cells=len(rows),
            curve_rows=len(curve_rows),
            wall_seconds=time.perf_counter() - sweep_started,
        )
    return rows
