"""Repo-specific static analysis: prove invariants the tests can only sample.

The dynamic correctness story of this reproduction — bit-identical RNG draw
order between the serial engines and the batch kernels, numpy/jit backend
parity, leak-free shared-memory lifecycles — is enforced by replaying a
finite sample (``KERNEL_CASES`` / ``PARALLEL_CASES``).  This package is the
static tier: an AST lint pass that catches the same bug classes at review
time, before a single trial runs.

Run it as::

    python -m repro devtools lint src/            # human output, exit 1 on findings
    python -m repro devtools lint src/ --format json --output LINT_report.json
    python -m repro devtools knobs                # the generated REPRO_* knob table
    python -m repro devtools knobs --check README.md

Rule catalog
------------

========  ====================  =====================================================
Code      Name                  Invariant proved
========  ====================  =====================================================
RNG001    rng-construction      ``np.random`` generator construction confined to
                                ``repro/randomness/rng.py`` (one seeding convention).
RNG002    conditional-draw      No generator draw behind a conditional branch of a
                                loop in draw-order-critical code (``core/``,
                                ``scenarios/``, or ``@draw_order_critical``).
PAR001    backend-parity        ``jit_backend.py`` mirrors every public
                                ``numpy_backend.py`` kernel: names, parameter
                                order, defaults.
LOOP001   hot-loop-purity       No Python ``for`` over vertices/trials in the
                                designated vectorized modules.
SHM001    shm-lifecycle         ``SharedMemory(create=True)`` is paired with
                                ``close``/``unlink`` on a finally/teardown path.
ENV001    env-knob-registry     Every ``REPRO_*`` environment read names a knob
                                declared in :mod:`repro.config`.
ENV002    env-knob-docs         Every knob declaration carries a description.
EXC001    exception-hygiene     No broad ``except Exception``/``BaseException``
                                outside pragma-justified recovery sites.
PRG001    pragma-justification  ``# repro: allow[CODE]`` requires ``-- why``.
DEV001    parse-failure         Linted file must parse.
========  ====================  =====================================================

Suppression pragma: ``# repro: allow[CODE] -- justification`` on the
flagged line, or alone on the line above it.  The justification text is
mandatory — an unjustified pragma is a ``PRG001`` finding and suppresses
nothing.
"""

from __future__ import annotations

from repro.devtools.engine import (
    Diagnostic,
    FileContext,
    Rule,
    RULES,
    count_files,
    lint_paths,
    render_json,
    render_text,
)
from repro.devtools import rules as _rules  # noqa: F401  (registers the rules)
from repro.randomness.rng import draw_order_critical

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "RULES",
    "count_files",
    "draw_order_critical",
    "lint_paths",
    "render_json",
    "render_text",
]
