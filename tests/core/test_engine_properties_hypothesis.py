"""Property-based tests (hypothesis) for the protocol engines.

These check structural invariants that must hold for *every* run on *every*
connected graph, independent of randomness:

* the source is informed at time 0, everyone else strictly later;
* the parent pointers form a tree rooted at the source whose informing times
  strictly increase along every root-to-leaf path;
* every parent is a graph neighbor of its child;
* push + pull counters account for all informed non-source vertices;
* the spreading time of a synchronous run is at least the source's BFS
  eccentricity (information travels one hop per round at best).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocols import spread
from repro.core.result import check_result_consistency
from repro.graphs.base import Graph
from repro.graphs.random_graphs import connected_erdos_renyi_graph


@st.composite
def connected_graph_and_source(draw):
    """A small connected random graph plus a valid source vertex."""
    n = draw(st.integers(min_value=2, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    graph = connected_erdos_renyi_graph(n, seed=seed)
    source = draw(st.integers(min_value=0, max_value=n - 1))
    return graph, source


PROTOCOL_STRATEGY = st.sampled_from(["pp", "push", "pull", "pp-a", "push-a", "pull-a", "ppx", "ppy"])


class TestUniversalInvariants:
    @given(connected_graph_and_source(), PROTOCOL_STRATEGY, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_result_record_is_always_consistent(self, graph_and_source, protocol, seed):
        graph, source = graph_and_source
        result = spread(graph, source, protocol=protocol, seed=seed)
        assert result.completed
        assert check_result_consistency(result) == []

    @given(connected_graph_and_source(), PROTOCOL_STRATEGY, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_parents_are_neighbors_and_times_increase(self, graph_and_source, protocol, seed):
        graph, source = graph_and_source
        result = spread(graph, source, protocol=protocol, seed=seed)
        for v in range(graph.num_vertices):
            if v == source:
                assert result.informed_time[v] == 0.0
                assert result.parent[v] == -1
                continue
            parent = result.parent[v]
            assert graph.has_edge(v, parent)
            assert result.informed_time[parent] < result.informed_time[v]

    @given(connected_graph_and_source(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_sync_time_at_least_eccentricity(self, graph_and_source, seed):
        graph, source = graph_and_source
        result = spread(graph, source, protocol="pp", seed=seed)
        assert result.spreading_time >= graph.eccentricity(source)

    @given(connected_graph_and_source(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_infection_paths_follow_edges(self, graph_and_source, seed):
        graph, source = graph_and_source
        result = spread(graph, source, protocol="pp-a", seed=seed)
        for v in range(graph.num_vertices):
            path = result.infection_path(v)
            assert path[0] == source and path[-1] == v
            for a, b in zip(path, path[1:]):
                assert graph.has_edge(a, b)

    @given(connected_graph_and_source(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_push_only_infections_all_pushes(self, graph_and_source, seed):
        graph, source = graph_and_source
        result = spread(graph, source, protocol="push", seed=seed)
        assert result.pull_infections == 0
        assert result.push_infections == graph.num_vertices - 1

    @given(connected_graph_and_source(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_async_steps_at_least_vertices_minus_one(self, graph_and_source, seed):
        graph, source = graph_and_source
        result = spread(graph, source, protocol="pp-a", seed=seed)
        # Each step informs at most one new vertex.
        assert result.steps >= graph.num_vertices - 1
        # Time equals max informing time and is finite.
        assert math.isfinite(result.spreading_time)
