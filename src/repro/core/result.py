"""Result records produced by every protocol engine.

A single simulation trial produces a :class:`SpreadingResult` carrying the
per-vertex informing times, the overall spreading time (the paper's
``T(alg, G, u)``), the infection tree (who informed whom and whether by push
or pull), and bookkeeping counters.  The analysis layer consumes these
records; it never needs to re-inspect engine internals.

Batched runs (``repro.core.batch_engine``) produce a :class:`BatchTimes`
instead: a times-only record for ``B`` trials at once, with no parents,
infection kinds, or traces.  Every distributional quantity the analysis
layer needs — the spreading time ``T(alg, G, u)`` per trial and the time to
inform a given fraction of vertices — is derivable from the ``(B, n)``
informing-time matrix (or, when even that was skipped, from the per-trial
completion rounds/times), so batched Monte Carlo runs never pay for the
per-vertex Python-object bookkeeping of :class:`SpreadingResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["ContactEvent", "SpreadingResult", "BatchTimes", "InfectionKind"]

#: How a vertex learned the rumor.
InfectionKind = str  # "source", "push", or "pull"


@dataclass(frozen=True)
class ContactEvent:
    """A single communication: ``caller`` contacted ``callee``.

    For synchronous protocols ``time`` is the (1-based) round number; for
    asynchronous protocols it is the continuous Poisson-clock time.
    ``informed`` names the vertex (if any) that became informed because of
    this contact, and ``kind`` records whether that was a push or a pull.
    """

    time: float
    caller: int
    callee: int
    informed: Optional[int] = None
    kind: Optional[InfectionKind] = None


@dataclass(frozen=True)
class SpreadingResult:
    """The outcome of one rumor-spreading simulation.

    Attributes:
        protocol: canonical protocol name (``"pp"``, ``"pp-a"``, ``"push"``,
            ``"pull"``, ``"push-a"``, ``"pull-a"``, ``"ppx"``, ``"ppy"``).
        graph_name: display name of the simulated graph.
        num_vertices: number of vertices of the simulated graph.
        source: the initially informed vertex ``u``.
        informed_time: per-vertex informing time (round number for
            synchronous protocols, clock time for asynchronous ones); the
            source has time 0; vertices never informed carry ``math.inf``.
        parent: per-vertex id of the vertex it learned the rumor from
            (``-1`` for the source and for never-informed vertices).
        infection_kind: per-vertex ``"source"``/``"push"``/``"pull"``/``None``.
        completed: whether every vertex was informed within the budget.
        rounds: number of synchronous rounds executed (``None`` for
            asynchronous protocols).
        steps: number of asynchronous steps executed (``None`` for
            synchronous protocols).
        push_infections / pull_infections: how many vertices learned the
            rumor via push / pull.
        total_contacts: total number of communications simulated.
        adversary_budget_spent: budget units an adaptive adversary
            (:class:`~repro.scenarios.AdaptiveCrash` /
            :class:`~repro.scenarios.AdaptiveLoss`) consumed during the run
            (``None`` when no adaptive scenario component was active).
        trace: optional list of every contact (only populated when the
            engine was asked to record a trace; traces are large).
    """

    protocol: str
    graph_name: str
    num_vertices: int
    source: int
    informed_time: tuple[float, ...]
    parent: tuple[int, ...]
    infection_kind: tuple[Optional[InfectionKind], ...]
    completed: bool
    rounds: Optional[int] = None
    steps: Optional[int] = None
    push_infections: int = 0
    pull_infections: int = 0
    total_contacts: int = 0
    adversary_budget_spent: Optional[int] = None
    trace: Optional[tuple[ContactEvent, ...]] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def spreading_time(self) -> float:
        """The rumor spreading time ``T(alg, G, u)``: the last informing time.

        Infinite when the run did not complete within its budget.
        """
        return max(self.informed_time)

    @property
    def num_informed(self) -> int:
        """How many vertices were informed by the end of the run."""
        return sum(1 for t in self.informed_time if math.isfinite(t))

    @property
    def is_synchronous(self) -> bool:
        """Whether the producing protocol is round based."""
        return self.rounds is not None

    def informed_fraction(self) -> float:
        """Fraction of vertices informed by the end of the run."""
        return self.num_informed / self.num_vertices

    def time_to_inform_fraction(self, fraction: float) -> float:
        """Earliest time by which at least ``fraction`` of vertices are informed.

        Used by the social-network experiment (E7), which compares the time
        to inform e.g. 50% or 90% of the vertices across models.  Returns
        ``math.inf`` when the run never reached the requested fraction.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        needed = math.ceil(fraction * self.num_vertices)
        finite_times = sorted(t for t in self.informed_time if math.isfinite(t))
        if len(finite_times) < needed:
            return math.inf
        return finite_times[needed - 1]

    def informed_counts_over_time(self) -> list[tuple[float, int]]:
        """The step function ``t -> |informed at time t|`` as (time, count) pairs."""
        finite_times = sorted(t for t in self.informed_time if math.isfinite(t))
        curve: list[tuple[float, int]] = []
        for index, time in enumerate(finite_times, start=1):
            if curve and curve[-1][0] == time:
                curve[-1] = (time, index)
            else:
                curve.append((time, index))
        return curve

    def infection_path(self, vertex: int) -> list[int]:
        """The path ``source -> ... -> vertex`` along which the rumor travelled.

        This is the path ``π_v`` used in the proofs of Lemmas 9 and 10.
        Raises ``ValueError`` if ``vertex`` was never informed.
        """
        if not (0 <= vertex < self.num_vertices):
            raise ValueError(f"vertex {vertex} out of range")
        if not math.isfinite(self.informed_time[vertex]):
            raise ValueError(f"vertex {vertex} was never informed")
        path = [vertex]
        current = vertex
        while current != self.source:
            current = self.parent[current]
            if current < 0:
                raise ValueError(
                    f"broken parent chain at vertex {path[-1]} (corrupt result?)"
                )
            path.append(current)
        path.reverse()
        return path

    def summary(self) -> str:
        """One-line human readable summary for logs and examples."""
        status = "complete" if self.completed else "INCOMPLETE"
        clock = f"{self.rounds} rounds" if self.is_synchronous else f"{self.steps} steps"
        return (
            f"{self.protocol} on {self.graph_name} from {self.source}: "
            f"T={self.spreading_time:.3f} ({clock}, {self.num_informed}/"
            f"{self.num_vertices} informed, {status})"
        )


@dataclass(frozen=True, eq=False)
class BatchTimes:
    """Times-only outcome of a batch of ``B`` independent simulation trials.

    Produced by :mod:`repro.core.batch_engine`.  Unlike
    :class:`SpreadingResult` this record carries no parents, infection kinds,
    or traces — only what the Monte Carlo statistics need — so batched runs
    skip all per-vertex Python-object materialization.

    Attributes:
        protocol: canonical protocol name (``"pp"``, ``"pp-a"``, ...).
        graph_name: display name of the simulated graph.
        num_vertices: number of vertices ``n`` of the simulated graph.
        sources: ``(B,)`` int array of per-trial source vertices.
        completed: ``(B,)`` bool array; whether each trial informed everyone
            within its budget.
        completion_time: ``(B,)`` float array; the spreading time
            ``T(alg, G, u)`` of each trial (round number for synchronous
            protocols, continuous clock time for asynchronous ones), or
            ``inf`` for trials that did not complete.
        informed_time: optional ``(B, n)`` float matrix of per-vertex
            informing times (``inf`` for never-informed vertices).  ``None``
            when the engine ran in scalar mode (``record_times=False``),
            which is enough for spreading-time statistics but not for
            coverage fractions.
        rounds: ``(B,)`` int array of synchronous rounds executed per trial
            (``None`` for asynchronous protocols).
        steps: ``(B,)`` int array of asynchronous clock ticks executed per
            trial (``None`` for synchronous protocols).
    """

    protocol: str
    graph_name: str
    num_vertices: int
    sources: np.ndarray
    completed: np.ndarray
    completion_time: np.ndarray
    informed_time: Optional[np.ndarray] = field(default=None, repr=False)
    rounds: Optional[np.ndarray] = None
    steps: Optional[np.ndarray] = None

    @property
    def num_trials(self) -> int:
        """The batch size ``B``."""
        return int(self.sources.shape[0])

    @property
    def is_synchronous(self) -> bool:
        """Whether the producing protocol is round based."""
        return self.rounds is not None

    def spreading_times(self) -> np.ndarray:
        """Per-trial spreading times ``T(alg, G, u)`` as a ``(B,)`` array."""
        return self.completion_time

    def time_to_inform_fraction(self, fraction: float) -> np.ndarray:
        """Per-trial earliest time at which ``fraction`` of vertices know the rumor.

        Mirrors :meth:`SpreadingResult.time_to_inform_fraction` but for the
        whole batch at once; requires the engine to have recorded the full
        per-vertex time matrix.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self.informed_time is None:
            raise ValueError(
                "per-vertex times were not recorded for this batch "
                "(engine ran with record_times=False)"
            )
        needed = math.ceil(fraction * self.num_vertices)
        # Sorting pushes inf (never informed) to the end, so the (needed-1)-th
        # order statistic is exactly the serial definition — including the
        # inf result for trials that never reached the fraction.
        ordered = np.sort(self.informed_time, axis=1)
        return ordered[:, needed - 1]

    def summary(self) -> str:
        """One-line human readable summary for logs and examples."""
        finite = self.completion_time[np.isfinite(self.completion_time)]
        mean = float(np.mean(finite)) if finite.size else math.inf
        return (
            f"{self.protocol} on {self.graph_name}: {self.num_trials} trials, "
            f"{int(np.count_nonzero(self.completed))} complete, "
            f"mean T={mean:.3f}"
        )


def check_result_consistency(result: SpreadingResult) -> list[str]:
    """Validate internal consistency of a result; returns a list of problems.

    Used by tests and by the experiment harness in "paranoid" mode.  An empty
    list means the record is consistent:

    * the source is informed at time 0 with no parent;
    * every informed non-source vertex has an informed parent with a strictly
      smaller informing time;
    * push/pull counters add up to the number of informed non-source vertices.
    """
    problems: list[str] = []
    n = result.num_vertices
    if not (0 <= result.source < n):
        problems.append(f"source {result.source} outside 0..{n - 1}")
        return problems
    if result.informed_time[result.source] != 0:
        problems.append("source informing time is not 0")
    if result.parent[result.source] != -1:
        problems.append("source has a parent")
    informed_non_source = 0
    for v in range(n):
        t = result.informed_time[v]
        if v == result.source:
            continue
        if math.isfinite(t):
            informed_non_source += 1
            p = result.parent[v]
            if p < 0 or p >= n:
                problems.append(f"vertex {v} informed but parent {p} invalid")
                continue
            if not math.isfinite(result.informed_time[p]):
                problems.append(f"vertex {v} informed by never-informed parent {p}")
            elif result.informed_time[p] >= t:
                # In every protocol the parent must have been informed
                # strictly before the child (pre-round snapshots for the
                # synchronous engines, continuous times for the asynchronous
                # ones), so equality is also inconsistent.
                problems.append(
                    f"vertex {v} informed at {t} not strictly after its parent {p} "
                    f"at {result.informed_time[p]}"
                )
            if result.infection_kind[v] not in ("push", "pull"):
                problems.append(f"vertex {v} informed with kind {result.infection_kind[v]!r}")
        else:
            if result.parent[v] != -1:
                problems.append(f"vertex {v} never informed but has parent {result.parent[v]}")
    if result.push_infections + result.pull_infections != informed_non_source:
        problems.append(
            "push + pull infection counters do not add up to informed non-source vertices"
        )
    if result.completed and informed_non_source != n - 1:
        problems.append("marked completed but not all vertices informed")
    return problems
