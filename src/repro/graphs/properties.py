"""Structural graph parameters used to contextualise spreading times.

Theorem 1 implies that known synchronous push–pull upper bounds expressed in
terms of **conductance** (Giakkoupis, STACS 2011) and **vertex expansion**
(Giakkoupis, SODA 2014) carry over to the asynchronous protocol.  To make
that implication checkable, this module computes those parameters (exactly
for small graphs, via sampled sweeps for larger ones) together with the
bread-and-butter statistics (degree summary, diameter, regularity) that the
experiment tables report next to every measured spreading time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.caching import IdentityLRU
from repro.core.flatgraph import flat_adjacency
from repro.errors import GraphError
from repro.graphs.base import Graph
from repro.randomness.rng import as_generator

__all__ = [
    "DegreeSummary",
    "GraphProfile",
    "degree_summary",
    "all_eccentricities",
    "diameter",
    "cut_conductance",
    "cut_vertex_expansion",
    "conductance_estimate",
    "vertex_expansion_estimate",
    "profile_graph",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Summary statistics of a graph's degree sequence."""

    minimum: int
    maximum: int
    mean: float
    median: float
    is_regular: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_regular:
            return f"regular(d={self.minimum})"
        return (
            f"deg[min={self.minimum}, med={self.median:g}, "
            f"mean={self.mean:.2f}, max={self.maximum}]"
        )


@dataclass(frozen=True)
class GraphProfile:
    """A bundle of structural parameters for one graph.

    Produced by :func:`profile_graph`; attached to experiment records so the
    output tables can show, e.g., that a low-conductance barbell indeed has
    the slow spreading time that the conductance bounds predict.
    """

    name: str
    num_vertices: int
    num_edges: int
    degrees: DegreeSummary
    diameter: Optional[int]
    conductance: Optional[float]
    vertex_expansion: Optional[float]


def degree_summary(graph: Graph) -> DegreeSummary:
    """Compute the degree summary of ``graph``."""
    degrees = np.asarray(graph.degrees, dtype=float)
    return DegreeSummary(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        is_regular=graph.is_regular(),
    )


# All-eccentricities results are memoised per graph object (graphs are
# immutable): adversarial-source sweeps and targeted-churn scenarios resolve
# eccentricities once per trial, and without the cache the all-sources pass
# would dominate Monte Carlo wall time on large graphs.
_ECC_CACHE = IdentityLRU(32)

#: Upper bound on the boolean (sources, n) frontier/visited working set of
#: one :func:`all_eccentricities` chunk, so very large graphs stay at tens
#: of MB instead of an n^2 blow-up.
_ECC_CHUNK_ELEMENTS = 8_388_608


def all_eccentricities(graph: Graph) -> np.ndarray:
    """Eccentricity of every vertex, as one vectorised multi-source BFS.

    Replaces the one-BFS-per-vertex Python loop (O(n·(n+m)) interpreter
    work) with level-synchronous frontier expansion over the CSR adjacency:
    a chunk of sources advances one BFS level per iteration with a handful
    of NumPy gathers, so the per-edge work is array arithmetic instead of
    Python bytecode.  Results are cached per graph object.

    Returns:
        ``int64`` array of shape ``(n,)``; read-only (it is the cached copy).

    Raises:
        GraphError: if the graph is not connected (eccentricity undefined).
    """
    cached = _ECC_CACHE.get(graph)
    if cached is not None:
        return cached

    flat = flat_adjacency(graph)
    n = graph.num_vertices
    eccentricities = np.zeros(n, dtype=np.int64)
    chunk = max(1, min(n, _ECC_CHUNK_ELEMENTS // max(1, n)))
    for start in range(0, n, chunk):
        sources = np.arange(start, min(start + chunk, n), dtype=np.int64)
        rows_n = sources.size
        visited = np.zeros((rows_n, n), dtype=bool)
        visited[np.arange(rows_n), sources] = True
        frontier = visited.copy()
        level = 0
        while True:
            rows, verts = np.nonzero(frontier)
            if rows.size == 0:
                break
            level += 1
            degs = flat.degrees[verts]
            total = int(degs.sum())
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(degs) - degs, degs
            )
            neighbors = flat.indices[np.repeat(flat.indptr[verts], degs) + within]
            frontier[:] = False
            frontier.reshape(-1)[np.repeat(rows, degs) * n + neighbors] = True
            frontier &= ~visited
            visited |= frontier
            reached = frontier.any(axis=1)
            eccentricities[sources[reached]] = level
        if not visited.all():
            raise GraphError(
                f"{graph.name} is not connected; eccentricity undefined"
            )

    eccentricities.setflags(write=False)
    return _ECC_CACHE.put(graph, eccentricities)


def diameter(graph: Graph, *, exact_limit: int = 4000, seed=None) -> int:
    """Diameter of a connected graph.

    Exact (the vectorised :func:`all_eccentricities` pass) when
    ``n <= exact_limit``; otherwise a lower bound obtained from BFS sweeps
    out of a sample of vertices (double-sweep heuristic), which is exact on
    trees and extremely close in practice.

    Raises:
        GraphError: if the graph is not connected.
    """
    if not graph.is_connected():
        raise GraphError(f"{graph.name} is not connected; diameter undefined")
    n = graph.num_vertices
    if n <= exact_limit:
        return int(all_eccentricities(graph).max())
    rng = as_generator(seed)
    best = 0
    start = int(rng.integers(n))
    for _ in range(4):
        distances = graph.bfs_distances(start)
        far = int(np.argmax(distances))
        best = max(best, distances[far])
        start = far
    return best


def _cut_volume_and_boundary(graph: Graph, side: set[int]) -> tuple[int, int]:
    """Volume (sum of degrees) of ``side`` and number of edges leaving it."""
    volume = sum(graph.degree(v) for v in side)
    boundary = 0
    for v in side:
        for w in graph.neighbors(v):
            if w not in side:
                boundary += 1
    return volume, boundary


def cut_conductance(graph: Graph, side: Iterable[int]) -> float:
    """Conductance of the cut ``(side, V - side)``.

    Defined as ``|E(S, V-S)| / min(vol(S), vol(V-S))`` with volumes measured
    in edge endpoints.  Raises for empty or full ``side``.
    """
    side_set = set(int(v) for v in side)
    if not side_set or len(side_set) >= graph.num_vertices:
        raise GraphError("cut side must be a proper non-empty subset of the vertices")
    total_volume = 2 * graph.num_edges
    volume, boundary = _cut_volume_and_boundary(graph, side_set)
    denominator = min(volume, total_volume - volume)
    if denominator == 0:
        return math.inf
    return boundary / denominator


def cut_vertex_expansion(graph: Graph, side: Iterable[int]) -> float:
    """Vertex expansion of the cut ``(side, V - side)``.

    Defined as ``|∂S| / min(|S|, |V - S|)`` where ``∂S`` is the set of
    vertices outside ``S`` with a neighbor in ``S``.
    """
    side_set = set(int(v) for v in side)
    if not side_set or len(side_set) >= graph.num_vertices:
        raise GraphError("cut side must be a proper non-empty subset of the vertices")
    outside_boundary: set[int] = set()
    for v in side_set:
        for w in graph.neighbors(v):
            if w not in side_set:
                outside_boundary.add(w)
    denominator = min(len(side_set), graph.num_vertices - len(side_set))
    return len(outside_boundary) / denominator


def _sweep_cuts(order: np.ndarray) -> Iterable[set[int]]:
    """Prefixes of a vertex ordering, used as candidate sweep cuts."""
    prefix: set[int] = set()
    for v in order[:-1]:
        prefix = prefix | {int(v)}
        yield set(prefix)


def conductance_estimate(
    graph: Graph,
    *,
    num_sweeps: int = 4,
    exact_limit: int = 14,
    seed=None,
) -> float:
    """Estimate of the graph conductance :math:`\\Phi(G)`.

    For tiny graphs (``n <= exact_limit``) the minimum over *all* cuts is
    computed exactly.  Otherwise the estimate is the minimum conductance over
    sweep cuts of several vertex orderings: BFS orderings from random seeds
    and orderings by the second eigenvector of the normalised adjacency
    matrix when SciPy can compute it cheaply.  The result is an upper bound
    on the true conductance — exactly what is needed to witness *low*
    conductance in the slow-spreading families.
    """
    n = graph.num_vertices
    if n < 2:
        raise GraphError("conductance needs at least two vertices")
    if n <= exact_limit:
        best = math.inf
        for mask in range(1, 1 << (n - 1)):
            side = {v for v in range(n) if (mask >> v) & 1}
            best = min(best, cut_conductance(graph, side))
        return best

    rng = as_generator(seed)
    best = math.inf
    # BFS sweep cuts.
    for _ in range(num_sweeps):
        start = int(rng.integers(n))
        distances = graph.bfs_distances(start)
        order = np.argsort(np.asarray(distances), kind="stable")
        for side in _sweep_cuts(order):
            best = min(best, cut_conductance(graph, side))
    # Spectral sweep cut (dense eigendecomposition is fine for n <= ~1500).
    if n <= 1500:
        adjacency = np.zeros((n, n))
        for u, v in graph.edges:
            adjacency[u, v] = 1.0
            adjacency[v, u] = 1.0
        degrees = np.asarray(graph.degrees, dtype=float)
        with np.errstate(divide="ignore"):
            inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
        normalized = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
        eigenvalues, eigenvectors = np.linalg.eigh(normalized)
        fiedler = eigenvectors[:, -2] if n >= 2 else eigenvectors[:, 0]
        order = np.argsort(fiedler, kind="stable")
        for side in _sweep_cuts(order):
            best = min(best, cut_conductance(graph, side))
    return best


def vertex_expansion_estimate(
    graph: Graph,
    *,
    num_sweeps: int = 4,
    exact_limit: int = 14,
    seed=None,
) -> float:
    """Estimate of the vertex expansion :math:`\\alpha(G)` (upper bound via sweep cuts)."""
    n = graph.num_vertices
    if n < 2:
        raise GraphError("vertex expansion needs at least two vertices")
    if n <= exact_limit:
        best = math.inf
        for mask in range(1, 1 << (n - 1)):
            side = {v for v in range(n) if (mask >> v) & 1}
            best = min(best, cut_vertex_expansion(graph, side))
        return best
    rng = as_generator(seed)
    best = math.inf
    for _ in range(num_sweeps):
        start = int(rng.integers(n))
        distances = graph.bfs_distances(start)
        order = np.argsort(np.asarray(distances), kind="stable")
        for side in _sweep_cuts(order):
            best = min(best, cut_vertex_expansion(graph, side))
    return best


def profile_graph(
    graph: Graph,
    *,
    with_expansion: bool = True,
    with_diameter: bool = True,
    seed=None,
) -> GraphProfile:
    """Compute a :class:`GraphProfile` for ``graph``.

    Expansion estimates are skipped for very large graphs (or when
    ``with_expansion`` is false) because the sweep computation is quadratic
    in the worst case; the profile then carries ``None`` for those fields.
    """
    n = graph.num_vertices
    conductance = None
    expansion = None
    if with_expansion and n <= 2000:
        conductance = conductance_estimate(graph, seed=seed)
        expansion = vertex_expansion_estimate(graph, seed=seed)
    diam = None
    if with_diameter and graph.is_connected():
        diam = diameter(graph, seed=seed)
    return GraphProfile(
        name=graph.name,
        num_vertices=n,
        num_edges=graph.num_edges,
        degrees=degree_summary(graph),
        diameter=diam,
        conductance=conductance,
        vertex_expansion=expansion,
    )
