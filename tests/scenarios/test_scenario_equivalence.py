"""Fixed-seed serial/batch equivalence under adversity scenarios.

The PR-1 contract — a batched trial with generator ``g`` reproduces the
serial run seeded with ``g`` bit-for-bit — must survive every scenario that
claims a batched kernel: the scenario draws (churn updates, loss flips,
resampler and delay-rate draws) follow one documented per-trial order in
both code paths.  These tests check that trial-for-trial through both the
kernel API (via the shared harness in ``tests/helpers/equivalence.py``)
and the ``run_trials`` dispatcher, plus the dispatch policy for the
scenarios that do *not* batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers.equivalence import assert_batch_matches_serial, assert_trials_paths_agree
from repro.analysis.montecarlo import run_trials
from repro.core.batch_engine import is_batchable
from repro.errors import ScenarioError
from repro.graphs import complete_graph, star_graph
from repro.graphs.random_graphs import random_regular_graph
from repro.scenarios import (
    AdversarialSource,
    Delay,
    DynamicGraph,
    FamilyResampler,
    MessageLoss,
    NodeChurn,
)

SYNC_PROTOCOLS = ["pp", "push", "pull"]
ASYNC_PROTOCOLS = ["pp-a", "push-a", "pull-a"]


class TestKernelEquivalence:
    @pytest.mark.parametrize("protocol", SYNC_PROTOCOLS + ASYNC_PROTOCOLS)
    def test_message_loss(self, protocol):
        graph = random_regular_graph(32, 4, seed=5)
        assert_batch_matches_serial(
            graph, [1, 0, 2, 3, 0], protocol, 123, scenario=MessageLoss(0.3)
        )

    @pytest.mark.parametrize("protocol", SYNC_PROTOCOLS + ASYNC_PROTOCOLS)
    def test_node_churn(self, protocol):
        graph = complete_graph(16)
        assert_batch_matches_serial(
            graph, [0, 1, 2, 3], protocol, 77, scenario=NodeChurn(0.2, 0.5)
        )

    @pytest.mark.parametrize("protocol", SYNC_PROTOCOLS)
    def test_loss_and_churn_composed(self, protocol):
        graph = random_regular_graph(24, 3, seed=2)
        assert_batch_matches_serial(
            graph, [0] * 5, protocol, 9, scenario=MessageLoss(0.2) | NodeChurn(0.1, 0.6)
        )

    @pytest.mark.parametrize("period", [1, 3])
    def test_dynamic_graph_sync(self, period):
        graph = complete_graph(16)
        scenario = DynamicGraph(FamilyResampler("erdos_renyi"), period=period)
        assert_batch_matches_serial(graph, [0, 1, 2, 3], "pp", 31, scenario=scenario)

    @pytest.mark.parametrize("protocol", ASYNC_PROTOCOLS)
    def test_delay_async(self, protocol):
        graph = random_regular_graph(24, 3, seed=4)
        assert_batch_matches_serial(
            graph, [0, 1, 2], protocol, 15, scenario=Delay(low=0.25, high=3.0)
        )

    def test_everything_composed_async(self):
        graph = complete_graph(16)
        scenario = MessageLoss(0.2) | NodeChurn(0.1, 0.6) | Delay(low=0.5, high=2.0)
        assert_batch_matches_serial(graph, [0, 1, 2, 3], "pp-a", 57, scenario=scenario)

    def test_partial_budgets_match_under_churn(self):
        graph = star_graph(24)
        assert_batch_matches_serial(
            graph,
            [1] * 5,
            "push",
            11,
            scenario=NodeChurn(0.3, 0.2),
            max_rounds=40,
            on_budget_exhausted="partial",
        )


class TestRunTrialsDispatch:
    @pytest.mark.parametrize(
        "protocol,scenario",
        [
            ("pp", MessageLoss(0.3)),
            ("pp", NodeChurn(0.15, 0.5)),
            ("pull", MessageLoss(0.2) | NodeChurn(0.05, 0.5)),
            ("pp-a", MessageLoss(0.3)),
            ("pp-a", NodeChurn(0.15, 0.5)),
            ("push-a", Delay(low=0.5, high=2.0)),
        ],
    )
    def test_serial_and_batched_samples_identical(self, protocol, scenario):
        graph = random_regular_graph(32, 4, seed=7)
        assert_trials_paths_agree(
            graph, 0, protocol, trials=16, seed=21, scenario=scenario
        )

    def test_adversarial_source_overrides_both_paths(self):
        graph = star_graph(16)
        scenario = MessageLoss(0.2) | AdversarialSource("max_degree")
        serial, batched = assert_trials_paths_agree(
            graph, "random", "pp", trials=10, seed=3, scenario=scenario
        )
        assert serial.source == batched.source == 0  # the hub, despite "random"

    def test_async_dynamic_dispatches_to_the_batch_kernel(self):
        """Async dynamic-graph trials batch now (no serial fallback): a
        forced batch succeeds and agrees with the serial path bit for bit."""
        scenario = DynamicGraph(FamilyResampler("erdos_renyi"), period=2)
        assert is_batchable("pp-a", None, scenario)
        assert is_batchable("pp", None, scenario)
        assert is_batchable("pp-a", {"view": "node_clocks"}, scenario)
        graph = complete_graph(12)
        assert_trials_paths_agree(
            graph, 0, "pp-a", trials=6, seed=1, batch=True, scenario=scenario
        )

    def test_sync_delay_rejected_with_clear_error(self):
        graph = complete_graph(12)
        with pytest.raises(ScenarioError, match="synchronous"):
            run_trials(graph, 0, "pp", trials=4, seed=1, scenario=Delay())

    def test_spec_strings_accepted_end_to_end(self):
        graph = complete_graph(16)
        by_object = run_trials(
            graph, 0, "pp", trials=8, seed=5, scenario=MessageLoss(0.3)
        )
        by_string = run_trials(graph, 0, "pp", trials=8, seed=5, scenario="loss:p=0.3")
        assert by_object.times == by_string.times

    def test_fractions_recorded_under_scenarios(self):
        graph = complete_graph(20)
        assert_trials_paths_agree(
            graph,
            0,
            "pp",
            trials=12,
            seed=7,
            fractions=(0.5, 0.9),
            scenario=MessageLoss(0.25),
        )

    def test_unperturbed_runs_are_untouched_by_scenario_plumbing(self):
        graph = random_regular_graph(32, 4, seed=2)
        plain = run_trials(graph, 0, "pp", trials=12, seed=31)
        with_none = run_trials(graph, 0, "pp", trials=12, seed=31, scenario=None)
        assert plain.times == with_none.times
