"""End-to-end runs of every experiment on deliberately tiny configurations.

These tests exercise the full experiment pipeline (graph building, Monte
Carlo, statistics, table assembly) and check the *shape* of each claim on
small inputs; the benchmark harness runs the real configurations.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    block_counts,
    classical,
    corollary3,
    coupling_checks,
    gap_graphs,
    regular_push_identity,
    scenarios,
    social,
    star,
    theorem1,
    theorem2,
    view_equivalence,
)
from repro.graphs import complete_graph, cycle_graph, hypercube_graph, star_graph


class TestTheorem1Experiment:
    def test_runs_and_stays_bounded(self):
        result = theorem1.run(
            "smoke", seed=1, families=["star", "complete", "cycle"], sizes=[16, 32]
        )
        assert result.experiment_id == "E1"
        assert len(result.rows) == 6
        assert result.conclusion("max_constant_c1") < 4.0
        assert result.conclusion("theorem1_consistent") is True
        for row in result.rows:
            assert row["T_hp(pp-a)"] > 0
            assert row["c1 = async/(sync+ln n)"] > 0


class TestTheorem2Experiment:
    def test_runs_and_respects_sqrt_ceiling(self):
        result = theorem2.run("smoke", seed=2, families=["star", "complete"], sizes=[16, 32])
        assert result.experiment_id == "E2"
        assert result.conclusion("max_constant_c2") < 2.0
        assert result.conclusion("theorem2_consistent") is True


class TestCorollary3Experiment:
    def test_regular_ratio_bounded_and_star_blows_up(self):
        result = corollary3.run(
            "smoke", seed=3, families=["cycle", "complete"], sizes=[16, 32]
        )
        assert result.experiment_id == "E3"
        assert result.conclusion("max_ratio_on_regular_graphs") < 6.0
        # The irregular star contrast must show a growing push/pp ratio.
        assert result.conclusion("star_ratio_growth_exponent") > 0.5


class TestStarExperiment:
    def test_matches_paper_facts(self):
        result = star.run("smoke", seed=4, sizes=[16, 32])
        assert result.experiment_id == "E4"
        assert result.conclusion("sync_pushpull_at_most_2_rounds") is True
        assert result.conclusion("push_superlinear") is True


class TestGapGraphExperiment:
    def test_both_directions_present(self):
        result = gap_graphs.run("smoke", seed=5, sizes=[64, 128])
        assert result.experiment_id == "E5"
        directions = {row["direction"] for row in result.rows}
        assert directions == {"async wins", "sync wins"}
        assert result.conclusion("async_gap_below_sqrt_ceiling") is True
        assert result.conclusion("star_ratio_within_log_ceiling") is True


class TestClassicalExperiment:
    def test_constant_factor_band(self):
        result = classical.run("smoke", seed=6, families=["complete", "hypercube"], sizes=[16, 32])
        assert result.experiment_id == "E6"
        assert result.conclusion("max_ratio") < 4.0
        assert result.conclusion("min_ratio") > 0.25


class TestSocialExperiment:
    def test_async_advantage_on_partial_coverage(self):
        result = social.run("smoke", seed=7, families=["preferential_attachment"], sizes=[96])
        assert result.experiment_id == "E7"
        assert result.conclusion("async_faster_for_half_coverage") is True
        row = result.rows[0]
        assert row["pp-a@50%"] < row["pp-a@100%"]


class TestCouplingChecksExperiment:
    def test_lemmas_hold_on_small_graphs(self):
        suite = [(star_graph(24), 1), (hypercube_graph(4), 0)]
        result = coupling_checks.run("smoke", seed=8, graphs_with_sources=suite)
        assert result.experiment_id == "E8"
        assert result.conclusion("lemma6_dominance_holds_on_all_graphs") is True
        assert result.conclusion("lemma9_slack_within_log_budget") is True
        assert result.conclusion("lemma10_slack_within_log_budget") is True
        assert result.conclusion("lemma8_matches_exponential") is True


class TestBlockCountsExperiment:
    def test_lemma13_and_14_on_small_graphs(self):
        suite = [(cycle_graph(25), 0), (complete_graph(25), 0)]
        result = block_counts.run("smoke", seed=9, graphs_with_sources=suite)
        assert result.experiment_id == "E9"
        assert result.conclusion("lemma13_subset_invariant_always_held") is True
        assert result.conclusion("max_normalized_rounds") < 4.0


class TestViewEquivalenceExperiment:
    def test_views_indistinguishable(self):
        suite = [(complete_graph(20), 0)]
        result = view_equivalence.run("smoke", seed=10, graphs_with_sources=suite)
        assert result.experiment_id == "E10"
        assert result.conclusion("views_statistically_indistinguishable") is True
        assert len(result.rows) == 3  # three view pairs on one graph


class TestRegularPushIdentityExperiment:
    def test_identity_on_regular_and_failure_on_star(self):
        result = regular_push_identity.run(
            "smoke", seed=11, families=["cycle", "complete"], size=24
        )
        assert result.experiment_id == "E11"
        assert result.conclusion("identity_holds_on_regular_graphs") is True
        assert result.conclusion("star_contrast_p_value") < 0.05


class TestScenariosExperiment:
    def test_blowups_behave(self):
        result = scenarios.run("smoke", seed=13, sizes=[32])
        assert result.experiment_id == "E12"
        assert result.conclusion("adversity_never_helps") is True
        assert result.conclusion("loss_blowup_monotone") is True
        assert result.conclusion("max_blowup") >= 1.0
        labels = {row["scenario"] for row in result.rows}
        assert "baseline" in labels and "loss 0.3" in labels

    def test_single_scenario_override(self):
        from repro.scenarios import MessageLoss

        result = scenarios.run(
            "smoke", seed=13, sizes=[32], protocols=["pp"], scenario=MessageLoss(0.3)
        )
        labels = [row["scenario"] for row in result.rows]
        assert set(labels) == {"baseline", "loss:p=0.3"}
        assert result.conclusion("max_blowup") >= 1.0


class TestExperimentResultsRenderable:
    @pytest.mark.parametrize(
        "runner, kwargs",
        [
            (star.run, {"sizes": [16]}),
            (theorem1.run, {"families": ["star"], "sizes": [16]}),
        ],
    )
    def test_text_and_json_render(self, runner, kwargs):
        result = runner("smoke", seed=12, **kwargs)
        text = result.to_text()
        assert result.experiment_id in text
        assert result.to_json().startswith("{")
