"""Must-flag RNG001: generator construction outside randomness/rng.py."""

import numpy as np


def fresh_generator(seed):
    return np.random.default_rng(seed)


def fresh_bit_generator(seed):
    return np.random.Generator(np.random.PCG64(seed))


def legacy_state(seed):
    return np.random.RandomState(seed)
