"""Scenario registry: named, parameterised adversity models.

The registry is what ``python -m repro scenarios`` lists and what the CLI's
``run --scenario NAME[:param=value,...]`` option parses.  Several scenarios
compose in one spec string with ``+``::

    loss:p=0.3
    churn:crash_rate=0.1,recovery_rate=0.5
    dynamic:family=erdos_renyi,period=4
    adversarial-source:strategy=max_eccentricity
    delay:low=0.25,high=4
    loss:p=0.2+churn:crash_rate=0.05

Parameter values are coerced ``int`` → ``float`` → ``str`` in that order, so
``period=4`` arrives as an integer and ``family=erdos_renyi`` as a string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.errors import ScenarioError
from repro.scenarios.base import (
    AdaptiveCrash,
    AdaptiveLoss,
    AdversarialSource,
    BurstLoss,
    Delay,
    DynamicGraph,
    FamilyResampler,
    MessageLoss,
    NodeChurn,
    Scenario,
    TargetedChurn,
    compose,
)

__all__ = [
    "ScenarioSpec",
    "SCENARIOS",
    "available_scenarios",
    "get_scenario_spec",
    "build_scenario",
    "parse_scenario",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Registry entry for one scenario model.

    Attributes:
        name: registry key (the ``NAME`` part of a CLI spec).
        summary: one-line human readable description.
        parameters: human readable parameter list with defaults, shown by
            ``python -m repro scenarios``.
        factory: callable building the scenario from keyword parameters.
    """

    name: str
    summary: str
    parameters: str
    factory: Callable[..., Scenario]


def _dynamic_factory(family: str = "erdos_renyi", period: int = 1) -> DynamicGraph:
    return DynamicGraph(FamilyResampler(str(family)), period=int(period))


SCENARIOS: dict[str, ScenarioSpec] = {
    "loss": ScenarioSpec(
        name="loss",
        summary="every push/pull exchange is independently dropped with probability p",
        parameters="p (required, in [0, 1))",
        factory=MessageLoss,
    ),
    "burst-loss": ScenarioSpec(
        name="burst-loss",
        summary=(
            "correlated (Gilbert-Elliott) loss: a good/bad channel stepping once per "
            "round/time unit; exchanges drop with the state's loss probability"
        ),
        parameters=(
            "p_gb (required, good->bad), p_bg (required, bad->good, > 0), "
            "p_loss_bad (required, in [0, 1]), p_loss_good (default 0)"
        ),
        factory=BurstLoss,
    ),
    "churn": ScenarioSpec(
        name="churn",
        summary="vertices crash and recover each round/time unit; crashed vertices are silent",
        parameters="crash_rate (required, in [0, 1)), recovery_rate (default 0.5)",
        factory=NodeChurn,
    ),
    "targeted-churn": ScenarioSpec(
        name="targeted-churn",
        summary=(
            "an adversary permanently crashes the top floor(fraction*n) vertices "
            "by degree or eccentricity at trial start (deterministic)"
        ),
        parameters=(
            "fraction (required, in [0, 1]), by (default 'degree'; or 'eccentricity')"
        ),
        factory=TargetedChurn,
    ),
    "adaptive-crash": ScenarioSpec(
        name="adaptive-crash",
        summary=(
            "a budget-limited adaptive adversary observes the informed set each "
            "round/time unit and permanently crashes the top-k informed vertices "
            "by degree or eccentricity until the budget is spent"
        ),
        parameters=(
            "budget (required, total crashes >= 0), k (default 1, crashes per "
            "epoch), by (default 'degree'; or 'eccentricity')"
        ),
        factory=AdaptiveCrash,
    ),
    "adaptive-loss": ScenarioSpec(
        name="adaptive-loss",
        summary=(
            "a budget-limited adaptive jammer drops only exchanges that would "
            "transmit the rumor (probability p per would-transmit contact, one "
            "budget unit per jam)"
        ),
        parameters="p (required, in [0, 1]), budget (required, total jams >= 0)",
        factory=AdaptiveLoss,
    ),
    "dynamic": ScenarioSpec(
        name="dynamic",
        summary="re-draw the graph from a registered family every `period` rounds/time units",
        parameters="family (default 'erdos_renyi'), period (default 1)",
        factory=_dynamic_factory,
    ),
    "adversarial-source": ScenarioSpec(
        name="adversarial-source",
        summary="place the source at the worst-case vertex by degree or eccentricity",
        parameters=(
            "strategy (default 'max_eccentricity'; one of max_degree, min_degree, "
            "max_eccentricity, min_eccentricity)"
        ),
        factory=AdversarialSource,
    ),
    "delay": ScenarioSpec(
        name="delay",
        summary="heterogeneous async clock rates: each vertex ticks at rate ~ Uniform[low, high]",
        parameters="low (default 0.5), high (default 2.0)",
        factory=Delay,
    ),
}


def available_scenarios() -> list[str]:
    """Sorted list of registered scenario names."""
    return sorted(SCENARIOS)


def get_scenario_spec(name: str) -> ScenarioSpec:
    """Look up a registry entry; raises with the list of valid names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None


def build_scenario(name: str, **params) -> Scenario:
    """Instantiate a registered scenario from keyword parameters."""
    spec = get_scenario_spec(name)
    try:
        return spec.factory(**params)
    except (TypeError, ValueError) as error:
        # TypeError: unknown/missing parameter names; ValueError: values the
        # factory's numeric coercions reject (e.g. p="abc").
        raise ScenarioError(
            f"bad parameters for scenario {name!r} (expected: {spec.parameters}): {error}"
        ) from None


def _coerce(value: str) -> Union[int, float, str]:
    for caster in (int, float):
        try:
            return caster(value)
        except ValueError:
            continue
    return value


def _parse_one(part: str) -> Scenario:
    name, _, params_text = part.partition(":")
    name = name.strip()
    if not name:
        raise ScenarioError(f"empty scenario name in spec {part!r}")
    params: dict[str, Union[int, float, str]] = {}
    if params_text.strip():
        for item in params_text.split(","):
            key, separator, value = item.partition("=")
            if not separator or not key.strip() or not value.strip():
                raise ScenarioError(
                    f"bad scenario parameter {item!r} in {part!r}; "
                    "expected param=value"
                )
            params[key.strip()] = _coerce(value.strip())
    return build_scenario(name, **params)


def parse_scenario(spec: str) -> Scenario:
    """Parse a ``NAME[:param=value,...][+NAME...]`` spec string.

    >>> parse_scenario("loss:p=0.3").loss_prob
    0.3
    >>> parse_scenario("loss:p=0.2+churn:crash_rate=0.1").churn.crash_rate
    0.1
    """
    text = spec.strip()
    if not text:
        raise ScenarioError("empty scenario spec")
    parts = [_parse_one(part) for part in text.split("+")]
    return compose(*parts)
