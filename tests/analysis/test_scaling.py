"""Unit tests for scaling-law fits."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.scaling import (
    best_fit,
    fit_linear,
    fit_logarithmic,
    fit_power_law,
    fit_sqrt,
    growth_exponent,
)
from repro.errors import AnalysisError

SIZES = [32, 64, 128, 256, 512, 1024]


class TestIndividualFits:
    def test_logarithmic_recovers_parameters(self):
        values = [2.0 + 3.0 * math.log(n) for n in SIZES]
        fit = fit_logarithmic(SIZES, values)
        assert fit.parameters[0] == pytest.approx(2.0, abs=1e-6)
        assert fit.parameters[1] == pytest.approx(3.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(100) == pytest.approx(2.0 + 3.0 * math.log(100))

    def test_sqrt_recovers_parameters(self):
        values = [1.0 + 0.5 * math.sqrt(n) for n in SIZES]
        fit = fit_sqrt(SIZES, values)
        assert fit.parameters == (pytest.approx(1.0), pytest.approx(0.5))
        assert fit.model == "sqrt"

    def test_linear_recovers_parameters(self):
        values = [5.0 + 2.0 * n for n in SIZES]
        fit = fit_linear(SIZES, values)
        assert fit.parameters == (pytest.approx(5.0), pytest.approx(2.0))

    def test_power_law_recovers_exponent(self):
        values = [0.7 * n**1.5 for n in SIZES]
        fit = fit_power_law(SIZES, values)
        assert fit.parameters[0] == pytest.approx(0.7, rel=1e-6)
        assert fit.parameters[1] == pytest.approx(1.5, abs=1e-9)
        assert "n^1.5" in fit.description

    def test_growth_exponent_shortcut(self):
        values = [2.0 * n**0.5 for n in SIZES]
        assert growth_exponent(SIZES, values) == pytest.approx(0.5, abs=1e-9)

    def test_noise_tolerance(self):
        rng = np.random.default_rng(1)
        values = [10 * math.log(n) + rng.normal(0, 0.5) for n in SIZES]
        fit = fit_logarithmic(SIZES, values)
        assert fit.parameters[1] == pytest.approx(10.0, rel=0.1)
        assert fit.r_squared > 0.95


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            fit_linear([1, 2, 3], [1, 2])

    def test_too_few_points(self):
        with pytest.raises(AnalysisError):
            fit_logarithmic([10], [1.0])

    def test_nonpositive_sizes(self):
        with pytest.raises(AnalysisError):
            fit_sqrt([0, 10], [1.0, 2.0])

    def test_power_law_needs_positive_values(self):
        with pytest.raises(AnalysisError):
            fit_power_law([1, 2], [1.0, -1.0])

    def test_nonfinite_values(self):
        with pytest.raises(AnalysisError):
            fit_linear([1, 2], [1.0, float("inf")])

    def test_predict_unknown_model(self):
        from repro.analysis.scaling import FitResult

        bogus = FitResult(model="cubic", parameters=(1.0, 1.0), r_squared=1.0, description="?")
        with pytest.raises(AnalysisError):
            bogus.predict(10)


class TestBestFit:
    def test_identifies_logarithmic_growth(self):
        values = [3.0 * math.log(n) + 1.0 for n in SIZES]
        assert best_fit(SIZES, values).model == "logarithmic"

    def test_identifies_linear_growth(self):
        values = [2.0 * n + 1.0 for n in SIZES]
        best = best_fit(SIZES, values)
        assert best.model in ("linear", "power_law")
        assert best.predict(2048) == pytest.approx(2.0 * 2048 + 1.0, rel=0.1)

    def test_identifies_sqrt_growth(self):
        values = [4.0 * math.sqrt(n) for n in SIZES]
        best = best_fit(SIZES, values)
        assert best.model in ("sqrt", "power_law")
        if best.model == "power_law":
            assert best.parameters[1] == pytest.approx(0.5, abs=0.05)

    def test_handles_non_positive_values(self):
        values = [-1.0 + 0.001 * n for n in SIZES]
        best = best_fit(SIZES, values)
        assert best.model in ("linear", "sqrt", "logarithmic")
