"""Conversions between :class:`repro.graphs.base.Graph` and :mod:`networkx`.

The simulation engines only ever see the internal :class:`Graph` type, but
users frequently have a :class:`networkx.Graph` in hand (e.g. a social
network loaded from an edge list).  These helpers translate in both
directions, relabelling arbitrary hashable networkx node identifiers to the
contiguous integer ids the engines require and back.
"""

from __future__ import annotations

from typing import Any, Hashable

import networkx as nx

from repro.errors import GraphError
from repro.graphs.base import Graph

__all__ = [
    "from_networkx",
    "to_networkx",
    "from_edge_list",
]


def from_networkx(nx_graph: "nx.Graph", *, name: str | None = None) -> tuple[Graph, dict[Hashable, int]]:
    """Convert a networkx graph to the internal representation.

    Returns the converted graph together with the mapping from original node
    identifiers to the integer ids used internally (sorted by ``repr`` for
    determinism when node labels are not mutually comparable).

    Raises:
        GraphError: for directed graphs or multigraphs (collapse them first),
            or graphs with self loops.
    """
    if nx_graph.is_directed():
        raise GraphError("directed graphs are not supported; convert to undirected first")
    if nx_graph.is_multigraph():
        raise GraphError("multigraphs are not supported; collapse parallel edges first")
    nodes = list(nx_graph.nodes())
    try:
        nodes.sort()
    except TypeError:
        nodes.sort(key=repr)
    mapping: dict[Hashable, int] = {node: index for index, node in enumerate(nodes)}
    edges = []
    for u, v in nx_graph.edges():
        if u == v:
            raise GraphError(f"self loop at node {u!r} is not supported")
        edges.append((mapping[u], mapping[v]))
    graph_name = name if name is not None else (nx_graph.name or None)
    return Graph(len(nodes), edges, name=graph_name), mapping


def to_networkx(graph: Graph) -> "nx.Graph":
    """Convert an internal graph to a :class:`networkx.Graph`.

    Node ids are preserved (integers ``0..n-1``) and the graph name is
    carried over, so the round trip ``from_networkx(to_networkx(g))``
    reproduces ``g`` exactly.
    """
    nx_graph = nx.Graph(name=graph.name)
    nx_graph.add_nodes_from(range(graph.num_vertices))
    nx_graph.add_edges_from(graph.edges)
    return nx_graph


def from_edge_list(
    edges: list[tuple[Any, Any]],
    *,
    name: str | None = None,
) -> tuple[Graph, dict[Hashable, int]]:
    """Build a graph from an edge list over arbitrary hashable labels.

    Convenience wrapper for loading external data sets: labels are mapped to
    contiguous integer ids and the mapping is returned alongside the graph.
    """
    nx_graph = nx.Graph()
    nx_graph.add_edges_from(edges)
    return from_networkx(nx_graph, name=name)
