"""Experiment E1 — Theorem 1: the asynchronous time is bounded by the synchronous time plus ``log n``.

Claim (Theorem 1 / Theorem 4): for every connected graph ``G`` and source
``u``, ``T_{1/n}(pp-a, G, u) = O(T_{1/n}(pp, G, u) + log n)``.

The experiment sweeps a broad suite of graph families and sizes, estimates
both high-probability spreading times by Monte Carlo, and reports the
empirical constant

    c₁(G) = T_{1/n}(pp-a) / (T_{1/n}(pp) + ln n).

Theorem 1 predicts that ``c₁`` stays bounded by a universal constant across
all families and sizes (whereas the superseded multiplicative ``log n`` bound
of Acan et al. would allow it to grow).  The headline conclusions are the
largest observed constant and whether the constant grows with ``n`` within
each family.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Optional, Sequence

from repro.analysis import shm
from repro.analysis.bounds import acan_multiplicative_upper_bound, theorem1_constant
from repro.analysis.comparison import sweep_family
from repro.analysis.montecarlo import BatchSpec
from repro.experiments.presets import get_preset
from repro.experiments.records import ExperimentResult
from repro.randomness.rng import SeedLike

__all__ = ["run", "DEFAULT_FAMILIES"]

#: Families used by default: broad coverage of regular/irregular, sparse/
#: dense, low/high conductance, deterministic/random topologies.
DEFAULT_FAMILIES: tuple[str, ...] = (
    "star",
    "double_star",
    "cycle",
    "complete",
    "hypercube",
    "binary_tree",
    "barbell",
    "erdos_renyi",
    "random_regular_3",
    "async_gap",
)


def run(
    preset: str = "quick",
    *,
    seed: SeedLike = 20160725,
    families: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
    batch: BatchSpec = True,
    parallel: bool = False,
    num_workers: Optional[int] = None,
) -> ExperimentResult:
    """Run experiment E1 and return its result table.

    Args:
        preset: ``"smoke"``, ``"quick"`` or ``"full"`` (controls sizes/trials).
        seed: master seed.
        families: override the default family list.
        sizes: override the preset's size sweep.
        batch: Monte Carlo dispatch mode.  The default ``True`` forces every
            sweep through the 2-D batch kernels (``pp`` and ``pp-a`` always
            batch), which is exactly seed-equivalent to the serial path and
            keeps even small presets off the per-trial Python loop; pass
            ``False`` to force serial runs or ``"auto"``/``"pooled"`` for
            the other :func:`~repro.analysis.montecarlo.run_trials` modes.
        parallel: shard every sweep cell's trials across the session's
            persistent process pool (:mod:`repro.analysis.pool`) through the
            zero-copy shared-memory transport — the pool and the per-graph
            CSR segments are reused across all grid points of the sweep.
            Changes the per-trial seed spawning (reproducible, but a
            different draw than the serial sweep).
        num_workers: worker override for the parallel path.
    """
    config = get_preset(preset)
    family_names = tuple(families) if families is not None else DEFAULT_FAMILIES
    size_sweep = tuple(sizes) if sizes is not None else config.sizes

    rows: list[dict[str, object]] = []
    worst_constant = 0.0
    worst_setting = ""
    growth_flags: list[bool] = []

    # One sweep scope for the whole experiment: the shared result matrices
    # persist across every family's sweep instead of per call.
    with shm.sweep_scope() if parallel else nullcontext():
        for family_name in family_names:
            sweep = sweep_family(
                family_name,
                ["pp", "pp-a"],
                sizes=size_sweep,
                trials=config.trials,
                seed=seed,
                batch=batch,
                parallel=parallel,
                num_workers=num_workers,
            )
            constants_for_family: list[float] = []
            for comparison in sweep.comparisons:
                n = comparison.num_vertices
                sync_hp = comparison.measurement("pp").high_probability
                async_hp = comparison.measurement("pp-a").high_probability
                constant = theorem1_constant(async_hp, sync_hp, n)
                acan_bound = acan_multiplicative_upper_bound(sync_hp, n)
                constants_for_family.append(constant)
                if constant > worst_constant:
                    worst_constant = constant
                    worst_setting = f"{family_name}(n={n})"
                rows.append(
                    {
                        "family": family_name,
                        "n": n,
                        "T_hp(pp)": sync_hp,
                        "T_hp(pp-a)": async_hp,
                        "sync+ln(n)": sync_hp + math.log(n),
                        "c1 = async/(sync+ln n)": constant,
                        "Acan mult. bound": acan_bound,
                    }
                )
            # "Grows" means the constant at the largest size exceeds the one
            # at the smallest size by more than 75% — a loose flag for
            # unbounded growth that logarithmic-in-n behaviour would trip.
            if len(constants_for_family) >= 2 and constants_for_family[0] > 0:
                growth_flags.append(
                    constants_for_family[-1] > 1.75 * constants_for_family[0] + 0.25
                )
            else:
                growth_flags.append(False)

    conclusions = {
        "max_constant_c1": worst_constant,
        "max_constant_setting": worst_setting,
        "families_with_growing_constant": sum(growth_flags),
        "num_families": len(family_names),
        "theorem1_consistent": worst_constant < 4.0 and sum(growth_flags) <= max(1, len(family_names) // 5),
    }
    notes = [
        f"preset={config.name}, trials={config.trials} per cell, sizes={list(size_sweep)}",
        "T_hp is the Monte Carlo estimate of the 1-1/n quantile of the spreading time",
        "Theorem 1 predicts c1 bounded by a universal constant across families and sizes",
    ]
    return ExperimentResult(
        experiment_id="E1",
        title="Theorem 1: asynchronous push-pull time vs synchronous time + log n",
        claim="T_{1/n}(pp-a, G, u) = O(T_{1/n}(pp, G, u) + log n) for every connected graph",
        columns=[
            "family",
            "n",
            "T_hp(pp)",
            "T_hp(pp-a)",
            "sync+ln(n)",
            "c1 = async/(sync+ln n)",
            "Acan mult. bound",
        ],
        rows=rows,
        conclusions=conclusions,
        notes=notes,
    )
