"""Monte Carlo trial runners for spreading-time estimation.

The quantities the paper reasons about are properties of the *distribution*
of the rumor spreading time ``T(alg, G, u)``: its expectation (Theorem 2)
and its ``1 − 1/n`` quantile ``T_{1/n}`` (Theorem 1).  This module runs
repeated independent simulations and collects the resulting samples into
:class:`SpreadingTimeSample` objects that the quantile/statistics helpers
consume.

Two run modes are supported:

* a **fixed graph** — all trials run on the same graph instance (the correct
  semantics for the theorems, which hold for every individual graph);
* a **graph factory** — each trial draws a fresh random graph (used when the
  experiment is about a random-graph *family*, e.g. "random 3-regular
  graphs", and we want to average over the family as the cited literature
  does).

Both modes support fixed sources and uniformly random sources, fixed trial
counts and an adaptive mode that keeps adding trials until the relative
half-width of the mean's confidence interval drops below a target.

**The batched fast path.**  When the caller asks only for spreading times
(no traces, no per-vertex detail) on a fixed graph, :func:`run_trials`
dispatches to the 2-D batch kernels in :mod:`repro.core.batch_engine`,
which simulate whole blocks of trials as ``(B, n)`` NumPy arrays and skip
:class:`~repro.core.result.SpreadingResult` materialization entirely.  All
eight protocols batch — the six realistic ones (the asynchronous trio under
any of the three views, including the ``node_clocks``/``edge_clocks`` clock
queues) and the auxiliary processes ``ppx``/``ppy``.  The single
"can this setting batch?" predicate all runners share is
:func:`batch_dispatch_decision`.  The
batch kernels consume per-trial randomness in exactly the serial engines'
order, so ``run_trials(..., batch=True)`` and ``run_trials(...,
batch=False)`` return identical samples for the same seed — the ``batch``
argument is a pure throughput knob (``"auto"``, the default, batches
whenever the protocol and options allow it).  ``batch="pooled"`` trades the
serial equivalence for one shared generator per batch (cheaper small-``n``
rounds; agreement in distribution only).

Every runner also takes a ``scenario=`` argument applying the composable
adversity models of :mod:`repro.scenarios` (message loss, churn, dynamic
graphs, adversarial sources, heterogeneous clocks); scenario sweeps keep the
batched fast path whenever the scenario vectorises (see
:func:`repro.core.batch_engine.is_batchable`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core.batch_engine import is_batchable, run_batch
from repro.core.protocols import get_protocol, spread
from repro.core.result import SpreadingResult
from repro.errors import AnalysisError
from repro.graphs.base import Graph
from repro.randomness.rng import (
    SeedLike,
    as_generator,
    draw_order_critical,
    spawn_generators,
)
from repro.scenarios.base import (
    Scenario,
    ScenarioLike,
    as_scenario,
    select_adversarial_source,
)
from repro.telemetry.metrics import current_metrics
from repro.telemetry.trace import CoverageRecorder, active_trace_collector

__all__ = [
    "SpreadingTimeSample",
    "run_trials",
    "run_adaptive_trials",
    "collect_results",
    "batch_dispatch_decision",
    "DEFAULT_BATCH_WIDTH",
]

#: Trials simulated per batch-kernel call on the batched fast path; bounds
#: the (width, n) working-array memory while amortizing per-round overhead.
DEFAULT_BATCH_WIDTH = 256

#: In ``batch="auto"``/``batch=True`` mode the width is additionally capped
#: so the kernels' (width, n) working buffers stay around tens of MB even
#: on very large graphs.  An explicit integer width is honored as given.
AUTO_BATCH_ELEMENT_BUDGET = 4_194_304

#: In ``batch="auto"`` mode, asynchronous protocols only dispatch to the
#: batched tick loop at this many trials or more: each tick advances every
#: live trial by one step, so the per-iteration overhead amortizes across
#: the batch and narrow batches are better served by the serial engine.
#: (Synchronous rounds amortize over ``n`` vertices as well, so they batch
#: at any width.)  Explicit ``batch=True``/``batch=<width>`` overrides this.
ASYNC_AUTO_MIN_TRIALS = 128

#: Accepted values for the ``batch`` argument of :func:`run_trials`.
BatchSpec = Union[bool, int, str]

GraphFactory = Callable[[np.random.Generator], Graph]
SourceSpec = Union[int, str]


@dataclass(frozen=True)
class SpreadingTimeSample:
    """A sample of spreading times for one (protocol, graph/family, source) setting.

    Attributes:
        protocol: canonical protocol name.
        graph_name: name of the graph (or family representative).
        num_vertices: number of vertices of the simulated graph(s).
        source: the fixed source vertex, or ``-1`` when sources were random.
        times: the observed spreading times, one per trial.
        fraction_times: optional per-trial times to inform given fractions
            (only populated when requested).
        num_trials: convenience alias for ``len(times)``.
    """

    protocol: str
    graph_name: str
    num_vertices: int
    source: int
    times: tuple[float, ...]
    fraction_times: dict[float, tuple[float, ...]] = field(default_factory=dict)

    @property
    def num_trials(self) -> int:
        return len(self.times)

    def as_array(self) -> np.ndarray:
        """The spreading times as a NumPy array."""
        return np.asarray(self.times, dtype=float)

    @property
    def mean(self) -> float:
        """Sample mean of the spreading time (estimates ``E[T]``)."""
        return float(np.mean(self.as_array()))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single trial)."""
        values = self.as_array()
        if values.size < 2:
            return 0.0
        return float(np.std(values, ddof=1))

    @property
    def maximum(self) -> float:
        return float(np.max(self.as_array()))

    @property
    def minimum(self) -> float:
        return float(np.min(self.as_array()))

    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self.num_trials < 2:
            return math.inf
        return self.std / math.sqrt(self.num_trials)

    @classmethod
    def merged(cls, samples: Sequence["SpreadingTimeSample"]) -> "SpreadingTimeSample":
        """Combine any number of samples of the same setting in one pass.

        A single concatenation per field, so merging ``W`` worker chunks is
        O(total trials) — unlike a chain of pairwise :meth:`merged_with`
        calls, which re-concatenates the accumulated tuples at every step
        (O(W * total)).  Fraction keys keep the first sample's order, then
        first appearance; the merged source is the common source, or ``-1``
        when the chunks disagree (or any chunk already had mixed sources).
        """
        samples = list(samples)
        if not samples:
            raise AnalysisError("cannot merge an empty sequence of samples")
        first = samples[0]
        for other in samples[1:]:
            if (first.protocol, first.num_vertices) != (other.protocol, other.num_vertices):
                raise AnalysisError("cannot merge samples from different settings")
        merged_fraction_times: dict[float, tuple[float, ...]] = {}
        for sample in samples:
            for fraction in sample.fraction_times:
                if fraction not in merged_fraction_times:
                    merged_fraction_times[fraction] = tuple(
                        value
                        for s in samples
                        for value in s.fraction_times.get(fraction, ())
                    )
        sources = {sample.source for sample in samples}
        return cls(
            protocol=first.protocol,
            graph_name=first.graph_name,
            num_vertices=first.num_vertices,
            source=sources.pop() if len(sources) == 1 else -1,
            times=tuple(time for sample in samples for time in sample.times),
            fraction_times=merged_fraction_times,
        )

    def merged_with(self, other: "SpreadingTimeSample") -> "SpreadingTimeSample":
        """Combine two samples of the same setting (used by adaptive runs)."""
        return SpreadingTimeSample.merged([self, other])


def _resolve_source(source: SourceSpec, graph: Graph, rng: np.random.Generator) -> int:
    if isinstance(source, str):
        if source != "random":
            raise AnalysisError(f"source must be a vertex id or 'random', got {source!r}")
        return int(rng.integers(graph.num_vertices))
    if not (0 <= int(source) < graph.num_vertices):
        raise AnalysisError(
            f"source {source} is not a vertex of {graph.name} (n={graph.num_vertices})"
        )
    return int(source)


def _resolve_batch_width(batch: BatchSpec, num_vertices: int) -> int:
    """Map the ``batch`` argument to a positive batch width."""
    if batch is True or batch in ("auto", "pooled"):
        return max(1, min(DEFAULT_BATCH_WIDTH, AUTO_BATCH_ELEMENT_BUDGET // max(1, num_vertices)))
    width = int(batch)
    if width < 1:
        raise AnalysisError(f"batch width must be positive, got {batch}")
    return width


def _scenario_fixed_source(scenario: Optional[Scenario], graph: Graph) -> Optional[int]:
    """The adversarially forced source, when the scenario carries one."""
    if scenario is None or scenario.source_strategy is None:
        return None
    return select_adversarial_source(graph, scenario.source_strategy)


def batch_dispatch_decision(
    protocol: str,
    engine_options: Optional[dict] = None,
    scenario: ScenarioLike = None,
    batch: BatchSpec = "auto",
    trials: Optional[int] = None,
    *,
    fixed_graph: bool = True,
    trace: Optional[object] = None,
) -> tuple[bool, str]:
    """The one "can this (protocol, options, scenario) setting batch?" predicate.

    Shared by :func:`run_trials`, :func:`run_adaptive_trials`, and
    :func:`repro.analysis.parallel.run_trials_parallel`, so the dispatch
    policy cannot drift between the three runners.

    Args:
        protocol: canonical protocol name.
        engine_options: engine options the trials will run with (the
            asynchronous ``view`` lives here).
        scenario: optional adversity scenario (or spec string).
        batch: the runner's ``batch`` argument.
        trials: number of trials the caller intends to run (used by the
            ``"auto"`` narrow-asynchronous-batch heuristic; pass ``None`` to
            skip that check).
        fixed_graph: whether the trials share one fixed graph — graph
            factories run one trial per graph and never batch.
        trace: the coverage recorder the trials will feed, if any.  Tracing
            **never** changes the chosen path — coverage derives from the
            ``(B, n)`` time matrix the batch kernels emit anyway (and from
            the serial engines' per-trial histories on the serial path) —
            so the argument only annotates the returned reason string.

    Returns:
        ``(use_batch, reason)``: whether to dispatch to the batch kernels,
        and a human-readable reason for the decision — always present, for
        debuggability on both outcomes (the negative reason is also used
        verbatim in the error raised when batching was explicitly forced).
    """
    traced = " [coverage tracing active; it never affects dispatch]" if trace is not None else ""
    if batch is False:
        return False, "batch=False forces the serial path" + traced
    options = dict(engine_options or {})
    scenario = as_scenario(scenario)
    if not fixed_graph:
        return False, "graph factories run one trial per graph" + traced
    if not is_batchable(protocol, options, scenario):
        return False, (
            f"protocol {protocol!r} with options {sorted(options)} and "
            f"scenario {scenario.spec() if scenario is not None else None!r} "
            "has no batched kernel" + traced
        )
    if (
        batch == "auto"
        and not get_protocol(protocol).synchronous
        and trials is not None
        and trials < ASYNC_AUTO_MIN_TRIALS
    ):
        # Narrow async batches lose to the serial engine.
        return False, (
            f"auto mode runs fewer than {ASYNC_AUTO_MIN_TRIALS} asynchronous "
            "trials through the serial engine" + traced
        )
    return True, (
        f"protocol {protocol!r} dispatches to the batched kernels "
        f"(batch={batch!r})" + traced
    )


def _forced_batch_error(batch: BatchSpec, reason: Optional[str]) -> AnalysisError:
    """The one error raised when an explicitly forced batch mode cannot run."""
    return AnalysisError(f"batch={batch!r} was requested but {reason}")


@draw_order_critical
def _run_trials_batched(
    graph: Graph,
    source: SourceSpec,
    protocol: str,
    trials: int,
    seed: SeedLike,
    fractions: Sequence[float],
    options: dict,
    width: int,
    scenario: Optional[Scenario],
    pooled: bool,
    trace: Optional[CoverageRecorder] = None,
) -> SpreadingTimeSample:
    """The batched fast path of :func:`run_trials`.

    Spawns the same per-trial generators and resolves per-trial sources with
    the same draws as the serial path, then hands blocks of ``width`` trials
    to the batch kernels.  The full ``(B, n)`` time matrix is only recorded
    when coverage fractions were requested or a coverage trace is attached
    (the recorder ingests each block's matrix — coverage tracing at batch
    speed, no extra randomness, no kernel changes).  In pooled mode one
    shared generator replaces the per-trial ones (distribution-level
    agreement only; see :mod:`repro.core.batch_engine`).
    """
    record_times = bool(fractions) or trace is not None
    forced_source = _scenario_fixed_source(scenario, graph)
    pooled_rng = None
    generators = None
    if pooled:
        pooled_rng = as_generator(seed)
        if forced_source is not None:
            rng_sources = [forced_source] * trials
        elif isinstance(source, str):
            if source != "random":
                raise AnalysisError(
                    f"source must be a vertex id or 'random', got {source!r}"
                )
            rng_sources = pooled_rng.integers(0, graph.num_vertices, trials).tolist()
        else:
            rng_sources = [_resolve_source(source, graph, pooled_rng)] * trials
    else:
        generators = spawn_generators(trials, seed)
        if forced_source is not None:
            rng_sources = [forced_source] * trials
        else:
            rng_sources = [_resolve_source(source, graph, rng) for rng in generators]

    times: list[float] = []
    fraction_values: dict[float, list[float]] = {fraction: [] for fraction in fractions}
    for start in range(0, trials, width):
        stop = min(start + width, trials)
        block = run_batch(
            graph,
            rng_sources[start:stop],
            protocol,
            rngs=generators[start:stop] if generators is not None else None,
            pooled_rng=pooled_rng,
            record_times=record_times,
            scenario=scenario,
            **options,
        )
        times.extend(block.spreading_times().tolist())
        if trace is not None:
            trace.record_block(block.informed_time)
        for fraction in fractions:
            fraction_values[fraction].extend(
                block.time_to_inform_fraction(fraction).tolist()
            )

    fixed_source = rng_sources[0] if len(set(rng_sources)) == 1 else -1
    return SpreadingTimeSample(
        protocol=protocol,
        graph_name=graph.name,
        num_vertices=graph.num_vertices,
        source=fixed_source,
        times=tuple(times),
        fraction_times={f: tuple(v) for f, v in fraction_values.items()},
    )


def run_trials(
    graph_or_factory: Union[Graph, GraphFactory],
    source: SourceSpec,
    protocol: str,
    *,
    trials: int,
    seed: SeedLike = None,
    fractions: Sequence[float] = (),
    engine_options: Optional[dict] = None,
    batch: BatchSpec = "auto",
    scenario: ScenarioLike = None,
    trace: Optional[CoverageRecorder] = None,
) -> SpreadingTimeSample:
    """Run ``trials`` independent simulations and collect spreading times.

    Args:
        graph_or_factory: a fixed :class:`Graph`, or a callable mapping an
            RNG to a freshly sampled graph (for random families).
        source: a vertex id, or the string ``"random"`` to pick a fresh
            uniformly random source in every trial.  An
            :class:`~repro.scenarios.AdversarialSource` component in the
            scenario overrides this argument entirely (deterministically, so
            both dispatch paths agree).
        protocol: canonical protocol name (``"pp"``, ``"pp-a"``, ...).
        trials: number of independent trials (must be positive).
        seed: master seed; per-trial generators are spawned from it.
        fractions: optional fractions (e.g. ``(0.5, 0.9)``) for which the
            time to inform that fraction of vertices is also recorded.
        engine_options: extra keyword arguments forwarded to the engine.
        batch: ``"auto"`` (default) uses the vectorised batch kernels
            whenever the setting allows it (fixed graph, batchable protocol,
            options, and scenario) and falls back to serial runs otherwise;
            ``False`` forces the serial path; ``True`` or a positive int
            (the batch width) forces batching and raises
            :class:`AnalysisError` when the setting cannot be batched.  All
            of those produce identical samples for the same seed.
            ``"pooled"`` also forces batching but shares *one* generator
            across the whole batch instead of spawning one per trial —
            roughly halving small-``n`` round cost at the price of serial
            equivalence (pooled samples agree with the other modes in
            distribution only).
        scenario: optional adversity scenario from :mod:`repro.scenarios`
            (a :class:`~repro.scenarios.Scenario` or a spec string such as
            ``"loss:p=0.3"``), applied to every trial.
        trace: optional :class:`~repro.telemetry.trace.CoverageRecorder`
            collecting per-trial coverage histories alongside the sample —
            at batch speed on the batched path (the kernels' ``(B, n)``
            time matrices), from :class:`SpreadingResult` histories on the
            serial path.  Tracing never changes which path runs; the same
            fixed seed yields bit-identical samples traced or not.  When
            ``None`` and an ambient collector is active (see
            :func:`repro.telemetry.trace.collecting_traces`), a recorder is
            created per call and the finished trace deposited there.

    Returns:
        The collected :class:`SpreadingTimeSample`.
    """
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    get_protocol(protocol)  # validate the name eagerly
    scenario = as_scenario(scenario)
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise AnalysisError(f"fractions must be in (0, 1], got {fraction}")
    options = dict(engine_options or {})
    collector = None
    if trace is None:
        collector = active_trace_collector()
        if collector is not None and collector.spec.coverage:
            trace = collector.recorder()
        else:
            collector = None
    metrics = current_metrics()

    if batch is not False:
        use_batch, reason = batch_dispatch_decision(
            protocol,
            options,
            scenario,
            batch,
            trials,
            fixed_graph=isinstance(graph_or_factory, Graph),
            trace=trace,
        )
        if use_batch:
            if metrics is not None:
                with metrics.timer("analysis.batch_seconds"):
                    sample = _run_trials_batched(
                        graph_or_factory,
                        source,
                        protocol,
                        trials,
                        seed,
                        tuple(fractions),
                        options,
                        _resolve_batch_width(batch, graph_or_factory.num_vertices),
                        scenario,
                        batch == "pooled",
                        trace,
                    )
                metrics.count("analysis.trials", trials)
            else:
                sample = _run_trials_batched(
                    graph_or_factory,
                    source,
                    protocol,
                    trials,
                    seed,
                    tuple(fractions),
                    options,
                    _resolve_batch_width(batch, graph_or_factory.num_vertices),
                    scenario,
                    batch == "pooled",
                    trace,
                )
            if collector is not None:
                collector.add(
                    trace.trace(protocol=protocol, graph_name=sample.graph_name)
                )
            return sample
        if batch != "auto":
            raise _forced_batch_error(batch, reason)

    generators = spawn_generators(trials, seed)
    serial_started = time.perf_counter() if metrics is not None else None

    times: list[float] = []
    fraction_times: dict[float, list[float]] = {fraction: [] for fraction in fractions}
    graph_name = None
    num_vertices = None
    fixed_source: Optional[int] = None

    for rng in generators:
        if isinstance(graph_or_factory, Graph):
            graph = graph_or_factory
        else:
            graph = graph_or_factory(rng)
        if graph_name is None:
            graph_name = graph.name
            num_vertices = graph.num_vertices
        forced_source = _scenario_fixed_source(scenario, graph)
        if forced_source is not None:
            trial_source = forced_source
        else:
            trial_source = _resolve_source(source, graph, rng)
        if fixed_source is None:
            fixed_source = trial_source
        elif fixed_source != trial_source:
            fixed_source = -1
        result = spread(
            graph, trial_source, protocol=protocol, seed=rng, scenario=scenario, **options
        )
        times.append(result.spreading_time)
        if trace is not None:
            trace.record_result(result)
        for fraction in fractions:
            fraction_times[fraction].append(result.time_to_inform_fraction(fraction))

    assert graph_name is not None and num_vertices is not None
    if metrics is not None:
        metrics.add_time("analysis.serial_seconds", time.perf_counter() - serial_started)
        metrics.count("analysis.trials", trials)
    if collector is not None:
        collector.add(trace.trace(protocol=protocol, graph_name=graph_name))
    return SpreadingTimeSample(
        protocol=protocol,
        graph_name=graph_name,
        num_vertices=num_vertices,
        source=fixed_source if fixed_source is not None else -1,
        times=tuple(times),
        fraction_times={f: tuple(v) for f, v in fraction_times.items()},
    )


def run_adaptive_trials(
    graph_or_factory: Union[Graph, GraphFactory],
    source: SourceSpec,
    protocol: str,
    *,
    initial_trials: int = 50,
    batch_size: int = 50,
    max_trials: int = 2000,
    relative_precision: float = 0.05,
    seed: SeedLike = None,
    engine_options: Optional[dict] = None,
    batch: BatchSpec = "auto",
    scenario: ScenarioLike = None,
) -> SpreadingTimeSample:
    """Keep adding trial batches until the mean is known to the requested precision.

    The stopping rule is ``1.96 * standard_error <= relative_precision * mean``
    (a ~95% confidence half-width below the requested relative precision), or
    ``max_trials`` trials, whichever comes first.  This is the "adaptive
    trial allocation" ablation mentioned in DESIGN.md.  Each refinement block
    goes through :func:`run_trials` and therefore picks up the batched fast
    path under the same conditions (see the ``batch`` argument there).
    """
    if initial_trials < 2:
        raise AnalysisError("initial_trials must be at least 2")
    if batch_size < 1:
        raise AnalysisError("batch_size must be positive")
    if max_trials < initial_trials:
        raise AnalysisError("max_trials must be at least initial_trials")
    if not 0 < relative_precision < 1:
        raise AnalysisError("relative_precision must be in (0, 1)")
    master = as_generator(seed)
    scenario = as_scenario(scenario)
    if batch not in (False, "auto"):
        # Fail fast on an impossible forced-batch setting before running any
        # refinement blocks (the same shared predicate run_trials dispatches
        # on — see batch_dispatch_decision).
        use_batch, reason = batch_dispatch_decision(
            protocol,
            engine_options,
            scenario,
            batch,
            None,
            fixed_graph=isinstance(graph_or_factory, Graph),
        )
        if not use_batch:
            raise _forced_batch_error(batch, reason)
    sample = run_trials(
        graph_or_factory,
        source,
        protocol,
        trials=initial_trials,
        seed=master,
        engine_options=engine_options,
        batch=batch,
        scenario=scenario,
    )
    while sample.num_trials < max_trials:
        half_width = 1.96 * sample.standard_error()
        if sample.mean > 0 and half_width <= relative_precision * sample.mean:
            break
        remaining = min(batch_size, max_trials - sample.num_trials)
        extra = run_trials(
            graph_or_factory,
            source,
            protocol,
            trials=remaining,
            seed=master,
            engine_options=engine_options,
            batch=batch,
            scenario=scenario,
        )
        sample = sample.merged_with(extra)
    return sample


def collect_results(
    graph: Graph,
    source: SourceSpec,
    protocol: str,
    *,
    trials: int,
    seed: SeedLike = None,
    engine_options: Optional[dict] = None,
    scenario: ScenarioLike = None,
) -> list[SpreadingResult]:
    """Run ``trials`` simulations and return the full result objects.

    Unlike :func:`run_trials` this keeps every :class:`SpreadingResult`
    (parents, infection kinds, per-vertex times), which the coupling
    experiments and a few tests need; it is correspondingly heavier.
    """
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    options = dict(engine_options or {})
    scenario = as_scenario(scenario)
    results = []
    for rng in spawn_generators(trials, seed):
        forced_source = _scenario_fixed_source(scenario, graph)
        if forced_source is not None:
            trial_source = forced_source
        else:
            trial_source = _resolve_source(source, graph, rng)
        results.append(
            spread(
                graph, trial_source, protocol=protocol, seed=rng, scenario=scenario, **options
            )
        )
    return results
