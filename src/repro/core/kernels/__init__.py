"""Backend-neutral batch kernels: the hot loops of ``repro.core.batch_engine``.

The batched Monte Carlo engine separates *orchestration* (validation,
scenario unpacking, RNG stream management, result assembly — all of which
stays in :mod:`repro.core.batch_engine`) from the *hot loops* that consume
the pre-drawn randomness: the synchronous round step, the flattened
asynchronous tick loop of the ``"global"`` view, and the pooled clock-view
chunk consumer.  Those loops live here as pure-array kernel functions with
two interchangeable implementations:

``numpy``
    :mod:`repro.core.kernels.numpy_backend` — the reference vectorised
    kernels, extracted verbatim from the engine.  Always available.
``jit``
    :mod:`repro.core.kernels.jit_backend` — Numba ``@njit(cache=True)``
    loops over the CSR ``indptr``/``indices`` arrays, per trial and per
    vertex, with no full-width ``(B, n)`` temporaries.  Requires the
    ``jit`` install extra (``pip install -e .[jit]``); without numba the
    resolver falls back to ``numpy`` with a one-time warning.
``auto``
    ``jit`` when numba is importable, ``numpy`` otherwise (never warns).

**Equivalence contract.**  All trial-level randomness is drawn *outside*
the kernels (by the engine or the shared :meth:`AsyncState.draw_chunk` /
``_ScenarioParts.cross_boundaries`` helpers), in the serial engines'
documented order; the kernels are deterministic functions of those draws.
Consequently the per-trial RNG modes are **bit-identical** across backends
— the full ``KERNEL_CASES`` registry replays under both — and the pooled
modes agree in distribution (the jit backend drains pooled buffers trial
by trial, reordering consumption of the shared generator), with one
strengthening: the *chunked* pooled clock-view consumer pre-draws every
block before consuming it, so given the same pooled stream the two
backends produce identical results there too.

The backend is selected per call through the ``backend=`` engine option
(threaded through ``run_trials`` / ``run_trials_parallel`` / the CLI
``--backend`` flag), defaulting to the ``REPRO_KERNEL_BACKEND``
environment variable and then to ``"auto"``.
"""

from __future__ import annotations

import warnings
from types import ModuleType
from typing import Optional

import numpy as np

from repro import config
from repro.errors import ProtocolError
from repro.randomness.rng import as_generator

__all__ = [
    "KERNEL_BACKENDS",
    "AsyncState",
    "available_backends",
    "default_backend_name",
    "resolve_backend",
    "warmup_kernels",
]

#: Names accepted by ``backend=`` (and the ``REPRO_KERNEL_BACKEND`` env var).
KERNEL_BACKENDS = ("numpy", "jit", "auto")

_ENV_BACKEND = "REPRO_KERNEL_BACKEND"

_jit_fallback_warned = False


def _reset_fallback_warning() -> None:
    """Test hook: make the next jit→numpy fallback warn again."""
    global _jit_fallback_warned
    _jit_fallback_warned = False


def default_backend_name() -> str:
    """The backend name used when a kernel call passes ``backend=None``."""
    return config.read_env(_ENV_BACKEND) or "auto"


def available_backends() -> list[str]:
    """The backend names that resolve to themselves in this process."""
    from repro.core.kernels import jit_backend

    names = ["numpy"]
    if jit_backend.is_available():
        names.append("jit")
    return names


def resolve_backend(backend: Optional[str] = None) -> ModuleType:
    """Resolve a backend name to its kernel module.

    ``None`` reads ``REPRO_KERNEL_BACKEND`` and then defaults to
    ``"auto"``.  ``"auto"`` quietly prefers the compiled jit backend when
    numba is importable.  ``"jit"`` without numba degrades to the numpy
    backend with a single :class:`RuntimeWarning` per process (the
    graceful-fallback contract pinned by the suite).  Unknown names raise
    :class:`~repro.errors.ProtocolError`.
    """
    global _jit_fallback_warned
    name = default_backend_name() if backend is None else backend
    if name not in KERNEL_BACKENDS:
        raise ProtocolError(
            f"unknown kernel backend {name!r}; expected one of {KERNEL_BACKENDS}"
        )
    from repro.core.kernels import numpy_backend

    if name == "numpy":
        return numpy_backend
    from repro.core.kernels import jit_backend

    if name == "auto":
        return jit_backend if jit_backend.is_compiled() else numpy_backend
    if jit_backend.is_available():
        return jit_backend
    if not _jit_fallback_warned:
        _jit_fallback_warned = True
        warnings.warn(
            "backend='jit' requested but numba is not installed; falling back "
            "to the numpy kernels (install the extra: pip install -e '.[jit]'). "
            "This warning is shown once per process.",
            RuntimeWarning,
            stacklevel=2,
        )
    return numpy_backend


def warmup_kernels(backend: Optional[str] = None) -> str:
    """Run one tiny batch through every kernel family on ``backend``.

    Numba compiles lazily on the first call per signature, so a worker's
    first real chunk (or a benchmark's first timed repetition) would
    otherwise absorb seconds of compilation.  Pool workers and
    ``benchmarks/conftest.py`` call this once up front; the runs use
    throwaway graphs and seeds and touch no caller RNG state.  Returns the
    resolved backend's name (``"numpy"`` after a fallback).
    """
    from repro.core import batch_engine
    from repro.graphs import complete_graph

    resolved = resolve_backend(backend)
    graph = complete_graph(4)
    common = dict(
        trials=2,
        record_times=False,
        on_budget_exhausted="partial",
        backend=backend,
    )
    batch_engine.run_synchronous_batch(graph, 0, seed=0, **common)
    batch_engine.run_asynchronous_batch(graph, 0, seed=0, **common)
    batch_engine.run_clock_view_batch(
        graph, 0, pooled_rng=as_generator(0), **common
    )
    return resolved.BACKEND_NAME


class AsyncState:
    """Everything the asynchronous ``"global"`` tick loop reads and writes.

    Built by :func:`~repro.core.batch_engine.run_asynchronous_batch` and
    handed to the selected backend's ``async_tick_loop``, so both backends
    consume one identically-prepared bundle (same buffer layout, same
    pre-drawn randomness protocol) and cannot drift apart.  All arrays are
    indexed by absolute trial row; a backend that compacts its working set
    (the numpy loop does) keeps its own local-row mapping and writes
    results back through these arrays.
    """

    __slots__ = (
        # problem shape / protocol
        "n", "batch", "mode", "chunk",
        # budgets
        "step_budget", "time_budget", "finite_time_budget",
        # randomness sources
        "generators", "pooled_rng",
        # clock rates (Delay scenario)
        "scale", "scales", "rates_cum", "rates_total",
        # static CSR (narrow) and the per-trial dynamic stacked CSR
        "degrees", "max_offset", "start", "indices", "trial_graphs",
        # scenario state
        "parts", "up", "bad", "next_epoch", "next_resample",
        "boundary_floor", "has_boundaries",
        # per-trial randomness buffers (serial chunk protocol)
        "gaps", "callers", "nbr_uniforms", "loss_uniforms",
        "positions", "buffer_lengths", "chunk_base",
        # trial state
        "informed", "times", "num_informed", "now",
        "live", "completed", "completion_time", "overtime", "steps",
    )

    def __init__(self, **fields: object) -> None:
        for name in self.__slots__:
            setattr(self, name, fields.pop(name))
        if fields:
            raise TypeError(f"unknown AsyncState fields: {sorted(fields)}")

    def rng_for(self, trial: int) -> np.random.Generator:
        """The generator that owns ``trial``'s randomness stream."""
        if self.pooled_rng is not None:
            return self.pooled_rng
        return self.generators[trial]

    def draw_chunk(
        self,
        rng: np.random.Generator,
        trial: int,
        chunk: int,
        row: int,
        gaps: Optional[np.ndarray] = None,
        callers: Optional[np.ndarray] = None,
        nbr_uniforms: Optional[np.ndarray] = None,
        loss_uniforms: Optional[np.ndarray] = None,
    ) -> None:
        """Refill one trial's randomness buffers with ``chunk`` draws.

        The single definition of the serial engine's per-chunk draw order
        (exponential gaps, callers, neighbor uniforms, loss uniforms) shared
        by both backends, so the equivalence-pinned stream cannot drift.
        ``trial`` addresses the per-trial rate tables (absolute row);
        ``row`` addresses the buffers, which a compacting backend passes as
        local arrays (defaulting to the state's own).
        """
        n = self.n
        if gaps is None:
            gaps = self.gaps
        if callers is None:
            callers = self.callers
        if nbr_uniforms is None:
            nbr_uniforms = self.nbr_uniforms
        if loss_uniforms is None:
            loss_uniforms = self.loss_uniforms
        gaps[row, :chunk] = rng.exponential(
            self.scale if self.scales is None else self.scales[trial], chunk
        )
        if self.rates_cum is not None:
            # Weighted caller selection: resolve the whole chunk of uniforms
            # against the trial's cumulative rates now (the draw order is
            # what serial equivalence pins, not when they are transformed).
            caller_uniforms = rng.random(chunk)
            callers[row, :chunk] = np.minimum(
                np.searchsorted(
                    self.rates_cum[trial],
                    caller_uniforms * self.rates_total[trial],
                    side="right",
                ),
                n - 1,
            )
        else:
            callers[row, :chunk] = rng.integers(0, n, chunk)
        nbr_uniforms[row, :chunk] = rng.random(chunk)
        if loss_uniforms is not None:
            loss_uniforms[row, :chunk] = rng.random(chunk)
