"""CI smoke for CSR-native generation at large n.

Builds one n = 10^5 graph per (sparse) registered family on the CSR path,
runs a 2-worker shared-segment sweep on one of them, and asserts the
process's peak RSS stayed under a fixed budget — the end-to-end check that
graph construction, the shared-memory family transport, and the per-sweep
result pool all hold their memory shape at scale.

The quadratic families (``complete``, ``barbell``) are excluded: at
n = 10^5 they have >= 10^9 edges and are out of scope for any machine this
smoke targets (the million-vertex bench gate in ``bench_batch.py`` covers
the scale story; this script covers breadth across families).  ``sync_gap``
is skipped as a pure alias of ``star``.

Usage (what the ``large-n-smoke`` CI job runs)::

    PYTHONPATH=src python benchmarks/large_n_smoke.py --size 100000 --rss-budget-mb 3072
"""

from __future__ import annotations

import argparse
import resource
import sys
import time

#: Families with O(n) or O(n log n) edges at a given size.  complete and
#: barbell are quadratic; sync_gap is an alias of star.
SPARSE_FAMILIES = (
    "star",
    "double_star",
    "path",
    "cycle",
    "hypercube",
    "torus",
    "grid",
    "binary_tree",
    "erdos_renyi",
    "random_regular_3",
    "random_regular_4",
    "chung_lu_power_law",
    "preferential_attachment",
    "async_gap",
)

#: preferential_attachment's sequential loop is the one non-vectorised
#: sampler left; it gets a smaller size so the smoke stays fast without
#: dropping the family from coverage entirely.
SLOW_FAMILY_SIZE = 20_000


def peak_rss_mb() -> float:
    """The process's peak RSS in MiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=100_000)
    parser.add_argument("--rss-budget-mb", type=float, default=3072.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--trials", type=int, default=8)
    args = parser.parse_args(argv)

    from repro.analysis import shm
    from repro.analysis.parallel import run_trials_parallel
    from repro.analysis.pool import shutdown_pool
    from repro.graphs.families import get_family

    failures = 0
    for name in SPARSE_FAMILIES:
        size = SLOW_FAMILY_SIZE if name == "preferential_attachment" else args.size
        start = time.perf_counter()
        graph = get_family(name).build(size, seed=20160725)
        seconds = time.perf_counter() - start
        on_csr = graph.csr() is not None
        print(
            f"{name:24s} n={graph.num_vertices:>8d} m={graph.num_edges:>9d} "
            f"build {seconds:6.2f}s csr={'yes' if on_csr else 'NO'} "
            f"rss {peak_rss_mb():7.0f} MiB",
            flush=True,
        )
        if not on_csr:
            print(f"FAIL: {name} left the CSR-native path", flush=True)
            failures += 1
        del graph

    # A 2-worker shared-segment sweep inside one sweep scope: family graph
    # built once in the parent, served to workers over a shared CSR
    # segment, result matrices pooled across the scope's calls.
    with shm.sweep_scope():
        for seed in (1, 2):
            start = time.perf_counter()
            sample = run_trials_parallel(
                "random_regular_3",
                "random",
                "pp",
                trials=args.trials,
                seed=seed,
                size=args.size,
                num_workers=args.workers,
            )
            seconds = time.perf_counter() - start
            print(
                f"shared sweep seed={seed}: {sample.num_trials} trials in "
                f"{seconds:.2f}s, mean {sum(sample.times) / len(sample.times):.1f}",
                flush=True,
            )
    shutdown_pool()

    peak = peak_rss_mb()
    print(f"peak RSS {peak:.0f} MiB (budget {args.rss_budget_mb:.0f} MiB)", flush=True)
    if peak > args.rss_budget_mb:
        print("FAIL: peak RSS over budget", flush=True)
        failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
