"""Graphs designed to separate synchronous from asynchronous push–pull.

The paper frames its two theorems around known "gap" examples:

* the **star** (and its relatives), where the *synchronous* protocol is much
  faster — 2 rounds versus :math:`\\Theta(\\log n)` asynchronous time — which
  shows the additive :math:`\\log n` term of Theorem 1 is necessary;
* constructions of Acan, Collevecchio, Mehrabian & Wormald (PODC 2015) where
  the *asynchronous* protocol is much faster: there are graphs with
  poly-logarithmic asynchronous time but polynomial synchronous time
  (Acan et al. describe one where synchronous push–pull needs
  :math:`\\Theta(n^{1/3})` rounds while asynchronous finishes in
  :math:`O(\\log n)` time), which bounds how far Theorem 2 can be improved.

This module provides executable versions of both directions.

The asynchronous-favouring construction is a **string of stars**: a chain of
``chain_length + 1`` hub vertices, consecutive hubs joined by ``bundle_size``
vertex-disjoint two-edge paths (through degree-2 leaf vertices).  The crucial
asymmetry between the models is the *cost of one hop along the chain*:

* **Synchronous push–pull** needs at least one round per hop no matter how
  large the bundle is — a round is the indivisible unit of progress.  In
  fact each hop costs :math:`\\Theta(1)` rounds (in the first round about
  half of the bundle's leaves pull the rumor from the informed hub; in the
  next round the far hub is pushed to, or pulls, with constant probability),
  so the synchronous time is :math:`\\Theta(\\text{chain length})`.
* **Asynchronous push–pull** crosses a hop in expected time
  :math:`\\Theta(1/\\sqrt{b})` where ``b = bundle_size``: after time ``t``
  about ``b·t/2`` leaves have pulled the rumor (each leaf contacts the
  informed hub at rate 1/2), and those leaves push to the far hub at total
  rate about ``b·t/4``, so the hop completes when
  :math:`\\int_0^t b s/4\\,ds = \\Theta(1)`, i.e. :math:`t = \\Theta(1/\\sqrt b)`.
  The asynchronous time is therefore
  :math:`\\Theta(\\ell/\\sqrt{b} + \\log n)` for chain length :math:`\\ell`.

Choosing :math:`\\ell \\approx n^{1/3}` and :math:`b \\approx n^{2/3}` (so
:math:`\\ell \\cdot b \\approx n`) gives synchronous time
:math:`\\Theta(n^{1/3})` versus asynchronous time :math:`O(\\log n)` — the
same polynomial-versus-logarithmic separation as the Acan et al. example,
which is what experiment E5 measures.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphGenerationError
from repro.graphs import csr_build
from repro.graphs.base import Graph
from repro.graphs.generators import star_graph

__all__ = [
    "string_of_stars_graph",
    "async_favoring_gap_graph",
    "sync_favoring_gap_graph",
    "balanced_gap_suite",
    "expected_sync_rounds_string_of_stars",
    "expected_async_time_string_of_stars",
]


def string_of_stars_graph(chain_length: int, bundle_size: int) -> Graph:
    """A chain of ``chain_length + 1`` hubs, consecutive hubs joined by ``bundle_size`` disjoint 2-paths.

    Layout: hubs are vertices ``0 .. chain_length``; the ``bundle_size``
    intermediate leaves between hub ``i`` and hub ``i+1`` occupy a contiguous
    block after the hubs.  The total vertex count is
    ``(chain_length + 1) + chain_length * bundle_size``.

    See the module docstring for why synchronous push–pull needs
    :math:`\\Theta(\\text{chain\\_length})` rounds on this graph while the
    asynchronous protocol needs only
    :math:`\\Theta(\\text{chain\\_length}/\\sqrt{\\text{bundle\\_size}} + \\log n)`
    time.
    """
    if chain_length < 1:
        raise GraphGenerationError(f"chain_length must be >= 1, got {chain_length}")
    if bundle_size < 1:
        raise GraphGenerationError(f"bundle_size must be >= 1, got {bundle_size}")
    num_hubs = chain_length + 1
    n = num_hubs + chain_length * bundle_size
    # Leaves for link i occupy the contiguous block starting at
    # num_hubs + i * bundle_size; each leaf joins its link's two hubs.
    leaves = np.arange(num_hubs, n, dtype=np.int64)
    links = (leaves - num_hubs) // bundle_size
    heads = np.concatenate([links, leaves])
    tails = np.concatenate([leaves, links + 1])
    indptr, indices = csr_build.csr_from_half_edges(n, heads, tails)
    return Graph.from_csr(
        indptr,
        indices,
        name=f"string_of_stars(len={chain_length}, bundle={bundle_size})",
    )


def async_favoring_gap_graph(n: int) -> Graph:
    """A ~``n``-vertex graph where asynchronous push–pull beats synchronous push–pull.

    Uses the string of stars with chain length :math:`\\ell \\approx n^{1/3}`
    and bundle size :math:`b \\approx n^{2/3}`, so the synchronous time grows
    like :math:`n^{1/3}` while the asynchronous time stays
    :math:`O(\\log n)` — the ratio grows polynomially with ``n``, as in the
    Acan et al. separation that motivates Theorem 2.  The exact vertex count
    is the nearest realisable value; the graph name records the parameters.
    """
    if n < 16:
        raise GraphGenerationError(f"async-favoring gap graph needs n >= 16, got {n}")
    chain_length = max(2, round(n ** (1.0 / 3.0)))
    bundle_size = max(2, (n - (chain_length + 1)) // chain_length)
    graph = string_of_stars_graph(chain_length, bundle_size)
    return graph.with_name(
        f"async_gap(n≈{graph.num_vertices}, chain={chain_length}, bundle={bundle_size})"
    )


def sync_favoring_gap_graph(n: int) -> Graph:
    """A graph where *synchronous* push–pull beats asynchronous: the star.

    The star is the paper's own extremal example for this direction (2
    synchronous rounds versus :math:`\\Theta(\\log n)` asynchronous time), and
    it is tight for the additive term of Theorem 1.  Exposed under this name
    so the gap-graph experiment can iterate over both directions uniformly.
    """
    return star_graph(n).with_name(f"sync_gap_star(n={n})")


def balanced_gap_suite(n: int) -> dict[str, Graph]:
    """The pair of opposite-direction gap graphs at comparable sizes.

    Returns a mapping with keys ``"async_favoring"`` and ``"sync_favoring"``;
    used by experiment E5 and by the gap-graph example script.
    """
    if n < 16:
        raise GraphGenerationError(f"gap suite needs n >= 16, got {n}")
    return {
        "async_favoring": async_favoring_gap_graph(n),
        "sync_favoring": sync_favoring_gap_graph(n),
    }


def expected_sync_rounds_string_of_stars(chain_length: int, bundle_size: int) -> float:
    """Back-of-envelope expectation for synchronous push–pull on the string of stars.

    Each hub-to-hub hop costs :math:`\\Theta(1)` rounds (roughly two: one for
    the bundle's leaves to pull from the informed hub, one for the far hub to
    be pushed to), so the total is roughly ``2 * chain_length`` plus a couple
    of rounds to finish off the remaining leaves.  Used only as a sanity
    anchor in experiments and documentation — the Monte Carlo estimate is
    authoritative.
    """
    return 2.0 * chain_length + 2.0


def expected_async_time_string_of_stars(chain_length: int, bundle_size: int) -> float:
    """Back-of-envelope expectation for asynchronous push–pull on the string of stars.

    Each hop costs about :math:`\\sqrt{8/b}` time units (see the module
    docstring), and once the hubs are informed the remaining leaves finish
    after a coupon-collector-style :math:`\\Theta(\\log)` tail.
    """
    total_leaves = chain_length * bundle_size
    per_hop = math.sqrt(8.0 / bundle_size)
    return chain_length * per_hop + math.log(max(total_leaves, 2))
