"""Shared-memory transport for the zero-copy parallel execution layer.

:func:`repro.analysis.parallel.run_trials_parallel` used to pay two
serialization taxes per call: the graph was pickled into every chunk spec,
and every worker pickled its whole :class:`SpreadingTimeSample` back through
the executor.  This module removes both with
:mod:`multiprocessing.shared_memory`:

* **Result matrices** — the parent owns a ``(trials,)`` float64 spreading-
  time vector (and, when coverage fractions are requested, a
  ``(trials, len(fractions))`` matrix) in a shared segment; each worker
  writes its chunk's rows directly at its offset, so "merging" the chunks
  is a single array view in the parent instead of W pickled samples.
* **Graph CSR arrays** — :func:`share_graph` places a graph's
  ``FlatAdjacency`` arrays (``indptr`` + ``indices``) into one shared
  segment per graph, cached parent-side by graph identity so repeated calls
  on the same graph (e.g. the two protocols of a Theorem-1 grid point)
  reuse the segment.  Workers :func:`attach_graph` by name, rebuild the
  :class:`~repro.graphs.base.Graph` once with the trusted
  :meth:`~repro.graphs.base.Graph.from_csr` constructor, and pre-seed the
  flat-adjacency cache with zero-copy views into the segment; a worker-side
  name-keyed cache makes every later chunk on the same graph free.

Lifecycle: segments owned by a call (result matrices) are unlinked in a
``finally`` as soon as the sample is built — unless a **sweep scope**
(:func:`sweep_scope`) is active, in which case the result segments persist
in a per-sweep pool keyed by role (times / fractions / coverage) and are
reused by every call of the sweep (capacity grows monotonically; a segment
is only replaced when a call needs more bytes than the pooled one holds),
then unlinked together when the scope exits.  Graph segments are unlinked
on LRU eviction, at :func:`release_shared_graphs`, and by the same
``atexit`` hook that tears down the persistent pool.  Workers attach without
registering with the :mod:`multiprocessing.resource_tracker` (the parent
owns every segment), so worker exits never spuriously unlink live segments
and interpreter shutdown stays free of "leaked shared_memory" warnings.
"""

from __future__ import annotations

import threading
import weakref
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.core.flatgraph import (
    FlatAdjacency,
    cache_adjacency,
    flat_adjacency,
    uncache_adjacency,
)
from repro.graphs.base import Graph
from repro.telemetry.metrics import current_metrics

__all__ = [
    "create_array",
    "attach_array",
    "share_graph",
    "attach_graph",
    "release_shared_graphs",
    "sweep_scope",
    "active_sweep_pool",
    "result_array",
]

#: Parent-side bound on simultaneously shared graph segments (a Theorem-1
#: sweep touches one graph per grid point; keeping a handful alive covers
#: the repeated-protocol reuse without accumulating segments).
_GRAPH_SEGMENT_LIMIT = 8

#: Worker-side bound on cached (segment, rebuilt graph) attachments.
_WORKER_CACHE_LIMIT = 8


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    On POSIX, Python < 3.13 registers *attaching* processes with the
    resource tracker too (bpo-39959).  With fork-started workers the
    tracker process is shared with the parent, so the spurious worker-side
    registrations fight the parent's own register/unregister bookkeeping
    (KeyError noise in the tracker, or segments "leaked" at shutdown that
    the parent already unlinked).  Python 3.13+ exposes ``track=False`` for
    exactly this; on older interpreters the registration is suppressed for
    the duration of the attach — the parent is the sole owner of every
    segment, so attachers must never register.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _register_ignoring_shm(resource_name, rtype):
            if rtype != "shared_memory":
                original_register(resource_name, rtype)

        resource_tracker.register = _register_ignoring_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def create_array(shape: tuple[int, ...], dtype=np.float64) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Create an owned shared segment holding one ndarray; caller unlinks."""
    nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
    metrics = current_metrics()
    if metrics is not None:
        metrics.count("shm.segments")
        metrics.count("shm.segment_bytes", nbytes)
    return segment, array


def attach_array(
    name: str, shape: tuple[int, ...], dtype=np.float64
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach (untracked) to a segment created by :func:`create_array`."""
    segment = _attach_untracked(name)
    array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
    return segment, array


# --------------------------------------------------------------------- #
# Per-sweep result-segment pool
# --------------------------------------------------------------------- #


class _SweepSegmentPool:
    """Role-keyed shared result segments reused across a sweep's calls.

    Each role (``"times"``, ``"fractions"``, ``"coverage"``) holds at most
    one segment; a request reuses it whenever its capacity covers the
    requested array (``np.ndarray(shape, buffer=...)`` only needs the buffer
    to be at least ``nbytes`` — every call overwrites all the rows it
    reads, so stale bytes from a previous, larger call are never observed).
    Undersized segments are unlinked and replaced.  Pools are thread-local
    (one sweep per thread), so no locking is needed.
    """

    __slots__ = ("_segments",)

    def __init__(self) -> None:
        # role -> (segment, capacity in bytes)
        self._segments: dict[str, tuple[shared_memory.SharedMemory, int]] = {}

    def array(
        self, role: str, shape: tuple[int, ...], dtype=np.float64
    ) -> tuple[shared_memory.SharedMemory, np.ndarray]:
        nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        cached = self._segments.get(role)
        if cached is not None:
            segment, capacity = cached
            if capacity >= nbytes:
                metrics = current_metrics()
                if metrics is not None:
                    metrics.count("shm.sweep_segment_reuses")
                return segment, np.ndarray(shape, dtype=dtype, buffer=segment.buf)
            del self._segments[role]
            _unlink(segment)
        segment, array = create_array(shape, dtype)
        self._segments[role] = (segment, nbytes)
        return segment, array

    def release(self) -> None:
        segments, self._segments = self._segments, {}
        for segment, _capacity in segments.values():
            _unlink(segment)


_SWEEP_STATE = threading.local()


class sweep_scope:
    """Context manager pooling shared result segments for a whole sweep.

    Inside the scope, :func:`result_array` hands out pooled segments that
    persist across :func:`repro.analysis.parallel.run_trials_parallel`
    calls — a Theorem-1 sweep allocates its times matrix once per sweep
    instead of once per (size, protocol) cell.  Re-entrant: nested scopes
    join the outermost pool, which owns the segments and unlinks them all
    on exit.
    """

    def __init__(self) -> None:
        self._owned: Optional[_SweepSegmentPool] = None

    def __enter__(self) -> _SweepSegmentPool:
        pool = getattr(_SWEEP_STATE, "pool", None)
        if pool is None:
            pool = _SweepSegmentPool()
            _SWEEP_STATE.pool = pool
            self._owned = pool
        return pool

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._owned is not None:
            _SWEEP_STATE.pool = None
            self._owned.release()
            self._owned = None


def active_sweep_pool() -> Optional[_SweepSegmentPool]:
    """The current thread's sweep pool, or ``None`` outside any scope."""
    return getattr(_SWEEP_STATE, "pool", None)


def result_array(
    role: str, shape: tuple[int, ...], dtype=np.float64
) -> tuple[shared_memory.SharedMemory, np.ndarray, bool]:
    """A shared result array, pooled per sweep when a scope is active.

    Returns ``(segment, array, pooled)``: with ``pooled=False`` the caller
    owns the segment and must unlink it when done (exactly
    :func:`create_array` semantics); with ``pooled=True`` the sweep scope
    owns it and the caller must *not* unlink.
    """
    pool = active_sweep_pool()
    if pool is None:
        segment, array = create_array(shape, dtype)
        return segment, array, False
    segment, array = pool.array(role, shape, dtype)
    return segment, array, True


# --------------------------------------------------------------------- #
# Parent side: per-graph CSR segments
# --------------------------------------------------------------------- #
# graph id -> (weakref to graph, segment); insertion order == LRU order.
# The lock covers every registry mutation: concurrent run_trials_parallel
# calls from different threads share the parent-side cache.  Segment names
# in _PINNED belong to calls whose chunks are still in flight; eviction
# skips them so a concurrent sweep registering many new graphs can never
# unlink a segment another thread's queued workers are about to attach.
_SHARED_GRAPHS: dict[int, tuple[weakref.ref, shared_memory.SharedMemory]] = {}
_PINNED: dict[str, int] = {}
#: Segment names a full release wanted to unlink but found pinned; the
#: final unpin performs the deferred unlink.
_DEFERRED_UNLINK: set[str] = set()
_REGISTRY_LOCK = threading.Lock()


def share_graph(graph: Graph, *, pin: bool = False) -> str:
    """Place ``graph``'s CSR arrays in shared memory (cached) and return the name.

    Layout: ``int64 [n, nnz, indptr[0..n], indices[0..nnz-1]]``.  The entry
    is cached by graph identity, so sweeps that run several protocols on one
    graph write the segment once.  With ``pin=True`` the returned segment is
    pinned against eviction *before* the registry lock is released — the
    caller owns one :func:`unpin_segment` for it — so no concurrent
    registration can unlink it between return and first use.
    """
    key = id(graph)
    with _REGISTRY_LOCK:
        cached = _SHARED_GRAPHS.get(key)
        if cached is not None:
            graph_ref, segment = cached
            if graph_ref() is graph:
                del _SHARED_GRAPHS[key]
                _SHARED_GRAPHS[key] = (graph_ref, segment)  # refresh recency
                if pin:
                    _PINNED[segment.name] = _PINNED.get(segment.name, 0) + 1
                return segment.name
            _unlink(segment)
            del _SHARED_GRAPHS[key]

    flat = flat_adjacency(graph)
    n = flat.num_vertices
    nnz = int(flat.indices.size)
    segment, header = create_array((2 + (n + 1) + nnz,), dtype=np.int64)
    header[0] = n
    header[1] = nnz
    header[2 : 3 + n] = flat.indptr
    header[3 + n :] = flat.indices
    del header

    with _REGISTRY_LOCK:
        raced = _SHARED_GRAPHS.get(key)
        if raced is not None and raced[0]() is graph:
            # Another thread shared the same graph while the lock was
            # released for the segment write; keep theirs, unlink ours
            # (leaving ours in limbo would leak it past every teardown).
            _unlink(segment)
            segment = raced[1]
        else:
            _evict_graph_segments(_GRAPH_SEGMENT_LIMIT - 1)
            _SHARED_GRAPHS[key] = (weakref.ref(graph), segment)
        if pin:
            _PINNED[segment.name] = _PINNED.get(segment.name, 0) + 1
        return segment.name


def pin_segment(name: str) -> None:
    """Protect a graph segment from LRU eviction while a call is in flight."""
    with _REGISTRY_LOCK:
        _PINNED[name] = _PINNED.get(name, 0) + 1


def unpin_segment(name: str) -> None:
    """Release a :func:`pin_segment` / ``share_graph(pin=True)`` pin.

    The last unpin performs any unlink a full release deferred while the
    segment was in flight, so :func:`release_shared_graphs` stays
    effectively idempotent even around concurrent calls.
    """
    with _REGISTRY_LOCK:
        count = _PINNED.get(name, 0) - 1
        if count > 0:
            _PINNED[name] = count
            return
        _PINNED.pop(name, None)
        if name in _DEFERRED_UNLINK:
            _DEFERRED_UNLINK.discard(name)
            for key, (_, segment) in list(_SHARED_GRAPHS.items()):
                if segment.name == name:
                    _unlink(_SHARED_GRAPHS.pop(key)[1])
                    break


def _evict_graph_segments(limit: int) -> None:
    """Unlink dead / least-recently-used graph segments down to ``limit``.

    Callers hold ``_REGISTRY_LOCK``.  Pinned segments (in-flight calls)
    are never evicted, even if that temporarily overflows the limit; a
    full release (``limit == 0``) marks them for unlink at their final
    unpin instead.
    """
    dead = [k for k, (ref, _) in _SHARED_GRAPHS.items() if ref() is None]
    for k in dead:
        if _SHARED_GRAPHS[k][1].name not in _PINNED:
            _unlink(_SHARED_GRAPHS.pop(k)[1])
    evictable = [
        k for k, (_, segment) in _SHARED_GRAPHS.items() if segment.name not in _PINNED
    ]
    overflow = len(_SHARED_GRAPHS) - limit
    for k in evictable[: max(0, overflow)]:
        _unlink(_SHARED_GRAPHS.pop(k)[1])
    if limit == 0:
        for _, segment in _SHARED_GRAPHS.values():
            _DEFERRED_UNLINK.add(segment.name)


def _unlink(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    except BufferError:
        # Live ndarray views keep the mapping alive; unlinking the name is
        # still safe and the memory is released once the views die.
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def release_shared_graphs() -> None:
    """Unlink every parent-owned graph segment (idempotent).

    Called by :func:`repro.analysis.pool.shutdown_pool` and its ``atexit``
    hook, and usable directly by tests asserting segment hygiene.
    """
    with _REGISTRY_LOCK:
        _evict_graph_segments(0)


# --------------------------------------------------------------------- #
# Worker side: attach + rebuild cache
# --------------------------------------------------------------------- #
# segment name -> (segment, rebuilt Graph); insertion order == LRU order.
_ATTACHED_GRAPHS: dict[str, tuple[shared_memory.SharedMemory, Graph]] = {}


def attach_graph(name: str, graph_name: Optional[str] = None) -> Graph:
    """Rebuild (cached) the :class:`Graph` stored in segment ``name``.

    The reconstructed graph's flat-adjacency cache entry points at zero-copy
    views into the shared segment, so the batch kernels' hottest arrays are
    never copied into the worker.
    """
    cached = _ATTACHED_GRAPHS.get(name)
    if cached is not None:
        del _ATTACHED_GRAPHS[name]
        _ATTACHED_GRAPHS[name] = cached  # refresh recency
        return cached[1]
    segment = _attach_untracked(name)
    header = np.ndarray((2,), dtype=np.int64, buffer=segment.buf)
    n, nnz = int(header[0]), int(header[1])
    arrays = np.ndarray((2 + (n + 1) + nnz,), dtype=np.int64, buffer=segment.buf)
    indptr = arrays[2 : 3 + n]
    indices = arrays[3 + n :]
    indptr.flags.writeable = False
    indices.flags.writeable = False
    graph = Graph.from_csr(indptr, indices, name=graph_name)
    cache_adjacency(graph, FlatAdjacency.from_arrays(indptr, indices))
    while len(_ATTACHED_GRAPHS) >= _WORKER_CACHE_LIMIT:
        old_name = next(iter(_ATTACHED_GRAPHS))
        old_segment, old_graph = _ATTACHED_GRAPHS.pop(old_name)
        # Drop the flat-adjacency cache entry first: it holds the zero-copy
        # views into the segment, and close() would raise BufferError (and
        # leak the mapping) while any view is alive.
        uncache_adjacency(old_graph)
        del old_graph
        try:
            old_segment.close()
        except BufferError:
            pass  # a chunk still mid-run on this graph keeps its own views
    _ATTACHED_GRAPHS[name] = (segment, graph)
    return graph
