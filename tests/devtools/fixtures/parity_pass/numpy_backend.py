"""Reference half of the must-pass PAR001 pair."""

BACKEND_NAME = "numpy"


def warmup():
    pass


def sync_round_step(adjacency, informed, uniforms, ws=None):
    return informed
