"""Unit tests for the deterministic graph generators."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphGenerationError
from repro.graphs import generators


class TestStarAndDoubleStar:
    def test_star_structure(self):
        graph = generators.star_graph(10)
        assert graph.num_vertices == 10
        assert graph.num_edges == 9
        assert graph.degree(0) == 9
        assert all(graph.degree(v) == 1 for v in range(1, 10))
        assert graph.is_connected()

    def test_star_minimum_size(self):
        with pytest.raises(GraphGenerationError):
            generators.star_graph(1)

    def test_double_star_structure(self):
        graph = generators.double_star_graph(3)
        assert graph.num_vertices == 8
        assert graph.degree(0) == 4  # center 0: other center + 3 leaves
        assert graph.degree(1) == 4
        assert graph.is_connected()
        assert graph.has_edge(0, 1)

    def test_double_star_rejects_zero_leaves(self):
        with pytest.raises(GraphGenerationError):
            generators.double_star_graph(0)


class TestCompleteFamilies:
    def test_complete_graph(self):
        graph = generators.complete_graph(6)
        assert graph.num_edges == 15
        assert graph.is_regular()
        assert graph.degree(3) == 5

    def test_complete_graph_single_vertex(self):
        graph = generators.complete_graph(1)
        assert graph.num_vertices == 1
        assert graph.num_edges == 0

    def test_complete_bipartite(self):
        graph = generators.complete_bipartite_graph(3, 4)
        assert graph.num_vertices == 7
        assert graph.num_edges == 12
        assert graph.degree(0) == 4
        assert graph.degree(6) == 3
        assert not graph.has_edge(0, 1)  # same side

    def test_complete_bipartite_rejects_empty_side(self):
        with pytest.raises(GraphGenerationError):
            generators.complete_bipartite_graph(0, 3)


class TestPathsCyclesGrids:
    def test_path(self):
        graph = generators.path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2
        assert graph.eccentricity(0) == 4

    def test_cycle_is_two_regular(self):
        graph = generators.cycle_graph(7)
        assert graph.num_edges == 7
        assert graph.is_regular()
        assert graph.degree(0) == 2

    def test_cycle_minimum_size(self):
        with pytest.raises(GraphGenerationError):
            generators.cycle_graph(2)

    def test_grid_structure(self):
        graph = generators.grid_graph(3, 4)
        assert graph.num_vertices == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert graph.degree(0) == 2  # corner
        assert graph.degree(5) == 4  # interior
        assert graph.is_connected()

    def test_torus_is_four_regular(self):
        graph = generators.torus_graph(4, 5)
        assert graph.num_vertices == 20
        assert graph.is_regular()
        assert graph.degree(0) == 4
        assert graph.num_edges == 40

    def test_torus_rejects_small_dimensions(self):
        with pytest.raises(GraphGenerationError):
            generators.torus_graph(2, 5)


class TestHypercubeAndTrees:
    @pytest.mark.parametrize("dimension", [1, 2, 3, 5])
    def test_hypercube_regularity(self, dimension):
        graph = generators.hypercube_graph(dimension)
        assert graph.num_vertices == 2**dimension
        assert graph.is_regular()
        assert graph.degree(0) == dimension
        assert graph.num_edges == dimension * 2 ** (dimension - 1)
        assert graph.is_connected()

    def test_hypercube_adjacency_is_bit_flip(self):
        graph = generators.hypercube_graph(3)
        for u, v in graph.edges:
            assert bin(u ^ v).count("1") == 1

    def test_hypercube_rejects_huge_dimension(self):
        with pytest.raises(GraphGenerationError):
            generators.hypercube_graph(30)

    def test_binary_tree_sizes(self):
        graph = generators.binary_tree_graph(3)
        assert graph.num_vertices == 15
        assert graph.num_edges == 14
        assert graph.degree(0) == 2
        assert graph.degree(14) == 1  # a leaf
        assert graph.is_connected()

    def test_binary_tree_depth_zero(self):
        graph = generators.binary_tree_graph(0)
        assert graph.num_vertices == 1
        assert graph.num_edges == 0


class TestDenseSparseHybrids:
    def test_barbell_structure(self):
        graph = generators.barbell_graph(4)
        assert graph.num_vertices == 8
        # Two K4's (6 edges each) plus one bridge edge.
        assert graph.num_edges == 13
        assert graph.is_connected()

    def test_barbell_with_bridge_path(self):
        graph = generators.barbell_graph(3, bridge_length=2)
        assert graph.num_vertices == 8
        assert graph.is_connected()
        assert graph.degree(3) == 2  # bridge vertex

    def test_lollipop(self):
        graph = generators.lollipop_graph(4, 3)
        assert graph.num_vertices == 7
        assert graph.is_connected()
        assert graph.degree(6) == 1  # end of the path

    def test_clique_chain(self):
        graph = generators.clique_chain_graph(3, 4)
        assert graph.num_vertices == 12
        assert graph.is_connected()
        # Each clique contributes C(4,2)=6 edges, plus 2 connector edges.
        assert graph.num_edges == 3 * 6 + 2

    def test_clique_chain_single_clique(self):
        graph = generators.clique_chain_graph(1, 5)
        assert graph.num_edges == 10

    @pytest.mark.parametrize(
        "factory, args",
        [
            (generators.barbell_graph, (1,)),
            (generators.lollipop_graph, (1, 3)),
            (generators.lollipop_graph, (3, 0)),
            (generators.clique_chain_graph, (0, 3)),
            (generators.grid_graph, (0, 3)),
            (generators.binary_tree_graph, (-1,)),
        ],
    )
    def test_invalid_parameters_rejected(self, factory, args):
        with pytest.raises(GraphGenerationError):
            factory(*args)


class TestDiameters:
    """Sanity checks tying generators to known diameters (used by bounds)."""

    def test_star_diameter_two(self):
        assert generators.star_graph(20).eccentricity(1) == 2

    def test_hypercube_diameter_is_dimension(self):
        graph = generators.hypercube_graph(4)
        assert graph.eccentricity(0) == 4

    def test_cycle_diameter(self):
        graph = generators.cycle_graph(10)
        assert graph.eccentricity(0) == 5

    def test_path_diameter(self):
        assert generators.path_graph(9).eccentricity(0) == 8
