"""Unit tests for random graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphGenerationError
from repro.graphs import random_graphs


class TestErdosRenyi:
    def test_reproducible_with_seed(self):
        a = random_graphs.erdos_renyi_graph(30, 0.2, seed=42)
        b = random_graphs.erdos_renyi_graph(30, 0.2, seed=42)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = random_graphs.erdos_renyi_graph(40, 0.3, seed=1)
        b = random_graphs.erdos_renyi_graph(40, 0.3, seed=2)
        assert a.edges != b.edges

    def test_extreme_probabilities(self):
        empty = random_graphs.erdos_renyi_graph(10, 0.0, seed=0)
        full = random_graphs.erdos_renyi_graph(10, 1.0, seed=0)
        assert empty.num_edges == 0
        assert full.num_edges == 45

    def test_rejects_bad_probability(self):
        with pytest.raises(GraphGenerationError):
            random_graphs.erdos_renyi_graph(10, 1.5)

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.1
        graph = random_graphs.erdos_renyi_graph(n, p, seed=7)
        expected = p * n * (n - 1) / 2
        assert abs(graph.num_edges - expected) < 5 * np.sqrt(expected)

    def test_connected_variant_is_connected(self):
        for seed in range(5):
            graph = random_graphs.connected_erdos_renyi_graph(60, seed=seed)
            assert graph.is_connected()
            assert graph.num_vertices == 60

    def test_connected_variant_patches_sparse_graphs(self):
        # Probability far below the connectivity threshold forces patching.
        graph = random_graphs.connected_erdos_renyi_graph(50, p=0.001, seed=3, max_attempts=2)
        assert graph.is_connected()


class TestRandomRegular:
    @pytest.mark.parametrize("degree", [2, 3, 4])
    def test_regularity_and_connectivity(self, degree):
        graph = random_graphs.random_regular_graph(30, degree, seed=11)
        assert graph.is_regular()
        assert graph.degree(0) == degree
        assert graph.is_connected()

    def test_rejects_odd_degree_sum(self):
        with pytest.raises(GraphGenerationError):
            random_graphs.random_regular_graph(7, 3)

    def test_rejects_degree_too_large(self):
        with pytest.raises(GraphGenerationError):
            random_graphs.random_regular_graph(5, 5)

    def test_reproducible(self):
        a = random_graphs.random_regular_graph(24, 3, seed=5)
        b = random_graphs.random_regular_graph(24, 3, seed=5)
        assert a.edges == b.edges

    def test_degree_one_infeasible_beyond_two_vertices(self):
        # Regression: degree == 1 used to skip the connectivity check and
        # hand back a perfect matching, disconnected for every n > 2.
        with pytest.raises(GraphGenerationError):
            random_graphs.random_regular_graph(10, 1, seed=0)

    def test_degree_one_on_two_vertices(self):
        graph = random_graphs.random_regular_graph(2, 1, seed=0)
        assert graph.edges == ((0, 1),)

    def test_degree_two_is_a_single_cycle(self):
        # Regression: the nx fallback used to accept any degree <= 2 sample
        # (possibly a union of disjoint cycles) without checking.
        for seed in range(6):
            graph = random_graphs.random_regular_graph(20, 2, seed=seed)
            assert graph.is_connected()


class TestChungLu:
    def test_requires_positive_weights(self):
        with pytest.raises(GraphGenerationError):
            random_graphs.chung_lu_graph([1.0, -2.0, 3.0])

    def test_degrees_track_weights(self):
        n = 300
        weights = np.full(n, 4.0)
        weights[0] = 60.0
        graph = random_graphs.chung_lu_graph(weights, seed=13)
        degrees = np.asarray(graph.degrees)
        # The heavy vertex should have far more neighbors than the median.
        assert degrees[0] > 4 * np.median(degrees[1:])

    def test_power_law_graph_is_connected_and_skewed(self):
        graph = random_graphs.power_law_chung_lu_graph(300, exponent=2.5, seed=17)
        assert graph.is_connected()
        degrees = np.asarray(graph.degrees)
        assert degrees.max() > 5 * np.median(degrees)

    def test_power_law_rejects_small_exponent(self):
        with pytest.raises(GraphGenerationError):
            random_graphs.power_law_chung_lu_graph(100, exponent=1.9)


class TestPreferentialAttachment:
    def test_structure(self):
        graph = random_graphs.preferential_attachment_graph(200, edges_per_vertex=2, seed=19)
        assert graph.num_vertices == 200
        assert graph.is_connected()
        # Every non-seed vertex attaches with exactly m edges, so m*(n-m-1)
        # new edges plus the seed clique.
        assert graph.num_edges == 3 + 2 * (200 - 3)
        assert graph.min_degree() >= 2

    def test_hubs_emerge(self):
        graph = random_graphs.preferential_attachment_graph(400, edges_per_vertex=2, seed=23)
        degrees = np.asarray(graph.degrees)
        assert degrees.max() > 6 * np.median(degrees)

    def test_rejects_bad_parameters(self):
        with pytest.raises(GraphGenerationError):
            random_graphs.preferential_attachment_graph(5, edges_per_vertex=5)
        with pytest.raises(GraphGenerationError):
            random_graphs.preferential_attachment_graph(10, edges_per_vertex=0)


class TestGeometric:
    def test_connected_by_construction(self):
        graph = random_graphs.random_geometric_graph(120, seed=29)
        assert graph.is_connected()
        assert graph.num_vertices == 120

    def test_radius_controls_density(self):
        sparse = random_graphs.random_geometric_graph(100, radius=0.05, seed=31)
        dense = random_graphs.random_geometric_graph(100, radius=0.4, seed=31)
        assert dense.num_edges > sparse.num_edges


class TestThresholdHelper:
    def test_threshold_value(self):
        assert random_graphs.connectivity_threshold_probability(2) <= 1.0
        p = random_graphs.connectivity_threshold_probability(1000)
        assert 0 < p < 0.05

    def test_threshold_clamped(self):
        assert random_graphs.connectivity_threshold_probability(3, factor=100.0) == 1.0
