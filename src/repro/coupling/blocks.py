"""The Section 5 block decomposition: mapping asynchronous steps to synchronous rounds.

The lower-bound proof (Theorem 11) couples the asynchronous process ``pp-a``
with the synchronous process ``pp`` by cutting the sequence of asynchronous
steps ``S_1, S_2, ...`` (each step ``S_i = (x_i, y_i)`` meaning "``x_i``
contacts ``y_i``") into **blocks**, and mapping every block to one or more
synchronous rounds such that the informed set of ``pp-a`` after each block is
contained in the informed set of ``pp`` after the corresponding rounds
(Lemma 13).  The expected number of rounds produced for ``t`` steps is
``O(t / sqrt(n) + sqrt(n))`` (Lemma 14), which yields the
``E[T(pp)] = O(sqrt(n) · E[T(pp-a)])`` bound.

Block rules (for a normal block starting at step ``i``; ``j`` is the first
index at which the block ends):

1. ``j - i = sqrt(n)`` — the block reached the maximum size;
2. ``S_j`` is **left-incompatible** with the block — ``x_j`` already appears
   (as either endpoint) in one of the block's steps;
3. ``S_j`` is **right-incompatible** with the block — ``y_j`` became
   informed during the block's steps.

If a block ends because of (3), the next block is a **special block**
containing a single step, which may map to several synchronous rounds; in
the full coupling the special step is re-drawn from rounds sampled afresh.

This module provides two levels of machinery:

* :func:`partition_steps_into_blocks` — a *descriptive* decomposition of any
  recorded asynchronous step sequence into blocks, with the end-condition of
  every block, used for the Lemma 14 statistics (how many blocks of each
  kind occur, how large they are);
* :func:`run_block_coupling` — the *constructive* coupling: it generates the
  asynchronous step sequence, builds the corresponding synchronous rounds
  (sampling fresh full rounds for special blocks until a right-incompatible
  pair appears, exactly as in the paper), applies them to a synchronous
  informed set, and verifies the Lemma 13 subset invariant block by block.

  One simplification relative to the paper: when a freshly sampled round
  contains several right-incompatible pairs, we pick the replacement pair
  for the asynchronous side uniformly among them instead of via the
  distribution ``μ_{A|D}`` whose existence the paper establishes in the full
  version.  This choice does not affect the synchronous side (the rounds are
  used verbatim), so the Lemma 13 subset check and the Lemma 14 round counts
  are unaffected; only the exact law of the replaced asynchronous step is
  approximated.  The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import CouplingError, ProtocolError
from repro.graphs.base import Graph
from repro.randomness.rng import SeedLike, as_generator

__all__ = [
    "Step",
    "Block",
    "BlockStatistics",
    "BlockCouplingRun",
    "is_left_incompatible",
    "is_right_incompatible",
    "simulate_step_sequence",
    "partition_steps_into_blocks",
    "run_block_coupling",
]

#: One asynchronous step: (caller, callee).
Step = tuple[int, int]


# ---------------------------------------------------------------------- #
# Incompatibility predicates (Definitions preceding Remark 12)
# ---------------------------------------------------------------------- #
def is_left_incompatible(step: Step, history: Sequence[Step]) -> bool:
    """Whether ``step`` is left-incompatible with the steps in ``history``.

    ``(x, y)`` is left-incompatible with ``H`` when ``x`` already appears in
    ``H`` as either a caller or a callee.
    """
    x, _y = step
    for u, v in history:
        if x == u or x == v:
            return True
    return False


def _informed_after(history: Sequence[Step], informed: set[int]) -> set[int]:
    """The informed set after executing ``history`` sequentially (push–pull)."""
    current = set(informed)
    for u, v in history:
        if (u in current) != (v in current):
            current.add(u)
            current.add(v)
    return current


def is_right_incompatible(step: Step, history: Sequence[Step], informed: set[int]) -> bool:
    """Whether ``step`` is right-incompatible with ``history`` and informed set ``informed``.

    ``(x, y)`` is right-incompatible when it is *not* left-incompatible and
    ``y`` becomes informed during the sequential execution of ``history``
    starting from ``informed`` (in particular ``y`` was not informed before).
    """
    if is_left_incompatible(step, history):
        return False
    _x, y = step
    if y in informed:
        return False
    return y in _informed_after(history, informed)


# ---------------------------------------------------------------------- #
# Step-sequence simulation and descriptive block partition
# ---------------------------------------------------------------------- #
def simulate_step_sequence(
    graph: Graph,
    source: int,
    *,
    seed: SeedLike = None,
    max_steps: Optional[int] = None,
) -> list[Step]:
    """Generate the asynchronous step sequence until every vertex is informed.

    Each step picks a uniformly random vertex and a uniformly random neighbor
    of it (the global-clock view of ``pp-a``); the sequence stops as soon as
    the push–pull exchange has informed every vertex.  Only the pairs are
    returned — the continuous times are irrelevant for the block coupling
    (the expected time between steps is exactly ``1/n``).
    """
    if not (0 <= source < graph.num_vertices):
        raise ProtocolError(f"source {source} is not a vertex of {graph.name}")
    if graph.num_vertices > 1 and not graph.is_connected():
        raise ProtocolError(f"{graph.name} is not connected")
    n = graph.num_vertices
    rng = as_generator(seed)
    adjacency = graph.adjacency
    degrees = graph.degrees
    budget = int(40 * n * n * max(1.0, math.log(max(n, 2))) + 20_000) if max_steps is None else int(max_steps)

    informed = [False] * n
    informed[source] = True
    informed_count = 1
    steps: list[Step] = []
    batch = 4096
    while informed_count < n and len(steps) < budget:
        callers = rng.integers(0, n, batch).tolist()
        uniforms = rng.random(batch).tolist()
        for caller, u in zip(callers, uniforms):
            degree = degrees[caller]
            callee = adjacency[caller][min(int(u * degree), degree - 1)]
            steps.append((caller, callee))
            if informed[caller] != informed[callee]:
                informed[caller] = True
                informed[callee] = True
                informed_count += 1
                if informed_count == n:
                    break
            if len(steps) >= budget:
                break
    if informed_count < n:
        raise CouplingError(
            f"step sequence on {graph.name} did not inform every vertex within {budget} steps"
        )
    return steps


@dataclass(frozen=True)
class Block:
    """One block of the decomposition.

    Attributes:
        start: index (into the step sequence) of the block's first step.
        end: index one past the block's last step.
        kind: ``"normal"`` or ``"special"``.
        end_condition: why the block ended — ``"full"`` (reached
            ``sqrt(n)`` steps), ``"left"`` (next step left-incompatible),
            ``"right"`` (next step right-incompatible), ``"exhausted"``
            (the step sequence ended), or ``"special"`` for special blocks.
        rounds: how many synchronous rounds the block maps to (1 for normal
            blocks; for special blocks only known when the constructive
            coupling was run, otherwise 0).
    """

    start: int
    end: int
    kind: str
    end_condition: str
    rounds: int = 1

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class BlockStatistics:
    """Aggregate statistics of a block decomposition (the Lemma 14 quantities).

    ``rho_full``, ``rho_left``, ``rho_right`` count the synchronous rounds
    attributed to normal blocks that ended because they were full / hit a
    left-incompatible step / hit a right-incompatible step; ``rho_special``
    counts the rounds of special blocks.  ``rho_total`` is their sum — the
    quantity the paper calls ``ρ_τ``.
    """

    num_steps: int
    block_size_limit: int
    num_normal_blocks: int
    num_special_blocks: int
    rho_full: int
    rho_left: int
    rho_right: int
    rho_special: int

    @property
    def rho_total(self) -> int:
        return self.rho_full + self.rho_left + self.rho_right + self.rho_special

    def lemma14_bound(self) -> float:
        """The (order-of-magnitude) bound ``num_steps / sqrt(n) + 2 sqrt(n)`` from Lemma 14.

        The constants follow the proof: at most ``t / sqrt(n)`` full blocks,
        expected ``2 t / sqrt(n)`` left-ended blocks, and expected
        ``2 sqrt(n)`` special-block rounds (each also charged one extra round
        for the preceding right-ended block).
        """
        root = self.block_size_limit
        return 3.0 * self.num_steps / root + 3.0 * (2.0 * root) + 1.0


def partition_steps_into_blocks(
    graph: Graph,
    source: int,
    steps: Sequence[Step],
    *,
    block_size_limit: Optional[int] = None,
) -> tuple[list[Block], BlockStatistics]:
    """Partition a recorded step sequence into blocks following the paper's rules.

    This is the *descriptive* decomposition: the steps are taken as given
    (they come from an actual ``pp-a`` run), each normal block maps to one
    synchronous round, and each special block is counted as one round here
    (the constructive coupling in :func:`run_block_coupling` samples the true
    geometric number of rounds for special blocks).

    Returns:
        ``(blocks, statistics)``.
    """
    n = graph.num_vertices
    limit = int(math.isqrt(n)) if block_size_limit is None else int(block_size_limit)
    limit = max(1, limit)

    informed: set[int] = {source}
    blocks: list[Block] = []
    rho_full = rho_left = rho_right = rho_special = 0
    num_normal = num_special = 0

    index = 0
    total = len(steps)
    next_is_special = False
    while index < total:
        if next_is_special:
            # Special block: a single step, one round in this descriptive count.
            blocks.append(Block(start=index, end=index + 1, kind="special", end_condition="special", rounds=1))
            num_special += 1
            rho_special += 1
            informed = _informed_after(steps[index : index + 1], informed)
            index += 1
            next_is_special = False
            continue
        start = index
        history: list[Step] = []
        end_condition = "exhausted"
        while index < total:
            if len(history) == limit:
                end_condition = "full"
                break
            step = steps[index]
            if is_left_incompatible(step, history):
                end_condition = "left"
                break
            if is_right_incompatible(step, history, informed):
                end_condition = "right"
                break
            history.append(step)
            index += 1
        blocks.append(
            Block(start=start, end=index, kind="normal", end_condition=end_condition, rounds=1)
        )
        num_normal += 1
        if end_condition == "full":
            rho_full += 1
        elif end_condition == "left":
            rho_left += 1
        elif end_condition == "right":
            rho_right += 1
            next_is_special = True
        informed = _informed_after(history, informed)

    statistics = BlockStatistics(
        num_steps=total,
        block_size_limit=limit,
        num_normal_blocks=num_normal,
        num_special_blocks=num_special,
        rho_full=rho_full,
        rho_left=rho_left,
        rho_right=rho_right,
        rho_special=rho_special,
    )
    return blocks, statistics


# ---------------------------------------------------------------------- #
# Constructive coupling (Lemma 13 / Lemma 14 verification)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class BlockCouplingRun:
    """Outcome of one constructive block-coupling run.

    Attributes:
        graph_name: display name of the graph.
        source: initially informed vertex.
        num_steps: number of asynchronous steps consumed before ``pp-a``
            informed every vertex.
        num_rounds: number of synchronous rounds generated by the coupling
            (the paper's ``ρ_τ``).
        statistics: the per-category round counts.
        subset_invariant_held: whether the Lemma 13 invariant
            ``I_k(pp-a) ⊆ I_k(pp)`` held after every block.
        async_spreading_time_estimate: ``num_steps / n`` — the expected
            asynchronous time corresponding to the consumed steps (the
            expected gap between steps is ``1/n``).
    """

    graph_name: str
    source: int
    num_steps: int
    num_rounds: int
    statistics: BlockStatistics
    subset_invariant_held: bool
    async_spreading_time_estimate: float
    sync_rounds_to_inform_all: Optional[int] = None


def _random_full_round(
    graph: Graph, rng: np.random.Generator
) -> list[Step]:
    """One synchronous round: every vertex contacts a uniformly random neighbor."""
    n = graph.num_vertices
    adjacency = graph.adjacency
    degrees = graph.degrees
    uniforms = rng.random(n)
    return [
        (v, adjacency[v][min(int(uniforms[v] * degrees[v]), degrees[v] - 1)])
        for v in range(n)
    ]


def _apply_round(round_pairs: Sequence[Step], informed: set[int]) -> set[int]:
    """Apply one synchronous push–pull round (all contacts use the pre-round informed set)."""
    newly: set[int] = set()
    for caller, callee in round_pairs:
        caller_informed = caller in informed
        callee_informed = callee in informed
        if caller_informed and not callee_informed:
            newly.add(callee)
        elif callee_informed and not caller_informed:
            newly.add(caller)
    return informed | newly


def run_block_coupling(
    graph: Graph,
    source: int,
    *,
    seed: SeedLike = None,
    block_size_limit: Optional[int] = None,
    max_steps: Optional[int] = None,
    max_special_rounds: int = 100_000,
) -> BlockCouplingRun:
    """Execute the Section 5 coupling and verify its invariants.

    The asynchronous step sequence is generated on the fly; blocks are formed
    with the paper's three stopping conditions; normal blocks become one
    synchronous round containing exactly the block's contacts (all other
    vertices stay silent, which can only slow ``pp`` down); special blocks
    sample fresh *full* rounds until one contains a right-incompatible pair,
    and the asynchronous step of the special block is replaced by such a pair
    (chosen uniformly — see the module docstring for the one simplification
    relative to the paper).

    Returns:
        A :class:`BlockCouplingRun`; ``subset_invariant_held`` reports the
        Lemma 13 check and ``num_rounds`` is the sample of ``ρ_τ`` whose
        expectation Lemma 14 bounds by ``O(E[τ]/sqrt(n) + sqrt(n))``.
    """
    if not (0 <= source < graph.num_vertices):
        raise ProtocolError(f"source {source} is not a vertex of {graph.name}")
    if graph.num_vertices > 1 and not graph.is_connected():
        raise ProtocolError(f"{graph.name} is not connected")
    n = graph.num_vertices
    rng = as_generator(seed)
    adjacency = graph.adjacency
    degrees = graph.degrees
    limit = int(math.isqrt(n)) if block_size_limit is None else int(block_size_limit)
    limit = max(1, limit)
    step_budget = (
        int(40 * n * n * max(1.0, math.log(max(n, 2))) + 20_000) if max_steps is None else int(max_steps)
    )

    def draw_step() -> Step:
        caller = int(rng.integers(n))
        degree = degrees[caller]
        callee = adjacency[caller][min(int(rng.random() * degree), degree - 1)]
        return caller, callee

    async_informed: set[int] = {source}
    sync_informed: set[int] = {source}

    rho_full = rho_left = rho_right = rho_special = 0
    num_normal = num_special = 0
    num_steps = 0
    num_rounds = 0
    subset_ok = True
    sync_rounds_when_all_informed: Optional[int] = None

    pending_special = False
    pending_history: list[Step] = []
    pending_informed_before: set[int] = set(async_informed)

    while len(async_informed) < n and num_steps < step_budget:
        if pending_special:
            # ---- Special block: sample fresh full rounds for pp. ----
            num_special += 1
            special_rounds = 0
            replacement: Optional[Step] = None
            while special_rounds < max_special_rounds:
                round_pairs = _random_full_round(graph, rng)
                special_rounds += 1
                incompatible = [
                    pair
                    for pair in round_pairs
                    if is_right_incompatible(pair, pending_history, pending_informed_before)
                ]
                sync_informed = _apply_round(round_pairs, sync_informed)
                num_rounds += 1
                if incompatible:
                    replacement = incompatible[int(rng.integers(len(incompatible)))]
                    break
            if replacement is None:
                raise CouplingError(
                    f"special block on {graph.name} found no right-incompatible pair within "
                    f"{max_special_rounds} rounds"
                )
            rho_special += special_rounds
            # The asynchronous side executes the replacement pair as its step.
            num_steps += 1
            caller, callee = replacement
            if (caller in async_informed) != (callee in async_informed):
                async_informed.add(caller)
                async_informed.add(callee)
            pending_special = False
            if not async_informed.issubset(sync_informed):
                subset_ok = False
        else:
            # ---- Normal block. ----
            num_normal += 1
            informed_before = set(async_informed)
            history: list[Step] = []
            end_condition = "exhausted"
            while True:
                if len(history) == limit:
                    end_condition = "full"
                    break
                if num_steps + len(history) >= step_budget:
                    end_condition = "exhausted"
                    break
                step = draw_step()
                if is_left_incompatible(step, history):
                    end_condition = "left"
                    # The step that ended the block starts the next block.
                    next_first_step: Optional[Step] = step
                    break
                if is_right_incompatible(step, history, informed_before):
                    end_condition = "right"
                    next_first_step = step
                    break
                history.append(step)
                # Early exit: if the asynchronous process is already done we
                # still close the block normally below.
                next_first_step = None
            # Apply the block's steps to the asynchronous informed set.
            for caller, callee in history:
                if (caller in async_informed) != (callee in async_informed):
                    async_informed.add(caller)
                    async_informed.add(callee)
            num_steps += len(history)
            # The corresponding synchronous round contains exactly these contacts.
            sync_informed = _apply_round(history, sync_informed)
            num_rounds += 1
            if end_condition == "full":
                rho_full += 1
            elif end_condition == "left":
                rho_left += 1
            elif end_condition == "right":
                rho_right += 1
            if not async_informed.issubset(sync_informed):
                subset_ok = False
            if end_condition == "right":
                pending_special = True
                pending_history = history
                pending_informed_before = informed_before
            elif end_condition == "left" and next_first_step is not None:
                # The left-incompatible step simply starts the next block; to
                # keep the sequential semantics we execute it as the first
                # step of that block by pushing it back through the RNG-free
                # path: treat it as a one-step prefix of the next block.
                # (Executing it here as its own mini-block keeps the subset
                # invariant intact and only adds rounds, i.e. is conservative
                # for the Lemma 14 check.)
                for_caller, for_callee = next_first_step
                if (for_caller in async_informed) != (for_callee in async_informed):
                    async_informed.add(for_caller)
                    async_informed.add(for_callee)
                num_steps += 1
                sync_informed = _apply_round([next_first_step], sync_informed)
                num_rounds += 1
                rho_left += 1
                if not async_informed.issubset(sync_informed):
                    subset_ok = False
        if len(async_informed) == n and sync_rounds_when_all_informed is None and len(sync_informed) == n:
            sync_rounds_when_all_informed = num_rounds

    if len(async_informed) < n:
        raise CouplingError(
            f"block coupling on {graph.name} did not inform every vertex within {step_budget} steps"
        )

    statistics = BlockStatistics(
        num_steps=num_steps,
        block_size_limit=limit,
        num_normal_blocks=num_normal,
        num_special_blocks=num_special,
        rho_full=rho_full,
        rho_left=rho_left,
        rho_right=rho_right,
        rho_special=rho_special,
    )
    return BlockCouplingRun(
        graph_name=graph.name,
        source=source,
        num_steps=num_steps,
        num_rounds=num_rounds,
        statistics=statistics,
        subset_invariant_held=subset_ok,
        async_spreading_time_estimate=num_steps / n,
        sync_rounds_to_inform_all=sync_rounds_when_all_informed,
    )
