"""Must-flag RNG002: a draw behind a state-dependent branch inside a loop.

``informed`` is rebound inside the loop, so the `if` gate can change
between iterations — precisely the skipped-draw stream reordering the
rule exists to catch.  The module path is arbitrary; the function opts in
through the ``@draw_order_critical`` marker.
"""

from repro.randomness.rng import as_generator, draw_order_critical


@draw_order_critical
def spread(steps, seed):
    rng = as_generator(seed)
    informed = 1
    for _ in range(steps):
        if informed > 1:
            informed += int(rng.random() < 0.5)  # conditional draw: flagged
        informed = informed + 1
    return informed
