"""Must-flag LOOP001 (when placed at a VECTORIZED_MODULES path)."""


def degrees(indptr, n):
    out = []
    for v in range(n):  # vertex-extent Python loop: flagged
        out.append(indptr[v + 1] - indptr[v])
    return out


def totals(values, num_trials):
    return [values[b].sum() for b in range(num_trials)]  # trial extent: flagged
