"""Executable couplings from the paper's proofs.

* :mod:`repro.coupling.push_coupling` — the classical push coupling between
  synchronous and asynchronous push (Section 3's warm-up).
* :mod:`repro.coupling.pull_coupling` — the Section 4 coupling of ``ppx``,
  ``ppy`` and ``pp-a`` on shared randomness (Lemmas 9 and 10).
* :mod:`repro.coupling.blocks` — the Section 5 block decomposition mapping
  asynchronous steps to synchronous rounds (Lemmas 13 and 14).
* :mod:`repro.coupling.domination` — the probabilistic lemmas (8 and 15)
  as samplers and bounds.
"""

from repro.coupling.blocks import (
    Block,
    BlockCouplingRun,
    BlockStatistics,
    Step,
    is_left_incompatible,
    is_right_incompatible,
    partition_steps_into_blocks,
    run_block_coupling,
    simulate_step_sequence,
)
from repro.coupling.domination import (
    Lemma8Sample,
    dominated_sum_quantile_bound,
    geometric_domination_check,
    lemma8_theoretical_cdf,
    lemma15_negbin_bound,
    negbin_tail_quantile,
    sample_conditional_minimum,
)
from repro.coupling.pull_coupling import (
    CoupledProcessesRun,
    SharedCouplingVariables,
    run_coupled_processes,
)
from repro.coupling.push_coupling import (
    CoupledPushRun,
    average_push_coupling_gap,
    run_coupled_push,
)

__all__ = [
    "Block",
    "BlockCouplingRun",
    "BlockStatistics",
    "Step",
    "is_left_incompatible",
    "is_right_incompatible",
    "partition_steps_into_blocks",
    "run_block_coupling",
    "simulate_step_sequence",
    "Lemma8Sample",
    "dominated_sum_quantile_bound",
    "geometric_domination_check",
    "lemma8_theoretical_cdf",
    "lemma15_negbin_bound",
    "negbin_tail_quantile",
    "sample_conditional_minimum",
    "CoupledProcessesRun",
    "SharedCouplingVariables",
    "run_coupled_processes",
    "CoupledPushRun",
    "average_push_coupling_gap",
    "run_coupled_push",
]
