"""Backend selection, fallback, and warmup for :mod:`repro.core.kernels`.

The registry gate (``test_kernel_equivalence.py``) pins *what* each backend
computes; this file pins how a backend is *chosen*: name resolution, the
``REPRO_KERNEL_BACKEND`` default, the one-warning-per-process jit→numpy
fallback, pool/benchmark warmup, and the ``REPRO_JIT_PURE_PYTHON`` escape
hatch that lets the jit loops run (uncompiled) on numba-free machines so
their draw-replay logic stays verifiable everywhere.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from helpers.equivalence import KERNEL_CASES, assert_kernel_case, case_ids
from repro.analysis.montecarlo import run_trials
from repro.core import kernels
from repro.core.batch_engine import is_batchable, run_clock_view_batch
from repro.core.kernels import (
    KERNEL_BACKENDS,
    available_backends,
    default_backend_name,
    jit_backend,
    numpy_backend,
    resolve_backend,
    warmup_kernels,
)
from repro.errors import ProtocolError
from repro.graphs import complete_graph
from repro.graphs.random_graphs import random_regular_graph
from repro.scenarios import MessageLoss

#: A cross-section of the registry for the pure-python jit replay: cheap to
#: run everywhere, yet spanning sync/async protocols, views, and scenarios.
REPLAY_CASES = KERNEL_CASES[:: max(1, len(KERNEL_CASES) // 8)]


class TestResolution:
    def test_known_names_resolve(self):
        assert resolve_backend("numpy") is numpy_backend
        assert set(KERNEL_BACKENDS) == {"numpy", "jit", "auto"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ProtocolError, match="unknown kernel backend"):
            resolve_backend("cython")

    def test_default_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert default_backend_name() == "auto"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert default_backend_name() == "numpy"
        assert resolve_backend(None) is numpy_backend

    def test_auto_prefers_compiled_jit_and_never_warns(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        expected = jit_backend if jit_backend.is_compiled() else numpy_backend
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("auto") is expected
            assert resolve_backend(None) is expected

    def test_available_backends_lists_numpy_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert ("jit" in names) == jit_backend.is_available()

    def test_engine_options_accept_backend(self):
        for protocol in ("pp", "pp-a", "ppx"):
            assert is_batchable(protocol, {"backend": "numpy"}, None)
        assert not is_batchable("pp", {"backend": "numpy", "record_trace": True}, None)


class TestFallback:
    @pytest.mark.skipif(
        jit_backend.is_compiled(), reason="numba is installed; no fallback to test"
    )
    def test_jit_without_numba_warns_once_and_degrades_to_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT_PURE_PYTHON", raising=False)
        kernels._reset_fallback_warning()
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_backend("jit") is numpy_backend
        # Second request: same degradation, silent (once per process).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("jit") is numpy_backend

    @pytest.mark.skipif(
        jit_backend.is_compiled(), reason="numba is installed; no fallback to test"
    )
    def test_fallback_run_matches_numpy_bit_for_bit(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT_PURE_PYTHON", raising=False)
        kernels._reset_fallback_warning()
        graph = complete_graph(16)
        with pytest.warns(RuntimeWarning, match="falling back"):
            degraded = run_trials(
                graph, 0, "pp", trials=12, seed=4, batch=True,
                engine_options={"backend": "jit"},
            )
        reference = run_trials(
            graph, 0, "pp", trials=12, seed=4, batch=True,
            engine_options={"backend": "numpy"},
        )
        assert degraded.times == reference.times


class TestWarmup:
    def test_warmup_returns_resolved_name(self):
        assert warmup_kernels("numpy") == "numpy"

    def test_warmup_default_matches_resolver(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        kernels._reset_fallback_warning()
        assert warmup_kernels() == resolve_backend(None).BACKEND_NAME


class TestPurePythonJit:
    """``REPRO_JIT_PURE_PYTHON=1`` runs the jit module's loops uncompiled,
    so the backend's draw-replay logic is pinned even where numba cannot be
    installed (this container, the default CI jobs)."""

    @pytest.fixture(autouse=True)
    def _pure_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_PURE_PYTHON", "1")
        assert jit_backend.is_available()

    @pytest.mark.parametrize("case", REPLAY_CASES, ids=case_ids(REPLAY_CASES))
    def test_registry_cross_section_replays_serial(self, case):
        assert_kernel_case(case, backend="jit")

    @pytest.mark.parametrize("scenario", [None, MessageLoss(0.2)], ids=["plain", "loss"])
    def test_chunked_pooled_clock_view_is_bit_identical_across_backends(self, scenario):
        # The chunked pooled consumer pre-draws whole (B, chunk) blocks, so
        # unlike the pooled global view the jit backend consumes the pooled
        # stream in exactly the numpy order — same seed, same results.
        graph = random_regular_graph(24, 4, seed=3)
        results = {
            backend: run_clock_view_batch(
                graph, 0, view="node_clocks", trials=50,
                pooled_rng=np.random.default_rng(11), scenario=scenario,
                backend=backend,
            )
            for backend in ("numpy", "jit")
        }
        assert np.array_equal(
            results["numpy"].completion_time, results["jit"].completion_time
        )
        assert np.array_equal(results["numpy"].steps, results["jit"].steps)
