"""Closed-form theoretical bounds used as reference lines in the experiments.

Three groups of formulas:

1. **This paper's bounds** — Theorem 1 (``T_{1/n}(pp-a) <= c·(T_{1/n}(pp) +
   log n)``) and Theorem 2 (``E[T(pp-a)] >= c·E[T(pp)]/sqrt(n)``), exposed as
   functions of a measured synchronous/asynchronous time so the experiment
   tables can print "measured vs. allowed".
2. **Prior work the paper improves on** — Acan et al.'s multiplicative
   ``O(log n)`` upper bound and ``O(n^{2/3})`` lower-bound factor, for
   side-by-side comparison.
3. **Classical spreading times of specific topologies** — the star,
   complete graph, and hypercube facts quoted in the introduction, used as
   sanity anchors by the star/classical experiments and by tests.

Asymptotic statements carry unknown constants; every function exposes its
constant as an argument with a default of 1 so experiments can report the
measured constant (the empirical ratio) rather than assert a particular one.
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError

__all__ = [
    "theorem1_upper_bound",
    "theorem2_lower_bound",
    "acan_multiplicative_upper_bound",
    "acan_lower_bound_factor",
    "theorem1_constant",
    "theorem2_constant",
    "star_sync_pushpull_rounds",
    "star_async_pushpull_time",
    "star_sync_push_rounds",
    "complete_graph_time",
    "hypercube_time",
    "harmonic_number",
]


def _require_positive(value: float, name: str) -> None:
    if value <= 0:
        raise AnalysisError(f"{name} must be positive, got {value}")


# ----------------------------------------------------------------------- #
# Group 1: this paper's bounds
# ----------------------------------------------------------------------- #
def theorem1_upper_bound(sync_hp_time: float, num_vertices: int, *, constant: float = 1.0) -> float:
    """Theorem 1's allowed asynchronous high-probability time.

    ``T_{1/n}(pp-a) <= constant · (T_{1/n}(pp) + log n)``.
    """
    _require_positive(num_vertices, "num_vertices")
    if sync_hp_time < 0:
        raise AnalysisError(f"sync_hp_time must be non-negative, got {sync_hp_time}")
    return constant * (sync_hp_time + math.log(num_vertices))


def theorem2_lower_bound(sync_expected_time: float, num_vertices: int, *, constant: float = 1.0) -> float:
    """Theorem 2's guaranteed asynchronous expected time.

    ``E[T(pp-a)] >= constant · E[T(pp)] / sqrt(n)``.
    """
    _require_positive(num_vertices, "num_vertices")
    if sync_expected_time < 0:
        raise AnalysisError(f"sync_expected_time must be non-negative, got {sync_expected_time}")
    return constant * sync_expected_time / math.sqrt(num_vertices)


def theorem1_constant(async_hp_time: float, sync_hp_time: float, num_vertices: int) -> float:
    """The empirical constant ``T_{1/n}(pp-a) / (T_{1/n}(pp) + log n)``.

    Theorem 1 asserts this stays bounded as ``n`` grows; the experiments
    report it per graph family and size.
    """
    _require_positive(num_vertices, "num_vertices")
    denominator = sync_hp_time + math.log(num_vertices)
    if denominator <= 0:
        raise AnalysisError("sync_hp_time + log(n) must be positive")
    return async_hp_time / denominator


def theorem2_constant(async_expected_time: float, sync_expected_time: float, num_vertices: int) -> float:
    """The empirical constant ``(E[T(pp)] / E[T(pp-a)]) / sqrt(n)``.

    Theorem 2 asserts this stays bounded as ``n`` grows.
    """
    _require_positive(num_vertices, "num_vertices")
    _require_positive(async_expected_time, "async_expected_time")
    ratio = sync_expected_time / async_expected_time
    return ratio / math.sqrt(num_vertices)


# ----------------------------------------------------------------------- #
# Group 2: Acan et al. (PODC 2015) comparison bounds
# ----------------------------------------------------------------------- #
def acan_multiplicative_upper_bound(sync_hp_time: float, num_vertices: int, *, constant: float = 1.0) -> float:
    """Acan et al.'s bound: ``T_{1/n}(pp-a) <= constant · log(n) · T_{1/n}(pp)``.

    The paper's Theorem 1 replaces the multiplicative ``log n`` with an
    additive one; comparing the two right-hand sides on concrete data shows
    where the improvement matters (graphs with super-constant synchronous
    time).
    """
    _require_positive(num_vertices, "num_vertices")
    if sync_hp_time < 0:
        raise AnalysisError(f"sync_hp_time must be non-negative, got {sync_hp_time}")
    return constant * math.log(num_vertices) * max(sync_hp_time, 1.0)


def acan_lower_bound_factor(num_vertices: int) -> float:
    """Acan et al.'s worst-case factor ``n^{2/3}`` (improved to ``sqrt(n)`` by Theorem 2)."""
    _require_positive(num_vertices, "num_vertices")
    return float(num_vertices) ** (2.0 / 3.0)


# ----------------------------------------------------------------------- #
# Group 3: classical per-topology facts quoted in the introduction
# ----------------------------------------------------------------------- #
def harmonic_number(k: int) -> float:
    """The ``k``-th harmonic number ``H_k`` (coupon-collector expectations)."""
    if k < 0:
        raise AnalysisError(f"harmonic number needs k >= 0, got {k}")
    return sum(1.0 / i for i in range(1, k + 1))


def star_sync_pushpull_rounds() -> int:
    """Synchronous push–pull on the star: at most 2 rounds (Section 1).

    One round for the center to be informed (the source leaf pushes to it —
    or, if the source is the center, zero rounds), and one round for every
    leaf to pull from the center.
    """
    return 2


def star_async_pushpull_time(num_vertices: int) -> float:
    """Asynchronous push–pull on the star: ``Θ(log n)`` expected time.

    Each uninformed leaf is informed at rate ~1 (its own clock contacts the
    center), so the completion time is the maximum of ``n − 2`` unit-rate
    exponentials plus O(1): about ``ln(n) + γ``.
    """
    _require_positive(num_vertices, "num_vertices")
    return math.log(max(num_vertices, 2)) + 0.5772156649015329


def star_sync_push_rounds(num_vertices: int) -> float:
    """Synchronous push on the star: ``Θ(n log n)`` rounds.

    After the center is informed, only the center can push, and it informs a
    uniformly random leaf each round — a coupon-collector process over
    ``n − 1`` leaves, i.e. about ``(n−1)·H_{n−1}`` rounds.
    """
    _require_positive(num_vertices, "num_vertices")
    leaves = max(int(num_vertices) - 1, 1)
    return leaves * harmonic_number(leaves)


def complete_graph_time(num_vertices: int) -> float:
    """Push–pull on the complete graph: ``Θ(log n)`` (both models).

    The classical bound is ``log_3 n + O(log log n)`` synchronous rounds
    (Karp et al.); we return ``log_3 n`` as the reference curve — only the
    logarithmic shape matters for the experiments.
    """
    _require_positive(num_vertices, "num_vertices")
    return math.log(max(num_vertices, 2), 3.0)


def hypercube_time(num_vertices: int) -> float:
    """Push–pull on the hypercube: ``Θ(log n)`` in both models.

    The dimension ``d = log2 n`` is a lower bound (the diameter), and
    ``O(log n)`` is the known upper bound; we return ``log2 n`` as the
    reference curve.
    """
    _require_positive(num_vertices, "num_vertices")
    return math.log2(max(num_vertices, 2))
