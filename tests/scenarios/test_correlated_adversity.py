"""Tests for the correlated-adversity models (BurstLoss, TargetedChurn).

Three layers:

* model-level unit tests (validation, spec round trips, semantics of the
  static targeted mask);
* hypothesis property tests pinning the Gilbert–Elliott chain's stationary
  loss rate (the empirical bad-state occupancy and loss frequency must
  match the closed form for arbitrary parameters);
* end-to-end sanity on the engines: bursty loss slows spreading, targeted
  churn silences exactly its victims, and the clock-view scenario runs
  agree with the global view in distribution (the superposition argument
  extends to the perturbed processes).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers.equivalence import assert_same_distribution
from repro.analysis.montecarlo import run_trials
from repro.core.protocols import spread
from repro.errors import ScenarioError
from repro.graphs import complete_graph, path_graph, star_graph
from repro.graphs.random_graphs import random_regular_graph
from repro.scenarios import (
    BurstLoss,
    MessageLoss,
    NodeChurn,
    TargetedChurn,
    parse_scenario,
)


class TestBurstLossModel:
    def test_parameter_validation(self):
        BurstLoss(0.2, 0.5, 0.8)
        BurstLoss(0.0, 1.0, 1.0, p_loss_good=0.0)  # extremes allowed
        with pytest.raises(ScenarioError, match="p_bg"):
            BurstLoss(0.2, 0.0, 0.8)  # must escape the bad state
        with pytest.raises(ScenarioError):
            BurstLoss(1.5, 0.5, 0.8)
        with pytest.raises(ScenarioError):
            BurstLoss(0.2, 0.5, -0.1)
        with pytest.raises(ScenarioError):
            BurstLoss(0.2, 0.5, 0.8, p_loss_good=1.0)  # good state must be sub-total

    def test_spec_round_trips(self):
        spec = "burst-loss:p_gb=0.2,p_bg=0.5,p_loss_bad=0.8,p_loss_good=0.1"
        assert parse_scenario(spec).spec() == spec

    def test_shares_the_loss_category(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            MessageLoss(0.1) | BurstLoss(0.2, 0.5, 0.8)
        composed = BurstLoss(0.2, 0.5, 0.8) | NodeChurn(0.1)
        assert composed.burst is not None
        assert composed.loss_prob == 0.0  # burst never leaks a constant rate
        assert composed.runtime_active()

    def test_step_state_scalar_and_vector_agree(self):
        burst = BurstLoss(0.3, 0.6, 0.9)
        states = np.array([False, False, True, True])
        draws = np.array([0.2, 0.9, 0.5, 0.7])
        stepped = burst.step_state(states, draws)
        expected = [
            bool(burst.step_state(bool(s), float(d))) for s, d in zip(states, draws)
        ]
        assert stepped.tolist() == expected

    def test_stationary_loss_rate_closed_form(self):
        burst = BurstLoss(0.2, 0.6, 0.9, p_loss_good=0.1)
        bad_fraction = 0.2 / (0.2 + 0.6)
        assert burst.stationary_loss_rate == pytest.approx(
            bad_fraction * 0.9 + (1 - bad_fraction) * 0.1
        )
        # MessageLoss is the memoryless special case: always-bad channel.
        degenerate = BurstLoss(1.0, 1.0, 0.35, p_loss_good=0.35)
        assert degenerate.stationary_loss_rate == pytest.approx(0.35)


class TestBurstLossStationaryHypothesis:
    @settings(max_examples=25, deadline=None)
    @given(
        p_gb=st.floats(0.05, 0.95),
        p_bg=st.floats(0.05, 0.95),
        p_loss_bad=st.floats(0.0, 1.0),
        p_loss_good=st.floats(0.0, 0.9),
    )
    def test_empirical_loss_rate_matches_stationary_formula(
        self, p_gb, p_bg, p_loss_bad, p_loss_good
    ):
        """Simulate the chain exactly as the engines do (one state draw per
        epoch, one loss coin per exchange) and compare the observed loss
        frequency to the closed form."""
        burst = BurstLoss(p_gb, p_bg, p_loss_bad, p_loss_good=p_loss_good)
        rng = np.random.default_rng(
            abs(hash((round(p_gb, 6), round(p_bg, 6), round(p_loss_bad, 6)))) % 2**32
        )
        epochs = 4000
        bad = False
        losses = 0
        bad_epochs = 0
        for _ in range(epochs):
            bad = bool(burst.step_state(bad, rng.random()))
            bad_epochs += bad
            losses += rng.random() < float(burst.loss_at(bad))
        expected_bad = p_gb / (p_gb + p_bg)
        assert bad_epochs / epochs == pytest.approx(expected_bad, abs=0.06)
        assert losses / epochs == pytest.approx(burst.stationary_loss_rate, abs=0.06)

    @settings(max_examples=25, deadline=None)
    @given(
        p_gb=st.floats(0.05, 0.95),
        p_bg=st.floats(0.05, 0.95),
        p=st.floats(0.0, 0.99),
    )
    def test_uniform_loss_probability_degenerates_to_message_loss(self, p_gb, p_bg, p):
        """With equal loss in both states the channel state is irrelevant:
        the stationary rate is exactly p, whatever the transition rates."""
        burst = BurstLoss(p_gb, p_bg, p, p_loss_good=p)
        assert burst.stationary_loss_rate == pytest.approx(p)


class TestTargetedChurnModel:
    def test_parameter_validation(self):
        TargetedChurn(0.0)
        TargetedChurn(1.0)  # capped at n - 1 victims at runtime
        with pytest.raises(ScenarioError):
            TargetedChurn(-0.1)
        with pytest.raises(ScenarioError):
            TargetedChurn(1.5)
        with pytest.raises(ScenarioError, match="criterion"):
            TargetedChurn(0.1, by="loudest")

    def test_spec_round_trips(self):
        spec = "targeted-churn:fraction=0.25,by=eccentricity"
        assert parse_scenario(spec).spec() == spec

    def test_shares_the_churn_category(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            NodeChurn(0.1) | TargetedChurn(0.1)

    def test_degree_targets_the_hub_first(self):
        star = star_graph(16)
        up = TargetedChurn(1 / 16).initial_up(star)
        assert not up[0] and up[1:].all()  # exactly the hub

    def test_eccentricity_targets_the_periphery_first(self):
        path = path_graph(9)
        up = TargetedChurn(3 / 9, by="eccentricity").initial_up(path)
        assert sorted(np.flatnonzero(~up).tolist()) == [0, 1, 8]  # ends, then id ties

    def test_never_crashes_everyone(self):
        up = TargetedChurn(1.0).initial_up(complete_graph(6))
        assert up.sum() == 1  # n - 1 victims at most

    def test_consumes_no_randomness(self):
        rng = np.random.default_rng(5)
        state = rng.bit_generator.state
        TargetedChurn(0.5).initial_up(star_graph(12))
        assert rng.bit_generator.state == state


class TestEnginesEndToEnd:
    def test_burst_loss_slows_spreading(self):
        graph = random_regular_graph(32, 4, seed=1)
        clean = run_trials(graph, 0, "pp", trials=60, seed=5)
        bursty = run_trials(
            graph, 0, "pp", trials=60, seed=5, scenario=BurstLoss(0.4, 0.3, 0.95)
        )
        assert bursty.mean > clean.mean

    @pytest.mark.parametrize("protocol", ["pp", "pp-a"])
    def test_targeted_victims_stay_uninformed(self, protocol):
        graph = star_graph(16)
        result = spread(
            graph,
            1,
            protocol=protocol,
            seed=3,
            scenario=TargetedChurn(1 / 16),
            on_budget_exhausted="partial",
            **({"max_rounds": 60} if protocol == "pp" else {"max_steps": 2000}),
        )
        # The hub is down: no leaf can reach any other leaf.
        assert np.isfinite(result.informed_time[1])
        assert not np.isfinite(result.informed_time[0])
        assert sum(1 for t in result.informed_time if np.isfinite(t)) == 1

    @pytest.mark.parametrize(
        "scenario",
        [
            MessageLoss(0.25),
            BurstLoss(0.3, 0.5, 0.8),
            NodeChurn(0.1, 0.5),
            TargetedChurn(0.1),
        ],
        ids=lambda s: s.spec().split(":")[0],
    )
    @pytest.mark.parametrize("view", ["node_clocks", "edge_clocks"])
    def test_clock_view_scenarios_agree_with_global_view(self, view, scenario):
        """Superposition sanity: the perturbed asynchronous process is the
        same in all three views, so scenario'd clock-view samples must
        match the global view in distribution.  Targeted churn leaves its
        victims uninformed forever, so that case compares the time to
        inform 75% of the graph instead of the (infinite) completion time.
        """
        targeted = scenario.churn is not None and not scenario.churn.epoch_draws
        graph = random_regular_graph(24, 4, seed=9)
        kwargs = dict(
            trials=260,
            batch=True,
            scenario=scenario,
            fractions=(0.75,) if targeted else (),
            engine_options={"max_steps": 20_000, "on_budget_exhausted": "partial"},
        )
        global_sample = run_trials(
            graph, 5, "pp-a", seed=100,
            **{**kwargs, "engine_options": {**kwargs["engine_options"]}},
        )
        view_sample = run_trials(
            graph, 5, "pp-a", seed=200,
            **{
                **kwargs,
                "engine_options": {**kwargs["engine_options"], "view": view},
            },
        )
        if targeted:
            values_a = np.asarray(global_sample.fraction_times[0.75])
            values_b = np.asarray(view_sample.fraction_times[0.75])
        else:
            values_a = global_sample.as_array()
            values_b = view_sample.as_array()
        assert_same_distribution(
            values_a,
            values_b,
            min_pvalue=1e-3,
            label=f"{scenario.spec()}: global vs {view}",
        )
