"""Tests for the shipped experiment artefacts under ``results/quick``.

EXPERIMENTS.md quotes numbers from these JSON files, so the test suite checks
that they stay loadable, complete (one per experiment id), internally
consistent with the registry, and renderable into the Markdown report.
If the artefacts are regenerated with different presets the tests keep
passing — they check structure, not specific values.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.summary import results_to_markdown
from repro.reporting import load_result_json

ARTIFACT_DIR = Path(__file__).resolve().parents[2] / "results" / "quick"

requires_artifacts = pytest.mark.skipif(
    not ARTIFACT_DIR.exists(), reason="results/quick artefacts not present"
)


@requires_artifacts
class TestShippedArtifacts:
    def _load_all(self):
        return [load_result_json(path) for path in sorted(ARTIFACT_DIR.glob("e*.json"))]

    def test_one_artifact_per_registered_experiment(self):
        results = self._load_all()
        assert {result.experiment_id for result in results} == set(EXPERIMENTS)

    def test_titles_match_registry(self):
        for result in self._load_all():
            spec = EXPERIMENTS[result.experiment_id]
            assert result.claim  # non-empty claim recorded
            assert result.rows, f"{result.experiment_id} has no table rows"
            assert set(result.columns) <= set(result.rows[0].keys()) | set(result.columns)

    def test_headline_conclusions_present_and_positive(self):
        results = {result.experiment_id: result for result in self._load_all()}
        assert results["E1"].conclusions["theorem1_consistent"] in (True, "yes", 1)
        assert results["E2"].conclusions["theorem2_consistent"] in (True, "yes", 1)
        assert results["E3"].conclusions["corollary3_consistent"] in (True, "yes", 1)
        assert results["E9"].conclusions["lemma13_subset_invariant_always_held"] in (True, "yes", 1)

    def test_markdown_report_renders(self):
        report = results_to_markdown(self._load_all(), title="Shipped results")
        assert report.startswith("# Shipped results")
        for experiment_id in EXPERIMENTS:
            assert f"### {experiment_id} —" in report

    def test_csv_artifacts_accompany_json(self):
        for path in ARTIFACT_DIR.glob("e*.json"):
            assert path.with_suffix(".csv").exists()
