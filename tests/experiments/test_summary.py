"""Unit tests for the markdown summary generator."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.records import ExperimentResult
from repro.experiments.summary import result_to_markdown, results_to_markdown


def make_result(experiment_id: str = "E4") -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title="star graph anomaly",
        claim="sync pp <= 2 rounds; async pp = Theta(log n)",
        columns=["n", "T_hp(pp)"],
        rows=[{"n": 64, "T_hp(pp)": 2.0}, {"n": 128, "T_hp(pp)": 2.0}],
        conclusions={"sync_pushpull_at_most_2_rounds": True, "max_sync_pushpull_hp_rounds": 2.0},
        notes=["quick preset"],
    )


class TestSingleResult:
    def test_contains_claim_conclusions_and_table(self):
        text = result_to_markdown(make_result())
        assert "### E4 — star graph anomaly" in text
        assert "**Paper claim.**" in text
        assert "`sync_pushpull_at_most_2_rounds` = yes" in text
        assert "| n | T_hp(pp) |" in text
        assert "*quick preset*" in text

    def test_rows_can_be_omitted(self):
        text = result_to_markdown(make_result(), include_rows=False)
        assert "| n |" not in text


class TestMultipleResults:
    def test_document_orders_by_experiment_number(self):
        doc = results_to_markdown([make_result("E10"), make_result("E2")], title="Report")
        assert doc.startswith("# Report")
        assert doc.index("### E2") < doc.index("### E10")

    def test_empty_input_rejected(self):
        with pytest.raises(ExperimentError):
            results_to_markdown([])

    def test_round_trips_through_io_layer(self, tmp_path):
        from repro.reporting import load_result_json, save_result_json

        path = save_result_json(make_result(), tmp_path / "e4.json")
        loaded = load_result_json(path)
        assert "star graph anomaly" in results_to_markdown([loaded])
