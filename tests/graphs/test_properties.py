"""Unit tests for graph structural parameters (conductance, expansion, diameter)."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphError
from repro.graphs import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from repro.graphs.base import Graph
from repro.graphs.properties import (
    all_eccentricities,
    conductance_estimate,
    cut_conductance,
    cut_vertex_expansion,
    degree_summary,
    diameter,
    profile_graph,
    vertex_expansion_estimate,
)
from repro.graphs.random_graphs import random_regular_graph


class TestAllEccentricities:
    """The vectorised all-sources BFS replacing the per-vertex Python loop."""

    @pytest.mark.parametrize(
        "graph",
        [
            star_graph(16),
            path_graph(9),
            cycle_graph(11),
            complete_graph(8),
            barbell_graph(12),
            hypercube_graph(4),
            random_regular_graph(40, 3, seed=5),
        ],
        ids=lambda g: g.name,
    )
    def test_matches_per_vertex_bfs(self, graph):
        vectorised = all_eccentricities(graph)
        assert vectorised.tolist() == [
            graph.eccentricity(v) for v in graph.vertices
        ]

    def test_single_vertex(self):
        assert all_eccentricities(Graph(1, [])).tolist() == [0]

    def test_disconnected_raises(self):
        with pytest.raises(GraphError, match="connected"):
            all_eccentricities(Graph(4, [(0, 1), (2, 3)]))

    def test_cached_per_graph_object(self):
        graph = cycle_graph(10)
        first = all_eccentricities(graph)
        assert all_eccentricities(graph) is first  # cache hit
        assert not first.flags.writeable  # the cached copy is read-only


class TestDegreeSummary:
    def test_star_summary(self):
        summary = degree_summary(star_graph(10))
        assert summary.minimum == 1
        assert summary.maximum == 9
        assert not summary.is_regular
        assert summary.mean == pytest.approx(18 / 10)

    def test_regular_summary(self):
        summary = degree_summary(cycle_graph(8))
        assert summary.is_regular
        assert summary.minimum == summary.maximum == 2


class TestDiameter:
    def test_known_diameters(self):
        assert diameter(path_graph(10)) == 9
        assert diameter(cycle_graph(10)) == 5
        assert diameter(star_graph(12)) == 2
        assert diameter(hypercube_graph(4)) == 4
        assert diameter(complete_graph(7)) == 1

    def test_requires_connected(self):
        from repro.graphs.base import Graph

        with pytest.raises(GraphError):
            diameter(Graph(4, [(0, 1), (2, 3)]))

    def test_large_graph_uses_double_sweep(self):
        # The double-sweep heuristic is exact on paths.
        graph = path_graph(50)
        assert diameter(graph, exact_limit=10, seed=1) == 49


class TestCutMeasures:
    def test_cut_conductance_of_complete_graph_half(self):
        graph = complete_graph(8)
        value = cut_conductance(graph, range(4))
        # Half of K8: boundary 16, volume 28 -> 16/28.
        assert value == pytest.approx(16 / 28)

    def test_cut_conductance_bridge(self):
        graph = barbell_graph(4)
        left = range(4)
        value = cut_conductance(graph, left)
        assert value == pytest.approx(1 / 13)

    def test_cut_vertex_expansion(self):
        graph = barbell_graph(4)
        assert cut_vertex_expansion(graph, range(4)) == pytest.approx(1 / 4)

    def test_cut_rejects_trivial_sides(self):
        graph = cycle_graph(6)
        with pytest.raises(GraphError):
            cut_conductance(graph, [])
        with pytest.raises(GraphError):
            cut_vertex_expansion(graph, range(6))


class TestGlobalEstimates:
    def test_exact_small_graph_conductance(self):
        # Path on 4 vertices: the middle cut has conductance 1/3 (1 edge / volume 3).
        value = conductance_estimate(path_graph(4))
        assert value == pytest.approx(1 / 3)

    def test_barbell_has_low_conductance(self):
        value = conductance_estimate(barbell_graph(8), seed=1)
        assert value <= 1 / 20

    def test_complete_graph_has_high_conductance(self):
        value = conductance_estimate(complete_graph(10), seed=1)
        assert value >= 0.4

    def test_vertex_expansion_star(self):
        # Cutting off any set of leaves has expansion <= 1/|S| ... the minimum
        # over sweep cuts is at most 2/(n-1)-ish; just check it is small.
        value = vertex_expansion_estimate(star_graph(12), seed=1)
        assert value <= 0.5

    def test_estimates_scale_to_larger_graphs(self):
        value = conductance_estimate(cycle_graph(300), seed=2)
        # A cycle cut in half has conductance ~ 2/(n) = 0.0067; sweep cuts find it.
        assert value <= 0.05


class TestProfile:
    def test_profile_fields(self):
        profile = profile_graph(hypercube_graph(4), seed=3)
        assert profile.num_vertices == 16
        assert profile.num_edges == 32
        assert profile.diameter == 4
        assert profile.degrees.is_regular
        assert profile.conductance is not None and profile.conductance > 0
        assert profile.vertex_expansion is not None

    def test_profile_can_skip_expensive_parts(self):
        profile = profile_graph(cycle_graph(20), with_expansion=False, with_diameter=False)
        assert profile.conductance is None
        assert profile.diameter is None
