"""Tests for the batched fast path of the Monte Carlo trial runners.

Covers the dispatch policy of ``run_trials(batch=...)``, fixed-seed
per-trial agreement between the batched and serial paths, a two-sample
Kolmogorov–Smirnov sanity check on larger independently-seeded samples, and
the worker-count environment override.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis import montecarlo
from repro.analysis.montecarlo import run_adaptive_trials, run_trials
from repro.analysis.parallel import default_worker_count, run_trials_parallel
from repro.errors import AnalysisError
from repro.graphs import complete_graph, star_graph
from repro.graphs.random_graphs import (
    connected_erdos_renyi_graph,
    random_regular_graph,
)


class TestBatchDispatch:
    @pytest.mark.parametrize("protocol", ["pp", "push", "pull", "pp-a", "push-a", "pull-a"])
    def test_fixed_seed_per_trial_agreement(self, protocol):
        graph = random_regular_graph(48, 4, seed=2)
        serial = run_trials(graph, 0, protocol, trials=24, seed=31, batch=False)
        batched = run_trials(graph, 0, protocol, trials=24, seed=31, batch=True)
        assert serial.times == batched.times
        assert serial.source == batched.source
        assert serial.graph_name == batched.graph_name

    def test_agreement_with_random_sources_and_fractions(self):
        graph = complete_graph(20)
        kwargs = dict(trials=16, seed=7, fractions=(0.5, 0.9))
        serial = run_trials(graph, "random", "pp", batch=False, **kwargs)
        batched = run_trials(graph, "random", "pp", batch=True, **kwargs)
        assert serial.times == batched.times
        assert serial.fraction_times == batched.fraction_times
        assert serial.source == batched.source

    def test_agreement_across_chunk_boundaries(self):
        graph = star_graph(16)
        serial = run_trials(graph, 1, "pp", trials=23, seed=5, batch=False)
        # Width 7 forces uneven chunks (7 + 7 + 7 + 2).
        batched = run_trials(graph, 1, "pp", trials=23, seed=5, batch=7)
        assert serial.times == batched.times

    def test_auto_falls_back_for_unbatchable_settings(self):
        graph = star_graph(12)
        # Analysis-only protocols and traced runs have no batched kernel but
        # must keep working through the serial path.
        sample = run_trials(graph, 1, "ppx", trials=4, seed=1)
        assert sample.num_trials == 4
        sample = run_trials(
            graph, 1, "pp", trials=3, seed=1, engine_options={"record_trace": True}
        )
        assert sample.num_trials == 3

    def test_forced_batch_rejects_unbatchable_settings(self):
        graph = star_graph(12)
        with pytest.raises(AnalysisError):
            run_trials(graph, 1, "ppx", trials=4, seed=1, batch=True)
        with pytest.raises(AnalysisError):
            run_trials(
                graph,
                1,
                "pp",
                trials=4,
                seed=1,
                engine_options={"record_trace": True},
                batch=True,
            )

        def factory(rng):
            return connected_erdos_renyi_graph(16, seed=rng)

        with pytest.raises(AnalysisError):
            run_trials(factory, 0, "pp", trials=4, seed=1, batch=True)
        with pytest.raises(AnalysisError):
            run_trials(graph, 1, "pp", trials=4, seed=1, batch=0)

    def test_factory_mode_still_works_under_auto(self):
        def factory(rng):
            return connected_erdos_renyi_graph(16, seed=rng)

        sample = run_trials(factory, 0, "pp", trials=6, seed=3)
        assert sample.num_trials == 6

    def test_async_auto_threshold_prefers_serial_for_narrow_runs(self, monkeypatch):
        calls = []
        real_run_batch = montecarlo.run_batch

        def counting_run_batch(*args, **kwargs):
            calls.append(args)
            return real_run_batch(*args, **kwargs)

        monkeypatch.setattr(montecarlo, "run_batch", counting_run_batch)
        graph = complete_graph(12)
        run_trials(graph, 0, "pp-a", trials=8, seed=1)  # narrow: serial
        assert calls == []
        run_trials(graph, 0, "pp-a", trials=8, seed=1, batch=True)  # forced
        assert len(calls) == 1
        run_trials(graph, 0, "pp", trials=8, seed=1)  # sync batches at any width
        assert len(calls) == 2

    def test_adaptive_trials_agree_between_paths(self):
        graph = complete_graph(16)
        kwargs = dict(
            initial_trials=10,
            batch_size=10,
            max_trials=40,
            relative_precision=0.05,
            seed=11,
        )
        serial = run_adaptive_trials(graph, 0, "pp", batch=False, **kwargs)
        batched = run_adaptive_trials(graph, 0, "pp", batch=True, **kwargs)
        assert serial.times == batched.times


class TestDistributionSanity:
    @pytest.mark.parametrize("protocol", ["pp", "pp-a"])
    def test_kolmogorov_smirnov_between_independent_seeds(self, protocol):
        """Batched and serial samples from *different* seeds are draws from
        the same spreading-time distribution; a two-sample KS test should
        not reject at a generous level."""
        graph = random_regular_graph(64, 4, seed=9)
        batched = run_trials(graph, 0, protocol, trials=400, seed=101, batch=True)
        serial = run_trials(graph, 0, protocol, trials=400, seed=202, batch=False)
        test = scipy_stats.ks_2samp(batched.as_array(), serial.as_array())
        assert test.pvalue > 1e-4, (
            f"KS rejected equality of batched/serial {protocol} distributions: {test}"
        )


class TestParallelPlumbing:
    def test_worker_count_env_override(self, monkeypatch):
        import os

        cpus = max(1, os.cpu_count() or 1)
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        assert default_worker_count() == cpus
        monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
        assert default_worker_count() == 1
        monkeypatch.setenv("REPRO_MAX_WORKERS", str(cpus + 64))
        assert default_worker_count() == cpus  # clamped to the CPU count
        monkeypatch.setenv("REPRO_MAX_WORKERS", "0")
        assert default_worker_count() == cpus  # non-positive ignored
        monkeypatch.setenv("REPRO_MAX_WORKERS", "not-a-number")
        assert default_worker_count() == cpus  # unparsable ignored

    def test_parallel_batch_false_matches_batch_true(self):
        graph = star_graph(16)
        a = run_trials_parallel(graph, 1, "pp", trials=10, seed=3, num_workers=1, batch=False)
        b = run_trials_parallel(graph, 1, "pp", trials=10, seed=3, num_workers=1, batch=True)
        assert a.times == b.times

    def test_numpy_sample_roundtrip(self):
        sample = run_trials(star_graph(16), 1, "pp", trials=8, seed=1, batch=True)
        values = sample.as_array()
        assert values.shape == (8,)
        assert np.isfinite(values).all()
