"""Unit tests for the shared identity-keyed LRU cache."""

from __future__ import annotations

import gc

from repro.caching import IdentityLRU


class _Owner:
    """A plain weakref-able key object."""


class TestIdentityLRU:
    def test_hit_miss_and_secondary_keys(self):
        cache = IdentityLRU(4)
        owner = _Owner()
        assert cache.get(owner) is None
        cache.put(owner, "plain")
        cache.put(owner, "keyed", key="strategy")
        assert cache.get(owner) == "plain"
        assert cache.get(owner, "strategy") == "keyed"
        assert cache.get(owner, "other") is None
        assert len(cache) == 2
        assert id(owner) in cache

    def test_put_returns_the_value(self):
        cache = IdentityLRU(2)
        owner = _Owner()
        assert cache.put(owner, 42) == 42

    def test_lru_eviction_respects_recency(self):
        cache = IdentityLRU(3)
        owners = [_Owner() for _ in range(4)]
        for index, owner in enumerate(owners[:3]):
            cache.put(owner, index)
        assert cache.get(owners[0]) == 0  # refresh: 0 is now most recent
        cache.put(owners[3], 3)  # evicts the least recently used: owners[1]
        assert cache.get(owners[1]) is None
        assert cache.get(owners[0]) == 0
        assert cache.get(owners[2]) == 2
        assert cache.get(owners[3]) == 3

    def test_dead_owners_evicted_before_live_ones(self):
        cache = IdentityLRU(3)
        keep = [_Owner(), _Owner()]
        cache.put(keep[0], "a")
        doomed = _Owner()
        cache.put(doomed, "dead")
        cache.put(keep[1], "b")
        del doomed
        gc.collect()
        cache.put(_Owner(), "c")  # at capacity: the dead entry goes first
        assert cache.get(keep[0]) == "a"
        assert cache.get(keep[1]) == "b"

    def test_pop_removes_only_the_requested_entry(self):
        cache = IdentityLRU(4)
        owner = _Owner()
        cache.put(owner, 1)
        cache.put(owner, 2, key="x")
        cache.pop(owner)
        assert cache.get(owner) is None
        assert cache.get(owner, "x") == 2
        cache.pop(owner, "x")
        assert len(cache) == 0
