"""Protocol comparisons across graph families and sizes.

This is the workhorse the experiments build on: given a graph family, a size
sweep, and a pair (or set) of protocols, run the Monte Carlo trials, estimate
means and high-probability times, and package everything into records that
the table renderers and benchmarks consume.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis import shm
from repro.analysis.montecarlo import BatchSpec, SpreadingTimeSample, run_trials
from repro.analysis.parallel import run_trials_parallel
from repro.analysis.quantiles import high_probability_time
from repro.analysis.statistics import MeanEstimate, RatioEstimate, bootstrap_ratio_of_means, summarize
from repro.errors import AnalysisError
from repro.graphs.base import Graph
from repro.graphs.families import GraphFamily, get_family
from repro.randomness.rng import SeedLike, derive_generator

__all__ = [
    "ProtocolMeasurement",
    "GraphComparison",
    "FamilySweep",
    "measure_protocol",
    "compare_protocols_on_graph",
    "sweep_family",
]


@dataclass(frozen=True)
class ProtocolMeasurement:
    """Monte Carlo measurement of one protocol on one graph.

    Attributes:
        protocol: canonical protocol name.
        graph_name: graph display name.
        num_vertices: graph size ``n``.
        sample: the raw spreading-time sample.
        mean: mean spreading time with confidence interval.
        high_probability: estimated ``T_{1/n}``.
    """

    protocol: str
    graph_name: str
    num_vertices: int
    sample: SpreadingTimeSample
    mean: MeanEstimate
    high_probability: float


@dataclass(frozen=True)
class GraphComparison:
    """Comparison of several protocols on one graph.

    ``measurements`` is keyed by protocol name; ``ratios`` holds the ratios
    of mean spreading times requested by the caller, keyed by
    ``"A/B"`` strings.
    """

    graph_name: str
    num_vertices: int
    measurements: dict[str, ProtocolMeasurement]
    ratios: dict[str, RatioEstimate] = field(default_factory=dict)

    def measurement(self, protocol: str) -> ProtocolMeasurement:
        try:
            return self.measurements[protocol]
        except KeyError:
            raise AnalysisError(
                f"no measurement for protocol {protocol!r} on {self.graph_name}"
            ) from None


@dataclass(frozen=True)
class FamilySweep:
    """Measurements of a family over a size sweep (one :class:`GraphComparison` per size)."""

    family_name: str
    sizes: tuple[int, ...]
    comparisons: tuple[GraphComparison, ...]

    def series(self, protocol: str, quantity: str = "mean") -> list[float]:
        """Extract one series across sizes: ``"mean"`` or ``"hp"`` (T_{1/n})."""
        values = []
        for comparison in self.comparisons:
            measurement = comparison.measurement(protocol)
            if quantity == "mean":
                values.append(measurement.mean.value)
            elif quantity == "hp":
                values.append(measurement.high_probability)
            else:
                raise AnalysisError(f"unknown quantity {quantity!r}; use 'mean' or 'hp'")
        return values

    def ratio_series(self, key: str) -> list[float]:
        """Extract the ratio series for a ``"A/B"`` ratio key across sizes."""
        values = []
        for comparison in self.comparisons:
            if key not in comparison.ratios:
                raise AnalysisError(f"ratio {key!r} was not computed for {comparison.graph_name}")
            values.append(comparison.ratios[key].value)
        return values


def measure_protocol(
    graph: Graph,
    source: int | str,
    protocol: str,
    *,
    trials: int,
    seed: SeedLike = None,
    engine_options: Optional[dict] = None,
    batch: BatchSpec = "auto",
    parallel: bool | str = False,
    num_workers: Optional[int] = None,
) -> ProtocolMeasurement:
    """Run trials of one protocol on one graph and summarise them.

    ``batch`` is the dispatch mode of
    :func:`~repro.analysis.montecarlo.run_trials`; every mode produces an
    identical sample for the same seed, so it is a pure throughput knob.

    ``parallel`` shards the trials across the session's persistent process
    pool via :func:`~repro.analysis.parallel.run_trials_parallel` (``True``
    means the zero-copy ``"shared"`` transport; a string picks the
    transport explicitly).  Unlike ``batch`` this changes the per-trial
    seed spawning — parallel samples are reproducible but not bit-identical
    to serial ones; sweeps that flip it should treat it as a different
    (equally valid) random draw of the same distribution.
    """
    kwargs = dict(trials=trials, seed=seed, engine_options=engine_options, batch=batch)
    if parallel:
        sample = run_trials_parallel(
            graph,
            source,
            protocol,
            num_workers=num_workers,
            parallel="shared" if parallel is True else str(parallel),
            **kwargs,
        )
    else:
        sample = run_trials(graph, source, protocol, **kwargs)
    return ProtocolMeasurement(
        protocol=protocol,
        graph_name=graph.name,
        num_vertices=graph.num_vertices,
        sample=sample,
        mean=summarize(sample.times),
        high_probability=high_probability_time(sample).value,
    )


def compare_protocols_on_graph(
    graph: Graph,
    source: int | str,
    protocols: Sequence[str],
    *,
    trials: int,
    seed: SeedLike = None,
    ratios: Sequence[tuple[str, str]] = (),
    engine_options: Optional[dict] = None,
    batch: BatchSpec = "auto",
    parallel: bool | str = False,
    num_workers: Optional[int] = None,
) -> GraphComparison:
    """Measure several protocols on one graph and compute requested mean ratios.

    Args:
        graph: the graph to measure on.
        source: vertex id or ``"random"``.
        protocols: protocol names to measure.
        trials: trials per protocol.
        seed: master seed (per-protocol sub-seeds are derived from it).
        ratios: pairs ``(numerator_protocol, denominator_protocol)`` whose
            ratio of mean spreading times should be estimated.
        engine_options: forwarded to the engines.
        batch: Monte Carlo batch dispatch mode (seed-for-seed identical
            samples in every mode; see
            :func:`~repro.analysis.montecarlo.run_trials`).
        parallel: shard each protocol's trials across the persistent
            process pool (see :func:`measure_protocol`).
        num_workers: worker override for the parallel path.

    Returns:
        A :class:`GraphComparison`.
    """
    if not protocols:
        raise AnalysisError("need at least one protocol to compare")
    measurements: dict[str, ProtocolMeasurement] = {}
    for protocol in protocols:
        protocol_rng = derive_generator(seed, graph.name, protocol)
        measurements[protocol] = measure_protocol(
            graph,
            source,
            protocol,
            trials=trials,
            seed=protocol_rng,
            engine_options=engine_options,
            batch=batch,
            parallel=parallel,
            num_workers=num_workers,
        )
    ratio_estimates: dict[str, RatioEstimate] = {}
    for numerator, denominator in ratios:
        if numerator not in measurements or denominator not in measurements:
            raise AnalysisError(
                f"ratio {numerator}/{denominator} refers to protocols that were not measured"
            )
        ratio_rng = derive_generator(seed, graph.name, numerator, denominator, "ratio")
        ratio_estimates[f"{numerator}/{denominator}"] = bootstrap_ratio_of_means(
            measurements[numerator].sample.times,
            measurements[denominator].sample.times,
            seed=ratio_rng,
        )
    return GraphComparison(
        graph_name=graph.name,
        num_vertices=graph.num_vertices,
        measurements=measurements,
        ratios=ratio_estimates,
    )


def sweep_family(
    family: GraphFamily | str,
    protocols: Sequence[str],
    *,
    sizes: Optional[Sequence[int]] = None,
    trials: int = 100,
    source: int | str = 0,
    seed: SeedLike = None,
    ratios: Sequence[tuple[str, str]] = (),
    engine_options: Optional[dict] = None,
    batch: BatchSpec = "auto",
    parallel: bool | str = False,
    num_workers: Optional[int] = None,
) -> FamilySweep:
    """Measure a set of protocols on a graph family over a size sweep.

    For deterministic families the same graph instance is reused for all
    trials at a given size.  For random families a representative graph is
    sampled per size (with a seed derived from the master seed), which keeps
    the semantics of the theorems — they are statements about individual
    graphs — while still exercising the family; experiments that want
    averaging over the family can pass a factory to
    :func:`repro.analysis.montecarlo.run_trials` directly.

    With ``parallel`` every (size, protocol) cell shards its trials across
    the *same* persistent process pool — pool startup and the per-graph
    shared-memory CSR segment are paid once per grid point, not per cell —
    and the whole sweep runs inside one
    :func:`repro.analysis.shm.sweep_scope`, so the shared result matrices
    persist (and are reused) for the sweep instead of being re-created per
    call.
    """
    if isinstance(family, str):
        family = get_family(family)
    size_list = tuple(int(s) for s in (sizes if sizes is not None else family.default_sizes))
    if not size_list:
        raise AnalysisError("size sweep must contain at least one size")
    comparisons = []
    with shm.sweep_scope() if parallel else nullcontext():
        for size in size_list:
            graph_rng = derive_generator(seed, family.name, size, "graph")
            graph = family.build(size, seed=int(graph_rng.integers(2**31 - 1)))
            comparison_rng = derive_generator(seed, family.name, size, "trials")
            comparisons.append(
                compare_protocols_on_graph(
                    graph,
                    source,
                    protocols,
                    trials=trials,
                    seed=comparison_rng,
                    ratios=ratios,
                    engine_options=engine_options,
                    batch=batch,
                    parallel=parallel,
                    num_workers=num_workers,
                )
            )
    return FamilySweep(
        family_name=family.name,
        sizes=size_list,
        comparisons=tuple(comparisons),
    )
