"""Benchmark E5 — gap constructions separating the two models.

Regenerates the E5 table and asserts both separation directions: the
string-of-stars graph makes synchronous push-pull polynomially slower than
asynchronous (ratio growing with n, below the sqrt(n) ceiling), and the star
makes asynchronous slower by a Θ(log n) factor only.
"""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def test_gap_graph_experiment(run_once, bench_preset):
    result = run_once(run_experiment, "E5", preset=bench_preset)
    assert result.conclusion("async_gap_ratio_grows") is True
    assert result.conclusion("async_gap_below_sqrt_ceiling") is True
    assert result.conclusion("star_ratio_within_log_ceiling") is True
    # On every async-gap row the synchronous protocol is the slower one.
    for row in result.rows:
        if row["direction"] == "async wins":
            assert row["E[T(pp)]"] > row["E[T(pp-a)]"]
        else:
            assert row["E[T(pp-a)]"] > row["E[T(pp)]"]
