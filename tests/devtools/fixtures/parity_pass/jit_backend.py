"""Mirroring half of the must-pass PAR001 pair.

Annotations may differ from the reference (PAR001 compares names, order,
and defaults only) and jit-only private helpers are allowed.
"""

BACKEND_NAME = "jit"


def warmup() -> None:
    pass


def sync_round_step(adjacency, informed, uniforms, ws=None):
    return informed


def _compile_stub(fn):
    return fn
