"""Unit tests for summary statistics and bootstrap intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import (
    bootstrap_mean_interval,
    bootstrap_ratio_of_means,
    normal_mean_interval,
    summarize,
)
from repro.errors import AnalysisError


class TestNormalMeanInterval:
    def test_contains_true_mean_for_large_sample(self):
        rng = np.random.default_rng(1)
        values = rng.normal(5.0, 1.0, 4000)
        estimate = normal_mean_interval(values)
        assert estimate.lower <= 5.0 <= estimate.upper
        assert estimate.value == pytest.approx(5.0, abs=0.1)
        assert estimate.num_samples == 4000

    def test_single_observation(self):
        estimate = normal_mean_interval([3.0])
        assert estimate.value == estimate.lower == estimate.upper == 3.0

    def test_half_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(2)
        small = normal_mean_interval(rng.normal(0, 1, 50))
        large = normal_mean_interval(rng.normal(0, 1, 5000))
        assert large.half_width() < small.half_width()

    def test_summarize_alias(self):
        values = [1.0, 2.0, 3.0]
        assert summarize(values).value == normal_mean_interval(values).value

    def test_validation(self):
        with pytest.raises(AnalysisError):
            normal_mean_interval([])
        with pytest.raises(AnalysisError):
            normal_mean_interval([1.0, float("nan")])
        with pytest.raises(AnalysisError):
            normal_mean_interval([1.0], confidence=1.5)


class TestBootstrapMeanInterval:
    def test_roughly_matches_normal_interval(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(2.0, 1000)
        boot = bootstrap_mean_interval(values, seed=1)
        normal = normal_mean_interval(values)
        assert boot.value == pytest.approx(normal.value)
        assert boot.lower == pytest.approx(normal.lower, abs=0.1)
        assert boot.upper == pytest.approx(normal.upper, abs=0.1)

    def test_reproducible_with_seed(self):
        values = list(np.random.default_rng(4).exponential(1.0, 100))
        a = bootstrap_mean_interval(values, seed=9)
        b = bootstrap_mean_interval(values, seed=9)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_mean_interval([1.0, 2.0], num_resamples=10)
        with pytest.raises(AnalysisError):
            bootstrap_mean_interval([1.0, 2.0], confidence=0.0)


class TestRatioOfMeans:
    def test_point_estimate(self):
        numerator = [4.0, 6.0]
        denominator = [1.0, 3.0]
        estimate = bootstrap_ratio_of_means(numerator, denominator, seed=1)
        assert estimate.value == pytest.approx(2.5)
        assert estimate.numerator_mean == 5.0
        assert estimate.denominator_mean == 2.0

    def test_interval_contains_true_ratio(self):
        rng = np.random.default_rng(5)
        numerator = rng.normal(10.0, 1.0, 500)
        denominator = rng.normal(5.0, 1.0, 500)
        estimate = bootstrap_ratio_of_means(numerator, denominator, seed=2)
        assert estimate.lower <= 2.0 <= estimate.upper
        assert estimate.upper - estimate.lower < 0.5

    def test_rejects_nonpositive_denominator_mean(self):
        with pytest.raises(AnalysisError):
            bootstrap_ratio_of_means([1.0], [0.0], seed=1)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_ratio_of_means([], [1.0])
        with pytest.raises(AnalysisError):
            bootstrap_ratio_of_means([1.0], [1.0], confidence=1.2)

    def test_string_rendering(self):
        estimate = bootstrap_ratio_of_means([2.0, 2.0], [1.0, 1.0], seed=3)
        text = str(estimate)
        assert "2.000" in text
