"""Unit tests for the core Graph type."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.base import Graph, normalize_edges


class TestNormalizeEdges:
    def test_deduplicates_and_sorts(self):
        edges = normalize_edges([(2, 1), (1, 2), (0, 3)])
        assert edges == [(0, 3), (1, 2)]

    def test_orients_edges_low_high(self):
        assert normalize_edges([(5, 2)]) == [(2, 5)]

    def test_rejects_self_loops(self):
        with pytest.raises(GraphError):
            normalize_edges([(1, 1)])

    def test_rejects_negative_vertices(self):
        with pytest.raises(GraphError):
            normalize_edges([(-1, 2)])

    def test_rejects_wrong_arity(self):
        with pytest.raises(GraphError):
            normalize_edges([(1, 2, 3)])


class TestGraphConstruction:
    def test_basic_triangle(self):
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        assert graph.degrees == (2, 2, 2)
        assert graph.is_regular()

    def test_rejects_zero_vertices(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])

    def test_duplicate_edges_collapse(self):
        graph = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1
        assert graph.degree(0) == 1

    def test_name_defaults_to_size_summary(self):
        graph = Graph(4, [(0, 1)])
        assert "n=4" in graph.name

    def test_with_name_keeps_structure(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        renamed = graph.with_name("pair-of-edges")
        assert renamed.name == "pair-of-edges"
        assert renamed.edges == graph.edges
        assert renamed == graph


class TestGraphAccessors:
    def test_neighbors_are_sorted_tuples(self):
        graph = Graph(4, [(0, 3), (0, 1), (0, 2)])
        assert graph.neighbors(0) == (1, 2, 3)
        assert graph.neighbors(2) == (0,)

    def test_has_edge(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(0, 99)

    def test_contains_len_iter(self):
        graph = Graph(5, [(0, 1)])
        assert 4 in graph
        assert 5 not in graph
        assert "0" not in graph
        assert len(graph) == 5
        assert list(graph) == [0, 1, 2, 3, 4]

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        c = Graph(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a graph"


class TestConnectivity:
    def test_connected_path(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.is_connected()
        assert graph.connected_components() == [[0, 1, 2, 3]]

    def test_disconnected_graph(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert not graph.is_connected()
        assert graph.connected_components() == [[0, 1], [2, 3]]

    def test_single_vertex_is_connected(self):
        assert Graph(1, []).is_connected()

    def test_isolated_vertex_disconnects(self):
        graph = Graph(3, [(0, 1)])
        assert not graph.is_connected()


class TestBfsAndEccentricity:
    def test_bfs_distances_on_path(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.bfs_distances(0) == [0, 1, 2, 3]
        assert graph.bfs_distances(2) == [2, 1, 0, 1]

    def test_bfs_unreachable_marked_minus_one(self):
        graph = Graph(3, [(0, 1)])
        assert graph.bfs_distances(0) == [0, 1, -1]

    def test_bfs_rejects_bad_source(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        with pytest.raises(GraphError):
            graph.bfs_distances(7)

    def test_eccentricity(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.eccentricity(0) == 3
        assert graph.eccentricity(1) == 2

    def test_eccentricity_requires_connectivity(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.eccentricity(0)


class TestSubgraphAndRelabel:
    def test_induced_subgraph(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub = graph.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert set(sub.edges) == {(0, 1), (1, 2)}

    def test_subgraph_rejects_unknown_vertex(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.subgraph([0, 5])

    def test_relabeled_permutation(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        relabeled = graph.relabeled([2, 1, 0])
        assert set(relabeled.edges) == {(1, 2), (0, 1)}
        assert relabeled.degree(1) == 2

    def test_relabeled_rejects_non_permutation(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.relabeled([0, 0, 1])


# --------------------------------------------------------------------- #
# The CSR lazy-materialization surface: every structural query must give
# the same answer whether the graph was built from an edge list (eager
# Python tuples) or adopted from CSR arrays (lazy tuples).  Regression
# guard for the class of bug where an accessor reads a `_`-prefixed slot
# directly and finds None on the lazy path (Graph.is_regular did).
# --------------------------------------------------------------------- #
import numpy as np

from repro.graphs import csr_build


def _build(num_vertices, edges, via):
    if via == "edges":
        return Graph(num_vertices, edges)
    heads = np.array([u for u, _ in edges], dtype=np.int64)
    tails = np.array([v for _, v in edges], dtype=np.int64)
    indptr, indices = csr_build.csr_from_half_edges(num_vertices, heads, tails)
    return Graph.from_csr(indptr, indices)


@pytest.fixture(params=["edges", "csr"])
def via(request):
    return request.param


class TestStructuralQueriesBothConstructions:
    CYCLE = (5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    SPLIT = (5, [(0, 1), (1, 2), (3, 4)])

    def test_is_connected(self, via):
        assert _build(*self.CYCLE, via).is_connected()
        assert not _build(*self.SPLIT, via).is_connected()

    def test_connected_components(self, via):
        assert _build(*self.CYCLE, via).connected_components() == [[0, 1, 2, 3, 4]]
        assert _build(*self.SPLIT, via).connected_components() == [[0, 1, 2], [3, 4]]

    def test_eccentricity(self, via):
        graph = _build(*self.CYCLE, via)
        assert graph.eccentricity(0) == 2

    def test_subgraph(self, via):
        sub = _build(*self.CYCLE, via).subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert set(sub.edges) == {(0, 1), (1, 2)}

    def test_eq_and_hash_across_constructions(self, via):
        graph = _build(*self.CYCLE, via)
        reference = Graph(*self.CYCLE)
        assert graph == reference
        assert hash(graph) == hash(reference)

    def test_is_regular(self, via):
        assert _build(*self.CYCLE, via).is_regular()
        assert not _build(*self.SPLIT, via).is_regular()

    def test_degrees_and_min_max(self, via):
        graph = _build(*self.SPLIT, via)
        assert graph.degrees == (1, 2, 1, 1, 1)
        assert graph.min_degree() == 1
        assert graph.max_degree() == 2


def test_is_regular_on_from_csr_graph_regression():
    """Graph.is_regular used to read self._degrees (None on the CSR path)
    and raise TypeError for every from_csr-built graph."""
    indptr, indices = csr_build.csr_from_half_edges(
        3, np.array([0, 1, 0]), np.array([1, 2, 2])
    )
    graph = Graph.from_csr(indptr, indices)
    assert graph.is_regular()
