"""Benchmark E1 — Theorem 1: async push-pull time vs sync time + log n.

Regenerates the E1 table (DESIGN.md per-experiment index) and asserts the
qualitative shape of the claim: the empirical constant
``T_{1/n}(pp-a) / (T_{1/n}(pp) + ln n)`` stays below a universal constant on
every family in the suite.

Since the batched aux/view kernels landed, E1's Monte Carlo sweeps run
through the 2-D batch kernels end-to-end (``theorem1.run(batch=True)`` is
the default) — exactly seed-equivalent to the serial path, so the table is
unchanged and this file doubles as the batched-experiment timing entry.
The engine-level >= 5x aux throughput gate lives in ``bench_batch.py``.
"""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def test_theorem1_experiment(run_once, bench_preset):
    result = run_once(run_experiment, "E1", preset=bench_preset)
    assert result.conclusion("theorem1_consistent") is True
    assert result.conclusion("max_constant_c1") < 4.0
    # Every row individually respects a generous universal constant.
    for row in result.rows:
        assert row["c1 = async/(sync+ln n)"] < 4.0


def test_theorem1_smallest_cell_batched_equals_serial(bench_preset):
    """The dispatch-mode knob is a pure throughput knob: one E1-style cell
    rerun serially reproduces the batched sweep's sample exactly."""
    from repro.analysis.comparison import sweep_family

    batched = sweep_family(
        "complete", ["pp", "pp-a"], sizes=(16,), trials=8, seed=20160725, batch=True
    )
    serial = sweep_family(
        "complete", ["pp", "pp-a"], sizes=(16,), trials=8, seed=20160725, batch=False
    )
    for protocol in ("pp", "pp-a"):
        assert (
            batched.comparisons[0].measurement(protocol).sample.times
            == serial.comparisons[0].measurement(protocol).sample.times
        )
