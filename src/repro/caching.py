"""A small identity-keyed LRU cache shared by the per-graph memo layers.

Several modules memoise values derived from immutable :class:`Graph`
objects — :mod:`repro.core.flatgraph` caches CSR structures,
:mod:`repro.scenarios.base` caches adversarial source picks, and
:mod:`repro.graphs.properties` caches all-vertex eccentricities.  All of
them need the same discipline: key by object identity (graphs are
immutable, so identity caching is safe), guard against ``id()`` reuse with
a weak reference liveness check, refresh recency on hits (Python dicts
preserve insertion order, so delete-and-reinsert keeps the dict ordered
least-recently-used first), and evict dead entries before the oldest live
one.  This module holds the one implementation of that discipline.
"""

from __future__ import annotations

import weakref
from typing import Any, Hashable, Optional

__all__ = ["IdentityLRU"]


class IdentityLRU:
    """A bounded LRU cache of values derived from identity-keyed owners.

    Entries are keyed by ``(id(owner), key)`` and carry a weak reference to
    the owner: a hit whose owner has been collected (and whose ``id`` was
    reused by a new object) is discarded instead of returned.  ``None`` is
    not a cacheable value (it is the miss sentinel).

    Args:
        limit: maximum number of entries kept alive.
    """

    __slots__ = ("_limit", "_entries")

    def __init__(self, limit: int) -> None:
        self._limit = int(limit)
        self._entries: dict[tuple[int, Hashable], tuple[weakref.ref, Any]] = {}

    def get(self, owner: Any, key: Hashable = None) -> Optional[Any]:
        """The cached value for ``(owner, key)``, or ``None`` on a miss."""
        full_key = (id(owner), key)
        entry = self._entries.get(full_key)
        if entry is None:
            return None
        owner_ref, value = entry
        if owner_ref() is not owner:
            del self._entries[full_key]
            return None
        # Refresh recency so eviction drops the least-recently-*used*
        # entry, not merely the oldest-inserted one.
        del self._entries[full_key]
        self._entries[full_key] = entry
        return value

    def put(self, owner: Any, value: Any, key: Hashable = None) -> Any:
        """Insert a value, evicting dead entries first and then the LRU.

        Overwriting an existing ``(owner, key)`` entry never evicts anyone
        else (the insert replaces in place) and refreshes the entry's
        recency, exactly as a :meth:`get` hit would.
        """
        full_key = (id(owner), key)
        if full_key in self._entries:
            # Delete-and-reinsert so the overwrite moves to the MRU end;
            # plain reassignment would keep the old dict position.
            del self._entries[full_key]
        elif len(self._entries) >= self._limit:
            dead = [k for k, (ref, _) in self._entries.items() if ref() is None]
            for k in dead:
                del self._entries[k]
            while len(self._entries) >= self._limit:
                self._entries.pop(next(iter(self._entries)))
        self._entries[full_key] = (weakref.ref(owner), value)
        return value

    def pop(self, owner: Any, key: Hashable = None) -> None:
        """Drop the entry for ``(owner, key)`` immediately, if present."""
        self._entries.pop((id(owner), key), None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, owner_id: int) -> bool:
        """Whether any entry belongs to the owner with this ``id()``."""
        return any(entry_id == owner_id for entry_id, _ in self._entries)
