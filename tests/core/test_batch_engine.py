"""Unit tests for the 2-D batched simulation kernels.

The central contract is *exact serial equivalence*: a batched trial that
consumes generator ``g`` must produce bit-for-bit the informing times of a
serial engine run seeded with ``g``.  These tests check that trial-for-trial
across protocols, graphs, sources, and budget configurations, plus the
usual validation and the ``BatchTimes`` record's derived quantities.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_engine import (
    ASYNC_BATCH_PROTOCOLS,
    SYNC_BATCH_PROTOCOLS,
    is_batchable,
    run_asynchronous_batch,
    run_batch,
    run_synchronous_batch,
)
from repro.core.protocols import spread
from repro.core.result import BatchTimes
from repro.errors import ProtocolError, SimulationError
from repro.graphs import complete_graph, cycle_graph, path_graph, star_graph
from repro.graphs.base import Graph
from repro.graphs.random_graphs import random_regular_graph
from repro.randomness.rng import spawn_generators

ALL_BATCH_PROTOCOLS = sorted(SYNC_BATCH_PROTOCOLS) + sorted(ASYNC_BATCH_PROTOCOLS)


def serial_reference(graph, sources, protocol, seed, **options):
    """Run the serial engine once per trial with spawned generators."""
    generators = spawn_generators(len(sources), seed)
    return [
        spread(graph, source, protocol=protocol, seed=rng, **options)
        for source, rng in zip(sources, generators)
    ]


class TestSerialEquivalence:
    @pytest.mark.parametrize("protocol", ALL_BATCH_PROTOCOLS)
    @pytest.mark.parametrize(
        "graph",
        [
            star_graph(24),
            complete_graph(16),
            cycle_graph(20),
            random_regular_graph(32, 4, seed=5),
        ],
        ids=lambda g: g.name,
    )
    def test_times_match_serial_trial_for_trial(self, protocol, graph):
        sources = [1, 0, 2, 1, 3, 0]
        batched = run_batch(
            graph, sources, protocol, rngs=spawn_generators(len(sources), 123)
        )
        serial = serial_reference(graph, sources, protocol, 123)
        for i, result in enumerate(serial):
            assert tuple(batched.informed_time[i]) == result.informed_time
            assert bool(batched.completed[i]) == result.completed
            assert batched.completion_time[i] == result.spreading_time

    def test_rounds_and_steps_match_serial(self):
        graph = random_regular_graph(24, 3, seed=2)
        sources = [0] * 5
        sync = run_batch(graph, sources, "pp", rngs=spawn_generators(5, 7))
        for i, result in enumerate(serial_reference(graph, sources, "pp", 7)):
            assert sync.rounds[i] == result.rounds
        asyn = run_batch(graph, sources, "pp-a", rngs=spawn_generators(5, 7))
        for i, result in enumerate(serial_reference(graph, sources, "pp-a", 7)):
            assert asyn.steps[i] == result.steps

    def test_scalar_source_with_seed_matches_spawned_rngs(self):
        graph = star_graph(16)
        a = run_batch(graph, 1, "pp", trials=8, seed=99)
        b = run_batch(graph, [1] * 8, "pp", rngs=spawn_generators(8, 99))
        assert np.array_equal(a.informed_time, b.informed_time)

    def test_record_times_false_keeps_scalar_outputs_exact(self):
        graph = random_regular_graph(32, 4, seed=5)
        full = run_batch(graph, 0, "pp", trials=10, seed=3, record_times=True)
        scalar = run_batch(graph, 0, "pp", trials=10, seed=3, record_times=False)
        assert scalar.informed_time is None
        assert np.array_equal(full.completion_time, scalar.completion_time)
        assert np.array_equal(full.rounds, scalar.rounds)


class TestBudgets:
    def test_sync_partial_matches_serial(self):
        graph = star_graph(32)
        sources = [1] * 6
        batched = run_synchronous_batch(
            graph,
            sources,
            mode="push",
            rngs=spawn_generators(6, 11),
            max_rounds=3,
            on_budget_exhausted="partial",
        )
        serial = serial_reference(
            graph, sources, "push", 11, max_rounds=3, on_budget_exhausted="partial"
        )
        for i, result in enumerate(serial):
            assert tuple(batched.informed_time[i]) == result.informed_time
            assert bool(batched.completed[i]) == result.completed
            assert batched.rounds[i] == result.rounds

    @pytest.mark.parametrize("options", [{"max_steps": 40}, {"max_time": 1.25}])
    def test_async_partial_matches_serial(self, options):
        graph = star_graph(24)
        sources = [1] * 6
        batched = run_asynchronous_batch(
            graph,
            sources,
            mode="push-pull",
            rngs=spawn_generators(6, 13),
            on_budget_exhausted="partial",
            **options,
        )
        serial = serial_reference(
            graph, sources, "pp-a", 13, on_budget_exhausted="partial", **options
        )
        for i, result in enumerate(serial):
            assert tuple(batched.informed_time[i]) == result.informed_time
            assert bool(batched.completed[i]) == result.completed

    def test_exhaustion_raises_by_default(self):
        with pytest.raises(SimulationError):
            run_synchronous_batch(star_graph(32), 1, mode="push", trials=4, seed=3, max_rounds=1)
        with pytest.raises(SimulationError):
            run_asynchronous_batch(star_graph(32), 1, trials=4, seed=3, max_steps=2)

    def test_zero_step_budget_is_incomplete_not_hung(self):
        batched = run_asynchronous_batch(
            star_graph(8), 1, trials=3, seed=1, max_steps=0, on_budget_exhausted="partial"
        )
        assert not batched.completed.any()
        assert (batched.steps == 0).all()


class TestValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ProtocolError):
            run_synchronous_batch(star_graph(8), 0, mode="smoke", trials=2, seed=0)

    def test_bad_source_rejected(self):
        with pytest.raises(ProtocolError):
            run_batch(star_graph(8), [0, 99], "pp", seed=0)

    def test_disconnected_graph_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)], name="two-edges")
        with pytest.raises(ProtocolError):
            run_batch(graph, 0, "pp", trials=2, seed=0)

    def test_scalar_source_needs_trial_count(self):
        with pytest.raises(ProtocolError):
            run_batch(star_graph(8), 0, "pp")

    def test_mismatched_rngs_rejected(self):
        with pytest.raises(ProtocolError):
            run_batch(star_graph(8), [0, 1, 2], "pp", rngs=spawn_generators(2, 0))

    def test_unbatchable_protocol_rejected(self):
        with pytest.raises(ProtocolError):
            run_batch(star_graph(8), 0, "no-such-protocol", trials=2, seed=0)

    def test_unknown_view_rejected(self):
        with pytest.raises(ProtocolError):
            run_batch(star_graph(8), 0, "pp-a", trials=2, seed=0, view="smoke")

    def test_is_batchable_matrix(self):
        assert is_batchable("pp")
        assert is_batchable("pp-a")
        assert is_batchable("pp-a", {"view": "global", "max_steps": 10})
        assert is_batchable("ppx")
        assert is_batchable("ppy")
        assert is_batchable("ppx", {"max_rounds": 10})
        assert is_batchable("pp-a", {"view": "node_clocks"})
        assert is_batchable("pp-a", {"view": "edge_clocks", "max_time": 2.0})
        assert not is_batchable("pp", {"record_trace": True})
        assert not is_batchable("ppx", {"record_trace": True})
        assert not is_batchable("pp-a", {"view": "smoke"})  # unknown view
        assert not is_batchable("pp", {"max_steps": 10})  # async option on sync
        assert not is_batchable("ppx", {"max_steps": 10})  # async option on aux

    def test_is_batchable_scenario_matrix(self):
        """Every runtime scenario batches wherever the serial engine runs
        it; only the serial-rejected combinations fall back."""
        from repro.scenarios import (
            BurstLoss,
            Delay,
            DynamicGraph,
            FamilyResampler,
            MessageLoss,
            NodeChurn,
            TargetedChurn,
        )

        dynamic = DynamicGraph(FamilyResampler("erdos_renyi"), period=2)
        runtime = [
            MessageLoss(0.2),
            BurstLoss(0.2, 0.5, 0.8),
            NodeChurn(0.1),
            TargetedChurn(0.1),
        ]
        for scenario in runtime:
            assert is_batchable("pp", None, scenario)
            for view in ("global", "node_clocks", "edge_clocks"):
                assert is_batchable("pp-a", {"view": view}, scenario)
            assert not is_batchable("ppx", None, scenario)
        for view in ("global", "node_clocks", "edge_clocks"):
            assert is_batchable("pp-a", {"view": view}, Delay())
        assert not is_batchable("pp", None, Delay())  # sync has no clocks
        assert is_batchable("pp", None, dynamic)
        assert is_batchable("pp-a", None, dynamic)  # async dynamic batches now
        assert is_batchable("pp-a", {"view": "node_clocks"}, dynamic)
        # The one hole in the matrix: edge clocks cannot survive a resample.
        assert not is_batchable("pp-a", {"view": "edge_clocks"}, dynamic)


class TestBatchTimesRecord:
    def test_trivial_single_vertex_graph(self):
        batched = run_batch(Graph(1, [], name="dot"), 0, "pp", trials=4, seed=0)
        assert batched.completed.all()
        assert (batched.completion_time == 0.0).all()
        assert batched.num_trials == 4

    def test_derived_quantities_match_spreading_result(self):
        graph = random_regular_graph(24, 3, seed=4)
        sources = [0, 1, 2, 3]
        batched = run_batch(graph, sources, "pp", rngs=spawn_generators(4, 21))
        serial = serial_reference(graph, sources, "pp", 21)
        assert np.array_equal(
            batched.spreading_times(), [r.spreading_time for r in serial]
        )
        for fraction in (0.25, 0.5, 1.0):
            assert np.array_equal(
                batched.time_to_inform_fraction(fraction),
                [r.time_to_inform_fraction(fraction) for r in serial],
            )
        assert batched.is_synchronous
        assert "pp on" in batched.summary()

    def test_fraction_needs_recorded_times(self):
        batched = run_batch(star_graph(8), 0, "pp", trials=2, seed=0, record_times=False)
        with pytest.raises(ValueError):
            batched.time_to_inform_fraction(0.5)
        with pytest.raises(ValueError):
            batched.time_to_inform_fraction(1.5)


class TestCompletionMasking:
    """Finished trials must be frozen: more rounds for slow trials in the
    same batch can never change (resurrect) an already-completed trial."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        batch=st.integers(min_value=1, max_value=9),
        protocol=st.sampled_from(ALL_BATCH_PROTOCOLS),
    )
    def test_batch_composition_invariance(self, seed, batch, protocol):
        """Each trial's outcome is independent of its batch-mates: running
        the batch together equals running every trial in its own batch."""
        graph = star_graph(12)
        sources = [(seed + i) % graph.num_vertices for i in range(batch)]
        together = run_batch(graph, sources, protocol, rngs=spawn_generators(batch, seed))
        alone_rngs = spawn_generators(batch, seed)
        for i in range(batch):
            alone = run_batch(graph, [sources[i]], protocol, rngs=[alone_rngs[i]])
            assert np.array_equal(together.informed_time[i], alone.informed_time[0])
            assert together.completed[i] == alone.completed[0]

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        batch=st.integers(min_value=2, max_value=8),
    )
    def test_completed_trials_are_internally_consistent(self, seed, batch):
        graph = cycle_graph(10)
        batched = run_batch(graph, 0, "pp", trials=batch, seed=seed)
        assert batched.completed.all()
        times = batched.informed_time
        assert np.isfinite(times).all()
        # The completion time is exactly the last informing time, and no
        # vertex is informed after its trial completed.
        assert np.array_equal(times.max(axis=1), batched.completion_time)
        assert np.array_equal(times[:, 0], np.zeros(batch))
        assert np.array_equal(batched.rounds.astype(float), batched.completion_time)
