"""Pragma suppression: the rng002_flag pattern, justified, lints clean."""

from repro.randomness.rng import as_generator, draw_order_critical


@draw_order_critical
def spread(steps, seed):
    rng = as_generator(seed)
    informed = 1
    for _ in range(steps):
        if informed > 1:
            # repro: allow[RNG002] -- fixture: gate schedule is deterministic here
            informed += int(rng.random() < 0.5)
        informed = informed + 1
    return informed
