"""Coverage tracing: exactness, batch/serial equivalence, ambient capture.

The load-bearing guarantee is that a trace recorded on the batched kernels
is *float-identical* to one recomputed from the serial engine at the same
seed — tracing ingests the kernels' ``(trials, n)`` informing-time
matrices and never touches an RNG stream, so the batch/serial and
numpy/jit equivalences of the simulation layer carry over to the curves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.curves import (
    coverage_curve,
    coverage_curve_from_histories,
    coverage_curve_from_trace,
)
from repro.analysis.montecarlo import collect_results, run_trials
from repro.analysis.parallel import chunk_plan, run_trials_parallel
from repro.core.kernels import jit_backend
from repro.errors import AnalysisError
from repro.graphs import cycle_graph, star_graph
from repro.telemetry.trace import (
    CoverageRecorder,
    TraceSpec,
    coverage_histories,
    collecting_traces,
)

BACKENDS = [
    "numpy",
    pytest.param(
        "jit",
        marks=pytest.mark.skipif(
            not jit_backend.is_available(),
            reason="numba is not installed (and REPRO_JIT_PURE_PYTHON is unset)",
        ),
    ),
]


class TestCoverageHistories:
    def test_matches_direct_counting(self):
        matrix = np.array([[0.0, 2.0, 2.0, 5.0], [1.0, 1.0, np.inf, 3.0]])
        grid = np.array([0.0, 1.0, 2.0, 4.0, 5.0])
        histories = coverage_histories(matrix, grid)
        expected = np.array(
            [[(row <= t).sum() for t in grid] for row in matrix]
        )
        assert histories.shape == (2, 5)
        assert np.array_equal(histories, expected)

    def test_uninformed_rows_stay_at_zero(self):
        matrix = np.full((3, 4), np.inf)
        histories = coverage_histories(matrix, np.array([0.0, 10.0]))
        assert histories.sum() == 0

    def test_matches_serial_searchsorted(self):
        rng = np.random.default_rng(7)
        matrix = rng.exponential(2.0, (5, 30))
        matrix[rng.random((5, 30)) < 0.2] = np.inf
        grid = np.linspace(0.0, 6.0, 50)
        histories = coverage_histories(matrix, grid)
        for row_index in range(5):
            finite = np.sort(matrix[row_index][np.isfinite(matrix[row_index])])
            serial = np.searchsorted(finite, grid, side="right")
            assert np.array_equal(histories[row_index], serial)


class TestCoverageRecorder:
    def test_record_block_and_result_agree(self):
        graph = cycle_graph(16)
        results = collect_results(graph, 0, "pp", trials=3, seed=9)
        by_result = CoverageRecorder()
        for result in results:
            by_result.record_result(result)
        matrix = by_result.times_matrix()
        by_block = CoverageRecorder()
        by_block.record_block(matrix)
        assert np.array_equal(by_block.times_matrix(), matrix)
        assert matrix.shape == (3, 16)

    def test_trace_envelope_shape(self):
        recorder = CoverageRecorder(TraceSpec(grid_points=64))
        graph = cycle_graph(12)
        run_trials(graph, 0, "pp", trials=4, seed=1, trace=recorder)
        trace = recorder.trace(protocol="pp", graph_name=graph.name)
        assert trace.num_trials == 4 and trace.num_vertices == 12
        assert trace.histories.shape == (4, 64)
        rows = list(trace.envelope_rows())
        assert len(rows) == 64
        assert set(rows[0]) == {"time", "mean", "p10", "p50", "p90"}
        # Every trial starts at the informed source and ends fully covered.
        assert rows[0]["mean"] == pytest.approx(1 / 12)
        assert rows[-1]["mean"] == 1.0

    def test_validation(self):
        recorder = CoverageRecorder()
        with pytest.raises(AnalysisError):
            recorder.trace()  # nothing recorded
        recorder.record_block(np.zeros((2, 5)))
        with pytest.raises(AnalysisError):
            recorder.record_block(np.zeros((2, 6)))  # inconsistent width
        with pytest.raises(AnalysisError):
            recorder.record_block(np.zeros(5))  # not 2-D


class TestBatchSerialCurveEquality:
    """The acceptance property: batch-traced == serial-recomputed curves."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("protocol", ["pp", "pp-a"])
    def test_batch_trace_matches_serial_trace(self, protocol, backend):
        graph = cycle_graph(32)
        options = {"backend": backend}
        batched = CoverageRecorder()
        sample_b = run_trials(
            graph, 0, protocol, trials=8, seed=42, batch=True,
            engine_options=options, trace=batched,
        )
        serial = CoverageRecorder()
        sample_s = run_trials(
            graph, 0, protocol, trials=8, seed=42, batch=False,
            engine_options=options, trace=serial,
        )
        assert sample_b.times == sample_s.times
        assert np.array_equal(batched.times_matrix(), serial.times_matrix())
        curve_b = coverage_curve_from_trace(
            batched.trace(protocol=protocol, graph_name=graph.name)
        )
        curve_s = coverage_curve_from_trace(
            serial.trace(protocol=protocol, graph_name=graph.name)
        )
        assert curve_b.times == curve_s.times
        assert curve_b.mean_fraction == curve_s.mean_fraction
        assert curve_b.lower_fraction == curve_s.lower_fraction
        assert curve_b.upper_fraction == curve_s.upper_fraction

    def test_trace_matches_legacy_coverage_curve(self):
        """The batched constructor reproduces the per-result aggregator."""
        graph = star_graph(24)
        results = collect_results(graph, 0, "pp-a", trials=6, seed=5)
        legacy = coverage_curve(results, grid_points=120)
        recorder = CoverageRecorder(TraceSpec(grid_points=120))
        for result in results:
            recorder.record_result(result)
        from_trace = coverage_curve_from_trace(
            recorder.trace(protocol="pp-a", graph_name=graph.name)
        )
        assert from_trace.times == legacy.times
        assert from_trace.mean_fraction == legacy.mean_fraction
        assert from_trace.lower_fraction == legacy.lower_fraction
        assert from_trace.upper_fraction == legacy.upper_fraction

    def test_tracing_never_changes_the_sample(self):
        graph = cycle_graph(20)
        plain = run_trials(graph, 0, "pp", trials=6, seed=13, batch=True)
        traced = run_trials(
            graph, 0, "pp", trials=6, seed=13, batch=True,
            trace=CoverageRecorder(),
        )
        assert plain.times == traced.times


class TestCurveFromHistories:
    def test_requires_consistent_shapes(self):
        with pytest.raises(AnalysisError):
            coverage_curve_from_histories(
                "pp", "g", np.linspace(0, 1, 5), np.zeros((2, 4)), 10
            )


class TestParallelTracing:
    def test_parallel_trace_matches_serial_chunk_replay(self):
        graph = cycle_graph(24)
        recorder = CoverageRecorder()
        sample = run_trials_parallel(
            graph, 0, "pp", trials=9, seed=77, num_workers=3, trace=recorder
        )
        _, plan = chunk_plan(9, 3, 77)
        replay = CoverageRecorder()
        for size, chunk_seed in plan:
            run_trials(graph, 0, "pp", trials=size, seed=chunk_seed, trace=replay)
        assert np.array_equal(recorder.times_matrix(), replay.times_matrix())
        assert sample.num_trials == 9

    def test_trace_requires_shared_transport_and_concrete_graph(self):
        graph = cycle_graph(8)
        with pytest.raises(AnalysisError, match="shared"):
            run_trials_parallel(
                graph, 0, "pp", trials=4, seed=1, num_workers=2,
                parallel="pickle", trace=CoverageRecorder(),
            )
        with pytest.raises(AnalysisError, match="concrete Graph"):
            run_trials_parallel(
                "cycle", 0, "pp", trials=4, seed=1, size=8, num_workers=2,
                trace=CoverageRecorder(),
            )

    def test_single_chunk_degenerate_path(self):
        graph = cycle_graph(10)
        recorder = CoverageRecorder()
        run_trials_parallel(
            graph, 0, "pp", trials=3, seed=4, num_workers=8, trace=recorder
        )
        assert recorder.times_matrix().shape == (3, 10)


class TestAmbientCollection:
    def test_serial_and_batch_paths_deposit(self):
        graph = cycle_graph(12)
        with collecting_traces(TraceSpec(grid_points=40)) as collector:
            run_trials(graph, 0, "pp", trials=3, seed=2, batch=False)
            run_trials(graph, 0, "pp", trials=3, seed=2, batch=True)
        assert len(collector.traces) == 2
        first, second = collector.traces
        assert first.num_trials == second.num_trials == 3
        assert np.array_equal(first.histories, second.histories)

    def test_collection_is_scoped(self):
        graph = cycle_graph(8)
        with collecting_traces() as collector:
            pass
        run_trials(graph, 0, "pp", trials=2, seed=1)
        assert collector.traces == []
