"""Numba ``@njit`` kernels: per-trial CSR loops with no ``(B, n)`` temporaries.

Each kernel re-expresses its numpy counterpart as a compiled per-trial /
per-vertex loop over the CSR ``indptr``/``indices`` arrays.  The loops
consume exactly the randomness the engine pre-drew (contact uniforms per
round, the chunked gap/caller/uniform buffers, the pooled tick blocks) and
are deterministic given it, so:

* **Sync rounds** and the **per-trial async modes** are bit-identical to
  the numpy backend (and therefore to the serial engines) — the full
  ``KERNEL_CASES`` registry replays under ``backend="jit"``.
* The **chunked pooled clock-view consumer** is also draw-order identical:
  the engine resolves each block before the consumer runs, so both
  backends read the same pooled stream.  Blocks with churn/burst epochs
  delegate to the numpy consumer (epoch crossings draw from the pooled
  generator mid-column, which a nopython loop cannot).
* The **pooled async global view** agrees in distribution only: this
  backend drains the shared generator trial by trial, reordering its
  consumption relative to the numpy loop's lockstep refills.

The asynchronous drain returns control to Python with a per-trial status
code whenever a trial needs something a nopython region cannot do — a
buffer refill, an epoch/resample crossing (both draw from
``numpy.random.Generator`` objects) — and the driver resumes it; a
boundary break happens *before* the pending draw is consumed, so the tick
time is recomputed from the identical floats on re-entry.

Without numba the module still imports: the kernels stay plain-Python
(the resolver then routes ``backend="jit"`` to numpy with a warning), and
setting ``REPRO_JIT_PURE_PYTHON=1`` opts into running these loops
uncompiled anyway — slow, but it lets numba-free environments verify the
jit loop semantics against the equivalence harness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro import config
from repro.core.kernels import numpy_backend
from repro.telemetry.metrics import current_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.batch_engine import _ScenarioParts
    from repro.core.kernels import AsyncState

BACKEND_NAME = "jit"

try:
    from numba import njit as _njit

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _njit = None
    _HAVE_NUMBA = False


def is_compiled() -> bool:
    """Whether the kernels below are actually numba-compiled."""
    return _HAVE_NUMBA


def is_available() -> bool:
    """Whether ``backend="jit"`` resolves here instead of falling back."""
    return _HAVE_NUMBA or config.read_flag("REPRO_JIT_PURE_PYTHON")


def _compile(fn: Callable[..., None]) -> Callable[..., None]:
    if _HAVE_NUMBA:
        return _njit(cache=True)(fn)
    return fn


# Typed dummies standing in for absent optional arrays (numba needs a
# concrete array argument even when the matching has_* flag is False).
_B2 = np.zeros((0, 0), dtype=bool)
_F2 = np.zeros((0, 0), dtype=np.float64)
_F1 = np.zeros(0, dtype=np.float64)
_I64 = np.zeros(0, dtype=np.int64)

# Status codes the asynchronous drain hands back to the Python driver.
_NEED_REFILL = 0
_OVERTIME = 1
_BOUNDARY = 2
_COMPLETED = 3


def warmup() -> None:
    """Compilation happens through the engine calls of ``warmup_kernels``."""


# ---------------------------------------------------------------------- #
# Synchronous round step
# ---------------------------------------------------------------------- #
def _sync_round_impl(
    degrees: np.ndarray, start: np.ndarray, indices: np.ndarray,
    draws: np.ndarray, informed: np.ndarray,
    times: np.ndarray, has_times: bool, kept: np.ndarray, has_kept: bool,
    up: np.ndarray, has_up: bool,
    round_time: float, push_allowed: bool, pull_allowed: bool,
    counts: np.ndarray,
) -> None:
    live, n = draws.shape
    snapshot = np.empty(n, dtype=np.bool_)
    for i in range(live):
        for v in range(n):
            snapshot[v] = informed[i, v]
        for v in range(n):
            deg = degrees[v]
            off = int(draws[i, v] * deg)
            if off > deg - 1:
                off = deg - 1
            contact = indices[start[v] + off]
            if has_up and not (up[i, v] and up[i, contact]):
                continue
            if has_kept and not kept[i, v]:
                continue
            if pull_allowed and not snapshot[v] and snapshot[contact]:
                if not informed[i, v]:
                    informed[i, v] = True
                    counts[i] += 1
                if has_times:
                    times[i, v] = round_time
            if push_allowed and snapshot[v] and not snapshot[contact]:
                if not informed[i, contact]:
                    informed[i, contact] = True
                    counts[i] += 1
                if has_times:
                    times[i, contact] = round_time


def _sync_round_dynamic_impl(
    degrees: np.ndarray, start: np.ndarray, indices: np.ndarray,
    draws: np.ndarray, informed: np.ndarray,
    times: np.ndarray, has_times: bool, kept: np.ndarray, has_kept: bool,
    up: np.ndarray, has_up: bool,
    round_time: float, push_allowed: bool, pull_allowed: bool,
    counts: np.ndarray,
) -> None:
    # As _sync_round_impl, against per-trial (live, n) degree/start tables
    # indexing one concatenated neighbor array.
    live, n = draws.shape
    snapshot = np.empty(n, dtype=np.bool_)
    for i in range(live):
        for v in range(n):
            snapshot[v] = informed[i, v]
        for v in range(n):
            deg = degrees[i, v]
            off = int(draws[i, v] * deg)
            if off > deg - 1:
                off = deg - 1
            contact = indices[start[i, v] + off]
            if has_up and not (up[i, v] and up[i, contact]):
                continue
            if has_kept and not kept[i, v]:
                continue
            if pull_allowed and not snapshot[v] and snapshot[contact]:
                if not informed[i, v]:
                    informed[i, v] = True
                    counts[i] += 1
                if has_times:
                    times[i, v] = round_time
            if push_allowed and snapshot[v] and not snapshot[contact]:
                if not informed[i, contact]:
                    informed[i, contact] = True
                    counts[i] += 1
                if has_times:
                    times[i, contact] = round_time


_sync_round = _compile(_sync_round_impl)
_sync_round_dynamic = _compile(_sync_round_dynamic_impl)


def sync_workspace(batch: int, n: int, idx_dtype: type) -> None:
    """The jit round step needs no vectorisation buffers."""
    return None


def sync_round_step(
    csr: tuple,
    draws: np.ndarray,
    kept: Optional[np.ndarray],
    up_live: Optional[np.ndarray],
    informed_live: np.ndarray,
    times_live: Optional[np.ndarray],
    round_index: int,
    push_allowed: bool,
    pull_allowed: bool,
    ws: None,
    counts: np.ndarray,
) -> np.ndarray:
    degrees, _max_offset, start, indices = csr
    new_counts = counts.copy()
    _sync_round(
        degrees, start, indices, draws, informed_live,
        times_live if times_live is not None else _F2, times_live is not None,
        np.ascontiguousarray(kept) if kept is not None else _B2, kept is not None,
        np.ascontiguousarray(up_live) if up_live is not None else _B2, up_live is not None,
        float(round_index), bool(push_allowed), bool(pull_allowed), new_counts,
    )
    return new_counts


def sync_round_step_dynamic(
    stacked: tuple,
    row_offsets_wide: np.ndarray,
    draws: np.ndarray,
    kept: Optional[np.ndarray],
    up_live: Optional[np.ndarray],
    informed_live: np.ndarray,
    times_live: Optional[np.ndarray],
    round_index: int,
    push_allowed: bool,
    pull_allowed: bool,
    ws: None,
    counts: np.ndarray,
) -> np.ndarray:
    degrees_st, start_st, indices_cat = stacked
    new_counts = counts.copy()
    _sync_round_dynamic(
        degrees_st, start_st, indices_cat, draws, informed_live,
        times_live if times_live is not None else _F2, times_live is not None,
        np.ascontiguousarray(kept) if kept is not None else _B2, kept is not None,
        np.ascontiguousarray(up_live) if up_live is not None else _B2, up_live is not None,
        float(round_index), bool(push_allowed), bool(pull_allowed), new_counts,
    )
    return new_counts


# ---------------------------------------------------------------------- #
# Asynchronous ("global" view) tick loop
# ---------------------------------------------------------------------- #
def _async_drain_impl(
    rows: np.ndarray, status: np.ndarray, gaps: np.ndarray,
    callers: np.ndarray, nbr_uniforms: np.ndarray,
    loss_uniforms: np.ndarray, has_loss: bool,
    positions: np.ndarray, buffer_lengths: np.ndarray, now: np.ndarray,
    informed: np.ndarray, times: np.ndarray, has_times: bool,
    num_informed: np.ndarray, completed: np.ndarray,
    completion_time: np.ndarray,
    degrees: np.ndarray, start: np.ndarray, indices: np.ndarray,
    use_tg: bool, tg_degrees: np.ndarray, tg_start: np.ndarray,
    tg_indices: np.ndarray, tg_width: int,
    loss_thresh: np.ndarray, up: np.ndarray, has_up: bool,
    bound: np.ndarray, has_bound: bool,
    has_adaptive: bool, adaptive_p: float, jam_budget: np.ndarray,
    time_budget: float, finite_time_budget: bool, mode_code: int, n: int,
) -> None:
    # Advance each listed trial until it needs the Python driver: a buffer
    # refill (_NEED_REFILL), a boundary crossing (_BOUNDARY — the pending
    # draw is NOT consumed, so re-entry recomputes the identical tick
    # time), the time budget (_OVERTIME — draw consumed, not executed,
    # mirroring the serial engine), or completion (_COMPLETED).
    for j in range(rows.shape[0]):
        b = rows[j]
        p = positions[b]
        blen = buffer_lengths[b]
        t_now = now[b]
        st = _NEED_REFILL
        while True:
            if p >= blen:
                st = _NEED_REFILL
                break
            gap = gaps[b, p]
            t = t_now + gap
            if finite_time_budget and t > time_budget:
                p += 1
                t_now = t
                st = _OVERTIME
                break
            if has_bound and t >= bound[b]:
                st = _BOUNDARY
                break
            p += 1
            t_now = t
            caller = callers[b, p - 1]
            u = nbr_uniforms[b, p - 1]
            if use_tg:
                vp = b * n + caller
                deg = tg_degrees[vp]
                off = int(u * deg)
                if off > deg - 1:
                    off = deg - 1
                callee = tg_indices[b * tg_width + tg_start[vp] + off]
            else:
                deg = degrees[caller]
                off = int(u * deg)
                if off > deg - 1:
                    off = deg - 1
                callee = indices[start[caller] + off]
            ci = informed[b, caller]
            ce = informed[b, callee]
            if mode_code == 2:
                ok = ci != ce
            elif mode_code == 0:
                ok = ci and not ce
            else:
                ok = (not ci) and ce
            # The up-check precedes the loss-check so the adaptive jammer
            # only sees would-transmit contacts; for plain loss the order is
            # irrelevant (pure conjunction, the draw is consumed either way).
            if ok and has_up and not (up[b, caller] and up[b, callee]):
                ok = False
            if ok and has_loss and loss_uniforms[b, p - 1] < loss_thresh[b]:
                ok = False
            if (
                ok
                and has_adaptive
                and jam_budget[b] > 0
                and loss_uniforms[b, p - 1] < adaptive_p
            ):
                jam_budget[b] -= 1
                ok = False
            if ok:
                if mode_code == 2:
                    target = callee if ci else caller
                elif mode_code == 0:
                    target = callee
                else:
                    target = caller
                informed[b, target] = True
                if has_times:
                    times[b, target] = t
                num_informed[b] += 1
                if num_informed[b] == n:
                    completed[b] = True
                    completion_time[b] = t
                    st = _COMPLETED
                    break
        positions[b] = p
        now[b] = t_now
        status[j] = st


_async_drain = _compile(_async_drain_impl)


def async_tick_loop(state: "AsyncState") -> None:
    """Drain an :class:`~repro.core.kernels.AsyncState` to completion.

    The compiled drain does all per-tick work; this driver handles
    everything that needs a :class:`numpy.random.Generator` — chunk
    refills via the shared :meth:`AsyncState.draw_chunk` (same draw order
    as the numpy backend) and epoch/resample crossings via
    ``parts.cross_boundaries`` — plus retirements.  A retired trial's row
    costs the drain nothing (it is dropped from the ``rows`` list), so the
    active set is compact by construction.  The stacked-CSR arrays are
    re-fetched every pass: a resample can reallocate them.
    """
    parts = state.parts
    n = state.n
    live = state.live
    if not live.any():
        return
    mode_code = 2 if state.mode == "push-pull" else (0 if state.mode == "push" else 1)
    has_adaptive = parts.adaptive_loss is not None
    adaptive_p = float(parts.adaptive_loss.p) if has_adaptive else 0.0
    jam_budget = parts.jam_budget if has_adaptive else _I64
    lossy = state.loss_uniforms is not None and not has_adaptive
    if lossy:
        thresh = parts.loss_threshold(state.bad)
        loss_thresh = (
            np.full(state.batch, float(thresh))
            if np.isscalar(thresh)
            else np.asarray(thresh, dtype=np.float64)
        )
    else:
        loss_thresh = _F1
    has_bound = state.has_boundaries
    if has_bound:
        bound = np.full(state.batch, np.inf)
        if state.next_epoch is not None:
            np.minimum(bound, state.next_epoch, out=bound)
        if state.next_resample is not None:
            np.minimum(bound, state.next_resample, out=bound)
    else:
        bound = _F1
    times = state.times if state.times is not None else _F2
    has_times = state.times is not None
    up = state.up if state.up is not None else _B2
    has_up = state.up is not None
    loss_arr = state.loss_uniforms if state.loss_uniforms is not None else _F2
    burst = parts.burst
    # Telemetry rides the existing status-code drain: informed-count deltas
    # are observed Python-side at each drain return, so the compiled region
    # and the RNG stream are untouched whether metrics are on or off.
    metrics = current_metrics()

    while True:
        rows = np.flatnonzero(live)
        if rows.size == 0:
            break
        tg = state.trial_graphs
        if tg is not None:
            tg_degrees, tg_start, tg_indices = tg.degrees, tg.rel_start, tg.indices
            tg_width = tg.width
        else:
            tg_degrees = tg_start = tg_indices = _I64
            tg_width = 0
        status = np.empty(rows.size, dtype=np.int64)
        informed_before = (
            int(state.num_informed[rows].sum()) if metrics is not None else 0
        )
        _async_drain(
            rows, status, state.gaps, state.callers, state.nbr_uniforms,
            loss_arr, lossy,
            state.positions, state.buffer_lengths, state.now,
            state.informed, times, has_times,
            state.num_informed, state.completed, state.completion_time,
            state.degrees, state.start, state.indices,
            tg is not None, tg_degrees, tg_start, tg_indices, tg_width,
            loss_thresh, up, has_up, bound, has_bound,
            has_adaptive, adaptive_p, jam_budget,
            state.time_budget, state.finite_time_budget, mode_code, n,
        )
        if metrics is not None:
            metrics.count("engine.drain_returns")
            metrics.count(
                "engine.messages_delivered",
                int(state.num_informed[rows].sum()) - informed_before,
            )
        for j in range(rows.size):
            b = int(rows[j])
            st = int(status[j])
            if st == _COMPLETED:
                live[b] = False
                state.steps[b] = state.chunk_base[b] + state.positions[b]
            elif st == _OVERTIME:
                live[b] = False
                state.overtime[b] = True
                state.steps[b] = state.chunk_base[b] + state.positions[b]
            elif st == _BOUNDARY:
                t = float(state.now[b] + state.gaps[b, state.positions[b]])
                parts.cross_boundaries(
                    b, t, state.rng_for(b), n, state.up, state.bad,
                    state.next_epoch, state.next_resample, tg,
                    state.informed,
                )
                next_bound = np.inf
                if state.next_epoch is not None:
                    next_bound = float(state.next_epoch[b])
                if state.next_resample is not None:
                    next_bound = min(next_bound, float(state.next_resample[b]))
                bound[b] = next_bound
                if lossy and burst is not None:
                    loss_thresh[b] = (
                        burst.p_loss_bad if state.bad[b] else burst.p_loss_good
                    )
            else:  # _NEED_REFILL: retire the chunk, then the budget check
                state.chunk_base[b] += state.buffer_lengths[b]
                state.positions[b] = 0
                state.buffer_lengths[b] = 0
                remaining = state.step_budget - int(state.chunk_base[b])
                if remaining <= 0:
                    live[b] = False
                    state.steps[b] = state.chunk_base[b]
                    continue
                chunk = min(state.chunk, remaining)
                state.draw_chunk(state.rng_for(b), b, chunk, b)
                state.buffer_lengths[b] = chunk


# ---------------------------------------------------------------------- #
# Pooled clock-view chunk consumer
# ---------------------------------------------------------------------- #
def _clock_drain_impl(
    rows: np.ndarray, width: int, executed: int, tick_times: np.ndarray,
    callers: np.ndarray, callees: np.ndarray,
    loss_block: np.ndarray, has_loss: bool, loss_prob: float,
    up: np.ndarray, has_up: bool,
    has_adaptive: bool, adaptive_p: float, jam_budget: np.ndarray,
    informed: np.ndarray, times: np.ndarray, has_times: bool,
    num_informed: np.ndarray, steps: np.ndarray,
    completed: np.ndarray, completion_time: np.ndarray,
    live: np.ndarray, now: np.ndarray,
    time_budget: float, finite_time_budget: bool, mode_code: int, n: int,
) -> None:
    for j in range(rows.shape[0]):
        b = rows[j]
        survived = True
        for col in range(width):
            t = tick_times[j, col]
            if finite_time_budget and t > time_budget:
                # The first over-budget event is popped but not executed.
                live[b] = False
                steps[b] = executed + col
                survived = False
                break
            caller = callers[j, col]
            callee = callees[j, col]
            ci = informed[b, caller]
            ce = informed[b, callee]
            if mode_code == 2:
                ok = ci != ce
            elif mode_code == 0:
                ok = ci and not ce
            else:
                ok = (not ci) and ce
            # Up before loss: the adaptive jammer must only see
            # would-transmit contacts (result-identical for plain loss).
            if ok and has_up and not (up[b, caller] and up[b, callee]):
                ok = False
            if ok and has_loss and loss_block[j, col] < loss_prob:
                ok = False
            if (
                ok
                and has_adaptive
                and jam_budget[b] > 0
                and loss_block[j, col] < adaptive_p
            ):
                jam_budget[b] -= 1
                ok = False
            if ok:
                if mode_code == 2:
                    target = callee if ci else caller
                elif mode_code == 0:
                    target = callee
                else:
                    target = caller
                informed[b, target] = True
                if has_times:
                    times[b, target] = t
                num_informed[b] += 1
                if num_informed[b] == n:
                    completed[b] = True
                    completion_time[b] = t
                    steps[b] = executed + col + 1
                    live[b] = False
                    survived = False
                    break
        if survived:
            steps[b] = executed + width
            now[b] = tick_times[j, width - 1]


_clock_drain = _compile(_clock_drain_impl)


def clock_chunk_consume(
    rows: np.ndarray,
    executed: int,
    width: int,
    tick_times: np.ndarray,
    callers: np.ndarray,
    callees: np.ndarray,
    loss_block: Optional[np.ndarray],
    informed: np.ndarray,
    times: Optional[np.ndarray],
    num_informed: np.ndarray,
    steps: np.ndarray,
    completed: np.ndarray,
    completion_time: np.ndarray,
    live: np.ndarray,
    now: np.ndarray,
    n: int,
    time_budget: float,
    finite_time_budget: bool,
    mode_pp: bool,
    push_allowed: bool,
    parts: "_ScenarioParts",
    bad: Optional[np.ndarray],
    up: Optional[np.ndarray],
    next_epoch: Optional[np.ndarray],
    pooled_rng: Optional[np.random.Generator],
) -> None:
    """Consume one pre-drawn pooled block; identical results to numpy.

    All block randomness is resolved by the engine before this runs, so
    the compiled per-trial column drain reads the same pooled stream the
    numpy column loop would.  Blocks with epoch boundaries (churn updates
    or a burst channel) delegate to the numpy consumer — the crossings
    draw from ``pooled_rng`` mid-column.
    """
    if next_epoch is not None:
        numpy_backend.clock_chunk_consume(
            rows, executed, width, tick_times, callers, callees, loss_block,
            informed, times, num_informed, steps, completed, completion_time,
            live, now, n, time_budget, finite_time_budget, mode_pp, push_allowed,
            parts, bad, up, next_epoch, pooled_rng,
        )
        return
    mode_code = 2 if mode_pp else (0 if push_allowed else 1)
    has_adaptive = parts.adaptive_loss is not None
    adaptive_p = float(parts.adaptive_loss.p) if has_adaptive else 0.0
    jam_budget = parts.jam_budget if has_adaptive else _I64
    has_loss = loss_block is not None and not has_adaptive
    # Without epochs there is no burst channel, so the threshold is the
    # scalar independent-loss probability.
    loss_prob = float(parts.loss_threshold(bad)) if has_loss else 0.0
    _clock_drain(
        rows, width, int(executed), tick_times,
        np.ascontiguousarray(callers), np.ascontiguousarray(callees),
        loss_block if loss_block is not None else _F2, has_loss, loss_prob,
        np.ascontiguousarray(up) if up is not None else _B2, up is not None,
        has_adaptive, adaptive_p, jam_budget,
        informed, times if times is not None else _F2, times is not None,
        num_informed, steps, completed, completion_time, live, now,
        float(time_budget), bool(finite_time_budget), mode_code, n,
    )
