"""The shared serial-vs-batch equivalence harness.

The batch kernels' central contract — a batched trial that consumes
generator ``g`` reproduces, bit-for-bit, the informing times of a serial
engine run seeded with ``g`` — must hold for *every* kernel, scenario, and
option combination that claims a batched fast path.  Before this harness the
agreement checks were copy-pasted across ``tests/core/test_batch_engine.py``,
``tests/analysis/test_batch_montecarlo.py`` and
``tests/scenarios/test_scenario_equivalence.py``; now there is one set of
assertion helpers and one registry of kernel settings.

Usage:

* **Kernel-level**: :func:`assert_batch_matches_serial` runs
  :func:`repro.core.batch_engine.run_batch` against per-trial serial
  :func:`repro.core.protocols.spread` calls with identically spawned
  generators and compares informing times, completion flags, and spreading
  times trial-for-trial.
* **Dispatcher-level**: :func:`assert_trials_paths_agree` compares whole
  :func:`repro.analysis.montecarlo.run_trials` samples between
  ``batch=False`` and a batched mode (times, sources, and coverage
  fractions).
* **Registry**: every batched kernel registers representative settings in
  :data:`KERNEL_CASES` via :func:`register_case`;
  ``tests/core/test_kernel_equivalence.py`` parametrizes over the registry,
  so adding a kernel to the registry *is* adding it to the equivalence
  gate.  Distribution-level checks share :func:`assert_same_distribution`.
* **Parallel transports**: :data:`PARALLEL_CASES` registers
  :func:`repro.analysis.parallel.run_trials_parallel` settings;
  :func:`assert_parallel_case` pins the zero-copy ``parallel="shared"``
  transport bit-identical to the legacy ``"pickle"`` transport *and* to a
  serial replay of the same chunk plan through
  :func:`~repro.analysis.montecarlo.run_trials` — the PR-4 contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from scipy import stats as scipy_stats

from repro.analysis.montecarlo import SpreadingTimeSample, run_trials
from repro.analysis.parallel import chunk_plan, run_trials_parallel
from repro.core.batch_engine import run_batch
from repro.core.protocols import spread
from repro.graphs import complete_graph, cycle_graph, star_graph
from repro.graphs.base import Graph
from repro.graphs.random_graphs import random_regular_graph
from repro.randomness.rng import spawn_generators
from repro.scenarios import (
    AdaptiveCrash,
    AdaptiveLoss,
    BurstLoss,
    Delay,
    DynamicGraph,
    FamilyResampler,
    MessageLoss,
    NodeChurn,
    TargetedChurn,
)

__all__ = [
    "KernelCase",
    "KERNEL_CASES",
    "register_case",
    "ParallelCase",
    "PARALLEL_CASES",
    "register_parallel_case",
    "case_ids",
    "assert_batch_matches_serial",
    "assert_kernel_case",
    "assert_trials_paths_agree",
    "assert_parallel_case",
    "assert_same_distribution",
]


# --------------------------------------------------------------------- #
# Assertion helpers
# --------------------------------------------------------------------- #
def assert_batch_matches_serial(
    graph, sources, protocol, seed, *, scenario=None, backend=None, **options
):
    """Batched kernel vs per-trial serial engine, trial-for-trial.

    Spawns the same per-trial generators for both paths; any divergence in
    informing times, completion flags, or spreading times fails with the
    offending trial index.  ``backend`` selects the kernel backend for the
    batched side (the serial side ignores it), so the same gate pins every
    backend to the one serial reference.
    """
    if backend is not None:
        options = {**options, "backend": backend}
    batched = run_batch(
        graph,
        sources,
        protocol,
        rngs=spawn_generators(len(sources), seed),
        scenario=scenario,
        **options,
    )
    for i, rng in enumerate(spawn_generators(len(sources), seed)):
        serial = spread(
            graph, sources[i], protocol=protocol, seed=rng, scenario=scenario, **options
        )
        assert tuple(batched.informed_time[i]) == serial.informed_time, (
            f"trial {i} of {protocol} on {graph.name} diverged from the serial engine"
        )
        assert bool(batched.completed[i]) == serial.completed
        assert batched.completion_time[i] == serial.spreading_time
    return batched


def assert_trials_paths_agree(
    graph_or_factory,
    source,
    protocol,
    *,
    trials,
    seed,
    batch=True,
    scenario=None,
    engine_options=None,
    fractions=(),
):
    """``run_trials(batch=False)`` vs a batched mode: identical samples.

    Returns the two samples (serial first) for extra assertions.
    """
    kwargs = dict(
        trials=trials,
        seed=seed,
        scenario=scenario,
        engine_options=engine_options,
        fractions=fractions,
    )
    serial = run_trials(graph_or_factory, source, protocol, batch=False, **kwargs)
    batched = run_trials(graph_or_factory, source, protocol, batch=batch, **kwargs)
    assert serial.times == batched.times
    assert serial.source == batched.source
    assert serial.graph_name == batched.graph_name
    assert serial.fraction_times == batched.fraction_times
    return serial, batched


def assert_same_distribution(values_a, values_b, *, min_pvalue=1e-4, label=""):
    """Two-sample Kolmogorov–Smirnov check at a generous level."""
    test = scipy_stats.ks_2samp(values_a, values_b)
    assert test.pvalue > min_pvalue, (
        f"KS rejected distributional equality{f' ({label})' if label else ''}: {test}"
    )
    return test


# --------------------------------------------------------------------- #
# The kernel registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelCase:
    """One registered (kernel, graph, scenario, options) equivalence setting.

    ``graph_builder`` is a zero-argument callable so registration stays
    cheap at import time; ``engine_options`` is a tuple of items to keep the
    case hashable for pytest parametrization.
    """

    id: str
    protocol: str
    graph_builder: Callable[[], Graph]
    sources: tuple[int, ...]
    seed: int
    scenario: Optional[Any] = None
    engine_options: tuple[tuple[str, Any], ...] = ()

    def options(self) -> dict:
        return dict(self.engine_options)


KERNEL_CASES: list[KernelCase] = []


def register_case(
    id: str,
    protocol: str,
    graph_builder: Callable[[], Graph],
    sources,
    seed: int,
    *,
    scenario=None,
    **engine_options,
) -> KernelCase:
    """Register a kernel setting in the shared equivalence gate."""
    case = KernelCase(
        id=id,
        protocol=protocol,
        graph_builder=graph_builder,
        sources=tuple(int(s) for s in sources),
        seed=seed,
        scenario=scenario,
        engine_options=tuple(sorted(engine_options.items())),
    )
    KERNEL_CASES.append(case)
    return case


def case_ids(cases) -> list[str]:
    return [case.id for case in cases]


def assert_kernel_case(case: KernelCase, backend=None):
    """Run one registered case through the trial-for-trial gate."""
    return assert_batch_matches_serial(
        case.graph_builder(),
        list(case.sources),
        case.protocol,
        case.seed,
        scenario=case.scenario,
        backend=backend,
        **case.options(),
    )


def _rr32():
    return random_regular_graph(32, 4, seed=5)


def _rr24():
    return random_regular_graph(24, 3, seed=2)


# --- PR-1 kernels: synchronous and asynchronous-global ----------------- #
for _protocol in ("pp", "push", "pull"):
    register_case(f"sync-{_protocol}", _protocol, _rr32, (1, 0, 2, 3, 0), 123)
for _protocol in ("pp-a", "push-a", "pull-a"):
    register_case(f"global-{_protocol}", _protocol, _rr32, (1, 0, 2, 3, 0), 123)
register_case(
    "sync-partial-budget",
    "push",
    lambda: star_graph(32),
    (1,) * 5,
    11,
    max_rounds=3,
    on_budget_exhausted="partial",
)
register_case(
    "global-step-budget",
    "pp-a",
    lambda: star_graph(24),
    (1,) * 4,
    13,
    max_steps=40,
    on_budget_exhausted="partial",
)

# --- PR-2: adversity scenarios on the batched path --------------------- #
register_case("sync-loss", "pp", _rr32, (1, 0, 2), 9, scenario=MessageLoss(0.3))
register_case("global-loss", "pp-a", _rr32, (1, 0, 2), 9, scenario=MessageLoss(0.3))
register_case(
    "sync-loss-churn",
    "pull",
    _rr24,
    (0,) * 4,
    7,
    scenario=MessageLoss(0.2) | NodeChurn(0.1, 0.6),
)
register_case(
    "sync-dynamic",
    "pp",
    lambda: complete_graph(16),
    (0, 1, 2),
    31,
    scenario=DynamicGraph(FamilyResampler("erdos_renyi"), period=2),
)
register_case(
    "global-delay", "push-a", _rr24, (0, 1, 2), 15, scenario=Delay(low=0.25, high=3.0)
)

# --- PR-3 kernels: clock-queue views and auxiliary processes ----------- #
for _view in ("node_clocks", "edge_clocks"):
    for _protocol in ("pp-a", "push-a", "pull-a"):
        register_case(
            f"{_view}-{_protocol}", _protocol, _rr32, (1, 0, 2), 55, view=_view
        )
    register_case(
        f"{_view}-step-budget",
        "pp-a",
        lambda: star_graph(16),
        (1,) * 3,
        13,
        view=_view,
        max_steps=40,
        on_budget_exhausted="partial",
    )
    register_case(
        f"{_view}-time-budget",
        "pp-a",
        lambda: complete_graph(12),
        (0,) * 3,
        17,
        view=_view,
        max_time=1.5,
        on_budget_exhausted="partial",
    )
for _variant in ("ppx", "ppy"):
    register_case(f"aux-{_variant}-regular", _variant, _rr32, (0, 1, 2, 3, 0), 123)
    register_case(f"aux-{_variant}-star", _variant, lambda: star_graph(24), (1, 0, 2), 7)
    register_case(
        f"aux-{_variant}-complete", _variant, lambda: complete_graph(16), (0,) * 4, 9
    )
register_case(
    "aux-round-budget",
    "ppy",
    lambda: cycle_graph(20),
    (0, 5),
    11,
    max_rounds=8,
    on_budget_exhausted="partial",
)

# --- PR-5: the full scenario × view coverage matrix --------------------- #
# Every runtime scenario under both clock-queue views, the batched
# asynchronous dynamic-graph path (global and node_clocks), and the
# correlated-adversity models (BurstLoss, TargetedChurn) on every engine
# family.  Targeted churn permanently silences its victims, so those cases
# run with partial budgets — the partial per-vertex times must still agree
# trial-for-trial.
_BURST = BurstLoss(p_gb=0.3, p_bg=0.5, p_loss_bad=0.8)
_ER_DYNAMIC = DynamicGraph(FamilyResampler("erdos_renyi"), period=2)

for _view in ("node_clocks", "edge_clocks"):
    register_case(
        f"{_view}-loss", "pp-a", _rr24, (0, 1, 2), 21, scenario=MessageLoss(0.3), view=_view
    )
    register_case(
        f"{_view}-churn", "pull-a", _rr24, (0,) * 3, 23,
        scenario=NodeChurn(0.15, 0.5), view=_view,
    )
    register_case(
        f"{_view}-delay", "push-a", _rr24, (0, 1, 2), 25,
        scenario=Delay(low=0.25, high=3.0), view=_view,
    )
    register_case(
        f"{_view}-burst-loss", "pp-a", _rr24, (0, 1), 27, scenario=_BURST, view=_view
    )
    register_case(
        f"{_view}-targeted-churn", "pp-a", lambda: complete_graph(12), (3, 4), 29,
        scenario=TargetedChurn(0.2), view=_view,
        max_steps=400, on_budget_exhausted="partial",
    )
    register_case(
        f"{_view}-loss-churn-delay", "pp-a", lambda: complete_graph(12), (0,) * 3, 31,
        scenario=MessageLoss(0.2) | NodeChurn(0.1, 0.6) | Delay(low=0.5, high=2.0),
        view=_view,
    )
register_case(
    "node_clocks-dynamic", "pp-a", lambda: complete_graph(12), (0, 1), 33,
    scenario=_ER_DYNAMIC, view="node_clocks",
)
register_case(
    "node_clocks-dynamic-loss-churn", "push-a", lambda: complete_graph(12), (0,) * 3, 35,
    scenario=MessageLoss(0.2) | NodeChurn(0.1, 0.5) | _ER_DYNAMIC, view="node_clocks",
)
register_case(
    "global-dynamic", "pp-a", lambda: complete_graph(12), (0, 1, 2), 37,
    scenario=_ER_DYNAMIC,
)
register_case(
    # A cycle resampled into denser graphs: the per-trial padded CSR must
    # grow its neighbor-array capacity mid-run.
    "global-dynamic-grow", "pp-a", lambda: cycle_graph(12), (0, 1), 38,
    scenario=DynamicGraph(FamilyResampler("erdos_renyi"), period=1),
)
register_case(
    "global-time-budget-loss", "pp-a", lambda: complete_graph(12), (0,) * 3, 40,
    scenario=MessageLoss(0.3), max_time=1.5, on_budget_exhausted="partial",
)
register_case(
    "global-dynamic-delay-burst", "pp-a", lambda: complete_graph(12), (0, 1), 39,
    scenario=_BURST | Delay(low=0.5, high=2.0) | DynamicGraph(
        FamilyResampler("erdos_renyi"), period=3
    ),
)
register_case("sync-burst-loss", "pp", _rr24, (0, 1, 2), 41, scenario=_BURST)
register_case(
    "sync-burst-churn", "pull", _rr24, (0,) * 3, 43,
    scenario=BurstLoss(0.2, 0.4, 0.9, p_loss_good=0.05) | NodeChurn(0.1, 0.6),
)
register_case("global-burst-loss", "push-a", _rr24, (0, 1, 2), 45, scenario=_BURST)
register_case(
    "global-churn", "pp-a", lambda: complete_graph(16), (0, 1, 2), 46,
    scenario=NodeChurn(0.15, 0.5),
)
register_case(
    "sync-targeted-churn", "pp", lambda: complete_graph(12), (3, 4, 5), 47,
    scenario=TargetedChurn(0.25), max_rounds=40, on_budget_exhausted="partial",
)
register_case(
    "global-targeted-churn", "pp-a", lambda: complete_graph(12), (3, 4), 49,
    scenario=TargetedChurn(0.2) | MessageLoss(0.2),
    max_steps=400, on_budget_exhausted="partial",
)
register_case(
    "sync-targeted-eccentricity", "push", lambda: star_graph(16), (1, 2), 51,
    scenario=TargetedChurn(0.1, by="eccentricity"),
    max_rounds=60, on_budget_exhausted="partial",
)

# --- PR-9: budget-limited adaptive adversaries -------------------------- #
# AdaptiveCrash consumes no randomness and AdaptiveLoss reuses the oblivious
# loss draw slot, so both must hold the bit-identical serial/batch contract
# with unchanged RNG streams — on every engine family.  Crash cases can
# stall the rumor permanently (that is the point of the adversary), so they
# run with partial budgets; the partial per-vertex times must still agree.
for _view in ("node_clocks", "edge_clocks"):
    register_case(
        f"{_view}-adaptive-crash", "pp-a", lambda: complete_graph(12), (0, 1), 53,
        scenario=AdaptiveCrash(budget=3, k=2),
        view=_view, max_steps=400, on_budget_exhausted="partial",
    )
    register_case(
        f"{_view}-adaptive-loss", "push-a", _rr24, (0, 1), 55,
        scenario=AdaptiveLoss(p=0.9, budget=5), view=_view,
    )
register_case(
    "sync-adaptive-crash", "pp", lambda: star_graph(16), (1, 2, 0), 57,
    scenario=AdaptiveCrash(budget=2),
    max_rounds=40, on_budget_exhausted="partial",
)
register_case(
    "sync-adaptive-loss", "push", _rr24, (0, 1, 2), 59,
    scenario=AdaptiveLoss(p=0.8, budget=6),
)
register_case(
    "global-adaptive-crash", "pp-a", lambda: star_graph(16), (1, 0), 61,
    scenario=AdaptiveCrash(budget=2, by="eccentricity"),
    max_time=12.0, on_budget_exhausted="partial",
)
register_case(
    "global-adaptive-loss", "pull-a", _rr24, (0, 1), 63,
    scenario=AdaptiveLoss(p=1.0, budget=8),
)
register_case(
    # Both adaptive models at once: the crash schedule shifts the informed
    # frontier the jammer observes, so this pins their interleaving.
    "sync-adaptive-crash-loss", "pp", lambda: complete_graph(12), (0,) * 3, 65,
    scenario=AdaptiveCrash(budget=2) | AdaptiveLoss(p=0.7, budget=4),
    max_rounds=60, on_budget_exhausted="partial",
)
register_case(
    "node_clocks-adaptive-composed", "pp-a", lambda: complete_graph(12), (0, 1), 67,
    scenario=AdaptiveLoss(p=0.6, budget=5) | NodeChurn(0.1, 0.6)
    | Delay(low=0.5, high=2.0),
    view="node_clocks",
)


# --------------------------------------------------------------------- #
# The parallel-transport registry (PR 4)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ParallelCase:
    """One registered ``run_trials_parallel`` equivalence setting.

    Replayed three ways — serial chunk replay, ``parallel="pickle"``,
    ``parallel="shared"`` — which must produce bit-identical samples for
    the fixed ``(seed, trials, num_workers)`` triple.
    """

    id: str
    protocol: str
    graph_builder: Callable[[], Graph]
    source: Union[int, str]
    trials: int
    seed: int
    num_workers: int
    fractions: tuple[float, ...] = ()
    batch: Any = "auto"
    scenario: Optional[Any] = None
    engine_options: tuple[tuple[str, Any], ...] = ()

    def options(self) -> Optional[dict]:
        return dict(self.engine_options) or None


PARALLEL_CASES: list[ParallelCase] = []


def register_parallel_case(
    id: str,
    protocol: str,
    graph_builder: Callable[[], Graph],
    source,
    *,
    trials: int,
    seed: int,
    num_workers: int,
    fractions=(),
    batch="auto",
    scenario=None,
    **engine_options,
) -> ParallelCase:
    """Register a parallel-transport setting in the shared equivalence gate."""
    case = ParallelCase(
        id=id,
        protocol=protocol,
        graph_builder=graph_builder,
        source=source,
        trials=int(trials),
        seed=int(seed),
        num_workers=int(num_workers),
        fractions=tuple(float(f) for f in fractions),
        batch=batch,
        scenario=scenario,
        engine_options=tuple(sorted(engine_options.items())),
    )
    PARALLEL_CASES.append(case)
    return case


def assert_parallel_case(case: ParallelCase):
    """Shared transport ≡ pickling transport ≡ serial chunk replay, bit for bit."""
    graph = case.graph_builder()
    options = case.options()
    # The serial reference: replay the deterministic chunk plan through
    # plain in-process run_trials calls and merge once — no executor, no
    # transport, exactly the work the workers do.
    _, plan = chunk_plan(case.trials, case.num_workers, case.seed)
    expected = SpreadingTimeSample.merged(
        [
            run_trials(
                graph,
                case.source,
                case.protocol,
                trials=size,
                seed=chunk_seed,
                fractions=case.fractions,
                batch=case.batch,
                scenario=case.scenario,
                engine_options=options,
            )
            for size, chunk_seed in plan
        ]
    )
    kwargs = dict(
        trials=case.trials,
        seed=case.seed,
        num_workers=case.num_workers,
        fractions=case.fractions,
        batch=case.batch,
        scenario=case.scenario,
        engine_options=options,
    )
    pickled = run_trials_parallel(
        graph, case.source, case.protocol, parallel="pickle", **kwargs
    )
    shared = run_trials_parallel(
        graph, case.source, case.protocol, parallel="shared", **kwargs
    )
    for label, sample in (("pickle", pickled), ("shared", shared)):
        assert sample.times == expected.times, (
            f"parallel={label!r} diverged from the serial chunk replay for {case.id}"
        )
        assert sample.fraction_times == expected.fraction_times
        assert sample.source == expected.source
        assert sample.graph_name == expected.graph_name
        assert sample.num_vertices == expected.num_vertices
    return shared


register_parallel_case(
    "parallel-sync-pp", "pp", _rr32, 1, trials=9, seed=123, num_workers=3,
    fractions=(0.5, 0.9),
)
register_parallel_case(
    "parallel-async-global", "pp-a", _rr24, 0, trials=8, seed=17, num_workers=2
)
register_parallel_case(
    "parallel-random-source", "push", lambda: star_graph(16), "random",
    trials=7, seed=5, num_workers=2,
)
register_parallel_case(
    "parallel-scenario-loss", "pp", _rr24, 0, trials=6, seed=29, num_workers=2,
    scenario=MessageLoss(0.3),
)
register_parallel_case(
    "parallel-clock-view", "pp-a", lambda: complete_graph(12), 0,
    trials=6, seed=31, num_workers=2, view="edge_clocks",
)
register_parallel_case(
    "parallel-clock-view-scenario", "pp-a", _rr24, 0,
    trials=6, seed=37, num_workers=2,
    scenario=MessageLoss(0.25) | NodeChurn(0.1, 0.6), view="node_clocks",
)
register_parallel_case(
    # PR-9: the adaptive adversary's per-trial budgets must shard cleanly
    # across pool chunks (each worker sees only its chunk's informed masks).
    "parallel-adaptive-crash", "pp", lambda: star_graph(16), 0,
    trials=6, seed=41, num_workers=2, batch=True,
    scenario=AdaptiveCrash(budget=2),
    max_rounds=40, on_budget_exhausted="partial",
)
register_parallel_case(
    "parallel-adaptive-loss", "pp-a", _rr24, 0,
    trials=6, seed=43, num_workers=2,
    scenario=AdaptiveLoss(p=0.9, budget=6), view="node_clocks",
)
