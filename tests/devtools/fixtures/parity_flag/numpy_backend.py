"""Reference half of the must-flag PAR001 pair."""

BACKEND_NAME = "numpy"


def warmup():
    pass


def sync_round_step(adjacency, informed, uniforms, ws=None):
    return informed


def missing_from_jit(adjacency):
    return adjacency
