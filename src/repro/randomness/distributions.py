"""The named probability distributions used throughout the paper.

Section 2 of the paper fixes notation for four distributions, all of which
appear in the coupling arguments:

* ``Exp(λ)`` — exponential with rate ``λ`` (Poisson clock inter-arrival
  times, the pull-coupling variables ``Y_{v,w}``);
* ``Geom(p)`` — geometric with success probability ``p`` on ``{1, 2, ...}``
  (rounds until a synchronous event first happens);
* ``NegBin(k, p)`` — sum of ``k`` i.i.d. geometrics (Lemma 15's domination
  target);
* ``Erl(k, λ)`` — Erlang, the sum of ``k`` i.i.d. exponentials (waiting time
  for the ``k``-th clock tick).

Each distribution is exposed as a small frozen class with ``sample``,
``cdf``, ``mean`` and ``variance`` so tests and couplings can check the
identities the proofs rely on (e.g. ``Erl(k, λ) ≼ NegBin(k, 1 − e^{-λ})``
used at the end of Lemma 10, or the memorylessness of the exponential).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.randomness.rng import SeedLike, as_generator

__all__ = [
    "Exponential",
    "Geometric",
    "NegativeBinomial",
    "Erlang",
    "exponential_minimum_rate",
    "geometric_tail",
    "exponential_tail",
]


@dataclass(frozen=True)
class Exponential:
    """The exponential distribution ``Exp(rate)``.

    Density ``rate * exp(-rate * x)`` on ``x >= 0``.  The memoryless property
    — ``P[X > s + t | X > s] = P[X > t]`` — is what makes the three views of
    the asynchronous protocol equivalent and underpins Lemma 8.
    """

    rate: float

    def __post_init__(self) -> None:
        if not self.rate > 0:
            raise AnalysisError(f"exponential rate must be positive, got {self.rate}")

    def sample(
        self, rng: SeedLike = None, size: int | None = None
    ) -> "float | np.ndarray":
        """Draw one sample (``size=None``) or an array of samples."""
        generator = as_generator(rng)
        return generator.exponential(scale=1.0 / self.rate, size=size)

    def cdf(self, x: float) -> float:
        """``P[X <= x]``."""
        if x <= 0:
            return 0.0
        return 1.0 - math.exp(-self.rate * x)

    def survival(self, x: float) -> float:
        """``P[X > x]``."""
        return 1.0 - self.cdf(x)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)


@dataclass(frozen=True)
class Geometric:
    """The geometric distribution ``Geom(p)`` on ``{1, 2, 3, ...}``.

    ``P[X = k] = (1 - p)^(k-1) * p``.  This is the law of the round in which
    a per-round event of probability ``p`` first occurs in a synchronous
    protocol.
    """

    success_probability: float

    def __post_init__(self) -> None:
        p = self.success_probability
        if not 0 < p <= 1:
            raise AnalysisError(f"geometric success probability must be in (0, 1], got {p}")

    def sample(
        self, rng: SeedLike = None, size: int | None = None
    ) -> "float | np.ndarray":
        generator = as_generator(rng)
        return generator.geometric(self.success_probability, size=size)

    def cdf(self, k: float) -> float:
        """``P[X <= k]`` (``k`` may be fractional; floor is applied)."""
        kk = math.floor(k)
        if kk < 1:
            return 0.0
        return 1.0 - (1.0 - self.success_probability) ** kk

    def pmf(self, k: int) -> float:
        if k < 1:
            return 0.0
        p = self.success_probability
        return (1.0 - p) ** (k - 1) * p

    @property
    def mean(self) -> float:
        return 1.0 / self.success_probability

    @property
    def variance(self) -> float:
        p = self.success_probability
        return (1.0 - p) / (p * p)


@dataclass(frozen=True)
class NegativeBinomial:
    """``NegBin(k, p)``: the sum of ``k`` i.i.d. ``Geom(p)`` variables.

    This is the "number of rounds to collect ``k`` successes" law that
    Lemma 15 uses as a domination target for sums of conditionally
    geometric-dominated variables.
    """

    num_successes: int
    success_probability: float

    def __post_init__(self) -> None:
        if self.num_successes < 1:
            raise AnalysisError(
                f"negative binomial needs at least one success, got {self.num_successes}"
            )
        p = self.success_probability
        if not 0 < p <= 1:
            raise AnalysisError(f"success probability must be in (0, 1], got {p}")

    def sample(
        self, rng: SeedLike = None, size: int | None = None
    ) -> "float | np.ndarray":
        generator = as_generator(rng)
        geometric_draws = generator.geometric(
            self.success_probability,
            size=(self.num_successes,) if size is None else (size, self.num_successes),
        )
        total = geometric_draws.sum(axis=-1)
        if size is None:
            return int(total)
        return total

    def cdf(self, k: float) -> float:
        """``P[X <= k]`` via the regularised incomplete beta function.

        Uses the identity ``P[NegBin(r, p) <= k] = I_p(r, k - r + 1)`` for the
        "number of trials" parameterisation on ``{r, r+1, ...}``.
        """
        from scipy.stats import nbinom

        kk = math.floor(k)
        if kk < self.num_successes:
            return 0.0
        # scipy's nbinom counts failures before the r-th success.
        return float(nbinom.cdf(kk - self.num_successes, self.num_successes, self.success_probability))

    @property
    def mean(self) -> float:
        return self.num_successes / self.success_probability

    @property
    def variance(self) -> float:
        p = self.success_probability
        return self.num_successes * (1.0 - p) / (p * p)


@dataclass(frozen=True)
class Erlang:
    """``Erl(k, rate)``: the sum of ``k`` i.i.d. ``Exp(rate)`` variables.

    The waiting time until the ``k``-th tick of a Poisson clock of the given
    rate; Lemma 10 uses ``Erl(x, 1)`` for the asynchronous time a node needs
    to take its ``x``-th step, and the domination
    ``Erl(k, λ) ≼ NegBin(k, 1 - e^{-λ})``.
    """

    shape: int
    rate: float

    def __post_init__(self) -> None:
        if self.shape < 1:
            raise AnalysisError(f"Erlang shape must be a positive integer, got {self.shape}")
        if not self.rate > 0:
            raise AnalysisError(f"Erlang rate must be positive, got {self.rate}")

    def sample(
        self, rng: SeedLike = None, size: int | None = None
    ) -> "float | np.ndarray":
        generator = as_generator(rng)
        draws = generator.exponential(
            scale=1.0 / self.rate,
            size=(self.shape,) if size is None else (size, self.shape),
        )
        total = draws.sum(axis=-1)
        if size is None:
            return float(total)
        return total

    def cdf(self, x: float) -> float:
        """``P[X <= x]`` via the regularised lower incomplete gamma function."""
        from scipy.special import gammainc

        if x <= 0:
            return 0.0
        return float(gammainc(self.shape, self.rate * x))

    @property
    def mean(self) -> float:
        return self.shape / self.rate

    @property
    def variance(self) -> float:
        return self.shape / (self.rate * self.rate)

    def dominating_negative_binomial(self) -> NegativeBinomial:
        """The ``NegBin(k, 1 - e^{-rate})`` law that stochastically dominates this Erlang.

        This is the domination used in the proof of Lemma 10 to convert a
        continuous waiting time into a discrete round count.
        """
        return NegativeBinomial(self.shape, 1.0 - math.exp(-self.rate))


def exponential_minimum_rate(rates: "list[float] | np.ndarray") -> float:
    """Rate of the minimum of independent exponentials with the given rates.

    ``min_i Exp(λ_i) ~ Exp(Σ λ_i)`` — the superposition property that makes
    the per-node, per-edge, and global-clock views of the asynchronous
    protocol equivalent, and that drives the ``rw* + Yv,w* − r* = O(1)``
    estimate in the upper-bound analysis.
    """
    rates_array = np.asarray(rates, dtype=float)
    if rates_array.size == 0:
        raise AnalysisError("need at least one rate")
    if np.any(rates_array <= 0):
        raise AnalysisError("all rates must be positive")
    return float(rates_array.sum())


def geometric_tail(p: float, k: int) -> float:
    """``P[Geom(p) > k] = (1 - p)^k`` for integer ``k >= 0``."""
    if not 0 < p <= 1:
        raise AnalysisError(f"success probability must be in (0, 1], got {p}")
    if k < 0:
        return 1.0
    return (1.0 - p) ** k


def exponential_tail(rate: float, t: float) -> float:
    """``P[Exp(rate) > t] = exp(-rate * t)`` for ``t >= 0``."""
    if rate <= 0:
        raise AnalysisError(f"rate must be positive, got {rate}")
    if t <= 0:
        return 1.0
    return math.exp(-rate * t)
