"""Unit and behavioural tests for the budget-limited adaptive adversaries.

The trial-for-trial serial/batch agreement of :class:`AdaptiveCrash` and
:class:`AdaptiveLoss` is pinned by the shared registry gate
(``tests/core/test_kernel_equivalence.py``); this module covers the model
semantics themselves — validation, spec round-trips, the single
:meth:`AdaptiveCrash.crash_step` transition, composition rules, budget
accounting through the telemetry counter, and the dominance property the
E13 experiment measures: at equal budget, an adversary that *observes* the
informed set is never better for the rumor than one that strikes blindly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.montecarlo import run_trials
from repro.core.protocols import spread
from repro.errors import ScenarioError
from repro.graphs import complete_graph, star_graph
from repro.graphs.gap_graphs import async_favoring_gap_graph
from repro.scenarios import (
    AdaptiveCrash,
    AdaptiveLoss,
    MessageLoss,
    NodeChurn,
    TargetedChurn,
    parse_scenario,
)
from repro.telemetry.metrics import MetricsRegistry, collecting_metrics
from repro.telemetry.trace import CoverageRecorder, TraceSpec


class TestValidation:
    def test_crash_budget_and_k(self):
        assert AdaptiveCrash(budget=0).budget == 0  # inert adversary allowed
        assert AdaptiveCrash(budget=3.0).budget == 3  # exact float coerced
        with pytest.raises(ScenarioError):
            AdaptiveCrash(budget=-1)
        with pytest.raises(ScenarioError):
            AdaptiveCrash(budget=2.5)
        with pytest.raises(ScenarioError):
            AdaptiveCrash(budget=2, k=0)
        with pytest.raises(ScenarioError):
            AdaptiveCrash(budget=2, by="centrality")

    def test_loss_probability_and_budget(self):
        assert AdaptiveLoss(p=1.0, budget=4).p == 1.0  # p=1 allowed (unlike loss)
        with pytest.raises(ScenarioError):
            AdaptiveLoss(p=1.5, budget=4)
        with pytest.raises(ScenarioError):
            AdaptiveLoss(p=0.5, budget=-2)

    def test_randomness_contract_flags(self):
        # The serial/batch equivalence design hangs off these two flags:
        # the crash adversary draws nothing but needs epoch boundaries.
        crash = AdaptiveCrash(budget=2)
        assert crash.adaptive
        assert not crash.epoch_draws
        assert crash.churn is crash
        loss = AdaptiveLoss(p=0.5, budget=2)
        assert loss.adaptive_loss is loss
        assert loss.loss_prob == 0.0  # the oblivious slot stays empty


class TestSpecsAndParsing:
    @pytest.mark.parametrize(
        "spec",
        [
            "adaptive-crash:budget=2,k=1,by=degree",
            "adaptive-crash:budget=5,k=3,by=eccentricity",
            "adaptive-loss:p=0.8,budget=12",
            "adaptive-crash:budget=1,k=1,by=degree+adaptive-loss:p=1,budget=4",
        ],
    )
    def test_specs_round_trip(self, spec):
        assert parse_scenario(spec).spec() == spec

    def test_runtime_active(self):
        assert AdaptiveCrash(budget=1).runtime_active()
        assert AdaptiveLoss(p=0.5, budget=1).runtime_active()

    def test_analysis_only_protocols_reject(self):
        with pytest.raises(ScenarioError, match="analysis-only"):
            run_trials(
                complete_graph(8), 0, "ppx", trials=2, seed=0,
                scenario=AdaptiveCrash(budget=1),
            )


class TestComposition:
    def test_shares_churn_category(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            AdaptiveCrash(budget=1) | NodeChurn(0.1)
        with pytest.raises(ScenarioError, match="duplicate"):
            AdaptiveCrash(budget=1) | TargetedChurn(0.1)

    def test_shares_loss_category(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            AdaptiveLoss(p=0.5, budget=2) | MessageLoss(0.1)

    def test_crash_and_loss_compose(self):
        composed = AdaptiveCrash(budget=1) | AdaptiveLoss(p=0.5, budget=2)
        assert composed.churn.adaptive
        assert composed.adaptive_loss.budget == 2


class TestCrashStep:
    def test_crashes_top_informed_up_vertices(self):
        graph = star_graph(8)  # hub 0 has the highest degree
        crash = AdaptiveCrash(budget=10, k=2)
        order = crash.ranking(graph)
        assert order[0] == 0
        up = crash.initial_up(graph)
        informed = np.zeros(8, dtype=bool)
        informed[[0, 3, 5]] = True
        spent = crash.crash_step(up, informed, order, budget=10)
        assert spent == 2
        assert not up[0] and not up[3]  # hub first, then smallest informed id
        assert up[5]  # k=2 spent before reaching it

    def test_respects_remaining_budget_and_skips_down_vertices(self):
        graph = star_graph(8)
        crash = AdaptiveCrash(budget=10, k=3)
        order = crash.ranking(graph)
        up = crash.initial_up(graph)
        up[0] = False  # the hub is already down: no double-spend on it
        informed = np.ones(8, dtype=bool)
        assert crash.crash_step(up, informed, order, budget=1) == 1
        assert not up[1]  # highest-priority *up* informed vertex
        assert crash.crash_step(up, informed, order, budget=0) == 0

    def test_uninformed_vertices_are_safe(self):
        graph = complete_graph(6)
        crash = AdaptiveCrash(budget=6, k=6)
        up = crash.initial_up(graph)
        informed = np.zeros(6, dtype=bool)
        assert crash.crash_step(up, informed, crash.ranking(graph), budget=6) == 0
        assert up.all()


class TestBudgetAccounting:
    def test_crash_budget_counter_bounded(self):
        trials, budget = 6, 2
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            run_trials(
                star_graph(16), 1, "pp", trials=trials, seed=5, batch=True,
                scenario=AdaptiveCrash(budget=budget),
                engine_options={"max_rounds": 40, "on_budget_exhausted": "partial"},
            )
        spent = registry.snapshot()["counters"]["scenario.adversary_budget_spent"]
        assert 0 < spent <= trials * budget

    def test_jam_budget_counter_bounded(self):
        trials, budget = 6, 3
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            run_trials(
                complete_graph(12), 0, "pp-a", trials=trials, seed=7, batch=True,
                scenario=AdaptiveLoss(p=1.0, budget=budget),
            )
        spent = registry.snapshot()["counters"]["scenario.adversary_budget_spent"]
        assert 0 < spent <= trials * budget

    def test_budgets_are_per_trial(self):
        # With p=1 and a tiny clique every trial should exhaust the jam
        # budget — the counter must scale with trials, not be shared.
        budget = 2
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            run_trials(
                complete_graph(8), 0, "pp", trials=4, seed=9, batch=True,
                scenario=AdaptiveLoss(p=1.0, budget=budget),
            )
        spent = registry.snapshot()["counters"]["scenario.adversary_budget_spent"]
        assert spent == 4 * budget

    def test_serial_engine_spends_too(self):
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            spread(
                star_graph(12), 1, protocol="pp", seed=3,
                scenario=AdaptiveCrash(budget=1),
                max_rounds=30, on_budget_exhausted="partial",
            )
        assert registry.snapshot()["counters"]["scenario.adversary_budget_spent"] == 1


def _final_coverage(graph, protocol, scenario, seed, **options) -> float:
    recorder = CoverageRecorder(TraceSpec(grid_points=60))
    run_trials(
        graph, 0, protocol, trials=40, seed=seed, batch=True,
        scenario=scenario, trace=recorder, engine_options=options,
    )
    trace = recorder.trace(protocol=protocol, graph_name=graph.name)
    return float(trace.mean_fraction[-1])


class TestDominance:
    """Observing the informed set never helps the rumor: adaptive crash is
    at least as damaging as random churn at equal budget.  Stated on final
    mean coverage at a bounded horizon (stalled runs have infinite means),
    with a small slack for Monte Carlo noise — on the hub-dominated
    topologies where adaptivity actually matters."""

    @pytest.mark.parametrize("protocol", ["pp", "pp-a"])
    @pytest.mark.parametrize(
        "graph_builder", [lambda: star_graph(32), lambda: async_favoring_gap_graph(32)]
    )
    @pytest.mark.parametrize("budget", [1, 3])
    def test_adaptive_crash_never_faster_than_random_churn(
        self, graph_builder, protocol, budget
    ):
        graph = graph_builder()
        options = (
            {"max_rounds": 120} if protocol == "pp" else {"max_time": 24.0}
        )
        options["on_budget_exhausted"] = "partial"
        adaptive = _final_coverage(
            graph, protocol, AdaptiveCrash(budget=budget), seed=101, **options
        )
        random_churn = _final_coverage(
            graph, protocol,
            NodeChurn(crash_rate=budget / graph.num_vertices, recovery_rate=0.0),
            seed=101, **options,
        )
        assert adaptive <= random_churn + 0.05
        assert math.isfinite(adaptive)
