"""Tests for the CSR-native construction path (PR 8).

Three layers:

* unit tests for :mod:`repro.graphs.csr_build` (assembly, edge recovery,
  patching, connectivity, component labelling);
* fixed-seed equality: CSR-built deterministic generators — and the
  configuration-model ``random_regular_graph``, whose RNG draw order the
  rewrite preserved — compare ``==`` to independent legacy edge-list
  constructions reimplemented here;
* distributional equality: the geometric-skip ER sampler and the
  Miller–Hagberg Chung–Lu sampler changed their draw patterns, so they are
  pinned by KS tests against row-Bernoulli reference samplers (the exact
  pre-PR-8 algorithms) rather than seed-for-seed.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.errors import GraphGenerationError
from repro.graphs import csr_build, generators
from repro.graphs.base import Graph
from repro.graphs.gap_graphs import string_of_stars_graph
from repro.graphs.random_graphs import (
    chung_lu_graph,
    erdos_renyi_graph,
    random_regular_graph,
)
from repro.randomness.rng import as_generator
from tests.helpers.equivalence import assert_same_distribution


class TestCsrBuild:
    def test_csr_from_half_edges_sorted_neighbor_lists(self):
        indptr, indices = csr_build.csr_from_half_edges(
            4, np.array([2, 0, 1]), np.array([3, 1, 2])
        )
        assert indptr.tolist() == [0, 1, 3, 5, 6]
        assert indices.tolist() == [1, 0, 2, 1, 3, 2]

    def test_empty_edge_set(self):
        indptr, indices = csr_build.csr_from_half_edges(
            3, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert indptr.tolist() == [0, 0, 0, 0]
        assert indices.size == 0

    def test_csr_edges_roundtrip(self):
        edges = [(0, 1), (1, 2), (0, 3), (2, 3)]
        indptr, indices = csr_build.csr_from_half_edges(
            4, np.array([u for u, _ in edges]), np.array([v for _, v in edges])
        )
        heads, tails = csr_build.csr_edges(indptr, indices)
        assert sorted(zip(heads.tolist(), tails.tolist())) == sorted(edges)

    def test_csr_add_edges_matches_rebuild(self):
        indptr, indices = csr_build.csr_from_half_edges(
            5, np.array([0, 3]), np.array([1, 4])
        )
        new_indptr, new_indices = csr_build.csr_add_edges(
            indptr, indices, np.array([1]), np.array([3])
        )
        reference = Graph(5, [(0, 1), (3, 4), (1, 3)])
        assert Graph.from_csr(new_indptr, new_indices) == reference

    def test_csr_is_connected(self):
        path = csr_build.csr_from_half_edges(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        split = csr_build.csr_from_half_edges(4, np.array([0, 2]), np.array([1, 3]))
        assert csr_build.csr_is_connected(*path)
        assert not csr_build.csr_is_connected(*split)

    def test_component_labels_numbered_by_smallest_member(self):
        # Components {1, 4}, {0, 3}, {2}: labels by smallest member order.
        indptr, indices = csr_build.csr_from_half_edges(
            5, np.array([1, 0]), np.array([4, 3])
        )
        labels = csr_build.connected_component_labels(indptr, indices)
        assert labels.tolist() == [0, 1, 2, 0, 1]
        reps = csr_build.component_representatives(labels)
        assert reps.tolist() == [0, 1, 2]

    def test_labels_match_graph_connected_components(self):
        rng = np.random.default_rng(7)
        heads, tails = [], []
        for u, v in itertools.combinations(range(30), 2):
            if rng.random() < 0.02:
                heads.append(u)
                tails.append(v)
        indptr, indices = csr_build.csr_from_half_edges(
            30, np.array(heads, dtype=np.int64), np.array(tails, dtype=np.int64)
        )
        labels = csr_build.connected_component_labels(indptr, indices)
        components = Graph.from_csr(indptr, indices).connected_components()
        for label, component in enumerate(components):
            assert all(labels[v] == label for v in component)


# --------------------------------------------------------------------- #
# Fixed-seed equality against independent legacy edge-list constructions.
# --------------------------------------------------------------------- #
def _legacy_star(n):
    return Graph(n, [(0, v) for v in range(1, n)])


def _legacy_complete(n):
    return Graph(n, list(itertools.combinations(range(n), 2)))


def _legacy_cycle(n):
    return Graph(n, [(v, (v + 1) % n) for v in range(n)])


def _legacy_grid(rows, cols):
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def _legacy_torus(rows, cols):
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            edges.append((v, r * cols + (c + 1) % cols))
            edges.append((v, ((r + 1) % rows) * cols + c))
    return Graph(rows * cols, edges)


def _legacy_hypercube(dimension):
    n = 1 << dimension
    edges = [(v, v ^ (1 << bit)) for v in range(n) for bit in range(dimension)]
    return Graph(n, edges)


def _legacy_string_of_stars(chain_length, bundle_size):
    num_hubs = chain_length + 1
    edges = []
    leaf = num_hubs
    for link in range(chain_length):
        for _ in range(bundle_size):
            edges.append((link, leaf))
            edges.append((leaf, link + 1))
            leaf += 1
    return Graph(num_hubs + chain_length * bundle_size, edges)


DETERMINISTIC_CASES = [
    (lambda: generators.star_graph(17), lambda: _legacy_star(17)),
    (lambda: generators.complete_graph(9), lambda: _legacy_complete(9)),
    (lambda: generators.cycle_graph(12), lambda: _legacy_cycle(12)),
    (lambda: generators.grid_graph(4, 5), lambda: _legacy_grid(4, 5)),
    (lambda: generators.torus_graph(4, 5), lambda: _legacy_torus(4, 5)),
    (lambda: generators.hypercube_graph(5), lambda: _legacy_hypercube(5)),
    (lambda: string_of_stars_graph(3, 4), lambda: _legacy_string_of_stars(3, 4)),
]


@pytest.mark.parametrize(
    "build, reference",
    DETERMINISTIC_CASES,
    ids=["star", "complete", "cycle", "grid", "torus", "hypercube", "string_of_stars"],
)
def test_csr_generator_equals_legacy_edge_list(build, reference):
    graph = build()
    legacy = reference()
    assert graph.csr() is not None  # stayed on the CSR-native path
    assert graph == legacy
    assert hash(graph) == hash(legacy)


def _legacy_random_regular(n, degree, seed):
    """The pre-PR-8 configuration-model loop, verbatim in its RNG draws."""
    rng = as_generator(seed)
    stubs_template = np.repeat(np.arange(n, dtype=np.int64), degree)
    for _ in range(400):
        stubs = rng.permutation(stubs_template)
        pairs = stubs.reshape(-1, 2)
        edge_set = set()
        simple = True
        for a, b in pairs:
            u, v = int(a), int(b)
            if u == v:
                simple = False
                break
            key = (u, v) if u < v else (v, u)
            if key in edge_set:
                simple = False
                break
            edge_set.add(key)
        if not simple:
            continue
        graph = Graph(n, sorted(edge_set))
        if graph.is_connected():
            return graph
    raise AssertionError("legacy reference did not converge")


@pytest.mark.parametrize("n, degree, seed", [(32, 4, 5), (24, 3, 2), (30, 2, 11)])
def test_random_regular_equals_legacy_at_fixed_seed(n, degree, seed):
    """The vectorised simplicity check accepts exactly the attempts the
    legacy Python loop accepted and consumes no RNG draws, so the sampled
    graph is bit-identical to the pre-PR-8 implementation."""
    assert random_regular_graph(n, degree, seed=seed) == _legacy_random_regular(
        n, degree, seed
    )


# --------------------------------------------------------------------- #
# Satellite-bug regressions: random_regular connectivity guarantees.
# --------------------------------------------------------------------- #
class TestRandomRegularConnectivityRegressions:
    def test_degree_one_on_two_vertices_is_the_single_edge(self):
        graph = random_regular_graph(2, 1, seed=0)
        assert graph.edges == ((0, 1),)
        assert graph.is_connected()

    def test_degree_one_beyond_two_vertices_raises(self):
        """degree == 1 used to short-circuit the connectivity check and
        return a perfect matching — disconnected for every n > 2."""
        with pytest.raises(GraphGenerationError):
            random_regular_graph(10, 1, seed=0)

    def test_degree_two_samples_are_connected(self):
        """The nx fallback used to accept any degree <= 2 sample (a union
        of cycles); every returned 2-regular graph must be one cycle."""
        for seed in range(8):
            graph = random_regular_graph(24, 2, seed=seed)
            assert graph.is_connected()
            assert set(graph.degrees) == {2}


# --------------------------------------------------------------------- #
# Distributional pins for the samplers whose algorithms changed.
# --------------------------------------------------------------------- #
def _legacy_erdos_renyi_edge_count(n, p, seed):
    rng = as_generator(seed)
    count = 0
    for u in range(n - 1):
        row = rng.random(n - u - 1)
        count += int(np.count_nonzero(row < p))
    return count


def _legacy_chung_lu_degree_sum(weights, seed):
    w = np.asarray(weights, dtype=float)
    total = float(w.sum())
    rng = as_generator(seed)
    count = 0
    for u in range(w.size - 1):
        probs = np.minimum(1.0, w[u] * w[u + 1 :] / total)
        count += int(np.count_nonzero(rng.random(w.size - u - 1) < probs))
    return count


def test_erdos_renyi_edge_count_distribution_matches_row_bernoulli():
    """Geometric skip sampling is exactly Binomial(n(n-1)/2, p): the edge
    counts must be indistinguishable from the legacy row-Bernoulli loop."""
    n, p, samples = 64, 0.08, 200
    skip = [erdos_renyi_graph(n, p, seed=s).num_edges for s in range(samples)]
    legacy = [
        _legacy_erdos_renyi_edge_count(n, p, 10_000 + s) for s in range(samples)
    ]
    assert_same_distribution(skip, legacy, label="erdos_renyi edge count")


def test_chung_lu_edge_count_distribution_matches_row_bernoulli():
    """Miller–Hagberg skip sampling preserves every pairwise probability
    min(1, w_u w_v / W): edge counts match the legacy independent-coin loop."""
    rng = np.random.default_rng(3)
    weights = rng.uniform(1.0, 12.0, size=48)
    samples = 200
    skip = [
        chung_lu_graph(weights, seed=s, ensure_connected=False).num_edges
        for s in range(samples)
    ]
    legacy = [
        _legacy_chung_lu_degree_sum(weights, 10_000 + s) for s in range(samples)
    ]
    assert_same_distribution(skip, legacy, label="chung_lu edge count")


def test_erdos_renyi_per_pair_inclusion_probability():
    """Beyond totals: each individual pair must appear with probability p
    (the skip sampler enumerates pairs lexicographically, so a bias would
    show up at specific positions, e.g. the first or last pair)."""
    n, p, samples = 10, 0.3, 400
    first = last = 0
    for s in range(samples):
        graph = erdos_renyi_graph(n, p, seed=s)
        first += graph.has_edge(0, 1)  # linear pair index 0
        last += graph.has_edge(n - 2, n - 1)  # linear pair index 44
    for count in (first, last):
        # 5-sigma band around Binomial(samples, p).
        sigma = (samples * p * (1 - p)) ** 0.5
        assert abs(count - samples * p) < 5 * sigma
