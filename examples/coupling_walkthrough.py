#!/usr/bin/env python3
"""A walkthrough of the paper's proof machinery, executed on a real graph.

Run with::

    python examples/coupling_walkthrough.py

The upper bound (Theorem 1) and the lower bound (Theorem 2) are both proved
with couplings.  This example executes those couplings on a hypercube and
prints the quantities the lemmas control:

1. the Section 4 coupling of ``ppx`` / ``ppy`` / ``pp-a`` on shared random
   variables, with the Lemma 9 and Lemma 10 slacks;
2. the Section 5 block decomposition mapping asynchronous steps to
   synchronous rounds, with the Lemma 13 subset invariant and the Lemma 14
   round counts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.coupling import run_block_coupling, run_coupled_processes
from repro.graphs import hypercube_graph


def upper_bound_machinery(graph, trials: int = 20) -> None:
    print(f"=== Section 4 coupling on {graph.name} ===")
    slack9, slack10, ppx_times, ppa_times = [], [], [], []
    for seed in range(trials):
        run = run_coupled_processes(graph, 0, seed=seed)
        slack9.append(run.lemma9_slack())
        slack10.append(run.lemma10_slack())
        ppx_times.append(run.ppx_spreading_time)
        ppa_times.append(run.ppa_spreading_time)
    log_budget = math.log(graph.num_vertices)
    print(f"  mean spreading times: ppx = {np.mean(ppx_times):.2f} rounds, "
          f"pp-a = {np.mean(ppa_times):.2f} time units")
    print(f"  Lemma 9 slack  max_v(r'_v - 2 r_v):  max over runs = {max(slack9):6.2f}   "
          f"(O(log n) budget, ln n = {log_budget:.2f})")
    print(f"  Lemma 10 slack max_v(t_v - 4 r'_v):  max over runs = {max(slack10):6.2f}   "
          f"(O(log n) budget, ln n = {log_budget:.2f})")
    print()


def lower_bound_machinery(graph, trials: int = 20) -> None:
    print(f"=== Section 5 block decomposition on {graph.name} ===")
    n = graph.num_vertices
    rounds, steps, specials, subset_ok = [], [], [], True
    for seed in range(trials):
        run = run_block_coupling(graph, 0, seed=seed)
        rounds.append(run.num_rounds)
        steps.append(run.num_steps)
        specials.append(run.statistics.rho_special)
        subset_ok = subset_ok and run.subset_invariant_held
    budget = np.mean(steps) / math.sqrt(n) + 2 * math.sqrt(n)
    print(f"  mean async steps to inform everyone: {np.mean(steps):8.1f}  "
          f"(~ {np.mean(steps) / n:.2f} time units)")
    print(f"  mean sync rounds generated:          {np.mean(rounds):8.1f}")
    print(f"  of which special-block rounds:       {np.mean(specials):8.1f}")
    print(f"  Lemma 14 scale steps/sqrt(n)+2sqrt(n) = {budget:8.1f}  "
          f"(rounds / scale = {np.mean(rounds) / budget:.2f}, an O(1) constant)")
    print(f"  Lemma 13 subset invariant held in every block of every run: {subset_ok}")
    print()


def main() -> None:
    graph = hypercube_graph(7)
    upper_bound_machinery(graph)
    lower_bound_machinery(graph)
    print("Both couplings behave exactly as the lemmas predict: the asynchronous process\n"
          "tracks the synchronous one to within O(log n) per vertex (upper bound), and\n"
          "every ~sqrt(n) asynchronous steps can be charged to O(1) synchronous rounds\n"
          "(lower bound).")


if __name__ == "__main__":
    main()
