#!/usr/bin/env python3
"""Quickstart: simulate synchronous and asynchronous rumor spreading on a few graphs.

Run with::

    python examples/quickstart.py

The script builds three topologies (a hypercube, an Erdős–Rényi graph and a
star), runs one synchronous and one asynchronous push–pull simulation on
each, then estimates mean spreading times and the paper's high-probability
time ``T_{1/n}`` from a small Monte Carlo sample.
"""

from __future__ import annotations

from repro import graphs, spread
from repro.analysis import high_probability_time, run_trials


def single_runs() -> None:
    """One simulation per (graph, protocol) pair, printing the raw results."""
    print("=== single simulation runs ===")
    suite = [
        (graphs.hypercube_graph(8), 0),
        (graphs.connected_erdos_renyi_graph(256, seed=1), 0),
        (graphs.star_graph(256), 1),
    ]
    for graph, source in suite:
        for protocol in ("pp", "pp-a"):
            result = spread(graph, source, protocol=protocol, seed=42)
            print(f"  {result.summary()}")
    print()


def monte_carlo_estimates() -> None:
    """Estimate E[T] and T_{1/n} for both protocols on the hypercube."""
    print("=== Monte Carlo estimates on the 8-dimensional hypercube ===")
    graph = graphs.hypercube_graph(8)
    for protocol in ("pp", "pp-a"):
        sample = run_trials(graph, 0, protocol, trials=200, seed=7)
        hp = high_probability_time(sample)
        unit = "rounds" if protocol == "pp" else "time units"
        print(
            f"  {protocol:>5}: E[T] = {sample.mean:6.2f} {unit:10}   "
            f"T_1/n ≈ {hp.value:6.2f} ({hp.method} estimate from {hp.num_samples} trials)"
        )
    print()


def inspect_one_infection_tree() -> None:
    """Show the infection path of the last-informed vertex in one async run."""
    print("=== infection path of the last informed vertex (async push-pull) ===")
    graph = graphs.hypercube_graph(6)
    result = spread(graph, 0, protocol="pp-a", seed=3)
    last_vertex = max(range(graph.num_vertices), key=lambda v: result.informed_time[v])
    path = result.infection_path(last_vertex)
    print(f"  graph: {graph.name}, last informed vertex: {last_vertex}")
    print(f"  informed at time {result.informed_time[last_vertex]:.2f} via path {path}")
    print(
        f"  infections by push: {result.push_infections}, by pull: {result.pull_infections}"
    )
    print()


def main() -> None:
    single_runs()
    monte_carlo_estimates()
    inspect_one_infection_tree()


if __name__ == "__main__":
    main()
