"""Benchmark E2 — Theorem 2: sync/async expected-time ratio vs sqrt(n).

Regenerates the E2 table and asserts the claim's shape: the normalised
constant ``(E[T(pp)]/E[T(pp-a)]) / sqrt(n)`` stays bounded everywhere, and
the gap construction's raw ratio grows with ``n`` while staying below the
``sqrt(n)`` ceiling.
"""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def test_theorem2_experiment(run_once, bench_preset):
    result = run_once(run_experiment, "E2", preset=bench_preset)
    assert result.conclusion("theorem2_consistent") is True
    assert result.conclusion("max_constant_c2") < 2.0
    if "gap_graph_ratio_exponent" in result.conclusions:
        # The async-favouring construction grows polynomially but stays below
        # the sqrt(n) exponent allowed by Theorem 2.
        assert result.conclusion("gap_graph_ratio_exponent") < 0.6
