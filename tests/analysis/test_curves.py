"""Unit tests for coverage curves and their helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.curves import (
    ascii_sparkline,
    compare_coverage_curves,
    coverage_curve,
)
from repro.analysis.montecarlo import collect_results
from repro.errors import AnalysisError
from repro.graphs import complete_graph, star_graph


@pytest.fixture(scope="module")
def complete_graph_runs():
    graph = complete_graph(24)
    return collect_results(graph, 0, "pp-a", trials=12, seed=3)


class TestCoverageCurve:
    def test_basic_shape(self, complete_graph_runs):
        curve = coverage_curve(complete_graph_runs, grid_points=100)
        assert curve.num_runs == 12
        assert len(curve.times) == 100
        assert curve.times[0] == 0.0
        # Coverage starts at 1/n (only the source) and ends at 1.
        assert curve.mean_fraction[0] == pytest.approx(1 / 24)
        assert curve.mean_fraction[-1] == pytest.approx(1.0)

    def test_monotone_nondecreasing(self, complete_graph_runs):
        curve = coverage_curve(complete_graph_runs)
        assert all(a <= b + 1e-12 for a, b in zip(curve.mean_fraction, curve.mean_fraction[1:]))
        assert all(
            lower <= mean <= upper + 1e-12
            for lower, mean, upper in zip(
                curve.lower_fraction, curve.mean_fraction, curve.upper_fraction
            )
        )

    def test_fraction_at_and_time_to_fraction(self, complete_graph_runs):
        curve = coverage_curve(complete_graph_runs)
        assert curve.fraction_at(-1.0) == 0.0
        assert curve.fraction_at(curve.times[-1] + 10) == pytest.approx(1.0)
        t_half = curve.time_to_fraction(0.5)
        t_full = curve.time_to_fraction(1.0)
        assert 0 < t_half <= t_full < math.inf
        with pytest.raises(AnalysisError):
            curve.time_to_fraction(0.0)

    def test_validation(self, complete_graph_runs):
        with pytest.raises(AnalysisError):
            coverage_curve([])
        with pytest.raises(AnalysisError):
            coverage_curve(complete_graph_runs, grid_points=1)

    def test_mixed_protocols_rejected(self):
        graph = star_graph(12)
        sync_runs = collect_results(graph, 1, "pp", trials=2, seed=1)
        async_runs = collect_results(graph, 1, "pp-a", trials=2, seed=2)
        with pytest.raises(AnalysisError):
            coverage_curve(sync_runs + async_runs)

    def test_incomplete_runs_plateau_below_one(self):
        graph = star_graph(32)
        runs = collect_results(
            graph,
            1,
            "pp-a",
            trials=4,
            seed=5,
            engine_options={"max_steps": 30, "on_budget_exhausted": "partial"},
        )
        curve = coverage_curve(runs)
        assert curve.mean_fraction[-1] < 1.0


class TestCompareCurves:
    def test_table_rows(self):
        graph = complete_graph(20)
        sync_curve = coverage_curve(collect_results(graph, 0, "pp", trials=8, seed=7))
        async_curve = coverage_curve(collect_results(graph, 0, "pp-a", trials=8, seed=8))
        rows = compare_coverage_curves([sync_curve, async_curve], fractions=(0.5, 1.0))
        assert len(rows) == 2
        assert {row["protocol"] for row in rows} == {"pp", "pp-a"}
        for row in rows:
            assert row["t@50%"] <= row["t@100%"]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            compare_coverage_curves([])


class TestSparkline:
    def test_length_and_characters(self):
        line = ascii_sparkline([0.0, 0.25, 0.5, 0.75, 1.0], width=20)
        assert len(line) == 20
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_clipping(self):
        line = ascii_sparkline([-5.0, 2.0], width=2)
        assert line == "▁█"

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ascii_sparkline([], width=5)
        with pytest.raises(AnalysisError):
            ascii_sparkline([0.5], width=0)
