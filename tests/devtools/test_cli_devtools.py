"""`python -m repro devtools ...` — exit codes, reports, the knob table."""

from __future__ import annotations

import json
from pathlib import Path

from repro import config
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"
README = Path(__file__).resolve().parents[2] / "README.md"


class TestLintCommand:
    def test_clean_path_exits_zero(self, capsys):
        assert main(["devtools", "lint", str(FIXTURES / "rng001_pass.py")]) == 0
        out = capsys.readouterr().out
        assert "0 findings (1 files checked)" in out

    def test_findings_exit_one_with_rule_codes(self, capsys):
        assert main(["devtools", "lint", str(FIXTURES / "rng001_flag.py")]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out and "rng001_flag.py:" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["devtools", "lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_select_restricts_codes(self, capsys):
        exit_code = main(
            ["devtools", "lint", str(FIXTURES / "env_flag.py"), "--select", "ENV002"]
        )
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "ENV002" in out and "ENV001" not in out

    def test_json_format_and_output_report(self, capsys, tmp_path):
        report = tmp_path / "LINT_report.json"
        exit_code = main(
            [
                "devtools", "lint", str(FIXTURES / "exc001_flag.py"),
                "--format", "json", "--output", str(report),
            ]
        )
        assert exit_code == 1
        printed = json.loads(capsys.readouterr().out)
        saved = json.loads(report.read_text(encoding="utf8"))
        assert printed == saved
        assert [f["code"] for f in saved["findings"]] == ["EXC001"] * 3
        assert saved["files_checked"] == 1

    def test_shipped_tree_via_cli(self, capsys):
        assert main(["devtools", "lint", str(SRC)]) == 0


class TestKnobsCommand:
    def test_prints_the_registry_table(self, capsys):
        assert main(["devtools", "knobs"]) == 0
        out = capsys.readouterr().out
        assert "| Knob |" in out
        for name in config.knob_names():
            assert name in out

    def test_check_accepts_the_shipped_readme(self, capsys):
        assert main(["devtools", "knobs", "--check", str(README)]) == 0
        assert "matches the registry" in capsys.readouterr().out

    def test_check_rejects_a_drifted_readme(self, capsys, tmp_path):
        drifted = tmp_path / "README.md"
        table = config.markdown_table()
        drifted.write_text(
            README.read_text(encoding="utf8").replace(
                table.splitlines()[2] + "\n", ""  # drop the first knob row
            ),
            encoding="utf8",
        )
        assert main(["devtools", "knobs", "--check", str(drifted)]) == 1
        assert "error" in capsys.readouterr().err
