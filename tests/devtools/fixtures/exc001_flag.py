"""Must-flag EXC001: every shape of over-broad handler."""


def swallow_everything(fn):
    try:
        return fn()
    except Exception:  # broad
        return None


def swallow_harder(fn):
    try:
        return fn()
    except BaseException:  # broader
        return None


def swallow_bare(fn):
    try:
        return fn()
    except:  # bare
        return None
