"""Benchmark E9 — the lower-bound machinery (block decomposition, Lemmas 13 and 14).

Regenerates the E9 table and asserts the two invariants of the Section 5
coupling: the asynchronous informed set stays contained in the synchronous
one after every block, and the number of generated rounds stays within the
``O(steps / sqrt(n) + sqrt(n))`` budget.
"""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def test_block_decomposition_experiment(run_once, bench_preset):
    result = run_once(run_experiment, "E9", preset=bench_preset)
    assert result.conclusion("lemma13_subset_invariant_always_held") is True
    assert result.conclusion("lemma14_bound_respected") is True
    for row in result.rows:
        assert row["Lemma13 subset held"] is True
        assert row["normalized rounds"] < 4.0
