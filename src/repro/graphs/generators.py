"""Deterministic graph generators.

These cover every fixed topology the paper refers to explicitly or
implicitly:

* the *n*-vertex **star** — the running example separating synchronous and
  asynchronous push–pull (2 rounds vs. :math:`\\Theta(\\log n)` time), and
  separating push from push–pull in the synchronous model
  (:math:`\\Theta(n \\log n)` vs. 2 rounds);
* the **hypercube** — where asynchronous push–pull coincides with
  Richardson's model and both models agree within constant factors;
* **complete graphs, paths, cycles, grids, tori, binary trees** — the
  classical benchmark topologies of the rumor-spreading literature, used
  here to populate the experiment suites for Theorems 1 and 2 and
  Corollary 3 (cycles, tori and complete graphs are regular);
* **barbell, lollipop, double-star** — low-conductance graphs that stress
  the additive ``log n`` term and the ``sqrt(n)`` lower-bound factor.

All generators return :class:`repro.graphs.base.Graph` instances with a
descriptive :attr:`~repro.graphs.base.Graph.name`.
"""

from __future__ import annotations

from repro.errors import GraphGenerationError
from repro.graphs.base import Graph

__all__ = [
    "star_graph",
    "double_star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "binary_tree_graph",
    "barbell_graph",
    "lollipop_graph",
    "clique_chain_graph",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise GraphGenerationError(message)


def star_graph(n: int) -> Graph:
    """The star on ``n`` vertices: center ``0`` joined to leaves ``1..n-1``.

    The paper's introductory example: synchronous push–pull informs the star
    in at most two rounds, while the asynchronous variant needs
    :math:`\\Theta(\\log n)` time, and synchronous push-only needs
    :math:`\\Theta(n \\log n)` rounds.
    """
    _require(n >= 2, f"a star needs at least 2 vertices, got {n}")
    edges = [(0, v) for v in range(1, n)]
    return Graph(n, edges, name=f"star(n={n})")


def double_star_graph(leaves_per_center: int) -> Graph:
    """Two adjacent centers, each with ``leaves_per_center`` private leaves.

    A classic low-conductance, highly irregular graph; push–pull still
    finishes in O(1) synchronous rounds while asynchronous push–pull pays a
    coupon-collector :math:`\\Theta(\\log n)` factor, making it a useful
    stress case for the additive ``log n`` term of Theorem 1.
    """
    _require(leaves_per_center >= 1, "each center needs at least one leaf")
    k = leaves_per_center
    n = 2 + 2 * k
    edges = [(0, 1)]
    edges.extend((0, 2 + i) for i in range(k))
    edges.extend((1, 2 + k + i) for i in range(k))
    return Graph(n, edges, name=f"double_star(k={k})")


def complete_graph(n: int) -> Graph:
    """The complete graph :math:`K_n`."""
    _require(n >= 1, f"a complete graph needs at least 1 vertex, got {n}")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Graph(n, edges, name=f"complete(n={n})")


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """The complete bipartite graph :math:`K_{a,b}` (left part ``0..a-1``)."""
    _require(a >= 1 and b >= 1, "both parts need at least one vertex")
    edges = [(u, a + v) for u in range(a) for v in range(b)]
    return Graph(a + b, edges, name=f"complete_bipartite(a={a}, b={b})")


def path_graph(n: int) -> Graph:
    """The path on ``n`` vertices ``0 - 1 - ... - n-1``."""
    _require(n >= 1, f"a path needs at least 1 vertex, got {n}")
    edges = [(v, v + 1) for v in range(n - 1)]
    return Graph(n, edges, name=f"path(n={n})")


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n`` vertices (2-regular for ``n >= 3``)."""
    _require(n >= 3, f"a cycle needs at least 3 vertices, got {n}")
    edges = [(v, (v + 1) % n) for v in range(n)]
    return Graph(n, edges, name=f"cycle(n={n})")


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid with 4-neighborhoods (no wrap-around)."""
    _require(rows >= 1 and cols >= 1, "grid dimensions must be positive")
    _require(rows * cols >= 2, "a grid graph needs at least 2 vertices")

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return Graph(rows * cols, edges, name=f"grid({rows}x{cols})")


def torus_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` torus (grid with wrap-around; 4-regular).

    Requires both dimensions at least 3 so the graph stays simple (smaller
    wrap-arounds would create parallel edges).
    """
    _require(rows >= 3 and cols >= 3, "torus dimensions must be at least 3")

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((vid(r, c), vid(r, (c + 1) % cols)))
            edges.append((vid(r, c), vid((r + 1) % rows, c)))
    return Graph(rows * cols, edges, name=f"torus({rows}x{cols})")


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` vertices.

    Vertices are bit strings; two vertices are adjacent iff they differ in
    exactly one bit.  On the hypercube, asynchronous push–pull corresponds to
    Richardson's model for the spread of a disease (first-passage
    percolation), one of the historical motivations cited in the paper.
    """
    _require(dimension >= 1, f"hypercube dimension must be >= 1, got {dimension}")
    _require(dimension <= 24, "hypercube dimension above 24 is unreasonably large")
    n = 1 << dimension
    edges = []
    for v in range(n):
        for bit in range(dimension):
            w = v ^ (1 << bit)
            if v < w:
                edges.append((v, w))
    return Graph(n, edges, name=f"hypercube(d={dimension})")


def binary_tree_graph(depth: int) -> Graph:
    """The complete binary tree of the given ``depth``.

    Depth 0 is a single root; depth ``d`` has ``2**(d+1) - 1`` vertices.
    Vertex ``v`` has children ``2v + 1`` and ``2v + 2`` (heap layout).
    """
    _require(depth >= 0, f"depth must be non-negative, got {depth}")
    _require(depth <= 22, "binary tree depth above 22 is unreasonably large")
    n = (1 << (depth + 1)) - 1
    edges = []
    for v in range(n):
        left, right = 2 * v + 1, 2 * v + 2
        if left < n:
            edges.append((v, left))
        if right < n:
            edges.append((v, right))
    return Graph(n, edges, name=f"binary_tree(depth={depth})")


def barbell_graph(clique_size: int, bridge_length: int = 0) -> Graph:
    """Two cliques of size ``clique_size`` joined by a path of ``bridge_length`` extra vertices.

    With ``bridge_length = 0`` the two cliques are joined by a single edge.
    Barbells have conductance :math:`\\Theta(1/n^2)` and are the canonical
    "slow for push–pull" instances; they exercise the regime where both the
    synchronous and asynchronous protocols are polynomially slow, so the
    *ratio* statements of Theorems 1 and 2 are tested away from the
    logarithmic regime.
    """
    _require(clique_size >= 2, "each clique needs at least 2 vertices")
    _require(bridge_length >= 0, "bridge length cannot be negative")
    k = clique_size
    n = 2 * k + bridge_length
    edges = []
    # Left clique: vertices 0..k-1.  Right clique: vertices k+bridge .. n-1.
    for u in range(k):
        for v in range(u + 1, k):
            edges.append((u, v))
    right_offset = k + bridge_length
    for u in range(k):
        for v in range(u + 1, k):
            edges.append((right_offset + u, right_offset + v))
    # Bridge path.
    chain = [k - 1] + [k + i for i in range(bridge_length)] + [right_offset]
    for a, b in zip(chain, chain[1:]):
        edges.append((a, b))
    return Graph(n, edges, name=f"barbell(k={k}, bridge={bridge_length})")


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """A clique of size ``clique_size`` with a path of ``path_length`` vertices attached."""
    _require(clique_size >= 2, "the clique needs at least 2 vertices")
    _require(path_length >= 1, "the path needs at least 1 vertex")
    k = clique_size
    n = k + path_length
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    chain = [k - 1] + [k + i for i in range(path_length)]
    for a, b in zip(chain, chain[1:]):
        edges.append((a, b))
    return Graph(n, edges, name=f"lollipop(k={k}, path={path_length})")


def clique_chain_graph(num_cliques: int, clique_size: int) -> Graph:
    """A chain of ``num_cliques`` cliques, consecutive cliques sharing one edge via a cut vertex pair.

    Consecutive cliques are connected by a single edge between one designated
    "port" vertex of each clique.  The construction gives a graph of diameter
    :math:`\\Theta(\\text{num\\_cliques})` with locally dense neighborhoods; it
    is the deterministic backbone used by the gap-graph constructions in
    :mod:`repro.graphs.gap_graphs`.
    """
    _require(num_cliques >= 1, "need at least one clique")
    _require(clique_size >= 2, "cliques need at least 2 vertices")
    k = clique_size
    n = num_cliques * k
    edges = []
    for block in range(num_cliques):
        offset = block * k
        for u in range(k):
            for v in range(u + 1, k):
                edges.append((offset + u, offset + v))
        if block + 1 < num_cliques:
            # Connect the "last" vertex of this clique to the "first" of the next.
            edges.append((offset + k - 1, offset + k))
    return Graph(n, edges, name=f"clique_chain(c={num_cliques}, k={k})")
