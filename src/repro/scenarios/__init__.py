"""Composable adversity scenarios (message loss, churn, dynamic graphs, ...).

See :mod:`repro.scenarios.base` for the perturbation models and the
randomness discipline that keeps the serial engines and the batch kernels
bit-for-bit equivalent under every scenario, and
:mod:`repro.scenarios.registry` for the named registry behind the CLI's
``scenarios`` subcommand and ``run --scenario`` option.
"""

from repro.scenarios.base import (
    AdaptiveCrash,
    AdaptiveLoss,
    AdversarialSource,
    BurstLoss,
    ComposedScenario,
    Delay,
    DynamicGraph,
    FamilyResampler,
    MessageLoss,
    NodeChurn,
    Scenario,
    ScenarioLike,
    SOURCE_STRATEGIES,
    TARGETED_CHURN_CRITERIA,
    TargetedChurn,
    as_scenario,
    compose,
    scenario_source,
    select_adversarial_source,
)
from repro.scenarios.registry import (
    SCENARIOS,
    ScenarioSpec,
    available_scenarios,
    build_scenario,
    get_scenario_spec,
    parse_scenario,
)

__all__ = [
    "Scenario",
    "MessageLoss",
    "BurstLoss",
    "NodeChurn",
    "TargetedChurn",
    "AdaptiveCrash",
    "AdaptiveLoss",
    "DynamicGraph",
    "AdversarialSource",
    "Delay",
    "ComposedScenario",
    "FamilyResampler",
    "ScenarioLike",
    "SOURCE_STRATEGIES",
    "TARGETED_CHURN_CRITERIA",
    "as_scenario",
    "compose",
    "scenario_source",
    "select_adversarial_source",
    "SCENARIOS",
    "ScenarioSpec",
    "available_scenarios",
    "build_scenario",
    "get_scenario_spec",
    "parse_scenario",
]
