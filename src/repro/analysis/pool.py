"""A persistent, session-wide process pool for parallel Monte Carlo runs.

Before this module every :func:`repro.analysis.parallel.run_trials_parallel`
call created (and tore down) its own
:class:`~concurrent.futures.ProcessPoolExecutor`, so a Theorem-1 or E12
sweep paid full pool startup — interpreter forks/spawns plus imports — at
*every grid point*.  :class:`ExecutorHandle` keeps one executor alive for
the whole session instead:

* :func:`get_pool` returns the lazily created session handle, sized by
  :func:`~repro.analysis.parallel.default_worker_count` (the
  ``REPRO_MAX_WORKERS`` environment variable caps the default fan-out) and
  grown on demand when a caller explicitly asks for more workers.
* The handle is a context manager, and the session pool is also torn down
  by an ``atexit`` hook (which additionally releases every parent-owned
  shared-memory graph segment — see :mod:`repro.analysis.shm`).
* A crashed worker breaks a :class:`ProcessPoolExecutor` permanently;
  :meth:`ExecutorHandle.reset` discards the broken executor so the next
  call transparently gets a fresh pool (callers surface the crash itself
  as an :class:`~repro.errors.AnalysisError`).

The multiprocessing start method follows the interpreter default (fork on
Linux) and can be forced with ``REPRO_MP_START_METHOD=fork|spawn|forkserver``
— CI runs the parallel smoke suite under both fork and spawn to catch
start-method regressions early.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional

from repro import config
from repro.errors import AnalysisError

__all__ = ["ExecutorHandle", "get_pool", "shutdown_pool", "in_worker"]

#: Valid values of the ``REPRO_MP_START_METHOD`` environment variable.
_START_METHODS = ("fork", "spawn", "forkserver")

#: ``True`` only in pool worker processes (set by the initializer).  The
#: fault-injection hook in :mod:`repro.analysis.parallel` keys on this so an
#: injected crash/stall can never take down the parent process (serial
#: fallback chunks run in the parent through the very same code path).
_IN_WORKER = False


def in_worker() -> bool:
    """Whether the current process is a pool worker."""
    return _IN_WORKER


def _initialize_worker(backend: Optional[str]) -> None:
    """Per-process pool initializer (top level, so every start method works).

    Propagates the parent's kernel-backend selection (``spawn``/``forkserver``
    children do not inherit mutated parent environments) and pre-warms the
    kernels so a worker's first real chunk never absorbs numba's first-call
    compilation.  Warmup failures are swallowed: a worker that cannot warm
    up can still run, just slower on its first chunk.
    """
    global _IN_WORKER
    _IN_WORKER = True
    if backend is not None:
        os.environ["REPRO_KERNEL_BACKEND"] = backend
    try:
        from repro.core.kernels import warmup_kernels

        warmup_kernels()
    # repro: allow[EXC001] -- best-effort warmup: a worker that cannot warm up still runs, just slower
    except Exception:
        pass


def _start_method() -> Optional[str]:
    """The forced multiprocessing start method, or ``None`` for the default."""
    raw = config.read_env("REPRO_MP_START_METHOD")
    if raw is None:
        return None
    method = raw.strip().lower()
    if method not in _START_METHODS:
        raise AnalysisError(
            f"REPRO_MP_START_METHOD must be one of {_START_METHODS}, got {raw!r}"
        )
    return method


class ExecutorHandle:
    """A lazily created, restartable :class:`ProcessPoolExecutor` wrapper.

    The executor is created on first use and reused by every subsequent
    call; :meth:`ensure_workers` grows it (once) when a caller explicitly
    requests more workers than it was created with.  ``creations`` counts
    how many times an executor was actually built — the pool-reuse tests
    pin it across sweeps.

    Concurrent callers are safe: a lock serialises executor management and
    :meth:`lease` tracks in-flight calls, so a growth request from one
    thread never shuts an executor down under another thread's futures
    (the growth then applies at the next creation — an undersized pool
    just queues the extra chunks, it never affects results).
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise AnalysisError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = int(max_workers)
        self.creations = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_workers = 0  # size the live executor was created with
        self._lock = threading.Lock()
        self._leases = 0

    # -- lifecycle ----------------------------------------------------- #
    @property
    def alive(self) -> bool:
        """Whether an executor is currently instantiated."""
        return self._executor is not None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        with self._lock:
            if self._executor is None:
                method = _start_method()
                context = multiprocessing.get_context(method) if method else None
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=context,
                    initializer=_initialize_worker,
                    initargs=(config.read_env("REPRO_KERNEL_BACKEND"),),
                )
                self._executor_workers = self.max_workers
                self.creations += 1
            return self._executor

    def ensure_workers(self, workers: int) -> None:
        """Grow the pool to at least ``workers`` processes (shrink never).

        An idle executor is restarted at the new size; one with leased
        (in-flight) calls is left running — their chunks simply queue on
        the smaller pool.  A growth deferred that way is applied by the
        next ``ensure_workers`` call that finds the pool idle (every
        ``run_trials_parallel`` call makes one), so it is never lost.
        """
        with self._lock:
            if workers > self.max_workers:
                self.max_workers = int(workers)
            if (
                self._executor is not None
                and self._executor_workers < self.max_workers
                and self._leases == 0
            ):
                executor, self._executor = self._executor, None
                executor.shutdown(wait=True)

    def lease(self) -> "_ExecutorLease":
        """Mark one call as in flight (``with handle.lease(): ...``)."""
        return _ExecutorLease(self)

    def reset(self) -> None:
        """Discard the executor (e.g. after a worker crash broke the pool).

        Any worker processes still alive are terminated: a reset is only
        issued for a broken or unresponsive pool, and a stalled worker left
        running could wake up much later and write into shared-memory
        result segments that have since been reused by another call.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            processes = list(getattr(executor, "_processes", {}).values())
            # A broken pool's processes are already gone; don't block on them.
            executor.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                try:
                    if process.is_alive():
                        process.terminate()
                except (AttributeError, OSError, ValueError):
                    # Already-reaped or closed process objects: is_alive() on a
                    # closed handle raises ValueError, terminate() on a
                    # never-started one AttributeError, kill itself OSError.
                    pass

    def shutdown(self, wait: bool = True) -> None:
        """Tear the executor down; the next use transparently recreates it."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "ExecutorHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- execution ----------------------------------------------------- #
    def submit(self, fn: Callable, /, *args, **kwargs):
        return self.executor().submit(fn, *args, **kwargs)

    def map(self, fn: Callable, iterable: Iterable):
        return self.executor().map(fn, iterable)


class _ExecutorLease:
    """Context manager pinning the executor while a call's futures fly."""

    def __init__(self, handle: ExecutorHandle) -> None:
        self._handle = handle

    def __enter__(self) -> ExecutorHandle:
        with self._handle._lock:
            self._handle._leases += 1
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> None:
        with self._handle._lock:
            self._handle._leases -= 1


_SESSION: Optional[ExecutorHandle] = None
_SESSION_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def get_pool(num_workers: Optional[int] = None) -> ExecutorHandle:
    """The session-wide persistent pool handle (created on first use).

    Args:
        num_workers: grow the pool to at least this many workers.  With
            ``None`` the pool is sized by
            :func:`~repro.analysis.parallel.default_worker_count`, which
            honors ``REPRO_MAX_WORKERS``.
    """
    global _SESSION, _ATEXIT_REGISTERED
    with _SESSION_LOCK:
        if _SESSION is None:
            from repro.analysis.parallel import default_worker_count

            _SESSION = ExecutorHandle(default_worker_count())
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_pool)
                _ATEXIT_REGISTERED = True
        session = _SESSION
    if num_workers is not None:
        session.ensure_workers(int(num_workers))
    return session


def shutdown_pool(wait: bool = True) -> None:
    """Tear down the session pool and release shared graph segments.

    Idempotent; registered with :mod:`atexit` on first pool use and callable
    directly (tests, long-lived applications releasing resources between
    workloads).  The next :func:`get_pool` call starts a fresh session.
    """
    global _SESSION
    with _SESSION_LOCK:
        session, _SESSION = _SESSION, None
    if session is not None:
        session.shutdown(wait=wait)
    from repro.analysis import shm

    shm.release_shared_graphs()
