"""Must-flag ENV001/ENV002: undeclared reads and an undocumented knob."""

import os

from repro import config
from repro.config import declare


def undeclared_reads():
    a = os.environ["REPRO_NOT_A_KNOB"]  # ENV001: subscript read
    b = os.environ.get("REPRO_ALSO_NOT_A_KNOB")  # ENV001: .get read
    c = os.getenv("REPRO_STILL_NOT_A_KNOB")  # ENV001: getenv read
    d = config.read_int("REPRO_TYPED_NOT_A_KNOB", 0)  # ENV001: typed helper
    return a, b, c, d


declare("REPRO_UNDOCUMENTED_KNOB", default=None, description="")  # ENV002
