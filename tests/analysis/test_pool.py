"""Lifecycle and stress tests for the persistent pool + shared-memory layer.

The PR-4 contracts pinned here:

* the session pool is created once and reused across sweep calls (no
  per-call executor startup);
* teardown releases every parent-owned shared-memory segment (attaching by
  name afterwards fails — the segment-leak regression check the CI parallel
  smoke job runs under both fork and spawn);
* a crashed worker never fails the sweep: the affected chunks are retried
  on a fresh pool (and run serially in the parent once retries are
  exhausted), so the result is bit-identical to an undisturbed run.
  Fault-injection stress tests live in ``test_fault_tolerance.py``.
"""

from __future__ import annotations

import os
import signal
import time
from multiprocessing import shared_memory

import pytest

from repro.analysis import shm
from repro.analysis.comparison import sweep_family
from repro.analysis.parallel import run_trials_parallel
from repro.analysis.pool import ExecutorHandle, get_pool, shutdown_pool
from repro.errors import AnalysisError
from repro.graphs.random_graphs import random_regular_graph


@pytest.fixture(autouse=True)
def fresh_pool_session():
    """Isolate every test from pool state left behind by other tests."""
    shutdown_pool()
    yield
    shutdown_pool()


@pytest.fixture
def graph():
    return random_regular_graph(48, 4, seed=3)


class TestExecutorHandle:
    def test_lazy_creation_and_context_manager(self):
        with ExecutorHandle(1) as handle:
            assert not handle.alive
            assert handle.submit(os.getpid).result() > 0
            assert handle.alive
            assert handle.creations == 1
        assert not handle.alive

    def test_ensure_workers_grows_but_never_shrinks(self):
        handle = ExecutorHandle(1)
        handle.ensure_workers(3)
        assert handle.max_workers == 3
        handle.ensure_workers(2)
        assert handle.max_workers == 3
        handle.shutdown()

    def test_growth_deferred_by_a_lease_applies_later(self):
        handle = ExecutorHandle(1)
        handle.executor()  # live 1-worker executor
        with handle.lease():
            handle.ensure_workers(2)  # deferred: a call is in flight
            assert handle.max_workers == 2
            assert handle._executor_workers == 1
        # The next idle ensure_workers call (every run_trials_parallel makes
        # one) must apply the recorded growth rather than losing it.
        handle.ensure_workers(2)
        assert handle.submit(os.getpid).result() > 0
        assert handle._executor_workers == 2
        handle.shutdown()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(AnalysisError):
            ExecutorHandle(0)

    def test_invalid_start_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START_METHOD", "threads")
        handle = ExecutorHandle(1)
        with pytest.raises(AnalysisError):
            handle.executor()


class TestPoolReuse:
    def test_pool_reused_across_sweep_calls(self, graph):
        handle = get_pool(2)
        for round_index in range(3):
            sample = run_trials_parallel(
                graph, 0, "pp", trials=8, seed=round_index, num_workers=2
            )
            assert sample.num_trials == 8
        assert get_pool() is handle
        assert handle.creations == 1  # one executor for all three sweeps

    def test_pool_reused_by_family_sweeps(self):
        handle = get_pool(2)
        for seed in range(3):
            sweep = sweep_family(
                "complete",
                ["pp"],
                sizes=[16, 24],
                trials=6,
                seed=seed,
                parallel=True,
                num_workers=2,
            )
            assert len(sweep.comparisons) == 2
        assert get_pool() is handle
        assert handle.creations == 1

    def test_shared_graph_segment_cached_across_calls(self, graph):
        run_trials_parallel(graph, 0, "pp", trials=6, seed=1, num_workers=2)
        assert len(shm._SHARED_GRAPHS) == 1
        run_trials_parallel(graph, 0, "pp-a", trials=6, seed=2, num_workers=2)
        assert len(shm._SHARED_GRAPHS) == 1  # same graph, same segment


class TestTeardown:
    def test_shutdown_releases_graph_segments(self, graph):
        run_trials_parallel(graph, 0, "pp", trials=6, seed=1, num_workers=2)
        assert len(shm._SHARED_GRAPHS) == 1
        (_, segment), = shm._SHARED_GRAPHS.values()
        name = segment.name
        shutdown_pool()
        assert not shm._SHARED_GRAPHS
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_result_segments_released_per_call(self, graph):
        # The times/fraction segments live only for the duration of the
        # call; only the (cached) graph segment may remain afterwards.
        run_trials_parallel(
            graph, 0, "pp", trials=6, seed=1, num_workers=2, fractions=(0.5,)
        )
        assert len(shm._SHARED_GRAPHS) == 1
        shm.release_shared_graphs()
        assert not shm._SHARED_GRAPHS

    def test_worker_cache_eviction_releases_adjacency_views(self):
        # Attaching more graphs than the worker cache holds must actually
        # release the evicted segments: the flat-adjacency cache entry (the
        # zero-copy views into the segment) has to be dropped first, or
        # close() raises BufferError and the mapping leaks.
        from repro.core import flatgraph

        graphs = [
            random_regular_graph(16, 3, seed=s)
            for s in range(shm._WORKER_CACHE_LIMIT + 3)
        ]
        names, attached = [], []
        for g in graphs:
            name = shm.share_graph(g)
            names.append(name)
            attached.append(shm.attach_graph(name, g.name))
        try:
            assert len(shm._ATTACHED_GRAPHS) <= shm._WORKER_CACHE_LIMIT
            cached_names = set(shm._ATTACHED_GRAPHS)
            evicted = [
                g for name, g in zip(names, attached) if name not in cached_names
            ]
            assert evicted  # the loop overflowed the cache
            for g in evicted:
                assert id(g) not in flatgraph._CACHE_KEEPALIVE
        finally:
            for name in list(shm._ATTACHED_GRAPHS):
                segment, g = shm._ATTACHED_GRAPHS.pop(name)
                flatgraph.uncache_adjacency(g)
                del g
                segment.close()

    def test_graph_segment_lru_eviction_unlinks(self):
        graphs = [random_regular_graph(16, 3, seed=s) for s in range(shm._GRAPH_SEGMENT_LIMIT + 2)]
        names = []
        for g in graphs:
            names.append(shm.share_graph(g))
        assert len(shm._SHARED_GRAPHS) <= shm._GRAPH_SEGMENT_LIMIT
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=names[0])  # evicted and unlinked
        shm.release_shared_graphs()
        for name in names[-2:]:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_pinned_segment_survives_eviction_pressure(self):
        # A pinned segment (an in-flight call from another thread) must not
        # be LRU-evicted by a concurrent sweep registering many graphs.
        pinned_graph = random_regular_graph(16, 3, seed=99)
        pinned_name = shm.share_graph(pinned_graph)
        shm.pin_segment(pinned_name)
        try:
            others = [
                random_regular_graph(16, 3, seed=s)
                for s in range(shm._GRAPH_SEGMENT_LIMIT + 3)
            ]
            for g in others:
                shm.share_graph(g)
            attachment = shared_memory.SharedMemory(name=pinned_name)  # still alive
            attachment.close()
        finally:
            shm.unpin_segment(pinned_name)
        shm.release_shared_graphs()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=pinned_name)  # unpinned -> released

    def test_full_release_defers_pinned_unlink_to_final_unpin(self):
        # shutdown_pool()/release_shared_graphs() issued while a shared
        # call is in flight must still release that call's segment — at
        # the final unpin, not never.
        g = random_regular_graph(16, 3, seed=5)
        name = shm.share_graph(g, pin=True)
        shm.release_shared_graphs()
        attachment = shared_memory.SharedMemory(name=name)  # in flight: alive
        attachment.close()
        shm.unpin_segment(name)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)  # deferred unlink happened


class TestWorkerCrash:
    def test_sigkilled_worker_self_heals_bit_identically(self, graph):
        # The baseline: an undisturbed parallel sweep.  Chunk results are a
        # deterministic function of (chunk_seed, chunk_size), so a sweep
        # that loses workers mid-flight must still reproduce it exactly.
        expected = run_trials_parallel(graph, 0, "pp", trials=8, seed=3, num_workers=2)
        shutdown_pool()

        handle = get_pool(2)
        victim = handle.submit(os.getpid).result()
        os.kill(victim, signal.SIGKILL)
        # Give the executor's management thread a moment to notice.
        time.sleep(0.2)
        sample = run_trials_parallel(graph, 0, "pp", trials=8, seed=3, num_workers=2)
        assert sample.times == expected.times
        assert sample.num_trials == 8
        # The handle survived the reset and keeps serving subsequent calls.
        assert get_pool() is handle
        again = run_trials_parallel(graph, 0, "pp", trials=8, seed=3, num_workers=2)
        assert again.times == expected.times
