"""Unit tests for experiment result records and table rendering."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.records import ExperimentResult, format_table, format_value


class TestFormatValue:
    def test_floats_fixed_precision(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(3.14159, precision=1) == "3.1"

    def test_extreme_floats_use_general_format(self):
        assert "e" in format_value(1.23e-7) or format_value(1.23e-7) == "1.23e-07"
        assert format_value(2.5e7) == "2.5e+07"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_bools_and_strings(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value("hello") == "hello"
        assert format_value(42) == "42"


class TestFormatTable:
    def test_alignment_and_rows(self):
        table = format_table(
            ["name", "value"],
            [{"name": "alpha", "value": 1.0}, {"name": "b", "value": 22.5}],
        )
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "alpha" in lines[2]

    def test_missing_cells_render_empty(self):
        table = format_table(["a", "b"], [{"a": 1}])
        assert table.count("\n") == 2

    def test_needs_columns(self):
        with pytest.raises(ExperimentError):
            format_table([], [])


class TestExperimentResult:
    def make(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="E0",
            title="test experiment",
            claim="testing works",
            columns=["n", "value"],
            rows=[{"n": 8, "value": 1.5}, {"n": 16, "value": 2.5}],
            conclusions={"max_value": 2.5, "ok": True},
            notes=["just a test"],
        )

    def test_to_table(self):
        table = self.make().to_table()
        assert "n" in table and "16" in table

    def test_to_text_includes_everything(self):
        text = self.make().to_text()
        assert "E0: test experiment" in text
        assert "claim: testing works" in text
        assert "max_value" in text
        assert "note: just a test" in text

    def test_to_json_round_trip(self):
        payload = json.loads(self.make().to_json())
        assert payload["experiment_id"] == "E0"
        assert payload["rows"][1]["n"] == 16
        assert payload["conclusions"]["ok"] is True

    def test_json_handles_numpy_scalars(self):
        import numpy as np

        result = self.make()
        result.conclusions["np_value"] = np.float64(1.25)
        payload = json.loads(result.to_json())
        assert payload["conclusions"]["np_value"] == 1.25

    def test_conclusion_accessor(self):
        result = self.make()
        assert result.conclusion("ok") is True
        with pytest.raises(ExperimentError, match="available"):
            result.conclusion("missing")
