"""Reporting utilities: persisting and reloading experiment results."""

from repro.reporting.results_io import (
    load_result_json,
    save_result_csv,
    save_result_json,
    save_results,
)

__all__ = [
    "load_result_json",
    "save_result_csv",
    "save_result_json",
    "save_results",
]
