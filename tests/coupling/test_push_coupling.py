"""Unit tests for the push coupling (synchronous vs asynchronous push)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling.push_coupling import average_push_coupling_gap, run_coupled_push
from repro.errors import CouplingError, ProtocolError
from repro.graphs import complete_graph, cycle_graph, hypercube_graph, star_graph
from repro.graphs.base import Graph


class TestValidation:
    def test_bad_source(self):
        with pytest.raises(ProtocolError):
            run_coupled_push(star_graph(8), 20)

    def test_disconnected_graph(self):
        with pytest.raises(ProtocolError):
            run_coupled_push(Graph(4, [(0, 1), (2, 3)]), 0)

    def test_trials_must_be_positive(self):
        with pytest.raises(CouplingError):
            average_push_coupling_gap(star_graph(8), 0, trials=0)


class TestCoupledRun:
    def test_single_vertex(self):
        run = run_coupled_push(Graph(1, []), 0)
        assert run.sync_round == (0.0,) and run.async_time == (0.0,)

    def test_both_sides_complete(self, small_hypercube):
        run = run_coupled_push(small_hypercube, 0, seed=1)
        assert all(np.isfinite(run.sync_round))
        assert all(np.isfinite(run.async_time))
        assert run.sync_round[0] == 0.0 and run.async_time[0] == 0.0

    def test_sync_rounds_are_integers(self, small_complete):
        run = run_coupled_push(small_complete, 0, seed=2)
        assert all(t == int(t) for t in run.sync_round)

    def test_reproducible(self, small_cycle):
        a = run_coupled_push(small_cycle, 0, seed=7)
        b = run_coupled_push(small_cycle, 0, seed=7)
        assert a.sync_round == b.sync_round
        assert a.async_time == b.async_time

    def test_differences_helper(self, small_complete):
        run = run_coupled_push(small_complete, 0, seed=3)
        diffs = run.per_vertex_differences()
        assert len(diffs) == small_complete.num_vertices
        assert diffs[0] == 0.0

    def test_spreading_time_properties(self, small_star):
        run = run_coupled_push(small_star, 1, seed=4)
        assert run.sync_spreading_time == max(run.sync_round)
        assert run.async_spreading_time == max(run.async_time)


class TestCouplingInequality:
    """The Sauerwald argument: E[t_v] <= E[r_v] under the shared-contact coupling."""

    @pytest.mark.parametrize(
        "graph_factory, source, tolerance",
        [
            # The star's asynchronous push time has Theta(n log n) scale and
            # correspondingly large per-trial variance, so its Monte Carlo
            # tolerance is wider than for the concentrated families.
            (lambda: star_graph(32), 1, 3.0),
            (lambda: complete_graph(24), 0, 0.75),
            (lambda: hypercube_graph(5), 0, 0.75),
            (lambda: cycle_graph(24), 0, 1.5),
        ],
    )
    def test_mean_gap_non_positive(self, graph_factory, source, tolerance):
        graph = graph_factory()
        gap = average_push_coupling_gap(graph, source, trials=60, seed=11)
        # The statement is about expectations; allow a noise margin scaled to
        # the family's variance.
        assert gap <= tolerance

    def test_async_spreading_time_not_much_larger_on_average(self):
        graph = complete_graph(32)
        sync_totals, async_totals = [], []
        for seed in range(30):
            run = run_coupled_push(graph, 0, seed=seed)
            sync_totals.append(run.sync_spreading_time)
            async_totals.append(run.async_spreading_time)
        # Sauerwald: the async push completion time is within a constant
        # factor of the sync one (here we just check a generous factor 2).
        assert np.mean(async_totals) <= 2.0 * np.mean(sync_totals)
