"""Experiment E3 — Corollary 3: on regular graphs, push is as fast as push–pull.

Claim (Corollary 3): for every connected *regular* graph,
``T_{p,1/n} = Θ(T_{pp,1/n})`` — the synchronous push-only protocol has the
same asymptotic high-probability spreading time as synchronous push–pull.
(Push–pull trivially dominates push, so the content is the reverse
inequality, which the paper derives from Theorem 1 plus two facts about
regular graphs.)

The experiment measures both protocols on the regular suite (cycle, torus,
hypercube, complete, random regular) across sizes and reports the ratio
``T_{1/n}(push) / T_{1/n}(pp)``.  Corollary 3 predicts the ratio bounded by
a constant, uniformly in ``n``.  For contrast the table also includes the
*star* — a highly irregular graph — where the same ratio must blow up like
``n`` (it is ``Θ(n log n)`` over ``Θ(1)``); this is exactly the paper's point
that push–pull only beats push on non-regular graphs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.comparison import sweep_family
from repro.analysis.scaling import growth_exponent
from repro.experiments.presets import get_preset
from repro.experiments.records import ExperimentResult
from repro.randomness.rng import SeedLike

__all__ = ["run", "DEFAULT_REGULAR_FAMILIES"]

DEFAULT_REGULAR_FAMILIES: tuple[str, ...] = (
    "cycle",
    "complete",
    "hypercube",
    "torus",
    "random_regular_3",
    "random_regular_4",
)


def run(
    preset: str = "quick",
    *,
    seed: SeedLike = 20160727,
    families: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
    include_irregular_contrast: bool = True,
) -> ExperimentResult:
    """Run experiment E3 and return its result table."""
    config = get_preset(preset)
    family_names = tuple(families) if families is not None else DEFAULT_REGULAR_FAMILIES
    size_sweep = tuple(sizes) if sizes is not None else config.sizes

    rows: list[dict[str, object]] = []
    regular_ratios: list[float] = []
    star_ratio_by_size: dict[int, float] = {}

    suite = list(family_names)
    if include_irregular_contrast:
        suite.append("star")

    for family_name in suite:
        is_contrast = family_name == "star" and include_irregular_contrast
        sweep = sweep_family(
            family_name,
            ["push", "pp"],
            sizes=size_sweep,
            trials=config.trials,
            seed=seed,
        )
        for comparison in sweep.comparisons:
            n = comparison.num_vertices
            push_hp = comparison.measurement("push").high_probability
            pp_hp = comparison.measurement("pp").high_probability
            ratio = push_hp / max(pp_hp, 1.0)
            rows.append(
                {
                    "family": family_name,
                    "regular": not is_contrast,
                    "n": n,
                    "T_hp(push)": push_hp,
                    "T_hp(pp)": pp_hp,
                    "ratio push/pp": ratio,
                }
            )
            if is_contrast:
                star_ratio_by_size[n] = ratio
            else:
                regular_ratios.append(ratio)

    conclusions: dict[str, object] = {
        "max_ratio_on_regular_graphs": max(regular_ratios) if regular_ratios else float("nan"),
        "corollary3_consistent": bool(regular_ratios) and max(regular_ratios) < 6.0,
    }
    if len(star_ratio_by_size) >= 2:
        sizes_sorted = sorted(star_ratio_by_size)
        exponent = growth_exponent(sizes_sorted, [star_ratio_by_size[s] for s in sizes_sorted])
        conclusions["star_ratio_growth_exponent"] = exponent
        conclusions["irregular_contrast_blows_up"] = exponent > 0.6

    notes = [
        f"preset={config.name}, trials={config.trials} per cell, sizes={list(size_sweep)}",
        "Corollary 3 predicts the push/pp ratio bounded by a constant on regular graphs",
        "The star rows are the irregular contrast: there the ratio must grow roughly linearly in n",
    ]
    return ExperimentResult(
        experiment_id="E3",
        title="Corollary 3: synchronous push vs push-pull on regular graphs",
        claim="On regular graphs T_{p,1/n} = Theta(T_{pp,1/n}); on irregular graphs push-pull can win by polynomial factors",
        columns=["family", "regular", "n", "T_hp(push)", "T_hp(pp)", "ratio push/pp"],
        rows=rows,
        conclusions=conclusions,
        notes=notes,
    )
