"""Command-line interface: list and run the paper's experiments.

Usage examples::

    # list everything that can be run
    python -m repro list

    # run one experiment with the quick preset and print its table
    python -m repro run E4

    # run every experiment with the smoke preset and save JSON/CSV artefacts
    python -m repro run-all --preset smoke --output results/

    # show the registered protocols, graph families, and adversity scenarios
    python -m repro protocols
    python -m repro families
    python -m repro scenarios

    # run an experiment under message loss + churn
    python -m repro run E12 --scenario "loss:p=0.3+churn:crash_rate=0.05"
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro._version import __version__
from repro.core.protocols import PROTOCOLS
from repro.errors import ReproError
from repro.experiments.presets import PRESETS
from repro.graphs.families import FAMILIES

__all__ = ["build_parser", "main"]

#: ``--batch`` flag value -> ``run_trials`` batch dispatch mode.
_BATCH_MODES = {"auto": "auto", "off": False, "on": True, "pooled": "pooled"}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction harness for 'How Asynchrony Affects Rumor Spreading Time' "
            "(Giakkoupis, Nazari, Woelfel; PODC 2016)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")
    subparsers.add_parser("protocols", help="list the registered rumor-spreading protocols")
    subparsers.add_parser("families", help="list the registered graph families")

    scenarios_parser = subparsers.add_parser(
        "scenarios",
        help="list the registered adversity scenarios, or sweep them (`scenarios sweep`)",
    )
    scenarios_sub = scenarios_parser.add_subparsers(dest="scenarios_command")
    sweep_parser = scenarios_sub.add_parser(
        "sweep",
        help="measure blowup curves over a (family x scenario-grid) product and emit a CSV",
    )
    sweep_parser.add_argument(
        "--families",
        default="star,random_regular_4",
        help="comma-separated registered family names (default: star,random_regular_4)",
    )
    sweep_parser.add_argument(
        "--grid",
        default=None,
        metavar="SPEC[;SPEC...]",
        help=(
            "semicolon-separated scenario specs (e.g. 'loss:p=0.1;loss:p=0.3;"
            "burst-loss:p_gb=0.2,p_bg=0.5,p_loss_bad=0.8'); the clean baseline "
            "is always measured (default: a loss/burst/churn grid)"
        ),
    )
    sweep_parser.add_argument("--size", type=int, default=128, help="vertices per family build")
    sweep_parser.add_argument(
        "--protocols", default="pp,pp-a", help="comma-separated protocol names"
    )
    sweep_parser.add_argument(
        "--view",
        default="global",
        choices=["global", "node_clocks", "edge_clocks"],
        help="asynchronous view used by the asynchronous protocols",
    )
    sweep_parser.add_argument("--trials", type=int, default=64, help="trials per cell")
    sweep_parser.add_argument("--seed", type=int, default=20160729)
    sweep_parser.add_argument(
        "--output", type=Path, default=Path("scenario_sweep.csv"),
        help="CSV path for the blowup table (default: scenario_sweep.csv)",
    )
    sweep_parser.add_argument(
        "--parallel", action="store_true",
        help="shard every cell across the session's persistent process pool",
    )
    sweep_parser.add_argument(
        "--num-workers", type=int, default=None,
        help="worker processes for --parallel (default: CPU count, REPRO_MAX_WORKERS capped)",
    )
    sweep_parser.add_argument(
        "--backend", choices=("auto", "numpy", "jit"), default=None,
        help=(
            "kernel backend for the batched engines (sets REPRO_KERNEL_BACKEND "
            "process-wide, pool workers included): 'numpy' is the reference, "
            "'jit' the numba-compiled loops (falls back to numpy with one "
            "warning when numba is missing), 'auto' prefers jit when available"
        ),
    )
    sweep_parser.add_argument(
        "--curves", action="store_true",
        help=(
            "record per-cell coverage traces on the batched kernels and emit "
            "a per-time coverage-quantile CSV (p10/p50/p90/mean per grid time)"
        ),
    )
    sweep_parser.add_argument(
        "--curves-output", type=Path, default=None,
        help="curve CSV path (default: <--output stem>_curves.csv)",
    )
    sweep_parser.add_argument(
        "--curve-points", type=int, default=200,
        help="coverage-grid resolution per cell trace (default: 200)",
    )
    sweep_parser.add_argument(
        "--manifest", type=Path, default=None,
        help=(
            "write a JSONL run manifest (run_start/cell/coverage/summary "
            "events; summarize with `telemetry summarize`)"
        ),
    )

    run_parser = subparsers.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", help="experiment id, e.g. E1 or 1")
    run_parser.add_argument("--preset", choices=sorted(PRESETS), default="quick")
    run_parser.add_argument("--seed", type=int, default=None, help="override the experiment's default seed")
    run_parser.add_argument("--json", action="store_true", help="print JSON instead of the text report")
    run_parser.add_argument("--output", type=Path, default=None, help="directory to save JSON/CSV artefacts")
    run_parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME[:param=val,...]",
        help=(
            "run the experiment under an adversity scenario, e.g. 'loss:p=0.3' or "
            "'loss:p=0.2+churn:crash_rate=0.05' (see `scenarios`; only experiments "
            "that accept a scenario, such as E12/E13, support this)"
        ),
    )
    run_parser.add_argument(
        "--batch",
        choices=sorted(_BATCH_MODES),
        default=None,
        help=(
            "Monte Carlo dispatch mode for experiments that accept one (e.g. E1): "
            "'on' forces the 2-D batch kernels, 'off' forces the serial loop, "
            "'auto' batches when the setting allows it, 'pooled' shares one "
            "generator per batch.  All but 'pooled' are seed-for-seed identical."
        ),
    )
    run_parser.add_argument(
        "--families",
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "override the experiment's family sweep with a comma-separated "
            "list of registered families (experiments that accept one, e.g. "
            "E1; see `families`)"
        ),
    )
    run_parser.add_argument(
        "--sizes",
        default=None,
        metavar="N[,N...]",
        help=(
            "override the preset's size sweep with a comma-separated list of "
            "vertex counts (experiments that accept one, e.g. E1; the "
            "CSR-native generators handle sizes up to 10^6)"
        ),
    )
    run_parser.add_argument(
        "--parallel",
        action="store_true",
        help=(
            "shard the experiment's Monte Carlo cells across the session's "
            "persistent process pool (experiments that accept it, e.g. E1/E12/E13; "
            "zero-copy shared-memory transport; family graphs are built once "
            "in the parent and served to workers over shared CSR segments)"
        ),
    )
    run_parser.add_argument(
        "--num-workers",
        type=int,
        default=None,
        help="worker processes for --parallel (default: CPU count, REPRO_MAX_WORKERS capped)",
    )
    run_parser.add_argument(
        "--backend",
        choices=("auto", "numpy", "jit"),
        default=None,
        help=(
            "kernel backend for the batched engines (sets REPRO_KERNEL_BACKEND "
            "process-wide, pool workers included): 'numpy' is the reference, "
            "'jit' the numba-compiled loops (falls back to numpy with one "
            "warning when numba is missing), 'auto' prefers jit when available"
        ),
    )
    run_parser.add_argument(
        "--trace",
        choices=("coverage",),
        default=None,
        help=(
            "collect coverage traces from every traced Monte Carlo call the "
            "experiment makes (batch-speed: the (trials, n) informing-time "
            "matrices, no per-trial loop) and print a sparkline per trace"
        ),
    )
    run_parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "collect runtime metrics (rounds, ticks, messages, backend, pool "
            "chunks) and write a JSONL run manifest to FILE; coverage traces "
            "from --trace ride along as coverage events"
        ),
    )

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    run_all_parser.add_argument("--preset", choices=sorted(PRESETS), default="quick")
    run_all_parser.add_argument("--seed", type=int, default=None)
    run_all_parser.add_argument("--output", type=Path, default=None, help="directory to save JSON/CSV artefacts")

    devtools_parser = subparsers.add_parser(
        "devtools",
        help="repo-specific static analysis (`devtools lint`, `devtools knobs`)",
    )
    devtools_sub = devtools_parser.add_subparsers(dest="devtools_command", required=True)
    lint_parser = devtools_sub.add_parser(
        "lint",
        help=(
            "run the AST lint rules (RNG discipline, backend parity, shm "
            "lifecycle, env-knob registry, ...) over source trees"
        ),
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="lint_format",
        help="report format on stdout (default: text)",
    )
    lint_parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the JSON report to this path (CI artifact)",
    )
    lint_parser.add_argument(
        "--select", default=None, metavar="CODE[,CODE...]",
        help="restrict the run to these rule codes (e.g. RNG001,PAR001)",
    )
    knobs_parser = devtools_sub.add_parser(
        "knobs", help="print the generated REPRO_* configuration-knob table"
    )
    knobs_parser.add_argument(
        "--check", type=Path, default=None, metavar="README",
        help="verify the README's generated knob table matches the registry",
    )

    telemetry_parser = subparsers.add_parser(
        "telemetry", help="inspect telemetry artefacts (`telemetry summarize`)"
    )
    telemetry_sub = telemetry_parser.add_subparsers(
        dest="telemetry_command", required=True
    )
    summarize_parser = telemetry_sub.add_parser(
        "summarize", help="aggregate a JSONL run manifest into one report"
    )
    summarize_parser.add_argument("manifest", type=Path, help="JSONL manifest path")
    summarize_parser.add_argument(
        "--json", action="store_true", help="print the aggregate as JSON"
    )

    return parser


def _command_list() -> int:
    from repro.experiments.registry import EXPERIMENTS, available_experiments

    for experiment_id in available_experiments():
        spec = EXPERIMENTS[experiment_id]
        print(f"{experiment_id:>4}  {spec.title}")
        print(f"      claim: {spec.claim}")
    return 0


def _command_protocols() -> int:
    for name in sorted(PROTOCOLS):
        spec = PROTOCOLS[name]
        clock = "rounds" if spec.synchronous else "continuous time"
        marker = "" if spec.realistic else " [analysis-only]"
        print(f"{name:>7}  ({clock}){marker}  {spec.description}")
    return 0


def _command_families() -> int:
    for name in sorted(FAMILIES):
        family = FAMILIES[name]
        flags = []
        if family.is_regular:
            flags.append("regular")
        if family.is_random:
            flags.append("random")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        print(f"{name:>24}{suffix}  {family.description}")
    return 0


def _command_scenarios(arguments: argparse.Namespace) -> int:
    if getattr(arguments, "scenarios_command", None) == "sweep":
        return _command_scenarios_sweep(arguments)
    from repro.scenarios import SCENARIOS

    for name in sorted(SCENARIOS):
        spec = SCENARIOS[name]
        print(f"{name:>20}  {spec.summary}")
        print(f"{'':>20}  params: {spec.parameters}")
    print()
    print('compose with "+", e.g. --scenario "loss:p=0.2+churn:crash_rate=0.05"')
    print('sweep a grid with `scenarios sweep` (see `scenarios sweep --help`)')
    return 0


def _apply_backend(backend: Optional[str]) -> None:
    """Select the kernel backend process-wide (pool workers inherit it).

    The environment variable is the one channel every consumer reads — the
    in-process kernels via :func:`repro.core.kernels.default_backend_name`
    and the persistent pool workers via their initializer — so the CLI flag
    covers serial, batched, and parallel runs alike.
    """
    if backend is not None:
        os.environ["REPRO_KERNEL_BACKEND"] = backend


def _command_scenarios_sweep(arguments: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.experiments.scenarios import DEFAULT_SWEEP_GRID, sweep_scenarios
    from repro.telemetry.metrics import MetricsRegistry, collecting_metrics

    _apply_backend(arguments.backend)
    grid = (
        [part for part in arguments.grid.split(";") if part.strip()]
        if arguments.grid is not None
        else list(DEFAULT_SWEEP_GRID)
    )
    with ExitStack() as stack:
        if arguments.manifest is not None:
            # A manifest's summary record carries the metric totals, so a
            # registry is active for the whole sweep when one is requested.
            stack.enter_context(collecting_metrics(MetricsRegistry()))
        rows = sweep_scenarios(
            [name.strip() for name in arguments.families.split(",") if name.strip()],
            grid,
            size=arguments.size,
            protocols=[p.strip() for p in arguments.protocols.split(",") if p.strip()],
            view=arguments.view,
            trials=arguments.trials,
            seed=arguments.seed,
            output=arguments.output,
            # An explicit worker count implies parallel mode, matching `run`.
            parallel=arguments.parallel or arguments.num_workers is not None,
            num_workers=arguments.num_workers,
            curves=arguments.curves,
            curves_output=arguments.curves_output,
            curve_points=arguments.curve_points,
            manifest=arguments.manifest,
        )
    for row in rows:
        print(
            f"{row['family']:>20}  {row['protocol']:>6}  {row['view']:>11}  "
            f"{row['scenario']:<44}  mean={row['mean']:9.3f}  blowup={row['blowup']:6.2f}"
        )
    print(f"wrote {arguments.output} ({len(rows)} rows)")
    if arguments.curves:
        curves_path = (
            arguments.curves_output
            if arguments.curves_output is not None
            else arguments.output.with_name(arguments.output.stem + "_curves.csv")
        )
        print(f"wrote {curves_path} (coverage quantile curves)")
    if arguments.manifest is not None:
        print(f"wrote {arguments.manifest} (run manifest)")
    return 0


def _save(results, output: Optional[Path]) -> None:
    if output is None:
        return
    from repro.reporting.results_io import save_results

    written = save_results(results, output)
    for path in written:
        print(f"wrote {path}")


def _require_runner_param(experiment: str, param: str, hint: str) -> None:
    """Raise unless the experiment's runner accepts the named keyword."""
    import inspect

    from repro.errors import ExperimentError
    from repro.experiments.registry import get_experiment

    spec = get_experiment(experiment)
    if param not in inspect.signature(spec.runner).parameters:
        raise ExperimentError(
            f"experiment {spec.experiment_id} does not accept a {hint}"
        )


def _command_run(arguments: argparse.Namespace) -> int:
    import time
    from contextlib import ExitStack

    from repro.experiments.registry import run_experiment
    from repro.telemetry.metrics import MetricsRegistry, collecting_metrics
    from repro.telemetry.trace import TraceSpec, collecting_traces

    _apply_backend(arguments.backend)
    overrides = {}
    if arguments.scenario is not None:
        from repro.scenarios import parse_scenario

        _require_runner_param(
            arguments.experiment, "scenario", "scenario; the scenario suites are E12/E13"
        )
        overrides["scenario"] = parse_scenario(arguments.scenario)
    if arguments.batch is not None:
        _require_runner_param(
            arguments.experiment,
            "batch",
            "batch mode; the batched Monte Carlo suite is E1",
        )
        overrides["batch"] = _BATCH_MODES[arguments.batch]
    if arguments.families is not None:
        _require_runner_param(
            arguments.experiment,
            "families",
            "family override; the family-sweep suite is E1",
        )
        overrides["families"] = [
            name.strip() for name in arguments.families.split(",") if name.strip()
        ]
    if arguments.sizes is not None:
        _require_runner_param(
            arguments.experiment,
            "sizes",
            "size override; the family-sweep suite is E1",
        )
        try:
            overrides["sizes"] = [
                int(token) for token in arguments.sizes.split(",") if token.strip()
            ]
        except ValueError as error:
            raise SystemExit(f"--sizes expects comma-separated integers: {error}")
    if arguments.parallel or arguments.num_workers is not None:
        _require_runner_param(
            arguments.experiment,
            "parallel",
            "parallel mode; parallel-capable suites include E1, E12 and E13",
        )
        overrides["parallel"] = True
        if arguments.num_workers is not None:
            overrides["num_workers"] = arguments.num_workers
    registry = collector = None
    started = time.perf_counter()
    with ExitStack() as stack:
        if arguments.metrics_out is not None:
            registry = MetricsRegistry()
            stack.enter_context(collecting_metrics(registry))
        if arguments.trace == "coverage":
            # Ambient tracing: every run_trials / run_trials_parallel call
            # the experiment makes deposits a compacted coverage trace here.
            collector = stack.enter_context(collecting_traces(TraceSpec()))
        result = run_experiment(
            arguments.experiment, preset=arguments.preset, seed=arguments.seed, **overrides
        )
    wall_seconds = time.perf_counter() - started
    if arguments.json:
        print(result.to_json())
    else:
        print(result.to_text())
    if collector is not None:
        from repro.analysis.curves import ascii_sparkline

        print()
        print(f"coverage traces ({len(collector.traces)}):")
        for trace in collector.traces:
            spark = ascii_sparkline(
                [row["mean"] for row in trace.envelope_rows()], width=48
            )
            print(
                f"  {trace.protocol:>7}  {trace.graph_name:<32} "
                f"trials={trace.num_trials:<5} {spark}"
            )
    if arguments.metrics_out is not None:
        from repro.telemetry.manifest import ManifestWriter

        writer = ManifestWriter(arguments.metrics_out)
        writer.event(
            "run_start",
            command="run",
            experiment=result.experiment_id,
            preset=arguments.preset,
            seed=arguments.seed,
            trace=arguments.trace,
        )
        if collector is not None:
            for trace in collector.traces:
                writer.coverage(trace)
        writer.summary(
            metrics=registry.snapshot(),
            command="run",
            experiment=result.experiment_id,
            wall_seconds=wall_seconds,
        )
        print(f"wrote {arguments.metrics_out} (run manifest)")
    _save([result], arguments.output)
    return 0


def _command_run_all(arguments: argparse.Namespace) -> int:
    from repro.experiments.registry import run_all_experiments

    results = run_all_experiments(preset=arguments.preset, seed=arguments.seed)
    for experiment_id in sorted(results, key=lambda key: int(key.lstrip("E"))):
        print(results[experiment_id].to_text())
        print()
    _save(list(results.values()), arguments.output)
    return 0


def _command_devtools(arguments: argparse.Namespace) -> int:
    if arguments.devtools_command == "knobs":
        from repro import config

        if arguments.check is not None:
            errors = config.readme_table_errors(
                arguments.check.read_text(encoding="utf8")
            )
            for error in errors:
                print(f"error: {error}", file=sys.stderr)
            if not errors:
                print(f"{arguments.check}: knob table matches the registry")
            return 1 if errors else 0
        print(config.markdown_table())
        return 0

    from repro.devtools import count_files, lint_paths, render_json, render_text

    paths = [Path(p) for p in arguments.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2
    select = (
        [code.strip() for code in arguments.select.split(",") if code.strip()]
        if arguments.select is not None
        else None
    )
    diagnostics = lint_paths(paths, select=select)
    files_checked = count_files(paths)
    if arguments.output is not None:
        arguments.output.write_text(
            render_json(diagnostics, files_checked) + "\n", encoding="utf8"
        )
    if arguments.lint_format == "json":
        print(render_json(diagnostics, files_checked))
    else:
        print(render_text(diagnostics, files_checked))
    return 1 if diagnostics else 0


def _command_telemetry(arguments: argparse.Namespace) -> int:
    from repro.telemetry.manifest import summarize_manifest

    summary = summarize_manifest(arguments.manifest)
    if arguments.json:
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"manifest: {summary['path']}")
    print("events:")
    for kind in sorted(summary["events"]):
        print(f"  {kind:>12}  {summary['events'][kind]}")
    metrics = summary["metrics"]
    if metrics["counters"]:
        print("counters:")
        for name in sorted(metrics["counters"]):
            print(f"  {name:<32} {metrics['counters'][name]}")
    if metrics["timers"]:
        print("timers:")
        for name in sorted(metrics["timers"]):
            timer = metrics["timers"][name]
            print(
                f"  {name:<32} total={timer['seconds']:.3f}s calls={timer['count']}"
            )
    if metrics["gauges"]:
        print("gauges:")
        for name in sorted(metrics["gauges"]):
            print(f"  {name:<32} {metrics['gauges'][name]}")
    if summary["coverage"]:
        print(f"coverage cells: {len(summary['coverage'])}")
        for cell in summary["coverage"]:
            print(
                f"  {cell['protocol']:>7}  {cell['graph']:<32} "
                f"n={cell['num_vertices']} trials={cell['num_trials']}"
            )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "list":
            return _command_list()
        if arguments.command == "protocols":
            return _command_protocols()
        if arguments.command == "families":
            return _command_families()
        if arguments.command == "scenarios":
            return _command_scenarios(arguments)
        if arguments.command == "run":
            return _command_run(arguments)
        if arguments.command == "run-all":
            return _command_run_all(arguments)
        if arguments.command == "devtools":
            return _command_devtools(arguments)
        if arguments.command == "telemetry":
            return _command_telemetry(arguments)
        parser.error(f"unknown command {arguments.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
