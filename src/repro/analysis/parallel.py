"""Parallel Monte Carlo execution across processes.

Spreading-time trials are embarrassingly parallel, and the experiment suites
run thousands of them.  :func:`run_trials_parallel` splits a trial budget
into chunks, executes the chunks on the session's persistent process pool
(:mod:`repro.analysis.pool` — created once and reused across sweep grid
points), and merges the chunk results.  Seeds are spawned from the master
seed *before* dispatch, so the merged sample is identical in distribution
(though not in order) to a serial run with the same total number of trials,
and fully reproducible for a fixed ``(seed, trials, num_workers)`` triple.

Two transports are available via the ``parallel`` argument, bit-identical
to each other for the same ``(seed, trials, num_workers)``:

* ``"shared"`` (default) — the zero-copy path.  The parent owns the
  ``(trials,)`` spreading-time vector (and the ``(trials, len(fractions))``
  coverage matrix) in :mod:`multiprocessing.shared_memory`; each worker
  writes its chunk's rows directly at its offset, so merging is a single
  array view instead of pickling samples back.  When an explicit
  :class:`~repro.graphs.base.Graph` is passed, its CSR adjacency arrays are
  placed in one shared segment per graph (cached across calls) and workers
  reattach them by name — the graph is never re-pickled per chunk, and the
  reattached arrays feed the batch kernels zero-copy.
* ``"pickle"`` — the legacy transport: the graph is pickled into every
  chunk spec and every worker pickles its whole
  :class:`~repro.analysis.montecarlo.SpreadingTimeSample` back through the
  executor.  Kept as the equivalence reference and benchmark baseline.

Graphs given as a named family are built **once in the parent** from the
plan's shared graph seed and served to the workers through the same
shared-memory CSR segment as explicit graphs (on the ``"shared"``
transport); the ``"pickle"`` transport and the degenerate one-chunk path
still rebuild from the family registry inside the worker.  Both are
bit-identical: the worker-side rebuild used the identical
``(family, size, graph_seed)`` triple.

**Fault tolerance.**  Chunk execution survives misbehaving workers: every
chunk is retried with exponential backoff when its worker crashes, raises,
or exceeds the per-chunk timeout, and a chunk whose retries are exhausted
runs *serially in the parent* instead of failing the whole sweep.  Because
a chunk's result is a deterministic function of its ``(chunk_seed,
chunk_size)`` pair, a retried or fallen-back sweep is bit-identical to an
undisturbed one.  Two environment knobs tune the policy:

* ``REPRO_CHUNK_RETRIES`` — resubmissions per chunk before the serial
  fallback (default 2; 0 falls back on the first failure).
* ``REPRO_CHUNK_TIMEOUT`` — per-chunk result timeout in seconds (unset or
  non-positive disables the timeout).  A timeout resets the pool, which
  also terminates the stalled worker process.

The ``REPRO_FAULT_INJECT`` hook (``crash`` | ``raise`` | ``stall``, fired
with probability ``REPRO_FAULT_RATE``, default 1) makes workers misbehave
on purpose; it is the CI smoke test for the machinery above and only ever
fires inside pool workers, never in the parent.  Under an active metrics
registry the dispatcher counts ``parallel.chunk_retries``,
``parallel.chunk_timeouts``, and ``parallel.serial_fallbacks``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    TimeoutError as FuturesTimeout,
    wait as wait_futures,
)
from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro import config
from repro.analysis import shm
from repro.analysis.montecarlo import (
    SpreadingTimeSample,
    _forced_batch_error,
    batch_dispatch_decision,
    run_trials,
)
from repro.analysis import pool as pool_module
from repro.analysis.pool import ExecutorHandle, get_pool
from repro.errors import AnalysisError
from repro.graphs.base import Graph
from repro.graphs.families import get_family
from repro.randomness.rng import SeedLike, as_generator, spawn_seeds
from repro.scenarios.base import Scenario, ScenarioLike, as_scenario
from repro.telemetry.metrics import (
    MetricsRegistry,
    collecting_metrics,
    current_metrics,
)
from repro.telemetry.trace import CoverageRecorder, active_trace_collector

__all__ = [
    "ParallelTrialSpec",
    "run_trials_parallel",
    "default_worker_count",
    "chunk_plan",
]

#: Accepted values of the ``parallel`` transport argument.
PARALLEL_MODES = ("shared", "pickle")


def default_worker_count() -> int:
    """Number of worker processes to use by default.

    Defaults to the CPU count (at least 1).  The ``REPRO_MAX_WORKERS``
    environment variable, when set to a positive integer, caps the fan-out —
    useful on CI runners and shared machines; values above the CPU count are
    clamped to it, and unparsable or non-positive values are ignored.
    """
    cpus = max(1, os.cpu_count() or 1)
    raw = config.read_env("REPRO_MAX_WORKERS")
    if raw is not None:
        try:
            limit = int(raw)
        except ValueError:
            return cpus
        if limit >= 1:
            return min(limit, cpus)
    return cpus


def _chunk_retries() -> int:
    """Resubmissions allowed per chunk (``REPRO_CHUNK_RETRIES``, default 2)."""
    return max(0, config.read_int("REPRO_CHUNK_RETRIES", 2))


def _chunk_timeout() -> Optional[float]:
    """Per-chunk result timeout in seconds (``REPRO_CHUNK_TIMEOUT``), or None."""
    value = config.read_float("REPRO_CHUNK_TIMEOUT")
    return value if value is not None and value > 0 else None


#: Valid values of the ``REPRO_FAULT_INJECT`` environment variable.
FAULT_MODES = ("crash", "raise", "stall")


def _maybe_inject_fault(trial_seed: int) -> None:
    """The worker fault-injection hook (``REPRO_FAULT_INJECT``).

    Fires at the top of a chunk, before any simulation work or shared-memory
    write, with probability ``REPRO_FAULT_RATE`` (default 1) per
    ``(chunk seed, worker pid)`` pair — deterministic for a fixed pair, so a
    chunk resubmitted to a *different* worker re-rolls while the parent-side
    serial fallback (where this hook never fires) guarantees termination.

    * ``crash`` — hard-exit the worker process (simulates a SIGKILL / OOM
      kill; breaks the whole executor).
    * ``raise`` — raise :class:`AnalysisError` from the chunk.
    * ``stall`` — sleep ``REPRO_FAULT_STALL_SECONDS`` (default 3600),
      simulating a hung worker; only a ``REPRO_CHUNK_TIMEOUT`` recovers.
    """
    mode = config.read_env("REPRO_FAULT_INJECT")
    if not mode or not pool_module.in_worker():
        return
    mode = mode.strip().lower()
    if mode not in FAULT_MODES:
        raise AnalysisError(
            f"REPRO_FAULT_INJECT must be one of {FAULT_MODES}, got {mode!r}"
        )
    rate = config.read_float("REPRO_FAULT_RATE", 1.0)
    fault_rng = as_generator(np.random.SeedSequence((int(trial_seed), os.getpid())))
    if fault_rng.random() >= rate:
        return
    if mode == "crash":
        os._exit(13)
    if mode == "raise":
        raise AnalysisError(f"injected worker fault (chunk seed {trial_seed})")
    stall = config.read_float("REPRO_FAULT_STALL_SECONDS", 3600.0)
    time.sleep(3600.0 if stall is None else stall)


@dataclass(frozen=True)
class ParallelTrialSpec:
    """Description of one chunk of trials executed in a worker process.

    Attributes:
        family_name: name of a registered graph family (mutually exclusive
            with ``graph``); the worker builds the graph itself.
        graph: an explicit graph to run on (pickled to the worker — the
            ``"pickle"`` transport).
        graph_shm: name of a shared-memory CSR segment to reattach the
            graph from (the ``"shared"`` transport; mutually exclusive with
            ``graph``/``family_name``).
        graph_display_name: display name restored onto the reattached graph.
        size: family size to build (required with ``family_name``).
        graph_seed: seed for building random-family graphs.
        source: source vertex or ``"random"``.
        protocol: canonical protocol name.
        trials: number of trials in this chunk.
        trial_seed: seed for the chunk's trials.
        fractions: coverage fractions to record.
        batch: batch dispatch mode forwarded to
            :func:`~repro.analysis.montecarlo.run_trials`; with the default
            ``"auto"`` each worker simulates its chunk through the 2-D batch
            kernels (one vectorised job instead of a Python loop over trials)
            whenever the protocol allows it.
        scenario: optional adversity scenario applied by every trial of the
            chunk (pickled to the worker; the standard models and
            :class:`~repro.scenarios.FamilyResampler` all pickle — custom
            resampler lambdas do not).
        engine_options: extra engine options forwarded to ``run_trials``
            (e.g. the asynchronous ``view``).
        collect_metrics: run the chunk under a private worker-local
            :class:`~repro.telemetry.metrics.MetricsRegistry` and return its
            snapshot with the chunk metadata, so the parent can merge the
            workers' counters into its own registry (the shared transport's
            chunk-return path).
    """

    protocol: str
    source: Union[int, str]
    trials: int
    trial_seed: int
    family_name: Optional[str] = None
    size: Optional[int] = None
    graph_seed: Optional[int] = None
    graph: Optional[Graph] = None
    graph_shm: Optional[str] = None
    graph_display_name: Optional[str] = None
    fractions: tuple[float, ...] = ()
    batch: Union[bool, int, str] = "auto"
    scenario: Optional[Scenario] = None
    engine_options: Optional[dict] = None
    collect_metrics: bool = False


@dataclass(frozen=True)
class _SharedChunkSpec:
    """One chunk of the shared transport: where in the shared matrices to write.

    ``times_name``/``fractions_name``/``coverage_name`` are segment names
    from :func:`repro.analysis.shm.create_array`; the worker writes its
    chunk's rows at ``[offset, offset + spec.trials)`` of the
    ``(total_trials,)`` / ``(total_trials, len(fractions))`` /
    ``(total_trials, num_vertices)`` arrays.  ``coverage_name`` carries the
    per-vertex informing-time matrix of a coverage trace (each worker runs
    its chunk through a local
    :class:`~repro.telemetry.trace.CoverageRecorder` and writes the
    recorded rows at its offset; the parent ingests the assembled matrix as
    one block).
    """

    spec: ParallelTrialSpec
    times_name: str
    fractions_name: Optional[str]
    offset: int
    total_trials: int
    coverage_name: Optional[str] = None
    num_vertices: Optional[int] = None


def _resolve_chunk_graph(spec: ParallelTrialSpec) -> Graph:
    """Materialise the chunk's graph from whichever transport carried it."""
    if spec.graph is not None:
        return spec.graph
    if spec.graph_shm is not None:
        return shm.attach_graph(spec.graph_shm, spec.graph_display_name)
    if spec.family_name is None or spec.size is None:
        raise AnalysisError("a chunk needs either a graph or a (family_name, size) pair")
    return get_family(spec.family_name).build(spec.size, seed=spec.graph_seed)


def _run_chunk(
    spec: ParallelTrialSpec, trace: Optional[CoverageRecorder] = None
) -> SpreadingTimeSample:
    """Worker entry point: build/attach the graph and run the chunk."""
    _maybe_inject_fault(spec.trial_seed)
    graph = _resolve_chunk_graph(spec)
    return run_trials(
        graph,
        spec.source,
        spec.protocol,
        trials=spec.trials,
        seed=spec.trial_seed,
        fractions=spec.fractions,
        batch=spec.batch,
        scenario=spec.scenario,
        engine_options=spec.engine_options,
        trace=trace,
    )


def _run_chunk_shared(
    shared: _SharedChunkSpec,
) -> tuple[str, int, int, Optional[dict]]:
    """Shared-transport worker entry point.

    Runs the chunk, writes its spreading times (and coverage fractions /
    per-vertex informing times) directly into the parent-owned shared
    matrices, and returns only tiny metadata
    ``(graph_name, num_vertices, source, metrics_snapshot)`` — no sample
    pickling.  The metrics snapshot is ``None`` unless the parent asked for
    worker counters via ``spec.collect_metrics``.
    """
    spec = shared.spec
    recorder = CoverageRecorder() if shared.coverage_name is not None else None
    snapshot: Optional[dict] = None
    if spec.collect_metrics:
        # The worker process has no ambient registry of its own; the chunk
        # runs under a private one whose snapshot travels back with the
        # metadata so the parent can merge it (telemetry stays observational:
        # the simulation code is identical either way).
        registry = MetricsRegistry()
        with collecting_metrics(registry):
            with registry.timer("parallel.chunk_seconds"):
                sample = _run_chunk(spec, trace=recorder)
        snapshot = registry.snapshot()
    else:
        sample = _run_chunk(spec, trace=recorder)
    stop = shared.offset + spec.trials
    times_segment, times = shm.attach_array(shared.times_name, (shared.total_trials,))
    try:
        times[shared.offset : stop] = sample.times
    finally:
        del times
        times_segment.close()
    if shared.fractions_name is not None:
        shape = (shared.total_trials, len(spec.fractions))
        frac_segment, matrix = shm.attach_array(shared.fractions_name, shape)
        try:
            for column, fraction in enumerate(spec.fractions):
                matrix[shared.offset : stop, column] = sample.fraction_times[fraction]
        finally:
            del matrix
            frac_segment.close()
    if recorder is not None:
        shape = (shared.total_trials, shared.num_vertices)
        cov_segment, coverage = shm.attach_array(shared.coverage_name, shape)
        try:
            coverage[shared.offset : stop] = recorder.times_matrix()
        finally:
            del coverage
            cov_segment.close()
    return sample.graph_name, sample.num_vertices, sample.source, snapshot


def chunk_plan(
    trials: int, workers: int, seed: SeedLike = None
) -> tuple[int, list[tuple[int, int]]]:
    """The deterministic (graph seed, per-chunk ``(size, seed)``) split.

    This is the one place the parallel chunking policy lives — including
    the bit-compatibility-critical ``min(workers, trials)`` clamp, which
    changes how many seeds are spawned: both transports and the
    equivalence harness (which replays the chunks through serial
    :func:`~repro.analysis.montecarlo.run_trials` calls) derive the same
    plan from the same ``(trials, workers, seed)`` triple, which is what
    makes the three paths bit-identical.
    """
    workers = min(int(workers), int(trials))
    graph_seed, *chunk_seeds = spawn_seeds(workers + 1, seed)
    base, remainder = divmod(trials, workers)
    plan = []
    for index, chunk_seed in enumerate(chunk_seeds):
        size = base + (1 if index < remainder else 0)
        if size > 0:
            plan.append((size, chunk_seed))
    return graph_seed, plan


def _dispatch_chunks(handle: ExecutorHandle, fn, chunk_specs: Sequence[Any]) -> list:
    """Run ``fn`` over every chunk spec on the pool, tolerating worker faults.

    Per chunk: up to ``REPRO_CHUNK_RETRIES`` resubmissions (with exponential
    backoff between rounds) on a worker crash, exception, or
    ``REPRO_CHUNK_TIMEOUT`` expiry; after retries are exhausted the chunk
    runs serially in the parent through the very same entry point.  A crash
    or timeout resets the pool (terminating its processes — a stalled
    worker must not wake up later and touch recycled result segments);
    chunks whose futures died *with* the pool are resubmitted without
    charging their own retry budget.  Results come back in spec order, so
    the merged sample is bit-identical to an undisturbed dispatch.

    A chunk that still fails in the parent raises — a genuine chunk error
    (as opposed to a worker fault) should surface, not loop.
    """
    retries = _chunk_retries()
    timeout = _chunk_timeout()
    metrics = current_metrics()
    results: dict[int, Any] = {}
    attempts = [0] * len(chunk_specs)
    pending = list(range(len(chunk_specs)))
    round_index = 0

    def _note_failure(index: int, *, timed_out: bool = False) -> Optional[int]:
        """Charge one attempt; return the index to requeue, or run serially."""
        attempts[index] += 1
        if timed_out and metrics is not None:
            metrics.count("parallel.chunk_timeouts")
        if attempts[index] > retries:
            if metrics is not None:
                metrics.count("parallel.serial_fallbacks")
            results[index] = fn(chunk_specs[index])
            return None
        if metrics is not None:
            metrics.count("parallel.chunk_retries")
        return index

    while pending:
        if round_index > 0:
            time.sleep(min(1.0, 0.05 * (2 ** (round_index - 1))))
        round_index += 1
        requeue: list[int] = []
        with handle.lease():
            futures: dict[int, Any] = {}
            try:
                try:
                    for index in pending:
                        futures[index] = handle.submit(fn, chunk_specs[index])
                except BrokenExecutor:
                    # Submission itself failed: the pool is gone.  Charge the
                    # chunks that never got a future and reset below via the
                    # collection loop's broken handling.
                    handle.reset()
                    for index in pending:
                        if index not in futures:
                            next_index = _note_failure(index)
                            if next_index is not None:
                                requeue.append(next_index)
                broken = False
                for index, future in futures.items():
                    try:
                        if broken:
                            # The pool was reset this round; salvage results
                            # that completed before it died, without waiting.
                            results[index] = future.result(timeout=0)
                        else:
                            results[index] = future.result(timeout=timeout)
                    except FuturesTimeout:
                        if broken:
                            requeue.append(index)
                        else:
                            broken = True
                            handle.reset()
                            next_index = _note_failure(index, timed_out=True)
                            if next_index is not None:
                                requeue.append(next_index)
                    except (BrokenExecutor, CancelledError):
                        if broken:
                            # Died with the pool, through no fault of its own.
                            requeue.append(index)
                        else:
                            broken = True
                            handle.reset()
                            next_index = _note_failure(index)
                            if next_index is not None:
                                requeue.append(next_index)
                    # A chunk runs arbitrary scenario code, so the concrete
                    # failure types are unknowable; every error is counted,
                    # retried, and ultimately re-raised through the serial
                    # fallback rather than swallowed.
                    # repro: allow[EXC001] -- fault barrier for arbitrary chunk code
                    except Exception:
                        # The chunk itself raised; the pool is still healthy.
                        next_index = _note_failure(index)
                        if next_index is not None:
                            requeue.append(next_index)
            # Must catch KeyboardInterrupt/SystemExit too: in-flight workers
            # have to be drained before the caller unlinks the shared-memory
            # segments they write into; the exception is always re-raised.
            # repro: allow[EXC001] -- drain in-flight workers before shm unlink; re-raised
            except BaseException:
                # A parent-side failure (e.g. the serial fallback re-raising a
                # genuine chunk error) while other futures may still be in
                # flight: cancel what has not started and drain what has, so
                # no worker is left writing into segments the caller is about
                # to unlink.
                for future in futures.values():
                    future.cancel()
                wait_futures(list(futures.values()), timeout=5.0)
                raise
        pending = requeue
    return [results[index] for index in range(len(chunk_specs))]


def _merge_shared(
    metas: Sequence[tuple[str, int, int, Optional[dict]]],
    times: np.ndarray,
    fraction_matrix: Optional[np.ndarray],
    fractions: tuple[float, ...],
    protocol: str,
) -> SpreadingTimeSample:
    """Assemble the merged sample from the shared matrices (no re-concatenation)."""
    graph_name, num_vertices, source = metas[0][:3]
    for _, other_n, other_source, _snapshot in metas[1:]:
        if other_n != num_vertices:
            raise AnalysisError("cannot merge samples from different settings")
        if other_source != source:
            source = -1
    metrics = current_metrics()
    if metrics is not None:
        for meta in metas:
            if meta[3]:
                metrics.merge(meta[3])
    fraction_times: dict[float, tuple[float, ...]] = {}
    if fraction_matrix is not None:
        for column, fraction in enumerate(fractions):
            fraction_times[fraction] = tuple(fraction_matrix[:, column].tolist())
    return SpreadingTimeSample(
        protocol=protocol,
        graph_name=graph_name,
        num_vertices=num_vertices,
        source=source,
        times=tuple(times.tolist()),
        fraction_times=fraction_times,
    )


def _execute_shared(
    handle: ExecutorHandle,
    specs: list[ParallelTrialSpec],
    trials: int,
    fractions: tuple[float, ...],
    protocol: str,
    num_vertices: Optional[int] = None,
    trace: Optional[CoverageRecorder] = None,
) -> SpreadingTimeSample:
    """Dispatch the chunks through the zero-copy shared-memory transport."""
    times_segment = times = frac_segment = fraction_matrix = None
    cov_segment = coverage = None
    times_pooled = frac_pooled = cov_pooled = True
    try:
        times_segment, times, times_pooled = shm.result_array("times", (trials,))
        if fractions:
            frac_segment, fraction_matrix, frac_pooled = shm.result_array(
                "fractions", (trials, len(fractions))
            )
        if trace is not None:
            # The (trials, n) informing-time matrix rides the same transport
            # as the result arrays: each worker fills its chunk's rows and
            # the parent ingests the assembled block below.
            cov_segment, coverage, cov_pooled = shm.result_array(
                "coverage", (trials, num_vertices)
            )
        shared_specs = []
        offset = 0
        for spec in specs:
            shared_specs.append(
                _SharedChunkSpec(
                    spec=spec,
                    times_name=times_segment.name,
                    fractions_name=frac_segment.name if frac_segment is not None else None,
                    offset=offset,
                    total_trials=trials,
                    coverage_name=cov_segment.name if cov_segment is not None else None,
                    num_vertices=num_vertices,
                )
            )
            offset += spec.trials
        # The dispatcher retries crashed/raising/stalled chunks and, once a
        # chunk's retries are exhausted, runs it serially in the parent —
        # writing into the same shared rows, so a disturbed sweep's result
        # is bit-identical to an undisturbed one.  It drains its own
        # futures on a parent-side failure, so the finally block below can
        # safely unlink the segments.
        metas = _dispatch_chunks(handle, _run_chunk_shared, shared_specs)
        sample = _merge_shared(metas, times, fraction_matrix, fractions, protocol)
        if trace is not None:
            # record_block copies, so this happens before the finally block
            # unlinks the segment.
            trace.record_block(coverage)
        return sample
    finally:
        # Pooled segments belong to the enclosing sweep scope, which reuses
        # them for the sweep's next call and unlinks them at scope exit.
        del times, fraction_matrix, coverage
        if times_segment is not None and not times_pooled:
            shm._unlink(times_segment)
        if frac_segment is not None and not frac_pooled:
            shm._unlink(frac_segment)
        if cov_segment is not None and not cov_pooled:
            shm._unlink(cov_segment)


def run_trials_parallel(
    graph_or_family: Union[Graph, str],
    source: Union[int, str],
    protocol: str,
    *,
    trials: int,
    seed: SeedLike = None,
    size: Optional[int] = None,
    num_workers: Optional[int] = None,
    fractions: Sequence[float] = (),
    batch: Union[bool, int, str] = "auto",
    scenario: ScenarioLike = None,
    engine_options: Optional[dict] = None,
    parallel: str = "shared",
    trace: Optional[CoverageRecorder] = None,
) -> SpreadingTimeSample:
    """Run ``trials`` independent simulations across worker processes.

    Args:
        graph_or_family: a :class:`Graph` instance, or the name of a
            registered graph family (in which case ``size`` is required and
            every worker builds the same graph from a shared graph seed).
        source: source vertex id or ``"random"``.
        protocol: canonical protocol name.
        trials: total number of trials across all workers.
        seed: master seed.
        size: family size (only with a family name).
        num_workers: worker processes; defaults to
            :func:`default_worker_count` (CPU count, capped by the
            ``REPRO_MAX_WORKERS`` environment variable).  With one worker
            the call degenerates to an in-process serial
            :func:`~repro.analysis.montecarlo.run_trials`.  The chunking —
            and therefore the result — depends only on this value, never on
            how many processes the session pool actually holds.
        fractions: coverage fractions to record per trial.
        batch: batch dispatch mode for each worker's chunk (see
            :func:`~repro.analysis.montecarlo.run_trials`); the default
            ``"auto"`` makes every chunk one vectorised batch job when the
            protocol allows it.
        scenario: optional adversity scenario (or spec string) applied by
            every trial in every worker.
        engine_options: extra engine options forwarded to every chunk's
            ``run_trials`` call (e.g. ``{"view": "edge_clocks"}``).
        parallel: result transport — ``"shared"`` (default; zero-copy
            shared-memory matrices and CSR reattachment) or ``"pickle"``
            (legacy sample pickling).  Both transports are bit-identical
            for the same ``(seed, trials, num_workers)``.
        trace: optional :class:`~repro.telemetry.trace.CoverageRecorder`.
            Each worker records its chunk through a local recorder and
            writes the per-vertex informing times into a shared
            ``(trials, n)`` matrix; the parent ingests the assembled block
            into ``trace``, so the recorded coverage is identical to a
            single-process traced run at the same seed.  Requires the
            ``"shared"`` transport and a concrete :class:`Graph` (the
            matrix width is the vertex count).  When a metrics registry is
            active in the parent (``collecting_metrics``), worker counters
            are snapshotted per chunk and merged back on the same return
            path, alongside parent-side ``parallel.chunks`` /
            ``parallel.chunk_seconds``; the pickle transport counts chunks
            but cannot merge worker counters.

    Returns:
        The merged :class:`SpreadingTimeSample`.

    Raises:
        AnalysisError: on invalid arguments or an impossible forced-batch
            setting.  A crashed, raising, or stalled *worker* does not
            raise: its chunks are retried (``REPRO_CHUNK_RETRIES`` times,
            with exponential backoff; ``REPRO_CHUNK_TIMEOUT`` bounds each
            chunk wait) and finally run serially in the parent, so the
            sweep completes bit-identically; only an error that reproduces
            in the parent propagates.
    """
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    if parallel not in PARALLEL_MODES:
        raise AnalysisError(
            f"parallel must be one of {PARALLEL_MODES}, got {parallel!r}"
        )
    collector = None
    if trace is None and parallel == "shared" and isinstance(graph_or_family, Graph):
        # Ambient tracing (collecting_traces) reaches parallel runs too,
        # but only where explicit tracing is supported; deposit happens
        # after the merged sample is assembled below.
        collector = active_trace_collector()
        if collector is not None and collector.spec.coverage:
            trace = CoverageRecorder(collector.spec)
        else:
            collector = None
    if trace is not None:
        if parallel != "shared":
            raise AnalysisError(
                "coverage tracing requires the 'shared' parallel transport "
                f"(the traced informing-time matrix rides the shared-memory "
                f"result path), got parallel={parallel!r}"
            )
        if not isinstance(graph_or_family, Graph):
            raise AnalysisError(
                "coverage tracing requires a concrete Graph (the traced "
                "matrix width is the vertex count); build the family graph "
                "first and pass it directly"
            )
    scenario = as_scenario(scenario)
    if batch not in (False, "auto"):
        # Fail fast in the parent on an impossible forced-batch setting
        # instead of surfacing the error from inside a worker process.
        # Workers always run on a concrete graph (families are built there),
        # hence fixed_graph=True; the shared predicate is the same one
        # run_trials dispatches on.
        use_batch, reason = batch_dispatch_decision(
            protocol, engine_options, scenario, batch, None, fixed_graph=True
        )
        if not use_batch:
            raise _forced_batch_error(batch, reason)
    workers = default_worker_count() if num_workers is None else int(num_workers)
    if workers < 1:
        raise AnalysisError(f"num_workers must be positive, got {num_workers}")

    graph_seed, plan = chunk_plan(trials, workers, seed)
    specs = []
    for chunk_size, chunk_seed in plan:
        if isinstance(graph_or_family, Graph):
            spec = ParallelTrialSpec(
                protocol=protocol,
                source=source,
                trials=chunk_size,
                trial_seed=chunk_seed,
                graph=graph_or_family,
                fractions=tuple(fractions),
                batch=batch,
                scenario=scenario,
                engine_options=engine_options,
            )
        else:
            if size is None:
                raise AnalysisError("size is required when passing a family name")
            spec = ParallelTrialSpec(
                protocol=protocol,
                source=source,
                trials=chunk_size,
                trial_seed=chunk_seed,
                family_name=str(graph_or_family),
                size=int(size),
                graph_seed=graph_seed,
                fractions=tuple(fractions),
                batch=batch,
                scenario=scenario,
                engine_options=engine_options,
            )
        specs.append(spec)

    metrics = current_metrics()
    if len(specs) == 1:
        # One chunk: run it in-process (identical to a worker run; no pool,
        # no transport — both parallel modes share this path).  The ambient
        # metrics registry, when active, sees the chunk directly.
        if metrics is not None:
            metrics.count("parallel.chunks")
            with metrics.timer("parallel.chunk_seconds"):
                sample = _run_chunk(specs[0], trace=trace)
        else:
            sample = _run_chunk(specs[0], trace=trace)
        if collector is not None:
            collector.add(
                trace.trace(protocol=protocol, graph_name=sample.graph_name)
            )
        return sample

    if metrics is not None:
        # Ask the workers to run their chunks under private registries and
        # ship the snapshots back with the chunk metadata (shared transport
        # merges them in _merge_shared; pickle cannot).
        metrics.count("parallel.chunks", len(specs))
        specs = [replace(spec, collect_metrics=True) for spec in specs]

    handle = get_pool(len(specs))  # one process per chunk is all the call can use
    if parallel == "pickle":
        samples = _dispatch_chunks(handle, _run_chunk, specs)
        return SpreadingTimeSample.merged(samples)

    if isinstance(graph_or_family, Graph):
        # Publish the CSR arrays once (cached per graph across calls) and
        # strip the picklable graph from the specs.  The pin (taken inside
        # share_graph's registry lock) keeps the segment out of LRU
        # eviction while this call's chunks are queued — a concurrent
        # sweep may register many other graphs meanwhile.
        segment_name = shm.share_graph(graph_or_family, pin=True)
        specs = [
            replace(
                spec,
                graph=None,
                graph_shm=segment_name,
                graph_display_name=graph_or_family.name,
            )
            for spec in specs
        ]
        try:
            sample = _execute_shared(
                handle,
                specs,
                trials,
                tuple(fractions),
                protocol,
                num_vertices=graph_or_family.num_vertices,
                trace=trace,
            )
        finally:
            shm.unpin_segment(segment_name)
        if collector is not None:
            collector.add(
                trace.trace(protocol=protocol, graph_name=sample.graph_name)
            )
        return sample

    # Family mode on the shared transport: build the graph ONCE in the
    # parent — from the same shared graph seed the workers would have used,
    # so the samples are bit-identical to the legacy rebuild-per-worker
    # path — and serve every worker from one shared CSR segment.
    built = get_family(str(graph_or_family)).build(int(size), seed=graph_seed)
    segment_name = shm.share_graph(built, pin=True)
    specs = [
        replace(
            spec,
            family_name=None,
            size=None,
            graph_seed=None,
            graph_shm=segment_name,
            graph_display_name=built.name,
        )
        for spec in specs
    ]
    try:
        return _execute_shared(
            handle,
            specs,
            trials,
            tuple(fractions),
            protocol,
            num_vertices=built.num_vertices,
        )
    finally:
        shm.unpin_segment(segment_name)
