"""Experiment E9 — the Section 5 machinery: block decomposition statistics.

The lower-bound proof maps asynchronous steps to synchronous rounds through
the block decomposition and rests on two facts:

* **Lemma 13** — after every block, the informed set of ``pp-a`` is a subset
  of the informed set of ``pp`` under the coupling;
* **Lemma 14** — the expected number of synchronous rounds generated for
  ``t`` asynchronous steps is ``O(t / sqrt(n) + sqrt(n))``.

The experiment runs the constructive block coupling
(:func:`repro.coupling.blocks.run_block_coupling`) repeatedly on several
graph families and reports, per graph: whether the subset invariant ever
failed, the average number of steps and generated rounds, the breakdown of
rounds by block category, and the measured ratio

    rounds / (steps / sqrt(n) + 2·sqrt(n)),

which Lemma 14 predicts stays below a universal constant.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.coupling.blocks import run_block_coupling
from repro.experiments.presets import get_preset
from repro.experiments.records import ExperimentResult
from repro.graphs.base import Graph
from repro.graphs.generators import complete_graph, cycle_graph, hypercube_graph, star_graph
from repro.graphs.random_graphs import connected_erdos_renyi_graph
from repro.randomness.rng import SeedLike, derive_generator

__all__ = ["run"]


def _default_graphs(size: int, seed: SeedLike) -> list[tuple[Graph, int]]:
    rng = derive_generator(seed, "block-graphs", size)
    dimension = max(3, round(math.log2(max(size, 8))))
    return [
        (star_graph(size), 1),
        (cycle_graph(size), 0),
        (complete_graph(max(16, size // 2)), 0),
        (hypercube_graph(dimension), 0),
        (connected_erdos_renyi_graph(size, seed=rng), 0),
    ]


def run(
    preset: str = "quick",
    *,
    seed: SeedLike = 20160802,
    size: Optional[int] = None,
    graphs_with_sources: Optional[Sequence[tuple[Graph, int]]] = None,
) -> ExperimentResult:
    """Run experiment E9 and return its result table."""
    config = get_preset(preset)
    base_size = int(size) if size is not None else config.sizes[-1]
    suite = (
        list(graphs_with_sources)
        if graphs_with_sources is not None
        else _default_graphs(base_size, seed)
    )

    rows: list[dict[str, object]] = []
    subset_ok_everywhere = True
    normalized_ratios: list[float] = []

    for graph, source in suite:
        n = graph.num_vertices
        root = math.sqrt(n)
        steps_list: list[float] = []
        rounds_list: list[float] = []
        special_list: list[float] = []
        ratios: list[float] = []
        subset_ok = True
        rng = derive_generator(seed, graph.name, "blocks")
        for _ in range(config.coupling_trials):
            run_result = run_block_coupling(graph, source, seed=rng)
            steps_list.append(run_result.num_steps)
            rounds_list.append(run_result.num_rounds)
            special_list.append(run_result.statistics.rho_special)
            subset_ok = subset_ok and run_result.subset_invariant_held
            denominator = run_result.num_steps / root + 2.0 * root
            ratios.append(run_result.num_rounds / denominator)
        subset_ok_everywhere = subset_ok_everywhere and subset_ok
        mean_ratio = float(np.mean(ratios))
        normalized_ratios.append(mean_ratio)
        rows.append(
            {
                "graph": graph.name,
                "n": n,
                "mean steps": float(np.mean(steps_list)),
                "mean rounds": float(np.mean(rounds_list)),
                "mean special rounds": float(np.mean(special_list)),
                "steps/sqrt(n)+2sqrt(n)": float(np.mean(steps_list)) / root + 2.0 * root,
                "normalized rounds": mean_ratio,
                "Lemma13 subset held": subset_ok,
            }
        )

    conclusions = {
        "lemma13_subset_invariant_always_held": subset_ok_everywhere,
        "max_normalized_rounds": max(normalized_ratios),
        "lemma14_bound_respected": max(normalized_ratios) < 4.0,
    }
    notes = [
        f"preset={config.name}, coupled trials={config.coupling_trials} per graph, base size={base_size}",
        "normalized rounds = rounds / (steps/sqrt(n) + 2 sqrt(n)); Lemma 14 predicts this is O(1)",
        "special-block replacement pairs are chosen uniformly among right-incompatible pairs of the "
        "sampled round (see repro.coupling.blocks for the documented simplification)",
    ]
    return ExperimentResult(
        experiment_id="E9",
        title="Lower-bound machinery: block decomposition counts and the Lemma 13 invariant",
        claim="Async steps map to O(steps/sqrt(n) + sqrt(n)) sync rounds with the async informed set always contained in the sync one",
        columns=[
            "graph",
            "n",
            "mean steps",
            "mean rounds",
            "mean special rounds",
            "steps/sqrt(n)+2sqrt(n)",
            "normalized rounds",
            "Lemma13 subset held",
        ],
        rows=rows,
        conclusions=conclusions,
        notes=notes,
    )
