"""Must-pass SHM001: creation paired with a finally-block teardown."""

from multiprocessing.shared_memory import SharedMemory


def with_segment(nbytes, fill):
    segment = SharedMemory(create=True, size=nbytes)
    try:
        segment.buf[:nbytes] = fill
        return bytes(segment.buf[:nbytes])
    finally:
        segment.close()
        segment.unlink()
