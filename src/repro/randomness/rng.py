"""Random number generator management.

Monte Carlo experiments need three things from their randomness source:

* **Reproducibility** — every experiment takes an integer seed and produces
  the same numbers on every run.
* **Independence across trials** — trial *i* of an experiment must not share
  a stream with trial *j*, even when trials are executed out of order or in
  parallel.  We derive per-trial generators with
  :class:`numpy.random.SeedSequence` spawning, which guarantees statistically
  independent streams.
* **Convenience** — most library functions accept "a seed, a Generator, or
  None" and normalise via :func:`as_generator`.
"""

from __future__ import annotations

from typing import Callable, TypeVar, Union

import numpy as np

__all__ = [
    "SeedLike",
    "as_generator",
    "draw_order_critical",
    "spawn_generators",
    "spawn_seeds",
    "derive_generator",
]

#: Anything accepted where a source of randomness is expected.
SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

_F = TypeVar("_F", bound=Callable[..., object])


def draw_order_critical(function: _F) -> _F:
    """Mark ``function``'s RNG draw order as equivalence-pinned.

    A no-op at runtime (it only sets ``__draw_order_critical__``).  The
    static-analysis pass (:mod:`repro.devtools`, rule ``RNG002``) treats a
    decorated function exactly like code in the ``core/`` / ``scenarios/``
    module allowlist: a generator draw behind a data-dependent branch of a
    loop is flagged, because a skipped or reordered draw silently shifts
    the stream that serial/batch equivalence tests pin.
    """
    function.__draw_order_critical__ = True  # type: ignore[attr-defined]
    return function


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    * ``None`` — a fresh, OS-entropy-seeded generator;
    * ``int`` — a PCG64 generator seeded deterministically;
    * ``SeedSequence`` — a generator built from that sequence;
    * an existing ``Generator`` — returned unchanged (shared state!).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def spawn_generators(count: int, seed: SeedLike = None) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Used to give every Monte Carlo trial its own stream: the streams do not
    overlap regardless of how many numbers each trial draws.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own bit stream so that
        # passing a Generator still yields independent children.
        sequence = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in sequence.spawn(count)]


def spawn_seeds(count: int, seed: SeedLike = None) -> list[int]:
    """Derive ``count`` integer seeds (for APIs that want plain ints)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif isinstance(seed, np.random.Generator):
        sequence = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        sequence = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in sequence.spawn(count)]


def derive_generator(seed: SeedLike, *path: Union[int, str]) -> np.random.Generator:
    """Derive a generator deterministically from ``seed`` and a label path.

    ``derive_generator(seed, "theorem1", "star", 128)`` always produces the
    same stream, and streams with different paths are independent.  This lets
    experiments attach stable sub-seeds to named sub-tasks without threading
    generator objects everywhere.
    """
    entropy: list[int] = []
    if isinstance(seed, np.random.Generator):
        entropy.append(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        entropy.extend(int(x) for x in seed.generate_state(2))
    elif seed is not None:
        entropy.append(int(seed))
    for part in path:
        if isinstance(part, int):
            entropy.append(part & 0xFFFFFFFF)
        else:
            # Stable 32-bit hash of the string label (Python's hash() is
            # salted per process, so roll a simple FNV-1a instead).
            acc = 2166136261
            for byte in str(part).encode("utf8"):
                acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
            entropy.append(acc)
    sequence = np.random.SeedSequence(entropy if entropy else None)
    return np.random.Generator(np.random.PCG64(sequence))
