"""Unit tests for protocol comparisons and family sweeps."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import (
    compare_protocols_on_graph,
    measure_protocol,
    sweep_family,
)
from repro.errors import AnalysisError
from repro.graphs import complete_graph, star_graph


class TestMeasureProtocol:
    def test_fields(self):
        measurement = measure_protocol(star_graph(16), 1, "pp", trials=12, seed=1)
        assert measurement.protocol == "pp"
        assert measurement.num_vertices == 16
        assert measurement.sample.num_trials == 12
        assert measurement.mean.value <= 2.0
        assert measurement.high_probability <= 2.0

    def test_reproducible(self):
        a = measure_protocol(complete_graph(12), 0, "pp-a", trials=10, seed=3)
        b = measure_protocol(complete_graph(12), 0, "pp-a", trials=10, seed=3)
        assert a.mean.value == b.mean.value


class TestCompareProtocolsOnGraph:
    def test_measurements_and_ratios(self):
        comparison = compare_protocols_on_graph(
            star_graph(24),
            1,
            ["pp", "pp-a"],
            trials=15,
            seed=5,
            ratios=[("pp-a", "pp")],
        )
        assert set(comparison.measurements) == {"pp", "pp-a"}
        ratio = comparison.ratios["pp-a/pp"]
        # On the star the asynchronous protocol is slower, so the ratio > 1.
        assert ratio.value > 1.0
        assert ratio.lower <= ratio.value <= ratio.upper

    def test_measurement_lookup_errors(self):
        comparison = compare_protocols_on_graph(star_graph(12), 1, ["pp"], trials=5, seed=7)
        with pytest.raises(AnalysisError):
            comparison.measurement("push")

    def test_ratio_requires_measured_protocols(self):
        with pytest.raises(AnalysisError):
            compare_protocols_on_graph(
                star_graph(12), 1, ["pp"], trials=5, seed=7, ratios=[("pp", "push")]
            )

    def test_requires_at_least_one_protocol(self):
        with pytest.raises(AnalysisError):
            compare_protocols_on_graph(star_graph(12), 1, [], trials=5)


class TestSweepFamily:
    def test_deterministic_family_sweep(self):
        sweep = sweep_family("star", ["pp", "pp-a"], sizes=[16, 32], trials=10, seed=9)
        assert sweep.family_name == "star"
        assert sweep.sizes == (16, 32)
        assert len(sweep.comparisons) == 2
        pp_series = sweep.series("pp")
        assert all(value <= 2.0 for value in pp_series)
        hp_series = sweep.series("pp-a", quantity="hp")
        assert hp_series[1] > hp_series[0]  # async time grows with n on the star

    def test_family_object_accepted(self):
        from repro.graphs.families import get_family

        sweep = sweep_family(get_family("complete"), ["pp"], sizes=[12], trials=8, seed=11)
        assert sweep.comparisons[0].num_vertices == 12

    def test_ratio_series(self):
        sweep = sweep_family(
            "complete",
            ["pp", "pp-a"],
            sizes=[16, 32],
            trials=10,
            seed=13,
            ratios=[("pp", "pp-a")],
        )
        ratios = sweep.ratio_series("pp/pp-a")
        assert len(ratios) == 2
        assert all(ratio > 0 for ratio in ratios)
        with pytest.raises(AnalysisError):
            sweep.ratio_series("push/pp")

    def test_unknown_series_quantity(self):
        sweep = sweep_family("star", ["pp"], sizes=[16], trials=5, seed=15)
        with pytest.raises(AnalysisError):
            sweep.series("pp", quantity="median")

    def test_empty_sizes_rejected(self):
        with pytest.raises(AnalysisError):
            sweep_family("star", ["pp"], sizes=[], trials=5)

    def test_random_family_builds_fresh_graph_per_size(self):
        sweep = sweep_family("erdos_renyi", ["pp"], sizes=[24, 48], trials=6, seed=17)
        assert sweep.comparisons[0].num_vertices == 24
        assert sweep.comparisons[1].num_vertices == 48
