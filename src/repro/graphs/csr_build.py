"""Vectorised CSR assembly — the native construction path of the graph layer.

Every generator in :mod:`repro.graphs` ultimately needs the same two arrays:
``indptr`` (length ``n + 1``) and ``indices`` (length ``2m``, sorted neighbor
lists) — the exact structure :class:`repro.core.flatgraph.FlatAdjacency`
stores and :meth:`repro.graphs.base.Graph.from_csr` adopts in O(1).  Building
them used to go through Python tuple edge lists and the O(m log m)
``normalize_edges`` sort, which makes graph *construction* the wall long
before simulation does at n >= 10^5.  This module assembles the arrays
directly from NumPy half-edge arrays instead, and provides the array-side
structural helpers (connected-component labelling, connectivity, component
stitching) the samplers need so that a graph can be generated, validated,
patched, and attached to the kernels without a single Python-level pass over
its edges.

Everything here is pure array code: no :class:`~repro.graphs.base.Graph`
import (the graph types layer on top), no Python loops over edges.  Callers
are trusted to hand in *simple* half-edge sets — no self loops, no duplicate
edges in either orientation — which every generator guarantees by
construction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "indptr_from_degrees",
    "csr_from_half_edges",
    "csr_edges",
    "csr_add_edges",
    "csr_is_connected",
    "connected_component_labels",
    "component_representatives",
]


def indptr_from_degrees(degrees: np.ndarray) -> np.ndarray:
    """The CSR row-pointer array for a degree sequence."""
    degrees = np.asarray(degrees, dtype=np.int64)
    indptr = np.zeros(degrees.size + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    return indptr


def csr_from_half_edges(
    n: int, heads: np.ndarray, tails: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble ``(indptr, indices)`` from one array entry per undirected edge.

    ``heads[k]``/``tails[k]`` are the endpoints of edge ``k`` in either
    orientation.  The edge set must be simple (no self loops, no duplicates
    in either orientation); endpoints must lie in ``0..n-1``.  Neighbor
    lists come out sorted, so the result feeds
    :meth:`repro.graphs.base.Graph.from_csr` directly.
    """
    heads = np.asarray(heads, dtype=np.int64).ravel()
    tails = np.asarray(tails, dtype=np.int64).ravel()
    sym_heads = np.concatenate([heads, tails])
    sym_tails = np.concatenate([tails, heads])
    order = np.lexsort((sym_tails, sym_heads))
    indices = sym_tails[order]
    degrees = np.bincount(sym_heads, minlength=n)
    return indptr_from_degrees(degrees), indices


def csr_edges(indptr: np.ndarray, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Recover the half-edge arrays (``u < v``, lexicographically sorted)."""
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    heads = np.repeat(np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr))
    mask = heads < indices
    return heads[mask], indices[mask]


def csr_add_edges(
    indptr: np.ndarray,
    indices: np.ndarray,
    extra_heads: np.ndarray,
    extra_tails: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """A new CSR structure with the extra (simple, non-duplicate) edges merged in.

    This is the array-side replacement for the old "rebuild the Graph from
    ``list(graph.edges) + extra``" patching idiom of the connected samplers.
    """
    n = int(np.asarray(indptr).size - 1)
    heads, tails = csr_edges(indptr, indices)
    return csr_from_half_edges(
        n,
        np.concatenate([heads, np.asarray(extra_heads, dtype=np.int64).ravel()]),
        np.concatenate([tails, np.asarray(extra_tails, dtype=np.int64).ravel()]),
    )


def _frontier_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbors of the frontier vertices, concatenated (with repeats)."""
    degs = indptr[frontier + 1] - indptr[frontier]
    total = int(degs.sum())
    within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(degs) - degs, degs)
    return indices[np.repeat(indptr[frontier], degs) + within]


def csr_is_connected(indptr: np.ndarray, indices: np.ndarray) -> bool:
    """Whether the CSR graph is connected (level-synchronous NumPy BFS)."""
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    n = int(indptr.size - 1)
    if n == 1:
        return True
    seen = np.zeros(n, dtype=bool)
    seen[0] = True
    frontier = np.array([0], dtype=np.int64)
    count = 1
    while frontier.size:
        neighbors = _frontier_neighbors(indptr, indices, frontier)
        new = np.unique(neighbors[~seen[neighbors]])
        seen[new] = True
        count += new.size
        frontier = new
    return count == n


def connected_component_labels(
    indptr: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Component label per vertex, numbered ``0, 1, ...`` by smallest member.

    Labels are assigned in increasing order of each component's smallest
    vertex id (the BFS starts sweep vertices in order), which matches the
    ordering of :meth:`repro.graphs.base.Graph.connected_components`.
    """
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    n = int(indptr.size - 1)
    labels = np.full(n, -1, dtype=np.int64)
    label = 0
    start = 0
    while True:
        unvisited = np.nonzero(labels[start:] < 0)[0]
        if unvisited.size == 0:
            return labels
        start += int(unvisited[0])
        labels[start] = label
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            neighbors = _frontier_neighbors(indptr, indices, frontier)
            new = np.unique(neighbors[labels[neighbors] < 0])
            labels[new] = label
            frontier = new
        label += 1


def component_representatives(labels: np.ndarray) -> np.ndarray:
    """The smallest vertex of each component, indexed by component label."""
    labels = np.asarray(labels)
    _, first = np.unique(labels, return_index=True)
    return first.astype(np.int64)
