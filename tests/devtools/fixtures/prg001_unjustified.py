"""Must-flag PRG001: a pragma without `-- justification` suppresses nothing.

Expected findings: one PRG001 for the malformed pragma *and* the EXC001
it failed to suppress.
"""


def swallow(fn):
    try:
        return fn()
    # repro: allow[EXC001]
    except Exception:
        return None
