"""Benchmark E6 — classical topologies: constant-factor agreement.

Regenerates the E6 table and asserts that on hypercubes, connected G(n, p)
and random regular graphs the synchronous/asynchronous ratio of expected
push-pull spreading times stays in a narrow constant band across sizes.
"""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def test_classical_graphs_experiment(run_once, bench_preset):
    result = run_once(run_experiment, "E6", preset=bench_preset)
    assert result.conclusion("constant_factor_agreement") is True
    assert result.conclusion("ratio_band_width") < 4.0
    # Spreading times on these families are logarithmic, hence small.
    for row in result.rows:
        assert row["E[T(pp)]"] < 6.0 * (row["n"] ** 0.5)
