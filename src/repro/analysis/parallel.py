"""Parallel Monte Carlo execution across processes.

Spreading-time trials are embarrassingly parallel, and the experiment suites
run thousands of them.  :func:`run_trials_parallel` splits a trial budget
into chunks, executes the chunks in a :class:`concurrent.futures.ProcessPoolExecutor`,
and merges the resulting :class:`~repro.analysis.montecarlo.SpreadingTimeSample`
objects.  Seeds are spawned from the master seed *before* dispatch, so the
merged sample is identical in distribution (though not in order) to a serial
run with the same total number of trials, and fully reproducible for a fixed
``(seed, trials, num_workers)`` triple.

Graphs are rebuilt inside each worker from a named family (or passed as a
pickled :class:`~repro.graphs.base.Graph`, which is cheap — the object is a
few tuples), so no shared state is needed.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.analysis.montecarlo import (
    SpreadingTimeSample,
    _forced_batch_error,
    batch_dispatch_decision,
    run_trials,
)
from repro.errors import AnalysisError
from repro.graphs.base import Graph
from repro.graphs.families import get_family
from repro.randomness.rng import SeedLike, spawn_seeds
from repro.scenarios.base import Scenario, ScenarioLike, as_scenario

__all__ = ["ParallelTrialSpec", "run_trials_parallel", "default_worker_count"]


def default_worker_count() -> int:
    """Number of worker processes to use by default.

    Defaults to the CPU count (at least 1).  The ``REPRO_MAX_WORKERS``
    environment variable, when set to a positive integer, caps the fan-out —
    useful on CI runners and shared machines; values above the CPU count are
    clamped to it, and unparsable or non-positive values are ignored.
    """
    cpus = max(1, os.cpu_count() or 1)
    raw = os.environ.get("REPRO_MAX_WORKERS")
    if raw is not None:
        try:
            limit = int(raw)
        except ValueError:
            return cpus
        if limit >= 1:
            return min(limit, cpus)
    return cpus


@dataclass(frozen=True)
class ParallelTrialSpec:
    """Description of one chunk of trials executed in a worker process.

    Attributes:
        family_name: name of a registered graph family (mutually exclusive
            with ``graph``); the worker builds the graph itself.
        graph: an explicit graph to run on (pickled to the worker).
        size: family size to build (required with ``family_name``).
        graph_seed: seed for building random-family graphs.
        source: source vertex or ``"random"``.
        protocol: canonical protocol name.
        trials: number of trials in this chunk.
        trial_seed: seed for the chunk's trials.
        fractions: coverage fractions to record.
        batch: batch dispatch mode forwarded to
            :func:`~repro.analysis.montecarlo.run_trials`; with the default
            ``"auto"`` each worker simulates its chunk through the 2-D batch
            kernels (one vectorised job instead of a Python loop over trials)
            whenever the protocol allows it.
        scenario: optional adversity scenario applied by every trial of the
            chunk (pickled to the worker; the standard models and
            :class:`~repro.scenarios.FamilyResampler` all pickle — custom
            resampler lambdas do not).
    """

    protocol: str
    source: Union[int, str]
    trials: int
    trial_seed: int
    family_name: Optional[str] = None
    size: Optional[int] = None
    graph_seed: Optional[int] = None
    graph: Optional[Graph] = None
    fractions: tuple[float, ...] = ()
    batch: Union[bool, int, str] = "auto"
    scenario: Optional[Scenario] = None


def _run_chunk(spec: ParallelTrialSpec) -> SpreadingTimeSample:
    """Worker entry point: build the graph (if needed) and run the chunk."""
    if spec.graph is not None:
        graph = spec.graph
    else:
        if spec.family_name is None or spec.size is None:
            raise AnalysisError("a chunk needs either a graph or a (family_name, size) pair")
        graph = get_family(spec.family_name).build(spec.size, seed=spec.graph_seed)
    return run_trials(
        graph,
        spec.source,
        spec.protocol,
        trials=spec.trials,
        seed=spec.trial_seed,
        fractions=spec.fractions,
        batch=spec.batch,
        scenario=spec.scenario,
    )


def run_trials_parallel(
    graph_or_family: Union[Graph, str],
    source: Union[int, str],
    protocol: str,
    *,
    trials: int,
    seed: SeedLike = None,
    size: Optional[int] = None,
    num_workers: Optional[int] = None,
    fractions: Sequence[float] = (),
    batch: Union[bool, int, str] = "auto",
    scenario: ScenarioLike = None,
) -> SpreadingTimeSample:
    """Run ``trials`` independent simulations across worker processes.

    Args:
        graph_or_family: a :class:`Graph` instance, or the name of a
            registered graph family (in which case ``size`` is required and
            every worker builds the same graph from a shared graph seed).
        source: source vertex id or ``"random"``.
        protocol: canonical protocol name.
        trials: total number of trials across all workers.
        seed: master seed.
        size: family size (only with a family name).
        num_workers: worker processes; defaults to
            :func:`default_worker_count` (CPU count, capped by the
            ``REPRO_MAX_WORKERS`` environment variable).  With one worker
            the call degenerates to a serial :func:`run_trials`.
        fractions: coverage fractions to record per trial.
        batch: batch dispatch mode for each worker's chunk (see
            :func:`~repro.analysis.montecarlo.run_trials`); the default
            ``"auto"`` makes every chunk one vectorised batch job when the
            protocol allows it.
        scenario: optional adversity scenario (or spec string) applied by
            every trial in every worker.

    Returns:
        The merged :class:`SpreadingTimeSample`.
    """
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    scenario = as_scenario(scenario)
    if batch not in (False, "auto"):
        # Fail fast in the parent on an impossible forced-batch setting
        # instead of surfacing the error from inside a worker process.
        # Workers always run on a concrete graph (families are built there),
        # hence fixed_graph=True; the shared predicate is the same one
        # run_trials dispatches on.
        use_batch, reason = batch_dispatch_decision(
            protocol, None, scenario, batch, None, fixed_graph=True
        )
        if not use_batch:
            raise _forced_batch_error(batch, reason)
    workers = default_worker_count() if num_workers is None else int(num_workers)
    if workers < 1:
        raise AnalysisError(f"num_workers must be positive, got {num_workers}")
    workers = min(workers, trials)

    graph_seed, *chunk_seeds = spawn_seeds(workers + 1, seed)
    base, remainder = divmod(trials, workers)
    chunk_sizes = [base + (1 if index < remainder else 0) for index in range(workers)]

    specs = []
    for chunk_size, chunk_seed in zip(chunk_sizes, chunk_seeds):
        if chunk_size == 0:
            continue
        if isinstance(graph_or_family, Graph):
            spec = ParallelTrialSpec(
                protocol=protocol,
                source=source,
                trials=chunk_size,
                trial_seed=chunk_seed,
                graph=graph_or_family,
                fractions=tuple(fractions),
                batch=batch,
                scenario=scenario,
            )
        else:
            if size is None:
                raise AnalysisError("size is required when passing a family name")
            spec = ParallelTrialSpec(
                protocol=protocol,
                source=source,
                trials=chunk_size,
                trial_seed=chunk_seed,
                family_name=str(graph_or_family),
                size=int(size),
                graph_seed=graph_seed,
                fractions=tuple(fractions),
                batch=batch,
                scenario=scenario,
            )
        specs.append(spec)

    if len(specs) == 1:
        merged = _run_chunk(specs[0])
    else:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            samples = list(executor.map(_run_chunk, specs))
        merged = samples[0]
        for sample in samples[1:]:
            merged = merged.merged_with(sample)
    return merged
