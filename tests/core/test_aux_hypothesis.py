"""Hypothesis property tests for the auxiliary processes.

Properties of :func:`~repro.core.aux_processes.pull_probability` straight
from Definitions 5 and 7 — values in ``[0, 1]``, monotonicity in the
informed-neighbor count ``k``, the ``ppx`` half-degree forcing threshold,
``ppx >= ppy`` pointwise — plus agreement of the vectorised
:func:`~repro.core.aux_processes.pull_probabilities` with the scalar
reference, and stochastic-dominance checks between the batched and serial
completion-time samples (fixed-seed equality makes mutual weak dominance a
theorem; an independent-seed pair must still dominate empirically within
KS tolerance because the laws coincide).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aux_processes import pull_probabilities, pull_probability
from repro.core.batch_engine import run_batch
from repro.graphs import complete_graph, star_graph
from repro.graphs.random_graphs import random_regular_graph
from repro.randomness.dominance import dominates_empirically
from repro.randomness.rng import spawn_generators

VARIANTS = ("ppx", "ppy")


class TestPullProbabilityProperties:
    @settings(max_examples=200)
    @given(
        variant=st.sampled_from(VARIANTS),
        degree=st.integers(min_value=1, max_value=500),
        data=st.data(),
    )
    def test_bounded_in_unit_interval(self, variant, degree, data):
        k = data.draw(st.integers(min_value=0, max_value=degree))
        p = pull_probability(variant, k, degree)
        assert 0.0 <= p <= 1.0
        if k == 0:
            assert p == 0.0
        else:
            assert p > 0.0

    @settings(max_examples=200)
    @given(
        variant=st.sampled_from(VARIANTS),
        degree=st.integers(min_value=2, max_value=500),
        data=st.data(),
    )
    def test_monotone_in_informed_neighbors(self, variant, degree, data):
        k = data.draw(st.integers(min_value=0, max_value=degree - 1))
        assert pull_probability(variant, k + 1, degree) >= pull_probability(
            variant, k, degree
        )

    @settings(max_examples=200)
    @given(degree=st.integers(min_value=1, max_value=500), data=st.data())
    def test_ppx_half_degree_threshold(self, degree, data):
        k = data.draw(st.integers(min_value=1, max_value=degree))
        p = pull_probability("ppx", k, degree)
        if k >= degree / 2.0:
            assert p == 1.0
        else:
            assert p == pytest.approx(1.0 - math.exp(-2.0 * k / degree))
            assert p < 1.0

    @settings(max_examples=200)
    @given(degree=st.integers(min_value=1, max_value=500), data=st.data())
    def test_ppx_dominates_ppy_pointwise(self, degree, data):
        """ppx only ever adds forced pulls on top of ppy's probability."""
        k = data.draw(st.integers(min_value=0, max_value=degree))
        assert pull_probability("ppx", k, degree) >= pull_probability("ppy", k, degree)

    @settings(max_examples=100)
    @given(
        variant=st.sampled_from(VARIANTS),
        degrees=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=16),
        data=st.data(),
    )
    def test_vectorised_matches_scalar_reference(self, variant, degrees, data):
        counts = [
            data.draw(st.integers(min_value=0, max_value=d), label=f"k<= {d}")
            for d in degrees
        ]
        vector = pull_probabilities(
            variant, np.asarray(counts), np.asarray(degrees, dtype=np.int64)
        )
        scalar = [pull_probability(variant, k, d) for k, d in zip(counts, degrees)]
        assert vector.tolist() == scalar  # bit-for-bit, not approx


class TestBatchedSerialDominance:
    """Stochastic-dominance view of the serial/batch contract: with shared
    per-trial generators the samples are equal (hence dominate each other);
    with independent seeds the common law still has to make the empirical
    dominance check pass in both directions."""

    @settings(max_examples=8, deadline=None)
    @given(
        variant=st.sampled_from(VARIANTS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_fixed_seed_mutual_dominance(self, variant, seed):
        from repro.core.protocols import spread

        graph = complete_graph(16)
        trials = 12
        batched = run_batch(
            graph, 0, variant, rngs=spawn_generators(trials, seed)
        ).spreading_times()
        serial = [
            spread(graph, 0, protocol=variant, seed=rng).spreading_time
            for rng in spawn_generators(trials, seed)
        ]
        assert batched.tolist() == serial
        assert dominates_empirically(batched.tolist(), serial).holds
        assert dominates_empirically(serial, batched.tolist()).holds

    @settings(max_examples=4, deadline=None)
    @given(
        variant=st.sampled_from(VARIANTS),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_independent_seed_dominance_within_tolerance(self, variant, seed):
        graph = star_graph(16)
        batched = run_batch(graph, 1, variant, trials=80, seed=seed).spreading_times()
        serial = run_batch(graph, 1, variant, trials=80, seed=seed + 10**9).spreading_times()
        # Same law sampled twice: each sample weakly dominates the other up
        # to the dominance check's built-in statistical tolerance.
        assert dominates_empirically(batched.tolist(), serial.tolist()).holds
        assert dominates_empirically(serial.tolist(), batched.tolist()).holds

    def test_lemma6_batched_ppx_dominated_by_pp(self):
        """Lemma 6 on the batched kernels: T(ppx) ≼ T(pp)."""
        graph = random_regular_graph(32, 4, seed=3)
        ppx = run_batch(graph, 0, "ppx", trials=120, seed=11).spreading_times()
        pp = run_batch(graph, 0, "pp", trials=120, seed=22).spreading_times()
        assert dominates_empirically(ppx.tolist(), pp.tolist()).holds
