"""Shared configuration for the benchmark harness.

Every benchmark runs its experiment exactly once per pytest-benchmark round
(``rounds=1, iterations=1``): the experiments are themselves Monte Carlo
aggregates, so repeating them inside the timer would only multiply wall-clock
time without improving the timing signal.  The benchmark preset can be chosen
with ``--bench-preset`` (default ``smoke`` so the whole suite completes in a
few minutes; use ``quick`` or ``full`` to regenerate the EXPERIMENTS.md
numbers).

Most files here (``bench_theorem1.py``, ``bench_star.py``, ...) time whole
paper-reproduction experiments end to end.  ``bench_batch.py`` is different:
it times the Monte Carlo *trial engine* itself — the batched 2-D kernels
against today's serial path and against a frozen copy of the original
(pre-batching) serial loop — so engine-level throughput regressions show up
independently of experiment composition.  It also carries the hard
``>= 5x over the seed baseline`` assertion; the other files are
record-only.

Every gate benchmark additionally records its measured numbers through the
``bench_record`` fixture; at session end the records are written to
``BENCH_batch.json`` (per-benchmark wall time, the pinned baseline's wall
time, and the speedup against it), which CI uploads as an artifact next to
the pytest-benchmark JSON — the machine-readable perf trajectory across
PRs.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

#: Gate-benchmark records destined for BENCH_batch.json, keyed by name.
_BENCH_JSON_RECORDS: dict[str, dict] = {}

#: Written into the pytest invocation directory (the repo root in CI, where
#: the artifact glob picks it up).
_BENCH_JSON_NAME = "BENCH_batch.json"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-preset",
        action="store",
        default="smoke",
        choices=["smoke", "quick", "full"],
        help="experiment preset used by the benchmark harness (default: smoke)",
    )


@pytest.fixture(scope="session")
def bench_preset(request) -> str:
    """The preset name every experiment benchmark runs with."""
    return request.config.getoption("--bench-preset")


@pytest.fixture(scope="session", autouse=True)
def _warm_kernels():
    """Pre-warm the kernel backends once per benchmark session.

    Numba compiles lazily per signature; without this, the first timed
    region of the session would absorb seconds of jit compilation and
    poison its benchmark.  A no-op (milliseconds) on numpy-only installs.
    """
    from repro.core.kernels import warmup_kernels

    warmup_kernels()


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture
def bench_record(request):
    """Record one gate benchmark's measured numbers for ``BENCH_batch.json``.

    Usage: ``bench_record("shared_memory_sweep", seconds=..., baseline_seconds=...,
    speedup=..., gate=3.0, **extra)``.  ``speedup`` is measured against the
    benchmark's *pinned* baseline (frozen seed loop, fresh-executor sweep,
    unchunked pooled kernel, ...), so the trajectory stays comparable
    across PRs.  ``seconds``/``speedup`` may be ``None`` for a gate that
    records itself as skipped (e.g. the jit gate on a numba-free machine) —
    a skip that leaves a trace in BENCH_batch.json instead of vanishing.
    """
    preset = request.config.getoption("--bench-preset")

    def record(name: str, *, seconds, speedup, gate: float, **extra):
        _BENCH_JSON_RECORDS[name] = {
            "preset": preset,
            "seconds": None if seconds is None else round(float(seconds), 6),
            "speedup": None if speedup is None else round(float(speedup), 3),
            "gate": float(gate),
            **extra,
        }

    return record


def pytest_sessionfinish(session, exitstatus):
    """Write the collected gate records to ``BENCH_batch.json``."""
    if not _BENCH_JSON_RECORDS:
        return
    payload = {
        "preset": session.config.getoption("--bench-preset"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": dict(sorted(_BENCH_JSON_RECORDS.items())),
    }
    Path(_BENCH_JSON_NAME).write_text(json.dumps(payload, indent=2) + "\n")
