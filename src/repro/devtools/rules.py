"""The repo-specific lint rules (see the package docstring for the catalog).

Each rule proves, at AST level, an invariant the dynamic equivalence
harness can only sample:

``RNG001``
    Generator construction (``np.random.default_rng`` / ``Generator`` /
    ``PCG64`` / ``RandomState``) is confined to ``repro/randomness/rng.py``.
    Everything else must route through :func:`repro.randomness.rng.as_generator`
    and friends, so seeding conventions cannot fork.
``RNG002``
    In draw-order-critical scope — the :data:`DRAW_ORDER_CRITICAL_MODULES`
    allowlist (``core/``, ``scenarios/``, ``core/kernels/``) plus any
    function decorated ``@draw_order_critical`` — no generator draw may sit
    behind a *data-dependent* branch nested in a loop: a conditional whose
    test reads state rebound inside the loop.  Draws behind loop-invariant
    configuration gates (``if pooled_rng is not None:``) execute
    identically every iteration and pass; a draw behind simulation state
    is exactly the "draw reordered behind an untested branch" failure mode
    the KERNEL_CASES replay can only sample.
``PAR001``
    ``jit_backend.py`` must mirror its sibling ``numpy_backend.py``: every
    public function of the reference backend exists in the jit backend
    with identical parameter names, order, and defaults (extra jit-only
    helpers are allowed).  Signature drift used to surface only as a
    runtime failure.
``LOOP001``
    No Python-level ``for`` loop over vertices/trials in the designated
    vectorized modules (:data:`VECTORIZED_MODULES`).  Loops over rounds,
    ticks, or small boundary subsets are fine; loops shaped like
    ``for v in range(n)`` / ``range(batch)`` are not.
``SHM001``
    A module calling ``SharedMemory(create=True)`` must also contain a
    teardown path: ``.close()`` and ``.unlink()`` calls inside a
    ``finally`` block or a function whose name marks it as a release path
    (``unlink`` / ``release`` / ``teardown`` / ``shutdown`` / ``cleanup``).
``ENV001``
    Every environment read of a ``REPRO_*`` name — ``os.environ[...]``,
    ``os.environ.get``, ``os.getenv``, or ``config.read_*`` — must name a
    knob declared in the :mod:`repro.config` registry.
``ENV002``
    Knob declarations (``declare(...)`` / ``Knob(...)``) must carry a
    non-empty literal description.
``EXC001``
    No broad ``except Exception`` / ``except BaseException`` / bare
    ``except`` outside pragma-justified recovery sites (the fault-tolerant
    dispatch in ``analysis/pool.py`` / ``analysis/parallel.py``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.devtools.engine import Diagnostic, FileContext, register

__all__ = [
    "DRAW_ORDER_CRITICAL_MODULES",
    "VECTORIZED_MODULES",
    "DRAW_METHODS",
]

#: Module prefixes (relative to the linted root) whose functions are all
#: draw-order-critical for ``RNG002``.  Outside these, mark individual
#: functions with ``@draw_order_critical`` (see :mod:`repro.randomness.rng`).
DRAW_ORDER_CRITICAL_MODULES = (
    "repro/core/",
    "repro/scenarios/",
)

#: Modules designated pure-vectorized for ``LOOP001``.  The batch engine
#: itself is *not* here: its per-trial Python loops are the documented
#: serial-draw-order orchestration layer.  The jit backend is explicit
#: per-vertex loops by design.
VECTORIZED_MODULES = (
    "repro/core/kernels/numpy_backend.py",
    "repro/graphs/csr_build.py",
    "repro/graphs/random_graphs.py",
    "repro/analysis/quantiles.py",
)

#: ``numpy.random.Generator`` methods that consume the stream.
DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "uniform",
        "exponential",
        "standard_exponential",
        "normal",
        "standard_normal",
        "choice",
        "permutation",
        "permuted",
        "shuffle",
        "binomial",
        "geometric",
        "poisson",
        "multinomial",
        "bytes",
    }
)

#: Loop bounds that mean "all vertices" or "all trials" to ``LOOP001``.
_EXTENT_NAMES = frozenset(
    {
        "n",
        "num_vertices",
        "n_vertices",
        "vertices",
        "trials",
        "num_trials",
        "batch",
        "live",
        "nodes",
        "num_nodes",
    }
)

_RNG_CONSTRUCTORS = frozenset({"default_rng", "RandomState"})
_RNG_CLASS_CONSTRUCTORS = frozenset({"Generator", "PCG64", "PCG64DXSM", "Philox", "MT19937"})
_RELEASE_NAME_PARTS = ("unlink", "release", "teardown", "shutdown", "cleanup", "close")


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _terminal_name(node: ast.AST) -> str:
    """The identifier a draw receiver hangs off: ``live_rngs[i]`` -> ``live_rngs``."""
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_rng_receiver(name: str) -> bool:
    lowered = name.lower()
    return "rng" in lowered or lowered in ("generator", "gen")


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ---------------------------------------------------------------------- #
# RNG001 — generator construction is confined to randomness/rng.py
# ---------------------------------------------------------------------- #
@register(
    "RNG001",
    "rng-construction",
    "np.random generator construction outside repro/randomness/rng.py",
)
def rng_construction(ctx: FileContext) -> Iterable[Diagnostic]:
    if ctx.relative.endswith("randomness/rng.py"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        tail = dotted.rsplit(".", 1)[-1]
        if tail in _RNG_CONSTRUCTORS or (
            tail in _RNG_CLASS_CONSTRUCTORS and ".random." in f".{dotted}"
        ):
            yield ctx.diagnostic(
                node,
                "RNG001",
                f"construct generators via repro.randomness.rng, not {dotted or tail}() "
                "(one seeding convention per repo)",
            )


# ---------------------------------------------------------------------- #
# RNG002 — no conditional draws inside loops of draw-order-critical code
# ---------------------------------------------------------------------- #
def _has_marker(function: ast.FunctionDef) -> bool:
    for decorator in function.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _dotted(target).rsplit(".", 1)[-1] == "draw_order_critical":
            return True
    return False


def _bound_names(node: ast.AST) -> set:
    """Names *rebound* inside ``node`` (subscript/attribute stores excluded).

    A branch test that reads one of these inside a loop is data-dependent:
    the condition can change between iterations, so a draw behind it can
    execute for some trials/rounds and not others.  Tests that only read
    loop-invariant configuration (``if pooled_rng is not None`` and such)
    stay unflagged — every iteration makes the same decision.
    """
    bound: set = set()

    def add(target: ast.AST) -> None:
        # Only genuine rebindings count.  `self.up = ...` / `buf[i] = ...`
        # mutate through a name without rebinding it, so walking into the
        # store target would turn every `if self.config_flag:` gate into a
        # false "data-dependent" hit.
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add(element)
        elif isinstance(target, ast.Starred):
            add(target.value)

    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        elif isinstance(sub, ast.For):
            targets = [sub.target]
        elif isinstance(sub, ast.NamedExpr):
            targets = [sub.target]
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            targets = [sub.optional_vars]
        else:
            continue
        for target in targets:
            add(target)
    return bound


def _test_names(test: ast.AST) -> set:
    return {node.id for node in ast.walk(test) if isinstance(node, ast.Name)}


def _conditional_draws(function: ast.FunctionDef) -> Iterator[Tuple[ast.Call, str]]:
    """Draws behind a state-dependent branch nested inside a loop."""

    def check(node: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DRAW_METHODS
            and _is_rng_receiver(_terminal_name(node.func.value))
        ):
            yield node, node.func.attr

    def visit(
        node: ast.AST, loop_bound: Optional[set], conditional: bool
    ) -> Iterator[Tuple[ast.Call, str]]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if node is not function:
                return  # nested scopes are judged on their own
        elif conditional and loop_bound is not None:
            yield from check(node)
        if isinstance(node, (ast.If, ast.While)) and loop_bound is not None:
            # The test expression itself always executes, keeping its slot
            # in the stream; only the branch bodies are conditional.  A
            # `while` nested in a loop is both another loop and a branch
            # whose test typically depends on its own body.
            inner_bound = loop_bound
            if isinstance(node, ast.While):
                inner_bound = loop_bound | _bound_names(node)
            state_dependent = bool(_test_names(node.test) & inner_bound)
            yield from visit(node.test, loop_bound, conditional)
            branch_conditional = conditional or state_dependent
            for stmt in node.body + node.orelse:
                yield from visit(stmt, inner_bound, branch_conditional)
            return
        if isinstance(node, ast.IfExp) and loop_bound is not None:
            state_dependent = bool(_test_names(node.test) & loop_bound)
            yield from visit(node.test, loop_bound, conditional)
            branch_conditional = conditional or state_dependent
            yield from visit(node.body, loop_bound, branch_conditional)
            yield from visit(node.orelse, loop_bound, branch_conditional)
            return
        new_bound = loop_bound
        if isinstance(node, (ast.For, ast.While)):
            new_bound = (loop_bound or set()) | _bound_names(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child, new_bound, conditional)

    yield from visit(function, None, False)


@register(
    "RNG002",
    "conditional-draw",
    "generator draw inside a conditional branch of a loop in draw-order-critical code",
)
def conditional_draw(ctx: FileContext) -> Iterable[Diagnostic]:
    module_critical = any(
        ctx.relative.startswith(prefix) for prefix in DRAW_ORDER_CRITICAL_MODULES
    )
    for function in _functions(ctx.tree):
        if not (module_critical or _has_marker(function)):
            continue
        for call, method in _conditional_draws(function):
            yield ctx.diagnostic(
                call,
                "RNG002",
                f"draw `.{method}()` sits behind a data-dependent branch inside a "
                f"loop of draw-order-critical `{function.name}`; a skipped draw "
                "silently reorders the stream the equivalence harness pins — hoist "
                "the draw or justify with a pragma",
            )


# ---------------------------------------------------------------------- #
# PAR001 — numpy/jit kernel backends must agree on signatures
# ---------------------------------------------------------------------- #
def _signature(function: ast.FunctionDef) -> dict:
    args = function.args
    names = [a.arg for a in args.posonlyargs + args.args]
    defaults = [ast.dump(d) for d in args.defaults]
    kwonly = [a.arg for a in args.kwonlyargs]
    kw_defaults = [None if d is None else ast.dump(d) for d in args.kw_defaults]
    return {
        "names": names,
        "defaults": defaults,
        "kwonly": kwonly,
        "kw_defaults": kw_defaults,
        "vararg": args.vararg.arg if args.vararg else None,
        "kwarg": args.kwarg.arg if args.kwarg else None,
    }


def _public_functions(tree: ast.AST) -> dict:
    return {
        node.name: node
        for node in ast.iter_child_nodes(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and not node.name.startswith("_")
    }


@register(
    "PAR001",
    "backend-parity",
    "jit_backend.py public kernel signatures must mirror numpy_backend.py",
)
def backend_parity(ctx: FileContext) -> Iterable[Diagnostic]:
    if Path(ctx.relative).name != "jit_backend.py":
        return
    reference_path = ctx.path.with_name("numpy_backend.py")
    if not reference_path.exists():
        yield ctx.diagnostic(
            1, "PAR001", "reference backend numpy_backend.py not found next to jit_backend.py"
        )
        return
    try:
        reference_tree = ast.parse(reference_path.read_text(encoding="utf8"))
    except SyntaxError as error:
        yield ctx.diagnostic(
            1, "PAR001", f"reference backend numpy_backend.py does not parse: {error.msg}"
        )
        return
    reference = _public_functions(reference_tree)
    mirror = _public_functions(ctx.tree)
    for name, ref_fn in sorted(reference.items()):
        if name not in mirror:
            yield ctx.diagnostic(
                1,
                "PAR001",
                f"public kernel `{name}` exists in numpy_backend.py but not here; "
                "the engine calls both backends through one surface",
            )
            continue
        ref_sig, jit_sig = _signature(ref_fn), _signature(mirror[name])
        if ref_sig != jit_sig:
            ref_names = ref_sig["names"] + ref_sig["kwonly"]
            jit_names = jit_sig["names"] + jit_sig["kwonly"]
            detail = (
                f"parameters {jit_names} != reference {ref_names}"
                if ref_names != jit_names
                else "parameter defaults differ from the reference"
            )
            yield ctx.diagnostic(
                mirror[name],
                "PAR001",
                f"`{name}` signature drifted from numpy_backend.py: {detail} "
                "(names, order, and defaults must match)",
            )


# ---------------------------------------------------------------------- #
# LOOP001 — hot-loop purity in designated vectorized modules
# ---------------------------------------------------------------------- #
def _extent_names(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _is_extent_range(iterator: ast.AST) -> Optional[str]:
    """The offending extent name if ``iterator`` spans all vertices/trials."""
    if not (isinstance(iterator, ast.Call) and _dotted(iterator.func) == "range"):
        return None
    args = iterator.args
    if not args:
        return None
    # range(n) / range(n - 1) / range(start, trials): judge every bound; a
    # `len(x)` bound is judged by x's name.
    for name in _extent_names(ast.Tuple(elts=list(args), ctx=ast.Load())):
        if name in _EXTENT_NAMES:
            return name
    return None


@register(
    "LOOP001",
    "hot-loop-purity",
    "Python for-loop over vertices/trials in a designated vectorized module",
)
def hot_loop_purity(ctx: FileContext) -> Iterable[Diagnostic]:
    if ctx.relative not in VECTORIZED_MODULES:
        return
    for node in ast.walk(ctx.tree):
        iterator: Optional[ast.AST] = None
        if isinstance(node, ast.For):
            iterator = node.iter
        elif isinstance(node, ast.comprehension):
            iterator = node.iter
        if iterator is None:
            continue
        extent = _is_extent_range(iterator)
        if extent is not None:
            yield ctx.diagnostic(
                getattr(node, "lineno", None) or getattr(iterator, "lineno", 1),
                "LOOP001",
                f"Python-level loop over `range({extent}...)` in a vectorized module; "
                "express it as an array operation or justify with a pragma",
            )


# ---------------------------------------------------------------------- #
# SHM001 — shared-memory create sites need a teardown path in the module
# ---------------------------------------------------------------------- #
def _creates_segment(node: ast.Call) -> bool:
    if _dotted(node.func).rsplit(".", 1)[-1] != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _release_sites(tree: ast.AST) -> set:
    """Attribute-call names (`close`, `unlink`) found on a release path."""
    found: set = set()

    def record_calls(node: ast.AST) -> None:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("close", "unlink")
            ):
                found.add(sub.func.attr)

    for node in ast.walk(tree):
        if isinstance(node, (ast.Try,)):
            for final in node.finalbody:
                record_calls(final)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
            part in node.name.lower() for part in _RELEASE_NAME_PARTS
        ):
            record_calls(node)
    return found


@register(
    "SHM001",
    "shm-lifecycle",
    "SharedMemory(create=True) without a close/unlink teardown path in the module",
)
def shm_lifecycle(ctx: FileContext) -> Iterable[Diagnostic]:
    create_sites = [
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.Call) and _creates_segment(node)
    ]
    if not create_sites:
        return
    released = _release_sites(ctx.tree)
    missing = {"close", "unlink"} - released
    if not missing:
        return
    for site in create_sites:
        yield ctx.diagnostic(
            site,
            "SHM001",
            "SharedMemory(create=True) has no "
            + " / ".join(f"`.{name}()`" for name in sorted(missing))
            + " on a finally/teardown path in this module; leaked segments "
            "outlive the process",
        )


# ---------------------------------------------------------------------- #
# ENV001 / ENV002 — the REPRO_* knob registry
# ---------------------------------------------------------------------- #
def _declared_knobs() -> set:
    from repro.config import KNOBS

    return set(KNOBS)


def _env_read_name(node: ast.Call) -> Optional[ast.Constant]:
    """The literal env-var name this call reads, if any."""
    dotted = _dotted(node.func)
    tail = dotted.rsplit(".", 1)[-1]
    literal = node.args[0] if node.args else None
    if not (isinstance(literal, ast.Constant) and isinstance(literal.value, str)):
        return None
    if tail == "getenv" or (tail == "get" and dotted.endswith("environ.get")):
        return literal
    if tail in ("read_env", "read_int", "read_float", "read_flag", "get_knob"):
        return literal
    return None


@register(
    "ENV001",
    "env-knob-registry",
    "read of a REPRO_* environment name not declared in repro/config.py",
)
def env_knob_registry(ctx: FileContext) -> Iterable[Diagnostic]:
    if ctx.relative.endswith("repro/config.py") or ctx.relative == "repro/config.py":
        return
    declared = _declared_knobs()
    for node in ast.walk(ctx.tree):
        literal: Optional[ast.Constant] = None
        if isinstance(node, ast.Call):
            literal = _env_read_name(node)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and _dotted(node.value).endswith("environ")
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            literal = node.slice
        if literal is None or not str(literal.value).startswith("REPRO_"):
            continue
        if literal.value not in declared:
            yield ctx.diagnostic(
                literal,
                "ENV001",
                f"environment knob {literal.value!r} is not declared in the "
                "repro/config.py registry; declare it (with a description) "
                "before reading it",
            )


@register(
    "ENV002",
    "env-knob-docs",
    "knob declaration without a non-empty literal description",
)
def env_knob_docs(ctx: FileContext) -> Iterable[Diagnostic]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        tail = _dotted(node.func).rsplit(".", 1)[-1]
        if tail not in ("declare", "Knob"):
            continue
        name = node.args[0] if node.args else None
        if not (
            isinstance(name, ast.Constant)
            and isinstance(name.value, str)
            and name.value.startswith("REPRO_")
        ):
            continue
        description = None
        for keyword in node.keywords:
            if keyword.arg == "description":
                description = keyword.value
        if description is None and len(node.args) >= 3:
            description = node.args[2]
        empty_literal = isinstance(description, ast.Constant) and not str(
            description.value or ""
        ).strip()
        if description is None or empty_literal:
            yield ctx.diagnostic(
                node,
                "ENV002",
                f"knob {name.value} is declared without a description; every "
                "registry entry must document itself",
            )


# ---------------------------------------------------------------------- #
# EXC001 — broad exception handlers
# ---------------------------------------------------------------------- #
def _broad_types(node: ast.ExceptHandler) -> List[str]:
    if node.type is None:
        return ["bare except"]
    types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
    return [
        _dotted(t)
        for t in types
        if _dotted(t).rsplit(".", 1)[-1] in ("Exception", "BaseException")
    ]


@register(
    "EXC001",
    "exception-hygiene",
    "broad except Exception/BaseException outside a justified recovery site",
)
def exception_hygiene(ctx: FileContext) -> Iterable[Diagnostic]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _broad_types(node)
        if broad:
            label = "bare `except:`" if node.type is None else f"broad `except {broad[0]}`"
            yield ctx.diagnostic(
                node,
                "EXC001",
                f"{label} swallows unrelated failures; catch the concrete "
                "exception types this recovery path handles, or justify the "
                "breadth with a pragma",
            )
