"""The Section 4 coupling: coupled executions of ``ppx``, ``ppy`` and ``pp-a``.

The upper-bound proof (Theorem 4) chains three comparisons:

* Lemma 6 — ``T(ppx) ≼ T(pp)`` (plain stochastic domination);
* Lemma 9 — under a coupling driven by shared random variables
  ``X[v][i]`` (push destinations) and ``Y[v][w] ~ Exp(2/deg(v))`` (pull
  waiting variables), every vertex satisfies
  ``r'_v <= 2 * r_v + O(log(n/δ))`` with probability ``1 − δ/2n``, where
  ``r_v`` / ``r'_v`` are the informing rounds in ``ppx`` / ``ppy``;
* Lemma 10 — under the continuous-time version of the same coupling, the
  informing time ``t_v`` in ``pp-a`` satisfies
  ``t_v <= 4 * r'_v + O(log(n/δ))``.

This module implements the couplings *executably*: :func:`run_coupled_processes`
simulates ``ppx``, ``ppy`` and ``pp-a`` on one shared draw of the
``X``/``Y`` variables (plus the extra Poisson tick gaps the asynchronous
process needs) and returns the per-vertex informing rounds/times of all
three, so the per-vertex inequalities above can be checked directly on
concrete runs and aggregated by the experiments (E8).

The construction follows the paper's coupling rules exactly:

* **push** — vertex ``v`` pushes to ``X[v][i]`` in the ``i``-th round after
  it became informed (``ppx``/``ppy``), and at its ``i``-th clock tick after
  it became informed (``pp-a``);
* **pull in ppy** — ``v`` pulls in round ``min_w(r'_w + ceil(Y[v][w]))``
  from ``argmin_w(r'_w + Y[v][w])`` (if not informed by a push before);
* **pull in ppx** — the same rule while fewer than half of ``v``'s
  neighbors are informed; as soon as at least ``deg(v)/2`` neighbors are
  informed by the end of some round ``z``, ``v`` pulls in round ``z + 1``
  from the informed neighbor minimising ``r_w + Y[v][w]``;
* **pull in pp-a** — ``v`` pulls at time ``min_w(t_w + 2 Y[v][w])`` from the
  minimising neighbor (the factor 2 converts ``Exp(2/deg(v))`` into the
  ``Exp(1/deg(v))`` law of the pair-clock view).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import CouplingError, ProtocolError
from repro.graphs.base import Graph
from repro.randomness.rng import SeedLike, as_generator

__all__ = [
    "CoupledProcessesRun",
    "SharedCouplingVariables",
    "run_coupled_processes",
]


class SharedCouplingVariables:
    """Lazily generated shared randomness for the Section 4 coupling.

    Attributes (conceptually):
        X[v][i]: the ``i``-th push destination of ``v`` (uniform neighbor).
        Y[(v, w)]: the exponential pull variable of rate ``2 / deg(v)``.
    """

    def __init__(self, graph: Graph, rng: np.random.Generator) -> None:
        self._graph = graph
        self._rng = rng
        self._push_destinations: dict[int, list[int]] = {}
        self._pull_variables: dict[tuple[int, int], float] = {}

    def push_destination(self, vertex: int, index: int) -> int:
        """``X[vertex][index]`` for a 1-based ``index``."""
        if index < 1:
            raise CouplingError(f"push index must be >= 1, got {index}")
        sequence = self._push_destinations.setdefault(vertex, [])
        neighbors = self._graph.neighbors(vertex)
        while len(sequence) < index:
            sequence.append(int(neighbors[int(self._rng.integers(len(neighbors)))]))
        return sequence[index - 1]

    def pull_variable(self, vertex: int, neighbor: int) -> float:
        """``Y[(vertex, neighbor)] ~ Exp(2 / deg(vertex))``."""
        key = (vertex, neighbor)
        value = self._pull_variables.get(key)
        if value is None:
            rate = 2.0 / self._graph.degree(vertex)
            value = float(self._rng.exponential(1.0 / rate))
            self._pull_variables[key] = value
        return value


@dataclass(frozen=True)
class CoupledProcessesRun:
    """Per-vertex informing rounds/times of one coupled (ppx, ppy, pp-a) run.

    Attributes:
        graph_name: display name of the simulated graph.
        source: initially informed vertex.
        ppx_round: informing round ``r_v`` of each vertex in ``ppx``.
        ppy_round: informing round ``r'_v`` of each vertex in ``ppy``.
        ppa_time: informing time ``t_v`` of each vertex in ``pp-a``.
    """

    graph_name: str
    source: int
    ppx_round: tuple[float, ...]
    ppy_round: tuple[float, ...]
    ppa_time: tuple[float, ...]

    @property
    def num_vertices(self) -> int:
        return len(self.ppx_round)

    @property
    def ppx_spreading_time(self) -> float:
        return max(self.ppx_round)

    @property
    def ppy_spreading_time(self) -> float:
        return max(self.ppy_round)

    @property
    def ppa_spreading_time(self) -> float:
        return max(self.ppa_time)

    def lemma9_slack(self) -> float:
        """``max_v (r'_v - 2 r_v)`` — Lemma 9 says this is ``O(log n)`` whp."""
        return max(ry - 2.0 * rx for rx, ry in zip(self.ppx_round, self.ppy_round))

    def lemma10_slack(self) -> float:
        """``max_v (t_v - 4 r'_v)`` — Lemma 10 says this is ``O(log n)`` whp."""
        return max(t - 4.0 * ry for ry, t in zip(self.ppy_round, self.ppa_time))

    def theorem_slack(self) -> float:
        """``max_v (t_v - 8 r_v)`` — the end-to-end comparison behind Theorem 4."""
        return max(t - 8.0 * rx for rx, t in zip(self.ppx_round, self.ppa_time))


def _validate(graph: Graph, source: int) -> None:
    if not (0 <= source < graph.num_vertices):
        raise ProtocolError(
            f"source {source} is not a vertex of {graph.name} (n={graph.num_vertices})"
        )
    if graph.num_vertices > 1 and not graph.is_connected():
        raise ProtocolError(f"{graph.name} is not connected")


def _run_coupled_round_process(
    graph: Graph,
    source: int,
    shared: SharedCouplingVariables,
    variant: str,
    max_rounds: int,
) -> list[float]:
    """Run the coupled ``ppx`` (``variant="ppx"``) or ``ppy`` (``"ppy"``) process.

    Returns the per-vertex informing rounds.  The pull schedule is driven by
    the shared ``Y`` variables, the push schedule by the shared ``X``
    destinations, exactly as in the proof of Lemma 9.
    """
    n = graph.num_vertices
    adjacency = graph.adjacency
    informed_round: list[float] = [math.inf] * n
    informed_round[source] = 0.0
    informed_order: list[int] = [source]

    # For each still-uninformed vertex v, the best (earliest) pull candidate:
    # (candidate_round, exact_value, from_neighbor).  Candidates are created
    # when a neighbor becomes informed.
    best_candidate: dict[int, tuple[int, float, int]] = {}
    # Pull events scheduled for a given round: vertex -> (round, parent).
    informed_neighbor_count = [0] * n
    half_reached_round: dict[int, int] = {}
    forced_pull: dict[int, tuple[int, float, int]] = {}  # v -> (round, exact, parent)

    def register_informed(w: int, round_w: int) -> None:
        """Update pull candidates of w's uninformed neighbors."""
        for v in adjacency[w]:
            if not math.isinf(informed_round[v]):
                continue
            informed_neighbor_count[v] += 1
            y = shared.pull_variable(v, w)
            exact = round_w + y
            candidate_round = round_w + math.ceil(y)
            current = best_candidate.get(v)
            if current is None or exact < current[1]:
                best_candidate[v] = (candidate_round, exact, w)
            if (
                variant == "ppx"
                and v not in half_reached_round
                and informed_neighbor_count[v] >= graph.degree(v) / 2.0
            ):
                half_reached_round[v] = round_w

    register_informed(source, 0)

    informed_count = 1
    current_round = 0
    while informed_count < n and current_round < max_rounds:
        current_round += 1
        newly: list[tuple[int, int]] = []  # (vertex, round informed)

        # --- Push operations: v pushes to X[v][i] in round r_v + i. ---
        push_targets: list[int] = []
        for v in informed_order:
            offset = current_round - int(informed_round[v])
            if offset >= 1:
                push_targets.append(shared.push_destination(v, offset))

        # --- Pull operations. ---
        pull_targets: list[tuple[int, int]] = []  # (vertex, parent)
        for v, (candidate_round, _exact, parent) in list(best_candidate.items()):
            if math.isinf(informed_round[v]) and candidate_round == current_round:
                if variant == "ppy" or v not in half_reached_round:
                    pull_targets.append((v, parent))
                elif half_reached_round[v] >= current_round:
                    # Half coverage is only reached at the end of this round
                    # or later, so the natural rule still applies (case (i)).
                    pull_targets.append((v, parent))
        if variant == "ppx":
            for v, z in half_reached_round.items():
                if math.isinf(informed_round[v]) and current_round == z + 1:
                    # Forced pull (case (ii)): pull from the informed neighbor
                    # minimising r_w + Y[v][w] among those informed by round z.
                    best_exact = math.inf
                    best_parent: Optional[int] = None
                    for w in adjacency[v]:
                        r_w = informed_round[w]
                        if math.isfinite(r_w) and r_w <= z:
                            exact = r_w + shared.pull_variable(v, w)
                            if exact < best_exact:
                                best_exact = exact
                                best_parent = w
                    if best_parent is not None:
                        pull_targets.append((v, best_parent))

        # --- Commit the round. ---
        seen: set[int] = set()
        for v, _parent in pull_targets:
            if math.isinf(informed_round[v]) and v not in seen:
                seen.add(v)
                newly.append((v, current_round))
        for v in push_targets:
            if math.isinf(informed_round[v]) and v not in seen:
                seen.add(v)
                newly.append((v, current_round))
        for v, round_v in newly:
            informed_round[v] = float(round_v)
            informed_order.append(v)
            informed_count += 1
        for v, round_v in newly:
            register_informed(v, round_v)

    if informed_count < n:
        raise CouplingError(
            f"coupled {variant} did not finish on {graph.name} within {max_rounds} rounds"
        )
    return informed_round


def _run_coupled_async(
    graph: Graph,
    source: int,
    shared: SharedCouplingVariables,
    rng: np.random.Generator,
    max_events: int,
) -> list[float]:
    """Run the coupled asynchronous push–pull process (Lemma 10's continuous rules)."""
    n = graph.num_vertices
    adjacency = graph.adjacency
    informed_time: list[float] = [math.inf] * n
    informed_time[source] = 0.0

    # Event heap entries:
    #   (time, kind, vertex, payload)
    # kind 0: push tick of `vertex` (payload = tick index, 1-based)
    # kind 1: pull candidate for `vertex` (payload = informing neighbor)
    heap: list[tuple[float, int, int, int]] = []

    def schedule_push_ticks(v: int, t_v: float) -> None:
        heapq.heappush(heap, (t_v + float(rng.exponential(1.0)), 0, v, 1))

    def schedule_pull_candidates(w: int, t_w: float) -> None:
        for v in adjacency[w]:
            if math.isinf(informed_time[v]):
                candidate_time = t_w + 2.0 * shared.pull_variable(v, w)
                heapq.heappush(heap, (candidate_time, 1, v, w))

    schedule_push_ticks(source, 0.0)
    schedule_pull_candidates(source, 0.0)

    informed_count = 1
    events = 0
    while heap and informed_count < n and events < max_events:
        events += 1
        time, kind, vertex, payload = heapq.heappop(heap)
        if kind == 0:
            # Push tick: vertex pushes to its payload-th shared destination.
            target = shared.push_destination(vertex, payload)
            if math.isinf(informed_time[target]):
                informed_time[target] = time
                informed_count += 1
                schedule_push_ticks(target, time)
                schedule_pull_candidates(target, time)
            heapq.heappush(heap, (time + float(rng.exponential(1.0)), 0, vertex, payload + 1))
        else:
            # Pull candidate for `vertex` from neighbor `payload`.
            if math.isinf(informed_time[vertex]):
                informed_time[vertex] = time
                informed_count += 1
                schedule_push_ticks(vertex, time)
                schedule_pull_candidates(vertex, time)

    if informed_count < n:
        raise CouplingError(
            f"coupled pp-a did not finish on {graph.name} within {max_events} events"
        )
    return informed_time


def run_coupled_processes(
    graph: Graph,
    source: int,
    *,
    seed: SeedLike = None,
    max_rounds: Optional[int] = None,
    max_events: Optional[int] = None,
) -> CoupledProcessesRun:
    """Run ``ppx``, ``ppy`` and ``pp-a`` on one shared draw of the coupling variables.

    Args:
        graph: the (connected) graph.
        source: the initially informed vertex.
        seed: RNG seed / generator.
        max_rounds: round budget for the two round-based processes.
        max_events: event budget for the asynchronous process.

    Returns:
        A :class:`CoupledProcessesRun` with the three per-vertex informing
        vectors; its ``lemma9_slack`` / ``lemma10_slack`` helpers expose the
        quantities bounded by the paper's lemmas.
    """
    _validate(graph, source)
    n = graph.num_vertices
    if n == 1:
        return CoupledProcessesRun(graph.name, source, (0.0,), (0.0,), (0.0,))
    rng = as_generator(seed)
    shared = SharedCouplingVariables(graph, rng)
    round_budget = (
        int(400 * n * max(1.0, math.log(n)) + 4000) if max_rounds is None else int(max_rounds)
    )
    event_budget = (
        int(200 * n * n * max(1.0, math.log(n)) + 100_000) if max_events is None else int(max_events)
    )

    ppx_rounds = _run_coupled_round_process(graph, source, shared, "ppx", round_budget)
    ppy_rounds = _run_coupled_round_process(graph, source, shared, "ppy", round_budget)
    ppa_times = _run_coupled_async(graph, source, shared, rng, event_budget)

    return CoupledProcessesRun(
        graph_name=graph.name,
        source=source,
        ppx_round=tuple(ppx_rounds),
        ppy_round=tuple(ppy_rounds),
        ppa_time=tuple(ppa_times),
    )
