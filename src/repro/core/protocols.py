"""Protocol registry and the uniform :func:`spread` entry point.

Every protocol studied in the paper is registered here under its canonical
short name, so analysis code, experiments, the CLI and user scripts can all
run any protocol through one call:

>>> from repro import graphs, spread
>>> result = spread(graphs.star_graph(64), source=0, protocol="pp-a", seed=7)
>>> result.completed
True

Canonical names (matching the paper's notation):

========  ===========================================================
``pp``     synchronous push–pull
``push``   synchronous push only
``pull``   synchronous pull only
``pp-a``   asynchronous push–pull (rate-1 Poisson clock per vertex)
``push-a`` asynchronous push only
``pull-a`` asynchronous pull only
``ppx``    auxiliary process of Definition 5 (analysis device)
``ppy``    auxiliary process of Definition 7 (analysis device)
========  ===========================================================

Every call also accepts a ``scenario=`` argument (a
:class:`repro.scenarios.Scenario` or a spec string like ``"loss:p=0.3"``)
applying composable adversity models.  Scenario support by protocol group:

====================  =====  =====  =======  ======  ==============
scenario              sync   async  ppx/ppy  batch   notes
====================  =====  =====  =======  ======  ==============
``loss``              yes    yes    no       yes     per-exchange drop
``burst-loss``        yes    yes    no       yes     Gilbert–Elliott channel; state steps once per round / time unit
``churn``             yes    yes    no       yes     state updates once per round / time unit
``targeted-churn``    yes    yes    no       yes     deterministic: top vertices by degree/eccentricity crash at trial start
``adaptive-crash``    yes    yes    no       yes     budget-limited: each round / epoch crashes the top-``k`` *informed* vertices by degree/eccentricity until the budget is spent
``adaptive-loss``     yes    yes    no       yes     budget-limited: drops only *informative* contacts (informed→uninformed) with probability ``p`` until the budget is spent
``dynamic``           yes    yes*   no       yes*    \\*every view except ``edge_clocks`` (a resample would change the pair clock set)
``adversarial-source`` yes   yes    yes      yes     deterministic; overrides ``source``
``delay``             no     yes    no       yes     clock rates are an async-only notion; reweights per-clock rates under the clock views
====================  =====  =====  =======  ======  ==============

Asynchronous runtime scenarios run under **all three views** (``global``,
``node_clocks``, ``edge_clocks``); the single exception is ``dynamic``
under ``edge_clocks``, which raises a descriptive
:class:`~repro.errors.ScenarioError` on every path.  Scenario × view
eligibility, in full:

====================  ======  ==========  ===============  ===============
scenario              sync    ``global``  ``node_clocks``  ``edge_clocks``
====================  ======  ==========  ===============  ===============
``loss``              yes     yes         yes              yes
``burst-loss``        yes     yes         yes              yes
``churn``             yes     yes         yes              yes
``targeted-churn``    yes     yes         yes              yes
``adaptive-crash``    yes     yes         yes              yes
``adaptive-loss``     yes     yes         yes              yes
``dynamic``           yes     yes         yes              **no**
``adversarial-source`` yes    yes         yes              yes
``delay``             no      no          yes              yes
====================  ======  ==========  ===============  ===============

The adaptive scenarios observe the informed set at every decision point
(round start in sync, epoch boundary in async) and consume **no extra
randomness**: ``adaptive-crash`` picks victims deterministically from a
precomputed degree/eccentricity ranking, and ``adaptive-loss`` reuses the
per-contact loss draw slot — so the batched kernels stay bit-identical to
the serial engines with or without an adversary attached.

Every protocol also has a times-only batched ``(B, n)`` kernel in
:mod:`repro.core.batch_engine`, exactly seed-equivalent to the serial
engines (``batch`` column: which scenario categories stay on the fast path
there).  Batched kernel coverage by protocol group and asynchronous view:

==================  ============  =====================================
protocol group      batch kernel  runtime scenarios on the batched path
==================  ============  =====================================
sync pp/push/pull   yes           loss, burst-loss, churn, targeted-churn, adaptive-crash, adaptive-loss, dynamic
async ``global``    yes           all (dynamic rides a per-trial stacked CSR)
async clock views   yes           all except dynamic under ``edge_clocks`` (serial engine rejects it too)
``ppx``/``ppy``     yes           none (analysis-only processes)
==================  ============  =====================================

**Kernel backends.**  The batched hot loops live in
:mod:`repro.core.kernels` with two interchangeable implementations,
selected by the ``backend`` engine option (also understood by
``run_trials``/``run_trials_parallel`` ``engine_options``, the
``REPRO_KERNEL_BACKEND`` environment variable, and the CLI ``--backend``
flag):

===========  ==========================  ===================================
``backend``  implementation              equivalence to the serial engines
===========  ==========================  ===================================
``"numpy"``  vectorised reference        bit-identical (the historical
             kernels (always available)  engine behaviour)
``"jit"``    Numba ``@njit`` CSR loops   bit-identical in the per-trial RNG
             (``pip install -e .[jit]``; modes and the chunked pooled clock
             falls back to numpy with    views; KS-level (distribution-only)
             one warning when numba is   for the pooled async global view;
             missing)                    ``ppx``/``ppy`` have no jit kernel
``"auto"``   ``jit`` when numba is       as the backend it resolves to
             importable, else ``numpy``
===========  ==========================  ===================================

**Parallel execution.**  Above the batch kernels sits the zero-copy
multi-process layer: :func:`repro.analysis.parallel.run_trials_parallel`
shards a trial budget across the session's persistent process pool
(:mod:`repro.analysis.pool`; sized by ``REPRO_MAX_WORKERS``, start method
via ``REPRO_MP_START_METHOD``), with every protocol of the table above
supported through the same chunked ``run_trials`` calls the serial path
makes:

=====================  ========================================================
transport              behaviour
=====================  ========================================================
``parallel="shared"``  default — workers write spreading times / coverage
                       fractions straight into parent-owned shared-memory
                       matrices, and graphs travel once as shared CSR arrays
``parallel="pickle"``  legacy — graph pickled per chunk, samples pickled back
=====================  ========================================================

Both transports are bit-identical for a fixed ``(seed, trials,
num_workers)`` (pinned by the equivalence harness) and reuse one pool
across whole experiment sweeps (``sweep_family(parallel=True)``,
``experiments.theorem1.run(parallel=True)``, ``experiments.scenarios``).

**Telemetry.**  The observability layer (:mod:`repro.telemetry`) threads
through every path above with zero cost when off: coverage traces ingest
the per-vertex informing times each engine already produces (the ``(B,
n)`` matrices of the batch kernels under ``record_times=True``, the
:class:`SpreadingResult` histories serially), and runtime metrics count
rounds / ticks / messages inside the engines only while a registry is
installed (:func:`repro.telemetry.metrics.collecting_metrics`).  Tracing
never changes which dispatch path runs and never consumes randomness.
Coverage-tracing support by engine, view, and backend:

==================  ===============  ========  ==================================
engine / path       views            backends  coverage trace source
==================  ===============  ========  ==================================
serial sync/async   all three        n/a       per-run ``SpreadingResult.informed_time``
serial ppx/ppy      (rounds)         n/a       per-run ``SpreadingResult.informed_time``
batched sync        (rounds)         numpy,    kernel ``(B, n)`` time matrix,
                                     jit       fixed-seed-identical across backends
batched async       global           numpy,    kernel ``(B, n)`` time matrix; the jit
                                     jit       status-code drain reports metric deltas
                                               Python-side, RNG untouched
batched clock       node_clocks,     numpy     kernel ``(B, n)`` time matrix (table
views               edge_clocks      (pinned)  loops are numpy-pinned; pooled chunked
                                               path runs either backend)
batched ppx/ppy     (rounds)         numpy     kernel ``(B, n)`` time matrix
parallel (shared)   all of the       both      workers write per-chunk time-matrix
                    above                      rows into one shared ``(trials, n)``
                                               coverage matrix; metrics snapshots
                                               merge at chunk return
==================  ===============  ========  ==================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.async_engine import run_asynchronous
from repro.core.aux_processes import run_auxiliary_process
from repro.core.result import SpreadingResult
from repro.core.sync_engine import run_synchronous
from repro.errors import ProtocolError, ScenarioError
from repro.graphs.base import Graph
from repro.randomness.rng import SeedLike
from repro.scenarios.base import ScenarioLike, as_scenario, scenario_source
from repro.telemetry.metrics import current_metrics

__all__ = [
    "ProtocolSpec",
    "PROTOCOLS",
    "available_protocols",
    "get_protocol",
    "spread",
    "is_synchronous_protocol",
    "is_asynchronous_protocol",
]


@dataclass(frozen=True)
class ProtocolSpec:
    """Metadata and runner for one registered protocol.

    Attributes:
        name: canonical short name (e.g. ``"pp-a"``).
        description: one-line human readable description.
        synchronous: whether the protocol is round based.
        realistic: ``False`` for the analysis-only processes ``ppx``/``ppy``
            (they assume knowledge of which neighbors are informed).
        runner: callable implementing the protocol; signature
            ``runner(graph, source, seed=..., **options) -> SpreadingResult``.
    """

    name: str
    description: str
    synchronous: bool
    realistic: bool
    runner: Callable[..., SpreadingResult]


def _sync_runner(mode: str) -> Callable[..., SpreadingResult]:
    def run(
        graph: Graph,
        source: int,
        *,
        seed: SeedLike = None,
        scenario: ScenarioLike = None,
        **options: object,
    ) -> SpreadingResult:
        return run_synchronous(
            graph, source, mode=mode, seed=seed, scenario=scenario, **options
        )

    return run


def _async_runner(mode: str) -> Callable[..., SpreadingResult]:
    def run(
        graph: Graph,
        source: int,
        *,
        seed: SeedLike = None,
        scenario: ScenarioLike = None,
        **options: object,
    ) -> SpreadingResult:
        return run_asynchronous(
            graph, source, mode=mode, seed=seed, scenario=scenario, **options
        )

    return run


def _aux_runner(variant: str) -> Callable[..., SpreadingResult]:
    def run(
        graph: Graph, source: int, *, seed: SeedLike = None, **options: object
    ) -> SpreadingResult:
        return run_auxiliary_process(graph, source, variant=variant, seed=seed, **options)

    return run


PROTOCOLS: dict[str, ProtocolSpec] = {
    "pp": ProtocolSpec(
        name="pp",
        description="synchronous push-pull: every vertex contacts a random neighbor each round",
        synchronous=True,
        realistic=True,
        runner=_sync_runner("push-pull"),
    ),
    "push": ProtocolSpec(
        name="push",
        description="synchronous push: only informed callers transmit",
        synchronous=True,
        realistic=True,
        runner=_sync_runner("push"),
    ),
    "pull": ProtocolSpec(
        name="pull",
        description="synchronous pull: only uninformed callers receive",
        synchronous=True,
        realistic=True,
        runner=_sync_runner("pull"),
    ),
    "pp-a": ProtocolSpec(
        name="pp-a",
        description="asynchronous push-pull: rate-1 Poisson clock per vertex",
        synchronous=False,
        realistic=True,
        runner=_async_runner("push-pull"),
    ),
    "push-a": ProtocolSpec(
        name="push-a",
        description="asynchronous push: ticks of informed vertices push the rumor",
        synchronous=False,
        realistic=True,
        runner=_async_runner("push"),
    ),
    "pull-a": ProtocolSpec(
        name="pull-a",
        description="asynchronous pull: ticks of uninformed vertices pull the rumor",
        synchronous=False,
        realistic=True,
        runner=_async_runner("pull"),
    ),
    "ppx": ProtocolSpec(
        name="ppx",
        description="auxiliary process of Definition 5 (pull prob. 1-e^{-2k/deg}, forced at k>=deg/2)",
        synchronous=True,
        realistic=False,
        runner=_aux_runner("ppx"),
    ),
    "ppy": ProtocolSpec(
        name="ppy",
        description="auxiliary process of Definition 7 (pull prob. 1-e^{-2k/deg})",
        synchronous=True,
        realistic=False,
        runner=_aux_runner("ppy"),
    ),
}


def available_protocols(*, include_analysis_only: bool = True) -> list[str]:
    """Sorted list of registered protocol names."""
    return sorted(
        name
        for name, spec in PROTOCOLS.items()
        if include_analysis_only or spec.realistic
    )


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a protocol by name; raises with the list of valid names."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ProtocolError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        ) from None


def is_synchronous_protocol(name: str) -> bool:
    """Whether the named protocol measures time in rounds."""
    return get_protocol(name).synchronous


def is_asynchronous_protocol(name: str) -> bool:
    """Whether the named protocol measures time in continuous time units."""
    return not get_protocol(name).synchronous


def spread(
    graph: Graph,
    source: int,
    *,
    protocol: str = "pp",
    seed: SeedLike = None,
    scenario: ScenarioLike = None,
    **options: object,
) -> SpreadingResult:
    """Run one rumor-spreading simulation.

    Args:
        graph: the (connected) graph to spread on.
        source: the initially informed vertex.  An
            :class:`~repro.scenarios.AdversarialSource` component in the
            scenario overrides this argument.
        protocol: a canonical protocol name (see module docstring).
        seed: RNG seed or generator.
        scenario: optional adversity scenario from :mod:`repro.scenarios`
            (a :class:`~repro.scenarios.Scenario` or a spec string such as
            ``"loss:p=0.3"``).  See the table in the module docstring for
            which scenarios each protocol supports.
        **options: engine-specific options forwarded to the underlying
            runner (``max_rounds``, ``max_steps``, ``max_time``, ``view``,
            ``record_trace``, ``on_budget_exhausted``).  The batch-only
            ``backend`` option is accepted and ignored, so one options dict
            can drive both a serial and a batched run.

    Returns:
        The :class:`~repro.core.result.SpreadingResult` of the run.
    """
    # Kernel backends are a batch-engine notion (see repro.core.kernels);
    # the serial engines have exactly one implementation.
    options.pop("backend", None)
    spec = get_protocol(protocol)
    scenario = as_scenario(scenario)
    if scenario is not None:
        source = scenario_source(scenario, graph, source)
        if scenario.runtime_active():
            if not spec.realistic:
                raise ScenarioError(
                    f"protocol {protocol!r} is an analysis-only process; runtime "
                    "scenarios (loss, churn, dynamic graphs, delay) do not apply"
                )
            result = spec.runner(graph, source, seed=seed, scenario=scenario, **options)
            _record_spread_metrics(result)
            return result
    result = spec.runner(graph, source, seed=seed, **options)
    _record_spread_metrics(result)
    return result


def _record_spread_metrics(result: SpreadingResult) -> None:
    """Serial run counters, derived from the result the engine built anyway.

    One registry lookup per :func:`spread` call and pure field reads —
    nothing is added to the engines' inner loops, so a serial run with
    telemetry off pays one ``is None`` check total.
    """
    metrics = current_metrics()
    if metrics is None:
        return
    if result.rounds is not None:
        metrics.count("engine.rounds", result.rounds)
    if result.steps is not None:
        metrics.count("engine.clock_ticks", result.steps)
        metrics.count("engine.messages_attempted", result.steps)
    elif result.total_contacts:
        metrics.count("engine.messages_attempted", result.total_contacts)
    metrics.count(
        "engine.messages_delivered",
        result.push_infections + result.pull_infections,
    )
    if result.adversary_budget_spent is not None:
        metrics.count(
            "scenario.adversary_budget_spent", result.adversary_budget_spent
        )
