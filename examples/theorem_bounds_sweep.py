#!/usr/bin/env python3
"""Checking Theorems 1 and 2 numerically across a suite of graph families.

Run with::

    python examples/theorem_bounds_sweep.py

For every family in a representative suite and a small size sweep, the script
estimates the synchronous and asynchronous push–pull spreading times and
prints the two normalised constants the theorems bound:

* ``c1 = T_{1/n}(pp-a) / (T_{1/n}(pp) + ln n)``   (Theorem 1: bounded above),
* ``c2 = (E[T(pp)] / E[T(pp-a)]) / sqrt(n)``      (Theorem 2: bounded above).

Both columns should stay below small universal constants on every row — that
is exactly the content of the paper's two main results.
"""

from __future__ import annotations

from repro.analysis import sweep_family, theorem1_constant, theorem2_constant
from repro.experiments.records import format_table

FAMILIES = ("star", "cycle", "complete", "hypercube", "barbell", "erdos_renyi", "async_gap")
SIZES = (64, 128, 256)
TRIALS = 80


def main() -> None:
    rows = []
    for family in FAMILIES:
        sweep = sweep_family(family, ["pp", "pp-a"], sizes=SIZES, trials=TRIALS, seed=2016)
        for comparison in sweep.comparisons:
            n = comparison.num_vertices
            pp = comparison.measurement("pp")
            ppa = comparison.measurement("pp-a")
            rows.append(
                {
                    "family": family,
                    "n": n,
                    "T_hp(pp)": pp.high_probability,
                    "T_hp(pp-a)": ppa.high_probability,
                    "c1 (Thm 1)": theorem1_constant(ppa.high_probability, pp.high_probability, n),
                    "c2 (Thm 2)": theorem2_constant(ppa.mean.value, pp.mean.value, n),
                }
            )
    print("Theorem 1 and Theorem 2 constants across families and sizes\n")
    print(format_table(["family", "n", "T_hp(pp)", "T_hp(pp-a)", "c1 (Thm 1)", "c2 (Thm 2)"], rows))
    worst_c1 = max(row["c1 (Thm 1)"] for row in rows)
    worst_c2 = max(row["c2 (Thm 2)"] for row in rows)
    print(f"\nLargest observed c1 = {worst_c1:.3f}  (Theorem 1 predicts a universal O(1) bound)")
    print(f"Largest observed c2 = {worst_c2:.3f}  (Theorem 2 predicts a universal O(1) bound)")


if __name__ == "__main__":
    main()
