"""Unit tests for the asynchronous engine and its three model views."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.async_engine import ASYNC_VIEWS, default_max_steps, run_asynchronous
from repro.core.result import check_result_consistency
from repro.errors import ProtocolError, SimulationError
from repro.graphs import complete_graph, path_graph, star_graph
from repro.graphs.base import Graph


class TestValidation:
    def test_unknown_mode_rejected(self, small_star):
        with pytest.raises(ProtocolError):
            run_asynchronous(small_star, 0, mode="gossip")

    def test_unknown_view_rejected(self, small_star):
        with pytest.raises(ProtocolError):
            run_asynchronous(small_star, 0, view="quantum")

    def test_bad_source_rejected(self, small_star):
        with pytest.raises(ProtocolError):
            run_asynchronous(small_star, -1)

    def test_disconnected_graph_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ProtocolError):
            run_asynchronous(graph, 0)

    def test_negative_budgets_rejected(self, small_star):
        with pytest.raises(ProtocolError):
            run_asynchronous(small_star, 0, max_steps=-5)
        with pytest.raises(ProtocolError):
            run_asynchronous(small_star, 0, max_time=-1.0)

    def test_bad_budget_policy_rejected(self, small_star):
        with pytest.raises(ProtocolError):
            run_asynchronous(small_star, 0, on_budget_exhausted="whatever")


class TestBasicBehaviour:
    def test_single_vertex_graph(self):
        result = run_asynchronous(Graph(1, []), 0)
        assert result.completed
        assert result.steps == 0

    @pytest.mark.parametrize("view", ASYNC_VIEWS)
    def test_completes_and_is_consistent(self, small_hypercube, view):
        result = run_asynchronous(small_hypercube, 0, view=view, seed=1)
        assert result.completed
        assert result.rounds is None
        assert result.steps is not None and result.steps > 0
        assert check_result_consistency(result) == []

    @pytest.mark.parametrize("mode", ["push", "pull", "push-pull"])
    def test_all_modes_complete(self, small_complete, mode):
        result = run_asynchronous(small_complete, 0, mode=mode, seed=2)
        assert result.completed

    def test_protocol_names(self, small_complete):
        assert run_asynchronous(small_complete, 0, mode="push-pull", seed=0).protocol == "pp-a"
        assert run_asynchronous(small_complete, 0, mode="push", seed=0).protocol == "push-a"
        assert run_asynchronous(small_complete, 0, mode="pull", seed=0).protocol == "pull-a"

    def test_reproducible_with_seed(self, small_hypercube):
        a = run_asynchronous(small_hypercube, 0, seed=5)
        b = run_asynchronous(small_hypercube, 0, seed=5)
        assert a.informed_time == b.informed_time

    def test_informing_times_increase_along_parents(self, small_hypercube):
        result = run_asynchronous(small_hypercube, 0, seed=7)
        for v in range(small_hypercube.num_vertices):
            p = result.parent[v]
            if p >= 0:
                assert result.informed_time[p] < result.informed_time[v]

    def test_times_are_continuous(self, small_complete):
        result = run_asynchronous(small_complete, 0, seed=9)
        non_integer = [t for t in result.informed_time if t > 0 and t != int(t)]
        assert non_integer  # continuous clock times are essentially never integers


class TestBudgets:
    def test_step_budget_raises_by_default(self, small_star):
        with pytest.raises(SimulationError):
            run_asynchronous(small_star, 1, max_steps=3)

    def test_step_budget_partial(self, small_star):
        result = run_asynchronous(small_star, 1, max_steps=3, on_budget_exhausted="partial", seed=1)
        assert not result.completed
        assert result.steps <= 3

    def test_time_budget_partial(self):
        graph = star_graph(64)
        result = run_asynchronous(
            graph, 1, max_time=0.05, on_budget_exhausted="partial", seed=2
        )
        assert not result.completed
        assert all(t <= 0.05 or math.isinf(t) for t in result.informed_time if t > 0)

    def test_default_budget_grows(self):
        assert default_max_steps(100) < default_max_steps(1000)


class TestStatisticalBehaviour:
    """Distributional sanity checks against closed-form expectations."""

    def test_star_async_time_is_logarithmic(self):
        graph = star_graph(128)
        times = [run_asynchronous(graph, 1, seed=s).spreading_time for s in range(60)]
        expected = math.log(127) + 0.5772
        assert np.mean(times) == pytest.approx(expected + 1.0, rel=0.35)

    def test_mean_time_equals_steps_over_n(self):
        """The expected gap between steps is 1/n, so time ~ steps / n."""
        graph = complete_graph(32)
        ratios = []
        for seed in range(30):
            result = run_asynchronous(graph, 0, seed=seed)
            ratios.append(result.spreading_time / (result.steps / 32))
        assert np.mean(ratios) == pytest.approx(1.0, abs=0.15)

    def test_push_pull_faster_than_push_on_star(self):
        graph = star_graph(48)
        pp_mean = np.mean(
            [run_asynchronous(graph, 1, mode="push-pull", seed=s).spreading_time for s in range(25)]
        )
        push_mean = np.mean(
            [run_asynchronous(graph, 1, mode="push", seed=s).spreading_time for s in range(25)]
        )
        assert pp_mean < push_mean

    def test_path_time_scales_with_length(self):
        short = np.mean(
            [run_asynchronous(path_graph(8), 0, seed=s).spreading_time for s in range(20)]
        )
        long = np.mean(
            [run_asynchronous(path_graph(32), 0, seed=s).spreading_time for s in range(20)]
        )
        assert long > 2.0 * short


class TestViewEquivalence:
    """The three views must produce statistically indistinguishable times."""

    @pytest.mark.parametrize("other_view", ["node_clocks", "edge_clocks"])
    def test_views_have_similar_means(self, other_view):
        graph = complete_graph(24)
        base = [
            run_asynchronous(graph, 0, view="global", seed=s).spreading_time for s in range(40)
        ]
        other = [
            run_asynchronous(graph, 0, view=other_view, seed=1000 + s).spreading_time
            for s in range(40)
        ]
        assert np.mean(other) == pytest.approx(np.mean(base), rel=0.25)


class TestTrace:
    def test_trace_events_match_steps(self, small_complete):
        result = run_asynchronous(small_complete, 0, seed=3, record_trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.steps
        times = [event.time for event in result.trace]
        assert times == sorted(times)
        informing = [event for event in result.trace if event.informed is not None]
        assert len(informing) == result.num_informed - 1
