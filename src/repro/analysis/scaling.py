"""Scaling-law fits: how measured spreading times grow with the graph size.

The theorems are asymptotic, so the experiments measure spreading times over
a sweep of sizes ``n`` and ask questions like:

* does ``T_{1/n}(pp-a) − T_{1/n}(pp)`` grow like ``log n`` (Theorem 1's
  additive term)?
* does the ratio ``E[T(pp)] / E[T(pp-a)]`` stay below ``c · sqrt(n)``
  (Theorem 2), and what exponent does it actually grow with on the gap
  construction?
* is the star's asynchronous time ``Θ(log n)`` while its synchronous time is
  constant?

This module fits the three model shapes that cover every such question —
``a + b·log n``, ``a·n^b`` (power law via log–log least squares), and
``a + b·sqrt(n)`` — and reports goodness-of-fit so experiments can state
which shape describes the data best.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError

__all__ = [
    "FitResult",
    "fit_logarithmic",
    "fit_power_law",
    "fit_sqrt",
    "fit_linear",
    "best_fit",
    "growth_exponent",
]


@dataclass(frozen=True)
class FitResult:
    """Outcome of one scaling-law fit.

    Attributes:
        model: ``"logarithmic"``, ``"power_law"``, ``"sqrt"``, or ``"linear"``.
        parameters: the fitted parameters (meaning depends on the model —
            ``(a, b)`` for ``a + b·f(n)`` shapes, ``(a, b)`` for ``a·n^b``).
        r_squared: coefficient of determination of the fit (in the model's
            natural space: log–log for the power law, linear otherwise).
        description: human readable formula with the fitted numbers.
    """

    model: str
    parameters: tuple[float, ...]
    r_squared: float
    description: str

    def predict(self, n: float) -> float:
        """Evaluate the fitted curve at size ``n``."""
        a, b = self.parameters
        if self.model == "logarithmic":
            return a + b * math.log(n)
        if self.model == "power_law":
            return a * n**b
        if self.model == "sqrt":
            return a + b * math.sqrt(n)
        if self.model == "linear":
            return a + b * n
        raise AnalysisError(f"unknown model {self.model!r}")


def _validate_xy(sizes: Sequence[float], values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(values, dtype=float)
    if x.size != y.size:
        raise AnalysisError("sizes and values must have the same length")
    if x.size < 2:
        raise AnalysisError("need at least two points to fit a scaling law")
    if np.any(x <= 0):
        raise AnalysisError("sizes must be positive")
    if np.any(~np.isfinite(y)):
        raise AnalysisError("values must be finite")
    return x, y


def _least_squares(design: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, float]:
    coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
    predictions = design @ coefficients
    residual = float(np.sum((y - predictions) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if total == 0 else max(0.0, 1.0 - residual / total)
    return coefficients, r_squared


def fit_logarithmic(sizes: Sequence[float], values: Sequence[float]) -> FitResult:
    """Fit ``value ≈ a + b · log(n)``."""
    x, y = _validate_xy(sizes, values)
    design = np.column_stack([np.ones_like(x), np.log(x)])
    (a, b), r2 = _least_squares(design, y)
    return FitResult(
        model="logarithmic",
        parameters=(float(a), float(b)),
        r_squared=r2,
        description=f"{a:.3g} + {b:.3g}*log(n)",
    )


def fit_sqrt(sizes: Sequence[float], values: Sequence[float]) -> FitResult:
    """Fit ``value ≈ a + b · sqrt(n)``."""
    x, y = _validate_xy(sizes, values)
    design = np.column_stack([np.ones_like(x), np.sqrt(x)])
    (a, b), r2 = _least_squares(design, y)
    return FitResult(
        model="sqrt",
        parameters=(float(a), float(b)),
        r_squared=r2,
        description=f"{a:.3g} + {b:.3g}*sqrt(n)",
    )


def fit_linear(sizes: Sequence[float], values: Sequence[float]) -> FitResult:
    """Fit ``value ≈ a + b · n``."""
    x, y = _validate_xy(sizes, values)
    design = np.column_stack([np.ones_like(x), x])
    (a, b), r2 = _least_squares(design, y)
    return FitResult(
        model="linear",
        parameters=(float(a), float(b)),
        r_squared=r2,
        description=f"{a:.3g} + {b:.3g}*n",
    )


def fit_power_law(sizes: Sequence[float], values: Sequence[float]) -> FitResult:
    """Fit ``value ≈ a · n^b`` by least squares in log–log space.

    All values must be positive (they are spreading times or ratios of
    spreading times in every use within the library).
    """
    x, y = _validate_xy(sizes, values)
    if np.any(y <= 0):
        raise AnalysisError("power-law fit needs positive values")
    design = np.column_stack([np.ones_like(x), np.log(x)])
    (log_a, b), r2 = _least_squares(design, np.log(y))
    a = math.exp(float(log_a))
    return FitResult(
        model="power_law",
        parameters=(a, float(b)),
        r_squared=r2,
        description=f"{a:.3g} * n^{b:.3g}",
    )


def growth_exponent(sizes: Sequence[float], values: Sequence[float]) -> float:
    """The fitted exponent ``b`` of ``value ≈ a · n^b``.

    A convenient scalar for experiment tables: ~0 means the quantity is
    essentially constant in ``n``, ~0.5 means it grows like ``sqrt(n)``,
    ~1 like ``n``.
    """
    return fit_power_law(sizes, values).parameters[1]


def best_fit(sizes: Sequence[float], values: Sequence[float]) -> FitResult:
    """Return the best-fitting model among logarithmic, sqrt, linear and power law.

    "Best" is judged by the coefficient of determination computed in the
    *original* space for all candidates (the power-law candidate is
    re-scored in the original space so the comparison is fair).
    """
    x, y = _validate_xy(sizes, values)
    candidates: list[FitResult] = [fit_logarithmic(x, y), fit_sqrt(x, y), fit_linear(x, y)]
    if np.all(y > 0):
        power = fit_power_law(x, y)
        predictions = np.array([power.predict(value) for value in x])
        total = float(np.sum((y - y.mean()) ** 2))
        residual = float(np.sum((y - predictions) ** 2))
        rescored = FitResult(
            model=power.model,
            parameters=power.parameters,
            r_squared=1.0 if total == 0 else max(0.0, 1.0 - residual / total),
            description=power.description,
        )
        candidates.append(rescored)
    return max(candidates, key=lambda fit: fit.r_squared)
