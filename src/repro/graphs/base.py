"""Core graph data structure used by every simulator in the library.

The paper analyses rumor spreading on *connected, undirected, simple*
graphs.  All protocol engines in :mod:`repro.core` operate on the
:class:`Graph` type defined here rather than on :mod:`networkx` graphs for
two reasons:

* **Speed** — Monte Carlo experiments draw millions of "uniform random
  neighbor of *v*" samples.  The native representation is CSR adjacency
  (``indptr``/``indices`` arrays, adopted zero-copy via :meth:`Graph.from_csr`)
  with integer vertex ids, so kernels index neighbor slices directly; Python
  tuple views are materialised lazily only for code paths that ask for them.
* **Immutability** — a :class:`Graph` is frozen after construction, so a
  single instance can safely be shared by thousands of simulation trials
  (and across processes) without defensive copying.

Vertices are always the integers ``0 .. n-1``.  Conversion helpers to and
from :mod:`networkx` live in :mod:`repro.graphs.converters`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from repro.errors import GraphError

__all__ = ["Graph", "Edge", "normalize_edges"]

#: An undirected edge, stored with ``u < v``.
Edge = tuple[int, int]


def normalize_edges(edges: Iterable[Sequence[int]]) -> list[Edge]:
    """Return a sorted, de-duplicated list of undirected edges.

    Each input edge may be any two-element sequence of vertex ids.  Self
    loops are rejected (the protocols contact a *neighbor*, never the node
    itself), duplicate edges — in either orientation — are collapsed.

    Raises:
        GraphError: if an edge does not have exactly two endpoints, has a
            negative endpoint, or is a self loop.
    """
    seen: set[Edge] = set()
    for edge in edges:
        if len(edge) != 2:
            raise GraphError(f"edge {edge!r} does not have exactly two endpoints")
        u, v = int(edge[0]), int(edge[1])
        if u < 0 or v < 0:
            raise GraphError(f"edge ({u}, {v}) has a negative endpoint")
        if u == v:
            raise GraphError(f"self loop ({u}, {v}) is not allowed")
        seen.add((u, v) if u < v else (v, u))
    return sorted(seen)


class Graph:
    """An immutable, undirected, simple graph on vertices ``0 .. n-1``.

    Args:
        num_vertices: number of vertices ``n``; vertices are ``0 .. n-1``.
        edges: iterable of 2-sequences of vertex ids.  Duplicates (in either
            orientation) are collapsed; self loops raise :class:`GraphError`.
        name: optional human-readable name (e.g. ``"star(128)"``) used in
            experiment tables and ``repr``.

    The most frequently used accessors are :meth:`neighbors` and
    :meth:`degree`, both O(1); neighbor lists are exposed as tuples so they
    can be handed directly to random samplers.
    """

    __slots__ = ("_n", "_adjacency", "_edges", "_degrees", "_name", "_csr", "__weakref__")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Sequence[int]],
        *,
        name: Optional[str] = None,
    ) -> None:
        if num_vertices < 1:
            raise GraphError(f"a graph needs at least one vertex, got {num_vertices}")
        edge_list = normalize_edges(edges)
        adjacency: list[list[int]] = [[] for _ in range(num_vertices)]
        for u, v in edge_list:
            if u >= num_vertices or v >= num_vertices:
                raise GraphError(
                    f"edge ({u}, {v}) references a vertex outside 0..{num_vertices - 1}"
                )
            adjacency[u].append(v)
            adjacency[v].append(u)
        self._n = num_vertices
        self._adjacency: Optional[tuple[tuple[int, ...], ...]] = tuple(
            tuple(sorted(nbrs)) for nbrs in adjacency
        )
        self._edges: Optional[tuple[Edge, ...]] = tuple(edge_list)
        self._degrees: Optional[tuple[int, ...]] = tuple(
            len(nbrs) for nbrs in self._adjacency
        )
        self._name = name
        self._csr = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    # ------------------------------------------------------------------ #
    # Lazy materialization for CSR-built graphs (see :meth:`from_csr`)
    # ------------------------------------------------------------------ #
    def _materialize(self) -> None:
        """Build the Python adjacency/edge tuples from the stored CSR arrays.

        Only CSR-built graphs can reach this (``__init__`` always builds the
        tuples eagerly); it runs at most once per graph, on first access to
        a tuple-backed accessor.
        """
        indptr, indices = self._csr
        ptr = indptr.tolist() if hasattr(indptr, "tolist") else [int(p) for p in indptr]
        idx = indices.tolist() if hasattr(indices, "tolist") else [int(w) for w in indices]
        n = self._n
        if self._adjacency is None:
            self._adjacency = tuple(tuple(idx[ptr[v] : ptr[v + 1]]) for v in range(n))
        if self._degrees is None:
            self._degrees = tuple(ptr[v + 1] - ptr[v] for v in range(n))
        if self._edges is None:
            self._edges = tuple(
                (v, w) for v in range(n) for w in self._adjacency[v] if v < w
            )

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        if self._edges is None:
            return len(self._csr[1]) // 2
        return len(self._edges)

    @property
    def name(self) -> str:
        """Human readable name; synthesised from size if none was given."""
        if self._name is not None:
            return self._name
        return f"graph(n={self._n}, m={self.num_edges})"

    @property
    def vertices(self) -> range:
        """The vertex set as a ``range`` object (vertices are ``0..n-1``)."""
        return range(self._n)

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All undirected edges as ``(u, v)`` tuples with ``u < v``."""
        if self._edges is None:
            self._materialize()
        return self._edges

    @property
    def adjacency(self) -> tuple[tuple[int, ...], ...]:
        """The full adjacency structure: ``adjacency[v]`` are v's neighbors."""
        if self._adjacency is None:
            self._materialize()
        return self._adjacency

    @property
    def degrees(self) -> tuple[int, ...]:
        """Degree sequence indexed by vertex id."""
        if self._degrees is None:
            import numpy as np

            self._degrees = tuple(np.diff(np.asarray(self._csr[0])).tolist())
        return self._degrees

    def csr(self):
        """The adopted ``(indptr, indices)`` arrays of a CSR-built graph.

        ``None`` for graphs built from edge lists.  Lets
        :func:`repro.core.flatgraph.flat_adjacency` rebuild its structure
        zero-copy on a cache miss instead of materialising the Python
        tuples, keeping :meth:`from_csr`'s O(1)-attach guarantee structural
        rather than dependent on a warm cache.
        """
        return self._csr

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Neighbors of vertex ``v`` (sorted tuple).

        This is the set :math:`\\Gamma(v)` from the paper.
        """
        return self.adjacency[v]

    def degree(self, v: int) -> int:
        """Degree :math:`\\deg(v)` of vertex ``v``."""
        return self.degrees[v]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of the graph."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        # Neighbor tuples are small for most vertices; for the occasional
        # hub, a linear scan is still cheap relative to simulation cost.
        return v in self.adjacency[u]

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and 0 <= v < self._n

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self._n, self.edges))

    def __repr__(self) -> str:
        return f"Graph(name={self.name!r}, n={self._n}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Structural queries used throughout the library
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """Whether the graph is connected.

        All rumor-spreading theorems in the paper assume connectivity; the
        protocol engines validate it via this method.
        """
        if self._n == 1:
            return True
        if self.num_edges < self._n - 1:
            return False
        if self._adjacency is None:
            return self._csr_is_connected()
        seen = bytearray(self._n)
        stack = [0]
        seen[0] = 1
        count = 1
        adjacency = self._adjacency
        while stack:
            u = stack.pop()
            for w in adjacency[u]:
                if not seen[w]:
                    seen[w] = 1
                    count += 1
                    stack.append(w)
        return count == self._n

    def _csr_is_connected(self) -> bool:
        """Connectivity straight off the CSR arrays (no tuple materialization).

        Delegates to :func:`repro.graphs.csr_build.csr_is_connected` (a
        level-synchronous frontier BFS in NumPy), so batch-only workers
        (which attach graphs from shared CSR segments and never need the
        Python adjacency) keep their O(1)-attach guarantee.
        """
        from repro.graphs import csr_build

        return csr_build.csr_is_connected(*self._csr)

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted vertex lists (sorted by minimum)."""
        if self._adjacency is None:
            import numpy as np

            from repro.graphs import csr_build

            labels = csr_build.connected_component_labels(*self._csr)
            order = np.argsort(labels, kind="stable")
            splits = np.nonzero(np.diff(labels[order]))[0] + 1
            return [np.sort(part).tolist() for part in np.split(order, splits)]
        seen = bytearray(self._n)
        components: list[list[int]] = []
        adjacency = self.adjacency
        for start in range(self._n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = 1
            component = [start]
            while stack:
                u = stack.pop()
                for w in adjacency[u]:
                    if not seen[w]:
                        seen[w] = 1
                        component.append(w)
                        stack.append(w)
            components.append(sorted(component))
        return components

    def is_regular(self) -> bool:
        """Whether every vertex has the same degree."""
        return len(set(self.degrees)) <= 1

    def min_degree(self) -> int:
        """Minimum degree over all vertices."""
        return min(self.degrees)

    def max_degree(self) -> int:
        """Maximum degree over all vertices."""
        return max(self.degrees)

    def bfs_distances(self, source: int) -> list[int]:
        """Breadth-first-search distances from ``source``.

        Unreachable vertices get distance ``-1``.  Used for diameter and
        eccentricity computations and by a few deterministic lower bounds
        (the rumor needs at least ``dist(u, v)`` synchronous rounds to reach
        ``v``).
        """
        if not (0 <= source < self._n):
            raise GraphError(f"source {source} is not a vertex of {self.name}")
        dist = [-1] * self._n
        dist[source] = 0
        frontier = [source]
        adjacency = self.adjacency
        level = 0
        while frontier:
            level += 1
            next_frontier: list[int] = []
            for u in frontier:
                for w in adjacency[u]:
                    if dist[w] < 0:
                        dist[w] = level
                        next_frontier.append(w)
            frontier = next_frontier
        return dist

    def eccentricity(self, source: int) -> int:
        """Largest BFS distance from ``source``; raises if disconnected."""
        distances = self.bfs_distances(source)
        if min(distances) < 0:
            raise GraphError(f"{self.name} is not connected; eccentricity undefined")
        return max(distances)

    def subgraph(self, keep: Iterable[int], *, name: Optional[str] = None) -> "Graph":
        """Induced subgraph on the vertex set ``keep``.

        Vertices are relabelled ``0..k-1`` in increasing order of their old
        ids.  Mostly used by tests and by gap-graph constructions.
        """
        kept = sorted(set(int(v) for v in keep))
        for v in kept:
            if not (0 <= v < self._n):
                raise GraphError(f"vertex {v} is not a vertex of {self.name}")
        index = {old: new for new, old in enumerate(kept)}
        edges = [
            (index[u], index[v])
            for u, v in self.edges
            if u in index and v in index
        ]
        return Graph(len(kept), edges, name=name)

    def relabeled(self, mapping: Sequence[int], *, name: Optional[str] = None) -> "Graph":
        """Return a copy with vertex ``v`` renamed to ``mapping[v]``.

        ``mapping`` must be a permutation of ``0..n-1``.
        """
        if sorted(mapping) != list(range(self._n)):
            raise GraphError("mapping must be a permutation of 0..n-1")
        edges = [(mapping[u], mapping[v]) for u, v in self.edges]
        return Graph(self._n, edges, name=name or self._name)

    def with_name(self, name: str) -> "Graph":
        """Return the same graph carrying a different display name."""
        clone = Graph.__new__(Graph)
        clone._n = self._n
        clone._adjacency = self._adjacency
        clone._edges = self._edges
        clone._degrees = self._degrees
        clone._name = name
        clone._csr = self._csr
        return clone

    @classmethod
    def from_csr(cls, indptr, indices, *, name: Optional[str] = None) -> "Graph":
        """Rebuild a graph from CSR adjacency arrays produced by this library.

        The trusted fast-path inverse of
        :class:`repro.core.flatgraph.FlatAdjacency`: ``indptr``/``indices``
        must describe a valid simple undirected graph with *sorted* neighbor
        lists (exactly what ``FlatAdjacency`` stores for any :class:`Graph`).
        No normalization or validation is performed, so the reconstruction
        compares equal to the original graph while skipping the
        ``normalize_edges`` sort entirely.  Used by the shared-memory
        parallel layer to reattach a graph in worker processes from arrays
        placed in a :mod:`multiprocessing.shared_memory` segment.

        Attaching is O(1): the arrays are adopted as-is and the Python
        adjacency/edge tuples are materialised lazily, on the first access
        that actually needs them.  Batch-only worker chunks — whose kernels
        read the (cached) CSR arrays and whose connectivity check runs
        straight off them — never pay the O(n + m) tuple pass at all.
        """
        n = len(indptr) - 1
        if n < 1:
            raise GraphError("a graph needs at least one vertex")
        graph = cls.__new__(cls)
        graph._n = n
        graph._adjacency = None
        graph._edges = None
        graph._degrees = None
        graph._name = name
        graph._csr = (indptr, indices)
        return graph
