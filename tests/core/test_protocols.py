"""Unit tests for the protocol registry and the spread() entry point."""

from __future__ import annotations

import pytest

from repro.core.protocols import (
    PROTOCOLS,
    available_protocols,
    get_protocol,
    is_asynchronous_protocol,
    is_synchronous_protocol,
    spread,
)
from repro.errors import ProtocolError
from repro.graphs import star_graph


class TestRegistry:
    def test_all_paper_protocols_registered(self):
        assert {"pp", "push", "pull", "pp-a", "push-a", "pull-a", "ppx", "ppy"} == set(PROTOCOLS)

    def test_available_protocols_sorted(self):
        names = available_protocols()
        assert names == sorted(names)

    def test_analysis_only_filter(self):
        realistic = available_protocols(include_analysis_only=False)
        assert "ppx" not in realistic and "ppy" not in realistic
        assert "pp" in realistic and "pp-a" in realistic

    def test_get_protocol_unknown(self):
        with pytest.raises(ProtocolError, match="available"):
            get_protocol("broadcast")

    def test_synchronous_flags(self):
        assert is_synchronous_protocol("pp")
        assert is_synchronous_protocol("ppx")
        assert not is_synchronous_protocol("pp-a")
        assert is_asynchronous_protocol("pull-a")
        assert not is_asynchronous_protocol("push")

    def test_descriptions_are_informative(self):
        for spec in PROTOCOLS.values():
            assert len(spec.description) > 10


class TestSpread:
    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_every_protocol_runs(self, protocol):
        graph = star_graph(12)
        result = spread(graph, 1, protocol=protocol, seed=1)
        assert result.completed
        assert result.protocol == protocol
        assert result.num_vertices == 12

    def test_unknown_protocol_raises(self):
        with pytest.raises(ProtocolError):
            spread(star_graph(8), 0, protocol="carrier-pigeon")

    def test_engine_options_forwarded(self):
        result = spread(star_graph(12), 1, protocol="pp-a", seed=1, view="node_clocks")
        assert result.completed

    def test_sync_async_time_units_differ(self):
        sync = spread(star_graph(32), 1, protocol="pp", seed=2)
        asynchronous = spread(star_graph(32), 1, protocol="pp-a", seed=2)
        assert sync.rounds is not None and sync.steps is None
        assert asynchronous.steps is not None and asynchronous.rounds is None
