"""Property-based tests (hypothesis) for quantile estimation and statistics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.quantiles import empirical_quantile, tail_fitted_quantile
from repro.analysis.statistics import normal_mean_interval

finite_samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)

levels = st.floats(min_value=0.01, max_value=0.99)


class TestQuantileProperties:
    @given(finite_samples, levels)
    @settings(max_examples=80, deadline=None)
    def test_quantile_lies_within_sample_range(self, values, level):
        estimate = empirical_quantile(values, level)
        assert min(values) <= estimate <= max(values)
        assert estimate in values

    @given(finite_samples, levels, levels)
    @settings(max_examples=80, deadline=None)
    def test_quantile_monotone_in_level(self, values, level_a, level_b):
        low, high = sorted((level_a, level_b))
        assert empirical_quantile(values, low) <= empirical_quantile(values, high)

    @given(finite_samples)
    @settings(max_examples=50, deadline=None)
    def test_extreme_level_returns_maximum(self, values):
        level = 1.0 - 1.0 / (10 * len(values) + 10)
        assert empirical_quantile(values, level) == max(values)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=3, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_tail_fit_never_below_empirical_estimate_beyond_sample(self, values):
        # For a level finer than the sample resolution the tail fit must not
        # fall below the sample maximum (it extrapolates upward).
        level = 1.0 - 1.0 / (100 * len(values))
        assert tail_fitted_quantile(values, level) >= max(values)

    @given(finite_samples, st.floats(min_value=-10, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_quantiles_are_translation_equivariant(self, values, shift):
        level = 0.7
        shifted = [value + shift for value in values]
        base = empirical_quantile(values, level)
        assert empirical_quantile(shifted, level) == base + shift


class TestMeanIntervalProperties:
    @given(finite_samples)
    @settings(max_examples=60, deadline=None)
    def test_interval_brackets_the_mean(self, values):
        estimate = normal_mean_interval(values)
        assert estimate.lower <= estimate.value <= estimate.upper

    @given(finite_samples, st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=60, deadline=None)
    def test_interval_scales_with_the_data(self, values, factor):
        base = normal_mean_interval(values)
        scaled = normal_mean_interval([value * factor for value in values])
        assert scaled.value == pytest_approx(base.value * factor)
        assert scaled.half_width() == pytest_approx(base.half_width() * factor)


def pytest_approx(value: float, rel: float = 1e-9, abs_tol: float = 1e-6):
    """Local approx helper (keeps hypothesis-reported values readable)."""
    import pytest

    return pytest.approx(value, rel=rel, abs=abs_tol)
