"""Unit tests for networkx conversion helpers."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs import converters, cycle_graph, star_graph


class TestFromNetworkx:
    def test_round_trip_preserves_structure(self):
        original = star_graph(10)
        nx_graph = converters.to_networkx(original)
        back, mapping = converters.from_networkx(nx_graph)
        assert back == original
        assert mapping == {v: v for v in range(10)}

    def test_string_labels_are_relabelled(self):
        nx_graph = nx.Graph()
        nx_graph.add_edges_from([("a", "b"), ("b", "c"), ("c", "a")])
        graph, mapping = converters.from_networkx(nx_graph)
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        assert set(mapping) == {"a", "b", "c"}
        assert sorted(mapping.values()) == [0, 1, 2]

    def test_mixed_unsortable_labels(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge("a", 1)
        graph, mapping = converters.from_networkx(nx_graph)
        assert graph.num_edges == 1
        assert len(mapping) == 2

    def test_rejects_directed_graphs(self):
        with pytest.raises(GraphError):
            converters.from_networkx(nx.DiGraph([(0, 1)]))

    def test_rejects_multigraphs(self):
        with pytest.raises(GraphError):
            converters.from_networkx(nx.MultiGraph([(0, 1), (0, 1)]))

    def test_rejects_self_loops(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0)
        with pytest.raises(GraphError):
            converters.from_networkx(nx_graph)

    def test_name_override(self):
        nx_graph = nx.path_graph(4)
        graph, _ = converters.from_networkx(nx_graph, name="my-path")
        assert graph.name == "my-path"


class TestToNetworkx:
    def test_preserves_vertices_and_edges(self):
        original = cycle_graph(7)
        nx_graph = converters.to_networkx(original)
        assert nx_graph.number_of_nodes() == 7
        assert nx_graph.number_of_edges() == 7
        assert nx.is_connected(nx_graph)
        assert nx_graph.name == original.name

    def test_isolated_vertices_survive(self):
        from repro.graphs.base import Graph

        graph = Graph(5, [(0, 1)])
        nx_graph = converters.to_networkx(graph)
        assert nx_graph.number_of_nodes() == 5


class TestFromEdgeList:
    def test_builds_graph_and_mapping(self):
        graph, mapping = converters.from_edge_list(
            [("alice", "bob"), ("bob", "carol")], name="social"
        )
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert graph.name == "social"
        assert graph.degree(mapping["bob"]) == 2
