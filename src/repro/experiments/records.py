"""Experiment result records and text rendering.

The paper has no numbered tables or figures, so each experiment in this
package produces a table-shaped :class:`ExperimentResult` that plays that
role: a list of rows (dictionaries), the columns to display, free-form notes
(e.g. which preset was used), and a ``conclusions`` mapping with the handful
of headline numbers/booleans the claim is judged by (these are what
EXPERIMENTS.md records and what the benchmark assertions check).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import ExperimentError

__all__ = ["ExperimentResult", "format_table", "format_value"]


def format_value(value: Any, *, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, the rest ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    columns: Sequence[str],
    rows: Sequence[Mapping[str, Any]],
    *,
    precision: int = 3,
) -> str:
    """Render rows as a fixed-width ASCII table (monospace friendly)."""
    if not columns:
        raise ExperimentError("a table needs at least one column")
    header = list(columns)
    rendered_rows = [
        [format_value(row.get(column, ""), precision=precision) for column in header]
        for row in rows
    ]
    widths = [len(column) for column in header]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(column.ljust(widths[index]) for index, column in enumerate(header))
    separator = "  ".join("-" * widths[index] for index in range(len(header)))
    body = [
        "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        for row in rendered_rows
    ]
    return "\n".join([line, separator, *body])


@dataclass
class ExperimentResult:
    """The outcome of one experiment run.

    Attributes:
        experiment_id: short id, e.g. ``"E1"``.
        title: one-line title.
        claim: the paper claim being reproduced (free text).
        columns: display order of the row keys.
        rows: one mapping per table row.
        conclusions: headline quantities / pass-fail flags keyed by name.
        notes: free-form notes (preset, trial counts, caveats).
    """

    experiment_id: str
    title: str
    claim: str
    columns: list[str]
    rows: list[dict[str, Any]]
    conclusions: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def to_table(self, *, precision: int = 3) -> str:
        """Render the rows as an ASCII table."""
        return format_table(self.columns, self.rows, precision=precision)

    def to_text(self) -> str:
        """Full text report: header, claim, table, conclusions, notes."""
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"claim: {self.claim}",
            "",
            self.to_table(),
            "",
        ]
        if self.conclusions:
            lines.append("conclusions:")
            for key, value in self.conclusions.items():
                lines.append(f"  - {key}: {format_value(value)}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialise the result to JSON (used by the CLI ``--json`` flag)."""
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "columns": self.columns,
            "rows": self.rows,
            "conclusions": self.conclusions,
            "notes": self.notes,
        }
        return json.dumps(payload, indent=2, default=_json_default)

    def conclusion(self, key: str) -> Any:
        """Fetch one conclusion value; raises a clear error when missing."""
        try:
            return self.conclusions[key]
        except KeyError:
            raise ExperimentError(
                f"experiment {self.experiment_id} has no conclusion {key!r}; "
                f"available: {sorted(self.conclusions)}"
            ) from None


def _json_default(value: Any) -> Any:
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, tuple)):
        return list(value)
    return str(value)
